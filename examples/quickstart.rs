//! Quickstart: run one kernel on two machine configurations and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dlp_core::{recommend, run_kernel, ExperimentParams, MachineConfig};
use dlp_kernels::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ExperimentParams::default();
    let kernels = suite();
    let kernel = kernels
        .iter()
        .find(|k| k.name() == "convert")
        .expect("convert is in the suite");

    println!("kernel: {} — {}", kernel.name(), kernel.description());
    let attrs = kernel.ir().attributes();
    println!(
        "attributes: {} insts, ILP {:.1}, record {}/{}, {} constants",
        attrs.insts, attrs.ilp, attrs.record_read, attrs.record_write, attrs.constants
    );
    let rec = recommend(&attrs);
    println!("recommended configuration: {}\n", rec.config);

    let records = 2048;
    let base = run_kernel(kernel.as_ref(), MachineConfig::Baseline, records, &params)?;
    println!(
        "baseline : {:>9} cycles  {:>6} ops/cycle  verified={}",
        base.stats.cycles(),
        base.stats.ops_per_cycle(),
        base.verified()
    );
    let tuned = run_kernel(kernel.as_ref(), rec.config, records, &params)?;
    println!(
        "{:<9}: {:>9} cycles  {:>6} ops/cycle  verified={}",
        rec.config.to_string(),
        tuned.stats.cycles(),
        tuned.stats.ops_per_cycle(),
        tuned.verified()
    );
    println!(
        "\nspeedup from configuring the mechanisms: {:.2}x",
        tuned.stats.speedup_over(&base.stats)
    );
    Ok(())
}
