//! Bring your own kernel: build a Sobel edge-detection kernel with the
//! public IR builder, let the recommender pick a configuration, schedule
//! it, simulate it, and verify the results — the full downstream-user
//! workflow on a kernel that is *not* part of the paper's suite.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use dlp_common::Value;
use dlp_core::{recommend, ExperimentParams};
use dlp_kernel_ir::{ControlClass, Domain, IrBuilder, KernelIr};
use dlp_kernels::memmap;
use trips_isa::Opcode;
use trips_sched::{schedule_dataflow, LayoutPlan, ScheduleOptions};
use trips_sim::Machine;

/// Sobel gradient magnitude (approximated as |gx| + |gy|) over a 3×3
/// neighborhood streamed as one record.
fn sobel_ir() -> KernelIr {
    let mut b = IrBuilder::new("sobel", Domain::Multimedia, 9, 1);
    let px: Vec<_> = (0..9).map(|i| b.input(i)).collect();
    let two = b.constant("two", Value::from_f32(2.0));
    // gx = (p2 + 2*p5 + p8) - (p0 + 2*p3 + p6)
    let t = b.bin(Opcode::FMul, px[5], two);
    let r1 = b.bin(Opcode::FAdd, px[2], t);
    let right = b.bin(Opcode::FAdd, r1, px[8]);
    let t = b.bin(Opcode::FMul, px[3], two);
    let l1 = b.bin(Opcode::FAdd, px[0], t);
    let left = b.bin(Opcode::FAdd, l1, px[6]);
    let gx = b.bin(Opcode::FSub, right, left);
    // gy = (p6 + 2*p7 + p8) - (p0 + 2*p1 + p2)
    let t = b.bin(Opcode::FMul, px[7], two);
    let b1 = b.bin(Opcode::FAdd, px[6], t);
    let bot = b.bin(Opcode::FAdd, b1, px[8]);
    let t = b.bin(Opcode::FMul, px[1], two);
    let t1 = b.bin(Opcode::FAdd, px[0], t);
    let top = b.bin(Opcode::FAdd, t1, px[2]);
    let gy = b.bin(Opcode::FSub, bot, top);
    // |gx| + |gy|
    let ax = b.un(Opcode::FAbs, gx);
    let ay = b.un(Opcode::FAbs, gy);
    let mag = b.bin(Opcode::FAdd, ax, ay);
    b.output(0, mag);
    b.finish(ControlClass::Straight).expect("sobel IR is well-formed")
}

/// The same computation on the host, as the verification oracle.
fn sobel_ref(p: &[f32; 9]) -> f32 {
    let gx = (p[2] + 2.0 * p[5] + p[8]) - (p[0] + 2.0 * p[3] + p[6]);
    let gy = (p[6] + 2.0 * p[7] + p[8]) - (p[0] + 2.0 * p[1] + p[2]);
    gx.abs() + gy.abs()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ExperimentParams::default();
    let ir = sobel_ir();

    // 1. Characterize (the Table 2 row for your kernel)...
    let attrs = ir.attributes();
    println!(
        "sobel: {} insts, ILP {:.1}, record {}/{}, {} constant",
        attrs.insts, attrs.ilp, attrs.record_read, attrs.record_write, attrs.constants
    );
    // 2. ...let Table 3 pick the mechanisms...
    let rec = recommend(&attrs);
    println!("recommended configuration: {}", rec.config);

    // 3. ...schedule and inspect the placement...
    let layout = LayoutPlan {
        base_in: memmap::BASE_IN,
        base_out: memmap::BASE_OUT,
        table_base: memmap::TABLE_BASE,
    };
    let sched = schedule_dataflow(
        &ir,
        params.grid,
        &params.timing,
        rec.config.target(),
        layout,
        ScheduleOptions::default(),
    )?;
    println!(
        "scheduled: {} instructions, unroll {}\n",
        sched.block.len(),
        sched.unroll
    );
    print!("{}", trips_sched::placement_map(&sched.block, params.grid));

    // 4. ...and run it, verified against the host oracle.
    let records = 1024usize;
    let padded = records.div_ceil(sched.unroll) * sched.unroll;
    let mut neighborhoods = Vec::with_capacity(padded);
    let mut input = Vec::with_capacity(padded * 9);
    for r in 0..padded {
        let nbhd: [f32; 9] = core::array::from_fn(|i| ((r * 31 + i * 17) % 255) as f32 / 255.0);
        for v in nbhd {
            input.push(Value::from_f32(v));
        }
        neighborhoods.push(nbhd);
    }

    let mut m = Machine::new(params.grid, params.timing, rec.config.mechanisms());
    m.memory_mut().write_words(memmap::BASE_IN, &input);
    m.stage_smc(memmap::BASE_IN..memmap::BASE_IN + (padded * 9) as u64)?;
    for (reg, v) in &sched.const_regs {
        m.set_reg(*reg, *v);
    }
    let stats = m.run_dataflow(&sched.block, (padded / sched.unroll) as u64)?;

    let mut worst = 0.0f32;
    for (r, nbhd) in neighborhoods.iter().take(records).enumerate() {
        let got = m.memory().read(memmap::BASE_OUT + r as u64).as_f32();
        let want = sobel_ref(nbhd);
        worst = worst.max((got - want).abs());
    }
    println!(
        "\n{records} neighborhoods in {} cycles ({} useful ops/cycle)",
        stats.cycles(),
        stats.ops_per_cycle()
    );
    println!("max |simulated - reference| = {worst:.3e}");
    assert!(worst < 1e-4, "sobel diverged from the oracle");
    println!("verified");
    Ok(())
}
