//! The Figure 5 headline, live: run every benchmark on every
//! configuration, print per-kernel speedups grouped by preferred machine,
//! and the flexible architecture's harmonic-mean advantage over each fixed
//! configuration (the paper's 5%–55%).
//!
//! ```sh
//! cargo run --release --example flexible_vs_fixed           # standard scale
//! cargo run --release --example flexible_vs_fixed -- --quick
//! ```

use dlp_core::{flexible, ExperimentParams, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = ExperimentParams::default();
    let fig = flexible(&params, if quick { 0 } else { 1 })?;

    println!("speedup over baseline (execution cycles), per configuration\n");
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>7} {:>7}   best   recommended",
        "benchmark", "S", "S-O", "S-O-D", "M", "M-D"
    );
    for row in &fig.rows {
        println!(
            "{:<22} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}   {:<5}  {}",
            row.kernel,
            row.speedup[&MachineConfig::S],
            row.speedup[&MachineConfig::SO],
            row.speedup[&MachineConfig::SOD],
            row.speedup[&MachineConfig::M],
            row.speedup[&MachineConfig::MD],
            row.best.to_string(),
            row.recommended
        );
    }

    println!("\nharmonic-mean speedup over baseline:");
    println!("  flexible (per-kernel recommended config): {:.2}x", fig.summary.flexible_hm);
    for (config, hm) in &fig.summary.fixed_hm {
        let adv = fig.summary.advantage_over.get(config).copied().unwrap_or(0.0);
        println!("  fixed {config:<6}: {hm:.2}x   (flexible is {:+.0}% better)", adv * 100.0);
    }
    println!("\npaper (Figure 5): flexible beats fixed S by 55%, S-O by 20%, M-D by 5%");
    Ok(())
}
