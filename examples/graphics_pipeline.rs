//! A real-time-graphics frame: vertex shading, skinning, and fragment
//! shading on their preferred configurations.
//!
//! §4.3 notes that a rendering pipeline can partition the homogeneous ALU
//! array among vertex, rasterization and fragment kernels and re-balance
//! per scene; here we run the stages back-to-back on the configurations
//! the recommender picks, which is the same flexibility exercised
//! sequentially.
//!
//! ```sh
//! cargo run --release --example graphics_pipeline
//! ```

use dlp_core::{recommend, run_kernel, ExperimentParams};
use dlp_kernels::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ExperimentParams::default();
    let kernels = suite();
    let stages = [
        ("vertex-simple", 512, "static geometry"),
        ("vertex-skinning", 256, "animated characters"),
        ("vertex-reflection", 512, "reflective surfaces"),
        ("fragment-simple", 512, "lit fragments"),
        ("fragment-reflection", 512, "cube-mapped fragments"),
    ];

    println!("graphics frame (per-stage kernels)\n");
    println!(
        "{:<20} {:>7} {:>9} {:>12} {:>12} {:>9}",
        "stage", "config", "records", "cycles", "ops/cycle", "verified"
    );
    let mut total_cycles = 0u64;
    for (name, records, what) in stages {
        let kernel = kernels.iter().find(|k| k.name() == name).expect("shader kernel");
        let config = recommend(&kernel.ir().attributes()).config;
        let out = run_kernel(kernel.as_ref(), config, records, &params)?;
        total_cycles += out.stats.cycles();
        println!(
            "{:<20} {:>7} {:>9} {:>12} {:>12} {:>9}   ({what})",
            name,
            config.to_string(),
            records,
            out.stats.cycles(),
            out.stats.ops_per_cycle().to_string(),
            out.verified()
        );
    }
    println!("\nframe total: {total_cycles} cycles");
    println!(
        "at the paper's normalized 450 MHz graphics clock: {:.2} ms/frame",
        total_cycles as f64 / 450.0e6 * 1e3
    );
    Ok(())
}
