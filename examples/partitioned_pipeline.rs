//! Partitioned MIMD (§4.3): two pipeline stages on one array,
//! concurrently, with the split chosen by workload balance.
//!
//! The paper: "a rendering pipeline can be implemented by partitioning the
//! ALUs among vertex processing, rasterization, and fragment processing
//! kernels … the partitioning of ALUs can be dynamically determined based
//! on scene attributes." Here a geometry-ish stage (transform) and a
//! fragment-ish stage (shade) share the 8×8 array under three different
//! splits; the best split follows the stage workload ratio.
//!
//! ```sh
//! cargo run --release --example partitioned_pipeline
//! ```

use dlp_common::{GridShape, TimingParams, Value};
use trips_isa::{MemSpace, MimdAsm, MimdProgram, Opcode, REG_NODE_COUNT, REG_NODE_ID, REG_RECORDS};
use trips_sim::{Machine, MechanismSet, Partition};

const IN_A: i64 = 0; // transform-stage input stream
const OUT_A: i64 = 100_000;
const IN_B: i64 = 200_000; // shade-stage input stream
const OUT_B: i64 = 300_000;

/// Stage 1: y = 0.866*x + 0.25 (a 1-D "transform").
fn transform_stage() -> MimdProgram {
    let mut asm = MimdAsm::new();
    asm.lif(10, 0.866);
    asm.lif(11, 0.25);
    asm.alu(Opcode::Mov, 1, REG_NODE_ID, 0);
    asm.label("loop");
    asm.alu(Opcode::Tgeu, 2, 1, REG_RECORDS);
    asm.bnz(2, "done");
    asm.alui(Opcode::Add, 3, 1, IN_A);
    asm.ld(MemSpace::Smc, 4, 3, 0);
    asm.alu(Opcode::FMul, 4, 4, 10);
    asm.alu(Opcode::FAdd, 4, 4, 11);
    asm.alui(Opcode::Add, 3, 1, OUT_A);
    asm.st(MemSpace::Smc, 3, 0, 4);
    asm.alu(Opcode::Add, 1, 1, REG_NODE_COUNT);
    asm.jmp("loop");
    asm.label("done");
    asm.halt();
    asm.assemble().expect("transform stage assembles")
}

/// Stage 2: y = clamp0(x)^2 * 0.8 + 0.05 (a heavier "shading" stage).
fn shade_stage() -> MimdProgram {
    let mut asm = MimdAsm::new();
    asm.lif(10, 0.0);
    asm.lif(11, 0.8);
    asm.lif(12, 0.05);
    asm.alu(Opcode::Mov, 1, REG_NODE_ID, 0);
    asm.label("loop");
    asm.alu(Opcode::Tgeu, 2, 1, REG_RECORDS);
    asm.bnz(2, "done");
    asm.alui(Opcode::Add, 3, 1, IN_B);
    asm.ld(MemSpace::Smc, 4, 3, 0);
    asm.alu(Opcode::FMax, 4, 4, 10);
    asm.alu(Opcode::FMul, 4, 4, 4);
    asm.alu(Opcode::FMul, 4, 4, 11);
    asm.alu(Opcode::FAdd, 4, 4, 12);
    // A few extra flops to make shading heavier than transforming.
    asm.alu(Opcode::FMul, 5, 4, 4);
    asm.alu(Opcode::FAdd, 4, 4, 5);
    asm.alui(Opcode::Add, 3, 1, OUT_B);
    asm.st(MemSpace::Smc, 3, 0, 4);
    asm.alu(Opcode::Add, 1, 1, REG_NODE_COUNT);
    asm.jmp("loop");
    asm.label("done");
    asm.halt();
    asm.assemble().expect("shade stage assembles")
}

fn run_split(vertex_nodes: usize, vertices: u64, fragments: u64) -> u64 {
    let mut m = Machine::new(GridShape::new(8, 8), TimingParams::default(), MechanismSet::mimd());
    for i in 0..vertices {
        m.memory_mut().write(IN_A as u64 + i, Value::from_f32(i as f32 * 0.01 - 1.0));
    }
    for i in 0..fragments {
        m.memory_mut().write(IN_B as u64 + i, Value::from_f32(i as f32 * 0.003 - 0.5));
    }
    m.stage_smc(0..400_000).expect("stage");
    let stats = m
        .run_mimd_partitioned(&[
            Partition { program: transform_stage(), nodes: vertex_nodes, records: vertices },
            Partition { program: shade_stage(), nodes: 64 - vertex_nodes, records: fragments },
        ])
        .expect("partitioned run");
    stats.cycles()
}

fn main() {
    // A fragment-heavy scene: few vertices, many fragments.
    let (vertices, fragments) = (512u64, 4096u64);
    println!("scene: {vertices} vertices, {fragments} fragments\n");
    println!("{:>14} {:>14} {:>10}", "vertex nodes", "fragment nodes", "cycles");
    let mut best = (0usize, u64::MAX);
    for vertex_nodes in [8usize, 16, 32, 48] {
        let cycles = run_split(vertex_nodes, vertices, fragments);
        println!("{:>14} {:>14} {:>10}", vertex_nodes, 64 - vertex_nodes, cycles);
        if cycles < best.1 {
            best = (vertex_nodes, cycles);
        }
    }
    println!(
        "\nbest split for this scene: {} vertex / {} fragment nodes — the\n\
         homogeneous array re-balances per scene, unlike fixed-function pipelines (§4.3)",
        best.0,
        64 - best.0
    );
}
