//! A full 1024-point complex FFT driven through the butterfly kernel —
//! the paper's scientific workload, staged as log₂(N) butterfly streams.
//!
//! Each stage's butterflies are generated from the working arrays, run
//! through the simulated S machine as one record stream, and written back;
//! the final spectrum is checked against the pure-Rust reference FFT.
//!
//! ```sh
//! cargo run --release --example fft_pipeline
//! ```

use dlp_common::Value;
use dlp_core::{ExperimentParams, MachineConfig};
use dlp_kernels::memmap;
use dlp_kernels::refimpl::transform::fft_inplace;
use dlp_kernels::DlpKernel;
use trips_sched::{schedule_dataflow, LayoutPlan, ScheduleOptions};
use trips_sim::Machine;

const N: usize = 1024;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ExperimentParams::default();
    let config = MachineConfig::S; // fft's preferred configuration (§5.3)

    // Deterministic input signal.
    let mut re: Vec<f32> = (0..N).map(|i| ((i * 7 % 23) as f32) / 23.0 - 0.5).collect();
    let mut im: Vec<f32> = vec![0.0; N];

    // Reference spectrum.
    let mut ref_re = re.clone();
    let mut ref_im = im.clone();
    fft_inplace(&mut ref_re, &mut ref_im);

    // Bit-reversal permutation (host side, as the stream scheduler would).
    let bits = N.trailing_zeros();
    for i in 0..N {
        let j = ((i as u32).reverse_bits() >> (32 - bits)) as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }

    let ir = dlp_kernels::fft::Fft.ir();
    let layout = LayoutPlan {
        base_in: memmap::BASE_IN,
        base_out: memmap::BASE_OUT,
        table_base: memmap::TABLE_BASE,
    };
    let sched = schedule_dataflow(
        &ir,
        params.grid,
        &params.timing,
        config.target(),
        layout,
        ScheduleOptions::default(),
    )?;

    let mut total_cycles = 0u64;
    let mut len = 2;
    let mut stage = 0;
    while len <= N {
        let half = len / 2;
        // Build this stage's butterfly records.
        let mut pairs = Vec::new();
        let mut input = Vec::new();
        for start in (0..N).step_by(len) {
            for k in 0..half {
                let (i, j) = (start + k, start + k + half);
                let angle = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
                let (wr, wi) = (angle.cos() as f32, angle.sin() as f32);
                pairs.push((i, j));
                for v in [re[i], im[i], re[j], im[j], wr, wi] {
                    input.push(Value::from_f32(v));
                }
            }
        }
        // Pad to a whole number of unrolled iterations.
        let records = pairs.len();
        let padded = records.div_ceil(sched.unroll) * sched.unroll;
        input.resize(padded * 6, Value::ZERO);

        let mut m = Machine::new(params.grid, params.timing, config.mechanisms());
        m.memory_mut().write_words(memmap::BASE_IN, &input);
        m.stage_smc(memmap::BASE_IN..memmap::BASE_IN + (padded * 6) as u64)?;
        let stats = m.run_dataflow(&sched.block, (padded / sched.unroll) as u64)?;
        total_cycles += stats.cycles();

        // Write results back into the working arrays.
        let out = m.memory().read_words(memmap::BASE_OUT, records * 4);
        for (r, &(i, j)) in pairs.iter().enumerate() {
            re[i] = out[r * 4].as_f32();
            im[i] = out[r * 4 + 1].as_f32();
            re[j] = out[r * 4 + 2].as_f32();
            im[j] = out[r * 4 + 3].as_f32();
        }
        stage += 1;
        println!(
            "stage {stage:2}: {records:4} butterflies in {:7} cycles",
            stats.cycles()
        );
        len *= 2;
    }

    // Compare against the reference spectrum.
    let mut worst = 0.0f32;
    for i in 0..N {
        worst = worst.max((re[i] - ref_re[i]).abs()).max((im[i] - ref_im[i]).abs());
    }
    println!("\n{N}-point FFT: {stage} stages, {total_cycles} cycles total");
    println!("max |simulated - reference| = {worst:.3e}");
    assert!(worst < 1e-3, "simulated FFT diverged from the reference");
    println!("spectrum verified against the reference FFT");
    Ok(())
}
