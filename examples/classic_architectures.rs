//! Section 3 in numbers: score every benchmark on first-order models of
//! the classic vector, SIMD-array and coarse-MIMD architectures, and show
//! that no single fixed model suits the whole suite — the paper's
//! motivation for a single substrate with configurable mechanisms.
//!
//! ```sh
//! cargo run --release --example classic_architectures
//! ```

use dlp_classic::survey;
use dlp_kernels::suite;

fn main() {
    println!("first-order classic-architecture estimates (cycles/record; smaller is better)\n");
    println!("{:<22} {:>10} {:>10} {:>12}   best", "benchmark", "vector", "simd", "coarse-mimd");
    let mut wins = std::collections::BTreeMap::new();
    for kernel in suite() {
        let attrs = kernel.ir().attributes();
        let scores = survey(&attrs);
        let best = scores
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("three models");
        *wins.entry(best.0).or_insert(0u32) += 1;
        println!(
            "{:<22} {:>10.2} {:>10.2} {:>12.2}   {}",
            attrs.name, scores[0].1, scores[1].1, scores[2].1, best.0
        );
    }
    println!("\nwins per fixed architecture:");
    for (arch, n) in &wins {
        println!("  {arch:<12} {n}");
    }
    println!(
        "\nNo fixed model wins everywhere — the spread across domains is what\n\
         the paper's universal mechanisms close by reconfiguring one substrate."
    );
}
