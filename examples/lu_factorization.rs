//! Full dense LU factorization driven through the `lu` update kernel —
//! the paper's second scientific workload, staged as n−1 elimination
//! passes (the way the stream scheduler feeds a rank-1 update machine).
//!
//! Pass k: the host (playing the setup block) computes the multiplier
//! column `l[i][k] = a[i][k] / a[k][k]`, packs `(l_ik, u_kj)` pairs next to
//! each trailing element, and the simulated S machine streams the
//! `a' = a − l·u` updates. The final factors are checked by multiplying
//! L·U back together.
//!
//! ```sh
//! cargo run --release --example lu_factorization
//! ```

use dlp_common::Value;
use dlp_core::{ExperimentParams, MachineConfig};
use dlp_kernels::pack2f32;
use dlp_kernels::{memmap, DlpKernel};
use trips_sched::{schedule_dataflow, LayoutPlan, ScheduleOptions};
use trips_sim::Machine;

const N: usize = 24;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ExperimentParams::default();
    let config = MachineConfig::S; // lu's preferred configuration (§5.3)

    // A diagonally dominant matrix (no pivoting needed).
    let mut a = vec![0.0f32; N * N];
    for i in 0..N {
        for j in 0..N {
            a[i * N + j] = if i == j {
                N as f32 + 1.0
            } else {
                ((i * 7 + j * 3) % 11) as f32 / 11.0 - 0.5
            };
        }
    }
    let original = a.clone();

    let ir = dlp_kernels::lu::Lu.ir();
    let layout = LayoutPlan {
        base_in: memmap::BASE_IN,
        base_out: memmap::BASE_OUT,
        table_base: memmap::TABLE_BASE,
    };
    let sched = schedule_dataflow(
        &ir,
        params.grid,
        &params.timing,
        config.target(),
        layout,
        ScheduleOptions::default(),
    )?;

    let mut lower = vec![0.0f32; N * N];
    let mut total_cycles = 0u64;
    for k in 0..N - 1 {
        // Multiplier column (host-side divide, as the paper's setup work).
        let pivot = a[k * N + k];
        for i in k + 1..N {
            lower[i * N + k] = a[i * N + k] / pivot;
        }
        // Build the update stream for the trailing (N-k-1)² submatrix.
        let mut pairs = Vec::new();
        let mut input = Vec::new();
        for i in k + 1..N {
            for j in k + 1..N {
                pairs.push((i, j));
                input.push(Value::from_f32(a[i * N + j]));
                input.push(pack2f32(lower[i * N + k], a[k * N + j]));
            }
        }
        let records = pairs.len();
        let padded = records.div_ceil(sched.unroll) * sched.unroll;
        input.resize(padded * 2, Value::ZERO);

        let mut m = Machine::new(params.grid, params.timing, config.mechanisms());
        m.memory_mut().write_words(memmap::BASE_IN, &input);
        m.stage_smc(memmap::BASE_IN..memmap::BASE_IN + (padded * 2) as u64)?;
        let stats = m.run_dataflow(&sched.block, (padded / sched.unroll) as u64)?;
        total_cycles += stats.cycles();

        let out = m.memory().read_words(memmap::BASE_OUT, records);
        for (r, &(i, j)) in pairs.iter().enumerate() {
            a[i * N + j] = out[r].as_f32();
        }
        // Zero the eliminated column (it lives in `lower` now).
        for i in k + 1..N {
            a[i * N + k] = 0.0;
        }
    }
    for i in 0..N {
        lower[i * N + i] = 1.0;
    }

    // Verify: L · U == original (within f32 tolerance).
    let mut worst = 0.0f32;
    for i in 0..N {
        for j in 0..N {
            let mut sum = 0.0f32;
            for k in 0..N {
                sum += lower[i * N + k] * a[k * N + j];
            }
            worst = worst.max((sum - original[i * N + j]).abs());
        }
    }
    println!("{N}x{N} LU factorization: {} elimination passes, {total_cycles} cycles", N - 1);
    println!("max |L*U - A| = {worst:.3e}");
    assert!(worst < 1e-3, "factorization diverged");
    println!("factors verified by reconstruction");
    Ok(())
}
