//! Packet-encryption pipeline: the network/security domain workload.
//!
//! Streams a batch of "packets" through the three crypto kernels (MD5
//! digest chunks, Blowfish and AES encryption) on the machine
//! configuration the recommender picks for each, and reports throughput —
//! the scenario behind the paper's Table 6 crypto rows.
//!
//! ```sh
//! cargo run --release --example packet_encryption
//! ```

use dlp_core::{recommend, run_kernel, ExperimentParams, MachineConfig};
use dlp_kernels::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ExperimentParams::default();
    let kernels = suite();
    // A 1500-byte packet is ~24 MD5 chunks / ~188 Blowfish blocks /
    // ~94 AES blocks; we stream records (blocks) directly.
    let records = 256;

    println!("packet encryption pipeline ({records} blocks per kernel)\n");
    println!(
        "{:<10} {:>8} {:>12} {:>14} {:>10}",
        "kernel", "config", "cycles", "cycles/block", "verified"
    );
    for name in ["md5", "blowfish", "rijndael"] {
        let kernel = kernels.iter().find(|k| k.name() == name).expect("crypto kernel");
        let config = recommend(&kernel.ir().attributes()).config;
        let out = run_kernel(kernel.as_ref(), config, records, &params)?;
        println!(
            "{:<10} {:>8} {:>12} {:>14.1} {:>10}",
            name,
            config.to_string(),
            out.stats.cycles(),
            out.cycles_per_record(),
            out.verified()
        );
    }

    // Show what the same kernels cost without the L0 data store — the
    // §2.1.1 "tremendous cache bandwidth" effect.
    println!("\nsame kernels without the L0 lookup-table store (S-O):");
    for name in ["blowfish", "rijndael"] {
        let kernel = kernels.iter().find(|k| k.name() == name).expect("crypto kernel");
        let out = run_kernel(kernel.as_ref(), MachineConfig::SO, records, &params)?;
        println!(
            "{:<10} {:>8} {:>12} {:>14.1} {:>10}",
            name,
            "S-O",
            out.stats.cycles(),
            out.cycles_per_record(),
            out.verified()
        );
    }
    Ok(())
}
