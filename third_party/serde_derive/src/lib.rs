//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! item shapes this workspace uses: **non-generic** structs (unit, tuple,
//! named) and enums (unit, tuple/newtype, struct variants). Parsing walks
//! the raw `proc_macro::TokenStream` — the offline dependency set has no
//! `syn`/`quote` — and code generation renders plain source text that is
//! parsed back into a `TokenStream`.
//!
//! `Serialize` expands to a faithful visit of the serde data model (so the
//! workspace's hand-written `Serializer`s, e.g. `dlp_common::json`, see
//! exactly what real serde would send). `Deserialize` expands to the stub
//! crate's *marker* impl — nothing in the workspace deserializes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a struct body or enum variant payload.
enum Shape {
    /// No payload (`struct X;` / `X,`).
    Unit,
    /// Parenthesized fields (`struct X(A, B);` / `X(A)`), by count.
    Tuple(usize),
    /// Braced named fields, by name.
    Named(Vec<String>),
}

/// A parsed `#[derive]` input item.
enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<(String, Shape)> },
}

/// Derive `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => render_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derive the stub `serde::Deserialize` marker for a non-generic struct
/// or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let name = match &item {
                Item::Struct { name, .. } | Item::Enum { name, .. } => name,
            };
            format!("impl<'de> ::serde::de::Deserialize<'de> for {name} {{}}")
                .parse()
                .expect("generated impl parses")
        }
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().expect("error token parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);

    let kw = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub derive: generic type `{name}` is unsupported; \
             write the impl by hand or extend third_party/serde_derive"
        ));
    }

    match kw.as_str() {
        "struct" => {
            let shape = match toks.next() {
                None | Some(TokenTree::Punct(_)) => Shape::Unit, // `struct X;`
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item::Struct { name, shape })
        }
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            Ok(Item::Enum { name, variants: parse_variants(body)? })
        }
        other => Err(format!("serde stub derive: `{other}` items are unsupported")),
    }
}

type Toks = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skip leading `#[...]` attributes and a `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(toks: &mut Toks) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                // Attribute body: `[...]`.
                if matches!(toks.peek(), Some(TokenTree::Group(_))) {
                    toks.next();
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                // `pub(crate)` and friends.
                if matches!(
                    toks.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    toks.next();
                }
            }
            _ => return,
        }
    }
}

/// Skip tokens of one type (or expression) up to a top-level `,`, which is
/// consumed. Angle brackets are tracked manually: `<`/`>` are plain
/// `Punct`s in a `TokenStream`, so `BTreeMap<K, V>`'s inner comma must not
/// terminate the scan.
fn skip_until_comma(toks: &mut Toks) {
    let mut angle_depth = 0i32;
    while let Some(tok) = toks.peek() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    toks.next();
                    return;
                }
                _ => {}
            }
        }
        toks.next();
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut toks = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        match toks.next() {
            None => return Ok(fields),
            Some(TokenTree::Ident(i)) => fields.push(i.to_string()),
            other => return Err(format!("expected field name, got {other:?}")),
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, got {other:?}")),
        }
        skip_until_comma(&mut toks);
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut toks = body.into_iter().peekable();
    let mut count = 0;
    while toks.peek().is_some() {
        count += 1;
        skip_until_comma(&mut toks);
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, Shape)>, String> {
    let mut toks = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            None => return Ok(variants),
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                toks.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Optional `= discriminant`, then the separating comma.
        skip_until_comma(&mut toks);
        variants.push((name, shape));
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn render_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => (name, render_struct_body(name, shape)),
        Item::Enum { name, variants } => (name, render_enum_body(name, variants)),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn render_struct_body(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => format!("serializer.serialize_unit_struct({name:?})"),
        Shape::Tuple(1) => {
            format!("serializer.serialize_newtype_struct({name:?}, &self.0)")
        }
        Shape::Tuple(n) => {
            let mut s = String::from("use ::serde::ser::SerializeTupleStruct as _;\n");
            s += &format!("let mut st = serializer.serialize_tuple_struct({name:?}, {n})?;\n");
            for i in 0..*n {
                s += &format!("st.serialize_field(&self.{i})?;\n");
            }
            s + "st.end()"
        }
        Shape::Named(fields) => {
            let mut s = String::from("use ::serde::ser::SerializeStruct as _;\n");
            s += &format!(
                "let mut st = serializer.serialize_struct({name:?}, {})?;\n",
                fields.len()
            );
            for f in fields {
                s += &format!("st.serialize_field({f:?}, &self.{f})?;\n");
            }
            s + "st.end()"
        }
    }
}

fn render_enum_body(name: &str, variants: &[(String, Shape)]) -> String {
    let mut s = String::from("match self {\n");
    for (idx, (vname, shape)) in variants.iter().enumerate() {
        match shape {
            Shape::Unit => {
                s += &format!(
                    "{name}::{vname} => \
                     serializer.serialize_unit_variant({name:?}, {idx}, {vname:?}),\n"
                );
            }
            Shape::Tuple(1) => {
                s += &format!(
                    "{name}::{vname}(f0) => \
                     serializer.serialize_newtype_variant({name:?}, {idx}, {vname:?}, f0),\n"
                );
            }
            Shape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                s += &format!("{name}::{vname}({}) => {{\n", binds.join(", "));
                s += "use ::serde::ser::SerializeTupleVariant as _;\n";
                s += &format!(
                    "let mut tv = serializer\
                     .serialize_tuple_variant({name:?}, {idx}, {vname:?}, {n})?;\n"
                );
                for b in &binds {
                    s += &format!("tv.serialize_field({b})?;\n");
                }
                s += "tv.end()\n},\n";
            }
            Shape::Named(fields) => {
                s += &format!("{name}::{vname} {{ {} }} => {{\n", fields.join(", "));
                s += "use ::serde::ser::SerializeStructVariant as _;\n";
                s += &format!(
                    "let mut sv = serializer\
                     .serialize_struct_variant({name:?}, {idx}, {vname:?}, {})?;\n",
                    fields.len()
                );
                for f in fields {
                    s += &format!("sv.serialize_field({f:?}, {f})?;\n");
                }
                s += "sv.end()\n},\n";
            }
        }
    }
    s + "}"
}
