//! Serialization half of the serde data model.
//!
//! Mirrors real serde 1.x: a [`Serializer`] visits one value of the data
//! model; compound values hand out sub-serializers ([`SerializeSeq`],
//! [`SerializeStruct`], …) that receive elements and are closed with
//! `end()`.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;

/// Trait for serialization errors, as in real serde.
pub trait Error: Sized + std::error::Error {
    /// Build an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde data format.
pub trait Serialize {
    /// Serialize `self` with the given serializer.
    ///
    /// # Errors
    ///
    /// Propagates whatever error type the serializer reports.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// A format that can serialize any value of the serde data model.
#[allow(missing_docs)] // method-per-primitive; names are the documentation
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error reported on failure.
    type Error: Error;

    /// Sub-serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Sub-serializer returned by [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    /// Output produced on success.
    type Ok;
    /// Error reported on failure.
    type Error: Error;
    /// Serialize one sequence element.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Close the sequence.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer returned by [`Serializer::serialize_tuple`].
pub trait SerializeTuple {
    /// Output produced on success.
    type Ok;
    /// Error reported on failure.
    type Error: Error;
    /// Serialize one tuple element.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Close the tuple.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer returned by [`Serializer::serialize_tuple_struct`].
pub trait SerializeTupleStruct {
    /// Output produced on success.
    type Ok;
    /// Error reported on failure.
    type Error: Error;
    /// Serialize one field.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Close the tuple struct.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer returned by [`Serializer::serialize_tuple_variant`].
pub trait SerializeTupleVariant {
    /// Output produced on success.
    type Ok;
    /// Error reported on failure.
    type Error: Error;
    /// Serialize one field.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Close the variant.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer returned by [`Serializer::serialize_map`].
pub trait SerializeMap {
    /// Output produced on success.
    type Ok;
    /// Error reported on failure.
    type Error: Error;
    /// Serialize one map key.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serialize one map value.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Close the map.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer returned by [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    /// Output produced on success.
    type Ok;
    /// Error reported on failure.
    type Error: Error;
    /// Serialize one named field.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Close the struct.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sub-serializer returned by [`Serializer::serialize_struct_variant`].
pub trait SerializeStructVariant {
    /// Output produced on success.
    type Ok;
    /// Error reported on failure.
    type Error: Error;
    /// Serialize one named field.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Close the variant.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types used across the workspace.
// ---------------------------------------------------------------------------

macro_rules! primitive_impl {
    ($ty:ty, $method:ident) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    };
}

primitive_impl!(bool, serialize_bool);
primitive_impl!(i8, serialize_i8);
primitive_impl!(i16, serialize_i16);
primitive_impl!(i32, serialize_i32);
primitive_impl!(i64, serialize_i64);
primitive_impl!(u8, serialize_u8);
primitive_impl!(u16, serialize_u16);
primitive_impl!(u32, serialize_u32);
primitive_impl!(u64, serialize_u64);
primitive_impl!(f32, serialize_f32);
primitive_impl!(f64, serialize_f64);
primitive_impl!(char, serialize_char);

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self[..].serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self[..].serialize(serializer)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_key(k)?;
            map.serialize_value(v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_key(k)?;
            map.serialize_value(v)?;
        }
        map.end()
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

macro_rules! tuple_impl {
    ($($n:tt $name:ident)+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut t = serializer.serialize_tuple(count!($($name)+))?;
                $(t.serialize_element(&self.$n)?;)+
                t.end()
            }
        }
    };
}

macro_rules! count {
    () => { 0 };
    ($head:ident $($tail:ident)*) => { 1 + count!($($tail)*) };
}

tuple_impl!(0 A);
tuple_impl!(0 A 1 B);
tuple_impl!(0 A 1 B 2 C);
tuple_impl!(0 A 1 B 2 C 3 D);
tuple_impl!(0 A 1 B 2 C 3 D 4 E);
tuple_impl!(0 A 1 B 2 C 3 D 4 E 5 F);
