//! Offline stand-in for [serde](https://serde.rs).
//!
//! The build environment for this workspace has no crates.io access, so
//! this path crate provides the subset of serde's API the workspace
//! actually exercises:
//!
//! * the [`ser`] half of the data model — the [`Serialize`] trait, the
//!   full [`Serializer`] trait family (sequence/map/struct/variant
//!   sub-serializers), and `Serialize` impls for the std types that
//!   appear in workspace reports (integers, floats, strings, `Option`,
//!   `Vec`, slices, tuples, `BTreeMap`, `HashMap`);
//! * a deliberately minimal [`de`] half: [`Deserialize`] is a *marker*
//!   trait. Nothing in the workspace deserializes at run time (there is
//!   no `serde_json` here; JSON is emitted by `dlp_common::json`), so
//!   the derive only has to satisfy the type system.
//! * the `derive` feature re-exporting `#[derive(Serialize, Deserialize)]`
//!   from the companion `serde_derive` stub.
//!
//! The trait signatures mirror real serde 1.x so that code written
//! against this stub (custom `Serializer` impls in particular) compiles
//! unchanged against the real crate when a network is available.

pub mod de;
pub mod ser;

pub use de::Deserialize;
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
