//! Deserialization half — deliberately a marker.
//!
//! Nothing in this workspace deserializes at run time (there is no
//! `serde_json` in the offline dependency set; JSON goes out through
//! `dlp_common::json`, never back in). The derive macro therefore only
//! needs `Deserialize` to exist so that `#[derive(Deserialize)]` sites
//! keep compiling. If real deserialization is ever needed, swap this
//! stub for the real serde crate.

use std::collections::{BTreeMap, HashMap};

/// Marker for types that real serde could deserialize.
///
/// Implemented by `#[derive(Deserialize)]` (via the `serde_derive` stub)
/// and for the std types the workspace's derived types contain.
pub trait Deserialize<'de>: Sized {}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

macro_rules! marker_impl {
    ($($ty:ty),+ $(,)?) => {
        $(impl<'de> Deserialize<'de> for $ty {})+
    };
}

marker_impl!(
    bool, char, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64, String, ()
);

impl<'de> Deserialize<'de> for &'de str {}
impl<'de: 'a, 'a> Deserialize<'de> for &'a [u8] {}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>, H> Deserialize<'de> for HashMap<K, V, H> {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}

macro_rules! tuple_marker {
    ($($name:ident)+) => {
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {}
    };
}

tuple_marker!(A);
tuple_marker!(A B);
tuple_marker!(A B C);
tuple_marker!(A B C D);
tuple_marker!(A B C D E);
tuple_marker!(A B C D E F);
