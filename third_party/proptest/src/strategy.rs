//! Value-generation strategies.
//!
//! A [`Strategy`] here is simply "something that can sample a value from
//! a deterministic RNG" — the stub drops real proptest's value *trees*
//! (and with them shrinking), which the workspace's tests do not rely
//! on: every failure message already prints the concrete inputs.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// Generates values of type `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    /// Type-erases this strategy for heterogeneous composition
    /// (e.g. [`Union`] / `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.sample(rng))
    }
}

/// A reference-counted type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Picks uniformly among several strategies (the engine of
/// `prop_oneof!`). Real proptest supports weights; the workspace only
/// uses the unweighted form.
#[derive(Clone)]
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

// --- Ranges: `lo..hi` used directly as a strategy -----------------------

macro_rules! int_range_strategy {
    ($($ty:ty),+ $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $ty
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),+ $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                // 53 random bits → uniform fraction in [0, 1).
                let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (self.start as f64 + frac * (self.end as f64 - self.start as f64)) as $ty
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

// --- `any::<T>()` -------------------------------------------------------

/// Types with a canonical "whole domain" strategy (the stub's analogue
/// of proptest's `Arbitrary`).
pub trait ArbitraryValue {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),+ $(,)?) => {$(
        impl ArbitraryValue for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Full bit-pattern domain, NaNs and infinities included.
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Any<T> {}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the full domain of `T` (`any::<u64>()` etc.).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// --- Tuples of strategies -----------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = (-1000i64..1000).sample(&mut rng);
            assert!((-1000..1000).contains(&v));
            let f = (0.01f64..1000.0).sample(&mut rng);
            assert!((0.01..1000.0).contains(&f));
        }
    }

    #[test]
    fn union_uses_every_branch() {
        let mut rng = TestRng::for_test("union_uses_every_branch");
        let u = Union::new(vec![
            (0u8..1).prop_map(|_| 'a').boxed(),
            (0u8..1).prop_map(|_| 'b').boxed(),
        ]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(u.sample(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = TestRng::for_test("same-name");
        let mut b = TestRng::for_test("same-name");
        for _ in 0..10 {
            assert_eq!((0u64..u64::MAX).sample(&mut a), (0u64..u64::MAX).sample(&mut b));
        }
    }
}
