//! Deterministic test driving: config, RNG, and case-failure type.

use std::fmt;

/// Per-test configuration. Only `cases` is honoured by the stub; the
/// other knobs real proptest exposes (shrink iterations, persistence
/// paths, fork) have no equivalent here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each `#[test]` inside `proptest!` runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property case, produced by the `prop_assert!` family.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG: splitmix64 seeded from an FNV-1a hash of the
/// test's path. The same test therefore sees the same case sequence on
/// every run and every machine — the stub's replacement for proptest's
/// failure-persistence files.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test identifier (typically `module_path!() + name`).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}
