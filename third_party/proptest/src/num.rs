//! Numeric full-domain strategies (`proptest::num::f32::ANY`, …).
//!
//! `ANY` spans every bit pattern — NaNs, infinities, and subnormals
//! included — matching real proptest closely enough for the workspace's
//! bit-exact `Value` round-trip properties.

/// `f32` strategies.
pub mod f32 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyF32;

    impl Strategy for AnyF32 {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u32())
        }
    }

    /// The full `f32` bit-pattern domain.
    pub const ANY: AnyF32 = AnyF32;
}

/// `f64` strategies.
pub mod f64 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyF64;

    impl Strategy for AnyF64 {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    /// The full `f64` bit-pattern domain.
    pub const ANY: AnyF64 = AnyF64;
}
