//! Offline stand-in for [proptest](https://docs.rs/proptest).
//!
//! The build environment has no crates.io access, so this path crate
//! re-implements the slice of proptest the workspace's tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`/`boxed`, range strategies
//!   (`0u8..32`), tuple strategies, [`strategy::any`], and
//!   [`strategy::Union`];
//! * [`collection::vec`] and the [`num`] float-domain constants;
//! * the [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/
//!   [`prop_assert_ne!`]/[`prop_oneof!`] macros;
//! * [`test_runner::ProptestConfig`] (only `cases` is honoured).
//!
//! Two deliberate simplifications relative to real proptest:
//!
//! 1. **No shrinking.** A failing case panics with the fully rendered
//!    inputs instead of a minimized counterexample.
//! 2. **Deterministic seeding.** Each test's RNG is seeded from its
//!    module path and name, so runs are reproducible without
//!    `proptest-regressions` files — and so CI cannot flake.

pub mod collection;
pub mod num;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]   // optional
///     #[test]
///     fn name(arg in strategy, arg2 in strategy2) { body }
///     ...
/// }
/// ```
///
/// Each function runs `config.cases` times with fresh samples; the body
/// may use the `prop_assert*` family, which aborts just that case with
/// a message (the harness then panics, printing the offending inputs).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal recursive expansion of [`proptest!`] — one `#[test]` fn per
/// step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let rendered = format!("{:#?}", ($(&$arg,)+));
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case}/{} failed: {e}\ninputs: {rendered}",
                        config.cases,
                    );
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Fails the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Picks uniformly among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_grammar_smoke(
            a in any::<u64>(),
            b in 0u8..8,
            xs in crate::collection::vec(0i64..10, 1..5),
        ) {
            prop_assert!(b < 8);
            prop_assert_eq!(a, a, "context {}", b);
            prop_assert_ne!(xs.len(), 0);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u8..4).prop_map(i64::from),
            -5i64..0,
        ]) {
            prop_assert!((-5..4).contains(&v));
        }
    }
}
