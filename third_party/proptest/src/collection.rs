//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy producing `Vec`s with lengths drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.len.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Vectors of `element` with a length in `len` (half-open, like real
/// proptest's `SizeRange` from a `Range`).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}
