//! Offline stand-in for [criterion](https://docs.rs/criterion).
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — with a drastically simpler engine: each
//! benchmark runs `sample_size` timed batches and prints the mean
//! time per iteration. There is no warm-up, outlier analysis, or HTML
//! report; the numbers are indicative, the *compilability and
//! runnability* of the benches is the point.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors real criterion's CLI-configured constructor; the stub
    /// accepts and ignores the command line.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 20 }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group_name = String::from("ungrouped");
        run_one(&group_name, name, 20, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&self.name, &id.to_string(), self.sample_size, |b| f(b));
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&self.name, &id.to_string(), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (reporting is already done incrementally).
    pub fn finish(self) {}
}

fn run_one<F>(group: &str, bench: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { total: Duration::ZERO, iters: 0 };
    for _ in 0..samples {
        f(&mut bencher);
    }
    let mean_ns = if bencher.iters == 0 {
        0.0
    } else {
        bencher.total.as_nanos() as f64 / bencher.iters as f64
    };
    println!("bench {group}/{bench}: {mean_ns:.0} ns/iter ({} iters)", bencher.iters);
}

/// Passed to benchmark closures; accumulates timed iterations.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.total += start.elapsed();
        self.iters += 1;
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
