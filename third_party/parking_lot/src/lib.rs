//! Offline stand-in for [parking_lot](https://docs.rs/parking_lot).
//!
//! Wraps the std synchronization primitives behind parking_lot's
//! poison-free API: `lock()` returns a guard directly rather than a
//! `Result`, recovering the data if a previous holder panicked. The
//! performance characteristics of real parking_lot (adaptive spinning,
//! tiny footprint) are not reproduced — std's primitives are adequate
//! for the workspace's coarse-grained result aggregation.

use std::sync::TryLockError;

/// Guard types re-use std's; parking_lot's extra guard API (mapping,
/// fair unlock) is not provided.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons: if a
    /// previous holder panicked the data is handed over as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
