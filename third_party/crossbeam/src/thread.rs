//! Scoped threads with crossbeam's API shape, over `std::thread::scope`.
//!
//! Differences from real crossbeam are confined to diagnostics: a panic
//! in the *main* scope closure is reported as `Err` (crossbeam resumes
//! the unwind), which is indistinguishable to callers that `.expect()`
//! the result — the workspace's only usage pattern.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Join/scope result: `Err` carries the payload of a panicked thread.
pub type Result<T> = std::thread::Result<T>;

/// A scope for spawning threads that may borrow from the caller's stack.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Creates a scope, runs `f` in it, and joins every spawned thread
/// before returning. Returns `Err` if any unjoined thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again so
    /// workers can themselves spawn (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Handle to a scoped thread; dropping it detaches (the scope still
/// joins the thread on exit).
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result or the
    /// payload of its panic.
    pub fn join(self) -> Result<T> {
        self.inner.join()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3, 4];
        let total = super::scope(|s| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| s.spawn(move |_| x * 10))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .expect("worker threads join");
        assert_eq!(total, 100);
    }

    #[test]
    fn panicked_child_surfaces_as_err() {
        let res = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }
}
