//! Offline stand-in for [crossbeam](https://docs.rs/crossbeam).
//!
//! Provides the two pieces of crossbeam the workspace uses:
//!
//! * [`scope`] — scoped threads with crossbeam's closure signature
//!   (`|scope| { scope.spawn(|_| ...) }`) and `Result`-returning join
//!   semantics, implemented over `std::thread::scope`;
//! * [`deque`] — the `Injector`/`Worker`/`Stealer` work-stealing deque
//!   API used by the sweep engine's worker pool, implemented over a
//!   mutex-protected `VecDeque` (correct and contention-adequate for
//!   the tens-of-workers scale this workspace runs at).
//!
//! Signatures mirror real crossbeam 0.8 so callers compile unchanged
//! against the real crate when a network is available.

pub mod deque;
pub mod thread;

pub use thread::scope;

/// Re-export mirroring `crossbeam::utils` for cache-line padding users.
pub mod utils {
    /// Pads and aligns a value to reduce false sharing. The stub keeps
    /// the API but not the alignment guarantee — contention here is a
    /// performance concern, never a correctness one.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value`.
        pub const fn new(value: T) -> Self {
            Self { value }
        }
        /// Unwraps the value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}
