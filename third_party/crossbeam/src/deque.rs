//! Work-stealing deque with crossbeam's `Injector`/`Worker`/`Stealer`
//! API, implemented over mutex-protected `VecDeque`s.
//!
//! Real crossbeam uses lock-free Chase–Lev deques; this stub trades that
//! for simplicity. At the workspace's scale (a handful of workers, each
//! task simulating thousands of machine cycles) queue contention is
//! noise, and the mutex version is trivially correct — `Steal::Retry`
//! is never produced because operations never race internally.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The source was empty.
    Empty,
    /// A task was stolen.
    Success(T),
    /// The attempt lost a race and should be retried. (Never produced
    /// by this stub; kept so `match` arms compile unchanged.)
    Retry,
}

impl<T> Steal<T> {
    /// Returns the stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// True if the source was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// True if a task was stolen.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// True if the attempt should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
}

fn locked<T>(queue: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    queue.lock().unwrap_or_else(|e| e.into_inner())
}

/// A FIFO queue for submitting tasks to a pool from any thread.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Self { queue: Mutex::new(VecDeque::new()) }
    }

    /// Pushes a task onto the back of the queue.
    pub fn push(&self, task: T) {
        locked(&self.queue).push_back(task);
    }

    /// Steals a task from the front of the queue.
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steals a batch into `dest`, returning the first stolen task.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = locked(&self.queue);
        let first = match q.pop_front() {
            Some(t) => t,
            None => return Steal::Empty,
        };
        // Mirror crossbeam's "take about half" batching heuristic.
        let take = q.len() / 2;
        let mut dq = locked(&dest.queue);
        for _ in 0..take {
            match q.pop_front() {
                Some(t) => dq.push_back(t),
                None => break,
            }
        }
        Steal::Success(first)
    }

    /// True if the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        locked(&self.queue).len()
    }
}

/// Order in which a worker pops its own tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    Fifo,
    Lifo,
}

/// A per-thread task queue; other threads steal from it via [`Stealer`].
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
    flavor: Flavor,
}

impl<T> Worker<T> {
    /// Creates a worker whose `pop` takes the oldest task first.
    pub fn new_fifo() -> Self {
        Self { queue: Arc::new(Mutex::new(VecDeque::new())), flavor: Flavor::Fifo }
    }

    /// Creates a worker whose `pop` takes the newest task first.
    pub fn new_lifo() -> Self {
        Self { queue: Arc::new(Mutex::new(VecDeque::new())), flavor: Flavor::Lifo }
    }

    /// Pushes a task onto the queue.
    pub fn push(&self, task: T) {
        locked(&self.queue).push_back(task);
    }

    /// Pops a task in this worker's flavor order.
    pub fn pop(&self) -> Option<T> {
        let mut q = locked(&self.queue);
        match self.flavor {
            Flavor::Fifo => q.pop_front(),
            Flavor::Lifo => q.pop_back(),
        }
    }

    /// Creates a stealer handle that other threads may clone and use.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { queue: Arc::clone(&self.queue) }
    }

    /// True if the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        locked(&self.queue).len()
    }
}

/// Steals tasks from the front of a [`Worker`]'s queue.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self { queue: Arc::clone(&self.queue) }
    }
}

impl<T> Stealer<T> {
    /// Steals the oldest task from the worker.
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// True if the worker's queue was observed empty.
    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push(1);
        inj.push(2);
        assert_eq!(inj.steal(), Steal::Success(1));
        assert_eq!(inj.steal(), Steal::Success(2));
        assert_eq!(inj.steal(), Steal::Empty);
    }

    #[test]
    fn worker_flavors() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        let s = w.stealer();
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(3));
    }

    #[test]
    fn batch_steal_moves_about_half() {
        let inj = Injector::new();
        for i in 0..9 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert_eq!(w.len(), 4);
        assert_eq!(inj.len(), 4);
    }
}
