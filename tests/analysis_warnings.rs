//! Mutation tests for the semantic static analyzer: inject one defect
//! into an otherwise-clean kernel and require the *exact* stable
//! `W*` code to surface through the public pipeline. These pin the
//! taxonomy — a renamed or silently dropped code fails here, not in a
//! downstream consumer parsing `analyze-grid` output.

use dlp_common::{wcode, DlpError, Value};
use dlp_core::{prepare_kernel, ExperimentParams, MachineConfig};
use dlp_kernel_ir::{ControlClass, Domain, IrBuilder, KernelIr};
use dlp_kernels::{DlpKernel, MimdTarget, OutputKind, Workload};
use trips_isa::{MemSpace, MimdAsm, MimdProgram, Opcode};
use trips_sched::verify::analyze;

/// Which defect the mutant carries.
#[derive(Clone, Copy)]
enum Mutation {
    /// A live computation plus one instruction nothing consumes.
    DeadOperand,
    /// A table read indexed by a raw, unbounded input word.
    UnprovableIndex,
    /// No defect — the control arm.
    None,
}

/// A minimal kernel whose IR carries exactly one injected defect.
struct Mutant(Mutation);

impl DlpKernel for Mutant {
    fn name(&self) -> &'static str {
        "mutant"
    }

    fn description(&self) -> &'static str {
        "analyzer mutation probe"
    }

    fn ir(&self) -> KernelIr {
        let mut b = IrBuilder::new("mutant", Domain::Network, 1, 1);
        let x = b.input(0);
        let one = b.imm(Value::from_u64(1));
        let live = b.bin(Opcode::Add, x, one);
        let out = match self.0 {
            Mutation::DeadOperand => {
                let _dead = b.bin(Opcode::Mul, x, one);
                live
            }
            Mutation::UnprovableIndex => {
                let t = b.table("wild", (0..16).map(Value::from_u64).collect());
                b.table_read(t, live)
            }
            Mutation::None => live,
        };
        b.output(0, out);
        b.finish(ControlClass::Straight).expect("mutant IR is well-formed")
    }

    fn mimd_program(&self, _target: MimdTarget) -> Result<MimdProgram, DlpError> {
        let mut asm = MimdAsm::new();
        asm.halt();
        asm.assemble()
    }

    fn workload(&self, records: usize, _seed: u64) -> Workload {
        let input_words = vec![Value::ZERO; records];
        let expected = vec![Value::from_u64(1); records];
        Workload { records, input_words, tex_words: Vec::new(), expected }
    }

    fn output_kind(&self) -> OutputKind {
        OutputKind::ExactBits
    }
}

/// Prepare a mutant for a dataflow configuration and return the codes
/// the analyzer attached to the plan.
fn codes(mutation: Mutation) -> Vec<&'static str> {
    let params = ExperimentParams::default();
    let prepared =
        prepare_kernel(&Mutant(mutation), MachineConfig::S.mechanisms(), 16, &params)
            .expect("mutant lowers cleanly; warnings never reject");
    prepared.analysis().warnings.iter().map(|w| w.code).collect()
}

#[test]
fn dead_operand_mutation_pins_its_code() {
    let control = codes(Mutation::None);
    assert!(!control.contains(&"W0101-dead-node"), "control arm is clean: {control:?}");
    let mutated = codes(Mutation::DeadOperand);
    assert!(
        mutated.contains(&"W0101-dead-node"),
        "dead operand must surface as W0101 through prepare_kernel, got {mutated:?}"
    );
    assert_eq!(wcode::DEAD_NODE, "W0101-dead-node", "published code is frozen");
}

#[test]
fn unprovable_index_mutation_pins_its_code() {
    let control = codes(Mutation::None);
    assert!(!control.contains(&"W0102-unprovable-table-index"), "{control:?}");
    let mutated = codes(Mutation::UnprovableIndex);
    assert!(
        mutated.contains(&"W0102-unprovable-table-index"),
        "unbounded table index must surface as W0102, got {mutated:?}"
    );
    assert_eq!(wcode::UNPROVABLE_TABLE_INDEX, "W0102-unprovable-table-index");
}

#[test]
fn loop_imbalanced_channel_mutation_pins_its_code() {
    // Rank 0 sends once per loop iteration; rank 1 receives once per
    // iteration — balanced, the control arm.
    let balanced = two_rank_partition(true);
    let codes: Vec<_> =
        analyze::analyze_mimd_channels(&balanced).iter().map(|w| w.code).collect();
    assert!(!codes.contains(&"W0201-loop-channel-imbalance"), "{codes:?}");

    // Mutation: rank 1 hoists its recv out of the loop. Whole-program
    // totals still balance (one static send, one static recv), so the
    // legality verifier's V0213 cannot see it — only the per-loop pass.
    let drifting = two_rank_partition(false);
    let warnings = analyze::analyze_mimd_channels(&drifting);
    let codes: Vec<_> = warnings.iter().map(|w| w.code).collect();
    assert_eq!(
        codes,
        vec!["W0201-loop-channel-imbalance"],
        "exactly the loop-imbalance code, nothing else"
    );
    assert_eq!(wcode::LOOP_CHANNEL_IMBALANCE, "W0201-loop-channel-imbalance");
}

/// A two-rank producer/consumer pair; `recv_in_loop` controls whether
/// the consumer drains inside the loop (legal) or after it (drifting).
fn two_rank_partition(recv_in_loop: bool) -> Vec<MimdProgram> {
    let mut p0 = MimdAsm::new();
    p0.li(1, 3);
    p0.label("top");
    p0.send(1, 1);
    p0.alui(Opcode::Sub, 1, 1, 1);
    p0.bnz(1, "top");
    p0.halt();

    let mut p1 = MimdAsm::new();
    p1.li(1, 3);
    p1.label("top");
    if recv_in_loop {
        p1.recv(2, 0);
    } else {
        p1.alui(Opcode::Add, 2, 2, 0); // same shape, no drain
    }
    p1.alui(Opcode::Sub, 1, 1, 1);
    p1.bnz(1, "top");
    if !recv_in_loop {
        p1.recv(2, 0);
    }
    p1.st(MemSpace::Smc, 2, 0, 2);
    p1.halt();

    vec![p0.assemble().unwrap(), p1.assemble().unwrap()]
}
