//! Tier-1 certification of the static cost model: for every cell of
//! the paper's experiment grid (13 performance-suite kernels × 6
//! machine configurations), the analyzer's lower bound on simulated
//! cycles must hold against the engine's measurement — at one worker
//! and at two, since the bound must survive the sweep's parallel
//! execution paths (batched lanes, schedule-cache reuse) bit-for-bit.
//!
//! The model ([`dlp-verify`'s `analyze::cost`]) mirrors only the
//! monotone subset of the simulator's timing rules, so any engine
//! change that legitimately speeds a cell past its bound means the
//! model's premises broke — fix the model, don't relax this test.

use std::collections::HashMap;

use dlp_core::{prepare_kernel, ExperimentParams, MachineConfig, Sweep};
use dlp_kernels::suite;

const RECORDS: usize = 64;

/// Bounds for every grid cell, keyed by `(kernel, config name)`.
fn grid_bounds(params: &ExperimentParams) -> HashMap<(String, String), u64> {
    let kernels: Vec<_> = suite().into_iter().filter(|k| k.in_perf_suite()).collect();
    assert_eq!(kernels.len(), 13, "the paper grid has 13 performance kernels");
    let mut bounds = HashMap::new();
    for k in &kernels {
        for config in MachineConfig::ALL {
            let prepared = prepare_kernel(k.as_ref(), config.mechanisms(), RECORDS, params)
                .unwrap_or_else(|e| panic!("{} on {config}: {e}", k.name()));
            let bound = prepared.bound_cycles(RECORDS);
            assert!(bound > 0, "{} on {config}: degenerate zero bound", k.name());
            bounds.insert((k.name().to_string(), config.to_string()), bound);
        }
    }
    bounds
}

#[test]
fn static_bound_never_exceeds_measured_cycles_across_the_grid() {
    let params = ExperimentParams::default();
    let bounds = grid_bounds(&params);
    assert_eq!(bounds.len(), 78);

    for threads in [1, 2] {
        let mut sweep = Sweep::with_threads(threads);
        let ids = sweep.add_perf_suite();
        for &id in &ids {
            for config in MachineConfig::ALL {
                sweep.push_config(id, config, RECORDS, &params);
            }
        }
        let report = sweep.run();
        report.ensure_verified().expect("grid verifies");
        assert_eq!(report.cells.len(), 78);
        for cell in &report.cells {
            let stats = cell
                .outcome
                .stats()
                .unwrap_or_else(|| panic!("{} on {}: did not run", cell.kernel, cell.config));
            let bound = bounds[&(cell.kernel.clone(), cell.config.clone())];
            assert!(
                bound <= stats.cycles(),
                "{} on {} at {threads} workers: static bound {bound} exceeds measured {} \
                 cycles — the cost model is unsound for this cell",
                cell.kernel,
                cell.config,
                stats.cycles()
            );
        }
    }
}

/// The bound is not just sound but *useful*: across the grid it must
/// capture a meaningful fraction of the measured cycles, or LPT
/// ordering would be sorting noise. This pins a conservative floor
/// (the grid currently sits far above it).
#[test]
fn static_bound_is_a_meaningful_fraction_of_measured_cycles() {
    let params = ExperimentParams::default();
    let bounds = grid_bounds(&params);
    let mut sweep = Sweep::with_threads(1);
    let ids = sweep.add_perf_suite();
    for &id in &ids {
        for config in MachineConfig::ALL {
            sweep.push_config(id, config, RECORDS, &params);
        }
    }
    let report = sweep.run();
    let (mut bound_total, mut measured_total) = (0u64, 0u64);
    for cell in &report.cells {
        let stats = cell.outcome.stats().expect("cell ran");
        bound_total += bounds[&(cell.kernel.clone(), cell.config.clone())];
        measured_total += stats.cycles();
    }
    assert!(
        bound_total * 10 >= measured_total,
        "bounds sum to {bound_total} cycles vs {measured_total} measured: \
         under 10% coverage makes the model useless for scheduling"
    );
}
