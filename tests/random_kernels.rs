//! Property-based end-to-end fuzzing: random kernel DAGs must compute
//! bit-identical results on every dataflow machine configuration.
//!
//! This closes the loop between three independently implemented layers:
//! the IR evaluator (`dlp-kernel-ir`), the scheduler's lowering/placement
//! (`trips-sched`), and the simulator's two execution regimes
//! (`trips-sim`). Any disagreement — a mis-wired port, a lost operand on
//! revitalization, an address-chain bug, a frame-pipelining race — shows
//! up as a concrete counterexample kernel.

use dlp_common::{GridShape, TimingParams, Value};
use dlp_kernel_ir::{ControlClass, Domain, IrBuilder, IrRef, KernelIr};
use proptest::prelude::*;
use trips_isa::Opcode;
use trips_sched::{schedule_dataflow, LayoutPlan, ScheduleOptions, TargetConfig};
use trips_sim::{Machine, MechanismSet};

/// A randomly generated integer-op kernel description.
#[derive(Debug, Clone)]
struct RandKernel {
    in_words: u16,
    n_consts: usize,
    has_table: bool,
    /// (opcode selector, operand selector a, operand selector b).
    ops: Vec<(u8, u16, u16)>,
    out_words: u16,
}

fn rand_kernel_strategy() -> impl Strategy<Value = RandKernel> {
    (
        1u16..5,
        0usize..4,
        any::<bool>(),
        proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 4..32),
        1u16..4,
    )
        .prop_map(|(in_words, n_consts, has_table, ops, out_words)| RandKernel {
            in_words,
            n_consts,
            has_table,
            ops,
            out_words,
        })
}

/// Materialize the description into a valid kernel IR (always succeeds:
/// selectors are taken modulo the available choices).
fn build(desc: &RandKernel) -> KernelIr {
    let mut b = IrBuilder::new("fuzz", Domain::Network, desc.in_words, desc.out_words);
    let mut pool: Vec<IrRef> = Vec::new();
    for w in 0..desc.in_words {
        pool.push(b.input(w));
    }
    for c in 0..desc.n_consts {
        pool.push(b.constant(format!("c{c}"), Value::from_u64(0x9E37 + c as u64 * 77)));
    }
    let table = if desc.has_table {
        Some(b.table("t", (0..16u64).map(|i| Value::from_u64(i * 0x1234 + 7)).collect()))
    } else {
        None
    };
    let mask = b.imm(Value::from_u64(0xF));
    pool.push(mask);

    const BIN: [Opcode; 8] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Add32,
        Opcode::Tltu,
    ];
    for &(sel, sa, sb) in &desc.ops {
        let a = pool[sa as usize % pool.len()];
        let bb = pool[sb as usize % pool.len()];
        let r = match sel % 11 {
            0..=7 => b.bin(BIN[(sel % 8) as usize], a, bb),
            8 => b.un(Opcode::Not, a),
            9 => {
                // Select: predicate from one operand's low bit.
                let one = b.imm(Value::from_u64(1));
                let p = b.bin(Opcode::And, a, one);
                b.sel(p, a, bb)
            }
            _ => match table {
                Some(t) => {
                    // Bounded table index.
                    let idx = b.bin(Opcode::And, a, mask);
                    b.table_read(t, idx)
                }
                None => b.bin(Opcode::Xor, a, bb),
            },
        };
        pool.push(r);
    }
    // Outputs: the last distinct values in the pool (guaranteed distinct
    // nodes because each op pushes a fresh ref).
    for w in 0..desc.out_words {
        let r = pool[pool.len() - 1 - w as usize];
        b.output(w, r);
    }
    b.finish(ControlClass::Straight).expect("generated kernel is well-formed")
}

fn run_config(ir: &KernelIr, mech: MechanismSet, records: usize) -> Vec<Value> {
    let grid = GridShape::new(8, 8);
    let timing = TimingParams::default();
    let layout = LayoutPlan { base_in: 0, base_out: 50_000, table_base: 60_000 };
    let target = TargetConfig {
        smc: mech.smc,
        l0_data_store: mech.l0_data_store,
        operand_revitalization: mech.operand_revitalization,
        dlp_unroll: mech.inst_revitalization,
    };
    let sched = schedule_dataflow(
        ir,
        grid,
        &timing,
        target,
        layout,
        ScheduleOptions { max_unroll: Some(records), ..ScheduleOptions::default() },
    )
    .expect("schedules");
    let padded = records.div_ceil(sched.unroll) * sched.unroll;

    let mut m = Machine::new(grid, timing, mech);
    let in_w = ir.record_in_words() as usize;
    for r in 0..padded {
        for w in 0..in_w {
            // Deterministic pseudo-random inputs.
            let v = (r as u64 * 0x9E37_79B9 + w as u64 * 0x85EB_CA6B) ^ 0xC2B2_AE35;
            m.memory_mut().write((r * in_w + w) as u64, Value::from_u64(v));
        }
    }
    if mech.smc {
        m.stage_smc(0..(padded * in_w) as u64).expect("stages");
    }
    if !sched.table_image.is_empty() {
        if sched.tables_in_l0 {
            m.load_l0_table(&sched.table_image).expect("l0 loads");
        } else {
            m.memory_mut().write_words(60_000, &sched.table_image);
        }
    }
    for (reg, v) in &sched.const_regs {
        m.set_reg(*reg, *v);
    }
    m.run_dataflow(&sched.block, (padded / sched.unroll) as u64).expect("runs");
    m.memory().read_words(50_000, records * ir.record_out_words() as usize)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_kernels_agree_across_configurations(desc in rand_kernel_strategy()) {
        let ir = build(&desc);
        ir.validate().expect("valid");
        let records = 10usize;
        let in_w = ir.record_in_words() as usize;
        let out_w = ir.record_out_words() as usize;

        // Oracle: the IR evaluator on the same inputs.
        let mut expected = Vec::new();
        for r in 0..records {
            let rec: Vec<Value> = (0..in_w)
                .map(|w| {
                    let v = (r as u64 * 0x9E37_79B9 + w as u64 * 0x85EB_CA6B) ^ 0xC2B2_AE35;
                    Value::from_u64(v)
                })
                .collect();
            expected.extend(ir.eval_record(&rec, &|_| Value::ZERO));
        }

        for mech in [
            MechanismSet::baseline(),
            MechanismSet::simd(),
            MechanismSet::simd_operand(),
            MechanismSet::simd_operand_l0(),
        ] {
            let got = run_config(&ir, mech, records);
            prop_assert_eq!(got.len(), records * out_w);
            for (i, (g, e)) in got.iter().zip(expected.iter()).enumerate() {
                prop_assert_eq!(
                    g.bits(),
                    e.bits(),
                    "config {} diverged at output word {} (kernel {:?})",
                    mech,
                    i,
                    desc
                );
            }
        }
    }
}
