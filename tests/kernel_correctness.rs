//! Integration: every benchmark kernel computes reference-identical
//! results on every machine configuration it supports.
//!
//! This is the workspace's backbone correctness claim: the simulator is
//! functional as well as timed, so a kernel scheduled onto the baseline,
//! the S / S-O / S-O-D dataflow machines, or the M / M-D MIMD machines
//! must produce the same answers as the pure-Rust reference
//! implementation (bit-exact for the crypto kernels, tolerance-checked
//! for floating point).

use dlp_core::{run_kernel, ExperimentParams, MachineConfig};
use dlp_kernels::suite;

/// Small record counts keep the full 13-kernel × 6-config sweep fast in
/// debug builds while still exercising multiple revitalizations/unrolls.
const RECORDS: usize = 24;

fn sweep(configs: &[MachineConfig]) {
    let params = ExperimentParams::default();
    for kernel in suite() {
        if !kernel.in_perf_suite() {
            continue;
        }
        for &config in configs {
            let out = run_kernel(kernel.as_ref(), config, RECORDS, &params)
                .unwrap_or_else(|e| panic!("{} on {config}: {e}", kernel.name()));
            assert!(
                out.verified(),
                "{} on {config}: first mismatch at output word {:?}",
                kernel.name(),
                out.mismatch
            );
            assert!(out.stats.cycles() > 0, "{} on {config}: no time elapsed", kernel.name());
            assert_eq!(out.records, RECORDS);
        }
    }
}

#[test]
fn all_kernels_verify_on_baseline() {
    sweep(&[MachineConfig::Baseline]);
}

#[test]
fn all_kernels_verify_on_simd_configs() {
    sweep(&[MachineConfig::S, MachineConfig::SO, MachineConfig::SOD]);
}

#[test]
fn all_kernels_verify_on_mimd_configs() {
    sweep(&[MachineConfig::M, MachineConfig::MD]);
}

#[test]
fn anisotropic_is_characterized_but_excluded() {
    // The paper's footnote 1: anisotropic-filter appears in Table 2 but
    // not in the performance tables. Its IR must still validate and agree
    // with its reference (the library-level tests cover that); here we
    // assert the exclusion flag that the experiment drivers honor.
    let k = suite()
        .into_iter()
        .find(|k| k.name() == "anisotropic-filter")
        .expect("kernel exists");
    assert!(!k.in_perf_suite());
    assert!(k.ir().validate().is_ok());
}
