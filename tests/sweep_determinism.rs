//! Tier-1 guarantee of the sweep engine: a parallel sweep produces
//! *bit-identical* results to a serial one.
//!
//! The engine promises this because every per-cell input is a pure
//! function of the cell spec (the workload seed is derived from the
//! base seed and the kernel name, never from execution order), and the
//! work-stealing queue only changes *when* cells run, not *what* they
//! compute. This test is the enforcement: it runs the same small
//! kernel × configuration grid single-threaded and with four workers
//! and requires equal statistics and verification results cell by cell.

use dlp_core::{CellOutcome, ExperimentParams, MachineConfig, Sweep, SweepReport};

/// A small but heterogeneous grid: three kernels (dataflow-friendly and
/// table-driven) × three configurations spanning dataflow and MIMD
/// execution models.
fn run_grid(threads: usize) -> SweepReport {
    let params = ExperimentParams::default();
    let mut sweep = Sweep::with_threads(threads);
    for name in ["convert", "blowfish", "fft"] {
        let id = sweep.add_kernel_by_name(name).expect("suite kernel");
        for config in [MachineConfig::Baseline, MachineConfig::SOD, MachineConfig::MD] {
            sweep.push_config(id, config, 24, &params);
        }
    }
    sweep.run()
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let serial = run_grid(1);
    let parallel = run_grid(4);

    assert_eq!(serial.threads, 1);
    assert_eq!(parallel.threads, 4);
    assert_eq!(serial.cells.len(), parallel.cells.len());

    for (s, p) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(s.kernel, p.kernel);
        assert_eq!(s.config, p.config);
        assert_eq!(s.records, p.records);
        // The outcome — statistics and verification result — must be
        // bit-identical; only host wall-clock may differ.
        assert_eq!(
            s.outcome, p.outcome,
            "{} on {}: serial and parallel sweeps disagree",
            s.kernel, s.config
        );
    }
}

#[test]
fn repeated_runs_are_identical() {
    let a = run_grid(3);
    let b = run_grid(3);
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.outcome, y.outcome, "{} on {}", x.kernel, x.config);
    }
}

#[test]
fn every_cell_verified_against_reference() {
    let report = run_grid(2);
    for cell in &report.cells {
        match &cell.outcome {
            CellOutcome::Ran { mismatch, .. } => {
                assert_eq!(*mismatch, None, "{} on {}", cell.kernel, cell.config);
            }
            CellOutcome::Failed { error, .. } => {
                panic!("{} on {} failed: {error}", cell.kernel, cell.config);
            }
            CellOutcome::Skipped { reason, .. } => {
                panic!("{} on {} skipped (no breaker armed): {reason}", cell.kernel, cell.config);
            }
        }
    }
}
