//! Golden statistics: full [`SimStats`] pinned bit-for-bit for one cell
//! of each engine family, run through the [`Sweep`] pipeline exactly as
//! the `BENCH_sweep.json` artifact is produced (derived per-kernel
//! seeds, schedule cache, work-stealing workers).
//!
//! These literals were captured from the sweep engine *before* the
//! flat-indexed hot-path rewrite of the dataflow/MIMD/NoC engines, so
//! they pin the simulated machine's behavior across performance work:
//! any change to routing, issue arbitration, wake-up order, cache
//! modeling, or scheduling that shifts even one counter fails here
//! loudly instead of silently skewing every figure. If a change is
//! *meant* to alter machine behavior, re-capture the literals with
//! `cargo run --release -p dlp-bench --bin sweep -- --quick` and say so
//! in the commit message.

use dlp_common::SimStats;
use dlp_core::sweep::Sweep;
use dlp_core::{ExperimentParams, MachineConfig};

/// Runs one kernel × configuration cell at 24 records through a real
/// two-worker sweep and returns its statistics.
fn sweep_stats(kernel: &str, config: MachineConfig) -> SimStats {
    let params = ExperimentParams::default();
    let mut sweep = Sweep::with_threads(2);
    let id = sweep.add_kernel_by_name(kernel).expect("suite kernel");
    sweep.push_config(id, config, 24, &params);
    let report = sweep.run();
    report.ensure_verified().expect("cell verifies");
    *report.cells[0].outcome.stats().expect("cell ran")
}

#[test]
fn convert_baseline_stats_are_pinned() {
    // Baseline dataflow: per-word L1 loads, block refetch every
    // iteration — the engine family with no universal mechanisms.
    let got = sweep_stats("convert", MachineConfig::Baseline);
    let want = SimStats {
        ticks: 271,
        useful_ops: 360,
        overhead_ops: 264,
        loads: 72,
        stores: 72,
        lmw_words: 0,
        l1_accesses: 144,
        l1_misses: 81,
        smc_accesses: 0,
        l0_accesses: 0,
        reg_reads: 54,
        reg_writes: 0,
        net_msgs: 1248,
        net_hops: 3504,
        blocks_fetched: 6,
        revitalizations: 0,
        iterations: 6,
        mimd_fetches: 0,
        mem_stall_node_cycles: 0,
        faults_injected: 0,
        fault_retries: 0,
        fault_stall_ticks: 0,
    };
    assert_eq!(got, want);
}

#[test]
fn convert_so_stats_are_pinned() {
    // S-O dataflow: SMC streams (LMW wide fetches) plus operand and
    // instruction revitalization — one fetched block, revitalized.
    let got = sweep_stats("convert", MachineConfig::SO);
    let want = SimStats {
        ticks: 428,
        useful_ops: 360,
        overhead_ops: 288,
        loads: 24,
        stores: 72,
        lmw_words: 72,
        l1_accesses: 0,
        l1_misses: 0,
        smc_accesses: 24,
        l0_accesses: 0,
        reg_reads: 9,
        reg_writes: 0,
        net_msgs: 1152,
        net_hops: 4093,
        blocks_fetched: 1,
        revitalizations: 0,
        iterations: 1,
        mimd_fetches: 0,
        mem_stall_node_cycles: 0,
        faults_injected: 0,
        fault_retries: 0,
        fault_stall_ticks: 0,
    };
    assert_eq!(got, want);
}

#[test]
fn blowfish_m_stats_are_pinned() {
    // M MIMD: local program counters, per-node fetch, Feistel table
    // lookups through the L1 — exercises the MIMD engine's channel and
    // wake-up machinery plus the memory-stall accounting.
    let got = sweep_stats("blowfish", MachineConfig::M);
    let want = SimStats {
        ticks: 3314,
        useful_ops: 5136,
        overhead_ops: 2064,
        loads: 1992,
        stores: 24,
        lmw_words: 0,
        l1_accesses: 1968,
        l1_misses: 399,
        smc_accesses: 24,
        l0_accesses: 0,
        reg_reads: 0,
        reg_writes: 0,
        net_msgs: 4008,
        net_hops: 18036,
        blocks_fetched: 1,
        revitalizations: 0,
        iterations: 24,
        mimd_fetches: 9280,
        mem_stall_node_cycles: 24648,
        faults_injected: 0,
        fault_retries: 0,
        fault_stall_ticks: 0,
    };
    assert_eq!(got, want);
}
