//! Tier-1 guarantees of the sweep persistence layer (`dlp_core::store`):
//!
//! * A sweep served from a **warm store** emits a canonical report
//!   bit-identical to the cold run that populated it, at any worker
//!   count — caching changes *where* results come from, never *what*
//!   they are.
//! * **Resume** after an interruption executes only the cells the
//!   manifest is missing, and still converges to the identical report.
//! * The **dead-letter queue** preserves the failure taxonomy through a
//!   full write → load → replay round trip.
//! * Corrupted or version-skewed store entries degrade to **misses** —
//!   a damaged cache can cost time, never correctness and never a
//!   panic.

use std::path::PathBuf;
use std::sync::Arc;

use dlp_core::store::{load_dlq, seal_line, unseal_line};
use dlp_core::{
    CellSpec, DeadLetterQueue, ExperimentParams, MachineConfig, ManifestWriter, ResultStore,
    Sweep, SweepManifest, SweepReport,
};

/// A fresh per-test scratch directory.
fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dlp-store-sweep-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The test grid: two kernels spanning both engines × two
/// configurations, smoke-scale records.
fn build_grid(threads: usize) -> Sweep {
    let params = ExperimentParams::default();
    let mut sweep = Sweep::with_threads(threads);
    for name in ["convert", "blowfish"] {
        let id = sweep.add_kernel_by_name(name).expect("suite kernel");
        for config in [MachineConfig::Baseline, MachineConfig::SOD] {
            sweep.push_config(id, config, 24, &params);
        }
    }
    sweep
}

fn run_with_store(threads: usize, store: &Arc<ResultStore>) -> SweepReport {
    let mut sweep = build_grid(threads);
    sweep.set_store(Arc::clone(store));
    sweep.run()
}

#[test]
fn warm_store_is_bit_identical_to_cold_at_any_worker_count() {
    let dir = tmpdir("warm-cold");
    let store = Arc::new(ResultStore::open(&dir).expect("open store"));

    let cold = run_with_store(1, &store);
    assert_eq!(cold.cells_executed, cold.cells.len(), "cold store executes everything");
    assert_eq!(cold.store_hits, 0);

    let warm1 = run_with_store(1, &store);
    let warm2 = run_with_store(2, &store);
    for warm in [&warm1, &warm2] {
        assert_eq!(warm.cells_executed, 0, "warm store executes nothing");
        assert_eq!(warm.store_hits as usize, warm.cells.len());
        assert_eq!(warm.store_misses, 0);
        assert_eq!(warm.plans_prepared, 0, "no lowering happens on a warm store");
        assert_eq!(
            warm.canonical_json(),
            cold.canonical_json(),
            "the canonical report must not depend on store temperature or worker count"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_executes_only_the_missing_cells() {
    let dir = tmpdir("resume");
    let manifest_path = dir.join("sweep.manifest.jsonl");

    // A complete checkpointed reference run.
    let mut sweep = build_grid(1);
    let digests = sweep.cell_digests();
    sweep.set_manifest(ManifestWriter::create(&manifest_path, &digests).expect("create manifest"));
    let reference = sweep.run();
    let total = reference.cells.len();

    // Simulate the interruption: keep the header and the first two cell
    // lines, plus a torn third line (a crash mid-write).
    let text = std::fs::read_to_string(&manifest_path).expect("read manifest");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), total + 1, "header + one line per cell");
    let torn = format!("{}\n{}\n{}\n{}", lines[0], lines[1], lines[2], &lines[3][..lines[3].len() / 2]);
    std::fs::write(&manifest_path, torn).expect("truncate manifest");

    let manifest = SweepManifest::load(&manifest_path).expect("torn final line is tolerated");
    assert_eq!(manifest.completed(), 2, "two cells survived the crash");

    let mut resumed = build_grid(2);
    assert_eq!(manifest.grid_digest, resumed.grid_digest(), "same grid");
    resumed.set_resume(manifest);
    resumed.set_manifest(ManifestWriter::append_to(&manifest_path).expect("reopen manifest"));
    let report = resumed.run();

    assert_eq!(report.resumed_cells, 2, "recorded cells are served, not re-run");
    assert_eq!(report.cells_executed, total - 2, "only the missing cells execute");
    assert_eq!(
        report.canonical_json(),
        reference.canonical_json(),
        "resume converges to the uninterrupted run's exact report"
    );

    // The resumed run re-checkpointed the missing cells: the manifest is
    // complete again and a further resume executes nothing.
    let full = SweepManifest::load(&manifest_path).expect("manifest readable after resume");
    assert_eq!(full.completed(), total);
    let mut third = build_grid(1);
    third.set_resume(full);
    let report = third.run();
    assert_eq!(report.resumed_cells, total);
    assert_eq!(report.cells_executed, 0);
    assert_eq!(report.canonical_json(), reference.canonical_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_letter_queue_round_trips_the_failure_taxonomy() {
    let dir = tmpdir("dlq");
    let dlq_path = dir.join("sweep.dlq.jsonl");

    // A 2-tick watchdog is nondeterministic-by-taxonomy (a different
    // budget could pass), so the failure is uncacheable and must be
    // dead-lettered.
    let params = ExperimentParams { watchdog: Some(2), ..ExperimentParams::default() };
    let mut sweep = Sweep::with_threads(1);
    let id = sweep.add_kernel_by_name("convert").expect("suite kernel");
    sweep.push_cell(CellSpec {
        kernel: id,
        config: Some(MachineConfig::S),
        mech: MachineConfig::S.mechanisms(),
        records: 24,
        params,
        label: "strangled".into(),
    });
    let dlq = Arc::new(DeadLetterQueue::new(&dlq_path));
    sweep.set_dlq(Arc::clone(&dlq));
    let report = sweep.run();

    assert_eq!(report.failures().len(), 1);
    assert_eq!(report.dlq_appended, 1, "the watchdog failure is dead-lettered");
    assert_eq!(report.cells[0].outcome.failure_kind(), Some("watchdog"));

    let records = load_dlq(&dlq_path);
    assert_eq!(records.len(), 1);
    let record = &records[0];
    assert_eq!(record.kernel, "convert");
    assert_eq!(record.config, "S");
    assert_eq!(record.kind, "watchdog", "the DlpError taxonomy survives the queue");
    assert_eq!(record.watchdog, Some(2), "the failing parameters are replayable");

    // Replaying the record's own parameters reproduces the same failure
    // kind — the record is a faithful reproduction recipe.
    let mut replay = Sweep::with_threads(1);
    let id = replay.add_kernel_by_name(&record.kernel).expect("suite kernel");
    replay.push_cell(CellSpec {
        kernel: id,
        config: None,
        mech: record.mech,
        records: record.records,
        params: record.params(),
        label: record.label.clone(),
    });
    let replayed = replay.run();
    assert_eq!(replayed.cells[0].outcome.failure_kind(), Some("watchdog"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn damaged_store_entries_are_misses_never_panics() {
    let dir = tmpdir("damaged");
    let store = Arc::new(ResultStore::open(&dir).expect("open store"));
    let cold = run_with_store(1, &store);

    // Damage every entry a different way: garbage bytes, a correctly
    // sealed line of the wrong shape, and a correctly re-sealed but
    // version-skewed record (the seal alone must not make it servable).
    let keys = build_grid(1).cell_keys();
    assert_eq!(keys.len(), cold.cells.len());
    std::fs::write(store.path_of(&keys[0]), b"\x00\xffnot json").expect("corrupt entry 0");
    std::fs::write(store.path_of(&keys[1]), format!("{}\n", seal_line("{}")))
        .expect("corrupt entry 1");
    let sealed = std::fs::read_to_string(store.path_of(&keys[2])).expect("read entry 2");
    let skewed = unseal_line(sealed.trim_end_matches('\n'))
        .expect("entry 2 is sealed")
        .replace("{\"store_version\":2,", "{\"store_version\":999,");
    assert!(skewed.contains("999"), "version field rewritten");
    std::fs::write(store.path_of(&keys[2]), format!("{}\n", seal_line(&skewed)))
        .expect("skew entry 2");

    let repaired = run_with_store(2, &store);
    assert_eq!(repaired.store_misses, 3, "every damaged entry is a miss");
    assert_eq!(repaired.store_hits as usize, cold.cells.len() - 3);
    assert_eq!(repaired.cells_executed, 3, "missed cells re-execute and repair the store");
    assert_eq!(
        repaired.canonical_json(),
        cold.canonical_json(),
        "a damaged cache costs time, never correctness"
    );

    let warm = run_with_store(1, &store);
    assert_eq!(warm.cells_executed, 0, "re-execution rewrote the damaged entries");
    let _ = std::fs::remove_dir_all(&dir);
}
