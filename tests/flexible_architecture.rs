//! Integration: the flexible architecture (Table 3 recommender + Table 5
//! configurations) reproduces the paper's Figure 5 structure.

use dlp_core::{flexible, recommend, ExperimentParams, MachineConfig};
use dlp_kernels::suite;

#[test]
fn recommender_matches_paper_grouping() {
    // §5.3: fft and lu on S; convert..fragment-reflection on S-O;
    // md5, blowfish, rijndael, vertex-skinning on M-D.
    let expected = [
        ("convert", MachineConfig::SO),
        ("dct", MachineConfig::SO),
        ("highpassfilter", MachineConfig::SO),
        ("fft", MachineConfig::S),
        ("lu", MachineConfig::S),
        ("md5", MachineConfig::MD),
        ("blowfish", MachineConfig::MD),
        ("rijndael", MachineConfig::MD),
        ("vertex-simple", MachineConfig::SO),
        ("fragment-simple", MachineConfig::SO),
        ("vertex-reflection", MachineConfig::SO),
        ("fragment-reflection", MachineConfig::SO),
        ("vertex-skinning", MachineConfig::MD),
    ];
    let kernels = suite();
    for (name, config) in expected {
        let k = kernels.iter().find(|k| k.name() == name).expect("kernel exists");
        assert_eq!(recommend(&k.ir().attributes()).config, config, "{name}");
    }
}

#[test]
fn flexible_beats_every_fixed_configuration() {
    let params = ExperimentParams::default();
    // Smoke-scale workloads: the shapes (who wins) are stable even at
    // small record counts; the bench harness runs the full-size version.
    let fig = flexible(&params, 0).expect("figure 5 experiment runs verified");

    // Structure: 13 rows, all verified (flexible() errors otherwise).
    assert_eq!(fig.rows.len(), 13);

    // The flexible architecture must not lose to any fixed configuration
    // (it can tie when one configuration happens to be best for every
    // kernel — which Figure 5 shows is not the case at paper scale).
    for (config, hm) in &fig.summary.fixed_hm {
        assert!(
            fig.summary.flexible_hm >= *hm * 0.999,
            "flexible ({:.3}) lost to fixed {config} ({hm:.3})",
            fig.summary.flexible_hm
        );
    }

    // And it must beat the baseline overall, even at smoke scale where
    // per-kernel setup costs weigh on the weaker fixed configurations.
    assert!(
        fig.summary.flexible_hm > 1.0,
        "flexible harmonic-mean speedup {} <= 1",
        fig.summary.flexible_hm
    );
}

#[test]
fn per_kernel_preferences_match_paper_shapes() {
    let params = ExperimentParams::default();
    let fig = flexible(&params, 0).expect("figure 5 experiment runs verified");
    let row = |name: &str| fig.rows.iter().find(|r| r.kernel == name).expect("row exists");

    // Constant-heavy kernels gain from operand revitalization.
    for name in ["convert", "vertex-simple", "vertex-reflection"] {
        let r = row(name);
        assert!(
            r.speedup[&MachineConfig::SO] >= r.speedup[&MachineConfig::S],
            "{name}: S-O should be at least S"
        );
    }
    // Table-indexed crypto gains from the L0 data store.
    for name in ["blowfish", "rijndael"] {
        let r = row(name);
        assert!(
            r.speedup[&MachineConfig::SOD] > r.speedup[&MachineConfig::SO],
            "{name}: S-O-D should beat S-O"
        );
        assert!(
            r.speedup[&MachineConfig::MD] > r.speedup[&MachineConfig::M],
            "{name}: M-D should beat M"
        );
    }
}

/// fft/lu prefer the streaming S machine; MIMD per-element load routing
/// degrades them (§5.3). This shape needs enough records to amortize the
/// stream setup, so it runs the two kernels at a larger scale than the
/// smoke-sized figure above.
#[test]
fn streaming_kernels_prefer_s_over_mimd() {
    use dlp_core::run_kernel;
    use dlp_kernels::suite;

    let params = ExperimentParams::default();
    let kernels = suite();
    for name in ["fft", "lu"] {
        let k = kernels.iter().find(|k| k.name() == name).expect("kernel exists");
        let s = run_kernel(k.as_ref(), MachineConfig::S, 2048, &params).unwrap();
        let m = run_kernel(k.as_ref(), MachineConfig::M, 2048, &params).unwrap();
        assert!(s.verified() && m.verified());
        assert!(
            s.stats.cycles() < m.stats.cycles(),
            "{name}: S ({}) should beat M ({})",
            s.stats.cycles(),
            m.stats.cycles()
        );
    }
}
