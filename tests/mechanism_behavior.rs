//! Integration: each universal mechanism produces its §5.3 behavioral
//! signature on the benchmarks that motivate it.

use dlp_core::{run_kernel, ExperimentParams, MachineConfig, RunOutcome};
use dlp_kernels::suite;

fn run(name: &str, config: MachineConfig, records: usize) -> RunOutcome {
    let params = ExperimentParams::default();
    let k = suite().into_iter().find(|k| k.name() == name).expect("kernel exists");
    let out = run_kernel(k.as_ref(), config, records, &params)
        .unwrap_or_else(|e| panic!("{name} on {config}: {e}"));
    assert!(out.verified(), "{name} on {config}: mismatch at {:?}", out.mismatch);
    out
}

/// §4.3: instruction revitalization removes per-iteration block refetch.
/// The S machine fetches one block per kernel; the baseline re-fetches per
/// iteration.
#[test]
fn instruction_revitalization_eliminates_refetch() {
    let base = run("convert", MachineConfig::Baseline, 512);
    let s = run("convert", MachineConfig::S, 512);
    assert!(base.stats.blocks_fetched > 10);
    assert_eq!(s.stats.blocks_fetched, 1);
    assert!(s.stats.revitalizations > 0);
}

/// §4.4: operand revitalization reads each constant once per kernel
/// instead of once per iteration — the register-file pressure drop behind
/// the S-O machine's wins on constant-heavy kernels.
#[test]
fn operand_revitalization_cuts_register_reads() {
    // Several hundred records so the kernel revitalizes many times —
    // one iteration would give operand persistence nothing to save.
    let s = run("vertex-simple", MachineConfig::S, 512);
    let so = run("vertex-simple", MachineConfig::SO, 512);
    assert!(
        so.stats.reg_reads * 4 < s.stats.reg_reads,
        "S-O reads {} vs S {}",
        so.stats.reg_reads,
        s.stats.reg_reads
    );
    assert!(so.stats.cycles() <= s.stats.cycles());
}

/// §4.4: the L0 data store absorbs indexed-constant traffic that would
/// otherwise hammer the L1.
#[test]
fn l0_store_absorbs_lookup_traffic() {
    let so = run("blowfish", MachineConfig::SO, 32);
    let sod = run("blowfish", MachineConfig::SOD, 32);
    assert!(so.stats.l0_accesses == 0);
    assert!(so.stats.l1_accesses > 0, "without the L0, lookups go through the L1");
    assert!(sod.stats.l0_accesses > 0);
    assert!(
        sod.stats.cycles() < so.stats.cycles(),
        "S-O-D ({}) should beat S-O ({}) on blowfish",
        sod.stats.cycles(),
        so.stats.cycles()
    );
}

/// §4.2: wide LMW loads amortize regular-stream accesses: one load
/// instruction fetches a whole record span on the SIMD configurations.
#[test]
fn lmw_amortizes_stream_loads() {
    let base = run("highpassfilter", MachineConfig::Baseline, 64);
    let s = run("highpassfilter", MachineConfig::S, 64);
    // 9 input words per record: the baseline issues ~9 loads per record,
    // the SMC machine two LMWs (8+1) whose words are counted separately.
    assert!(s.stats.lmw_words > 0);
    assert!(
        s.stats.loads < base.stats.loads,
        "LMW should reduce load instruction count ({} vs {})",
        s.stats.loads,
        base.stats.loads
    );
}

/// §5.3 (M): per-node load routing makes plain MIMD lose to the SIMD-style
/// configurations on regular streaming kernels.
#[test]
fn plain_mimd_loses_on_streaming_kernels() {
    let so = run("convert", MachineConfig::SO, 2048);
    let m = run("convert", MachineConfig::M, 2048);
    assert!(
        m.stats.cycles() > so.stats.cycles(),
        "M ({}) should trail S-O ({}) on convert",
        m.stats.cycles(),
        so.stats.cycles()
    );
}

/// §5.3 (M-D): data-dependent branching runs only live iterations under
/// local PCs, while the SIMD configurations execute the fully unrolled
/// masked form.
#[test]
fn mimd_executes_fewer_ops_on_data_dependent_kernels() {
    let sod = run("vertex-skinning", MachineConfig::SOD, 32);
    let md = run("vertex-skinning", MachineConfig::MD, 32);
    let sod_work = sod.stats.useful_ops + sod.stats.overhead_ops;
    let md_work = md.stats.useful_ops + md.stats.overhead_ops;
    assert!(
        md_work < sod_work,
        "M-D executed {md_work} ops vs S-O-D's masked {sod_work}"
    );
}

/// The MIMD engine's fine-grain synchronization and per-node sequencing
/// are visible in its statistics.
#[test]
fn mimd_statistics_reflect_local_fetch() {
    let md = run("md5", MachineConfig::MD, 16);
    assert!(md.stats.mimd_fetches > 1000, "rolled md5 fetches per step");
    assert_eq!(md.stats.revitalizations, 0, "no revitalization in MIMD mode");
}
