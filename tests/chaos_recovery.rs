//! Tier-1 crash-consistency tests: kill a real child process at every
//! named store crashpoint and prove recovery mechanically, then inject
//! host-I/O faults and prove they degrade to misses — never wrong
//! results, never panics.
//!
//! The child is this same test binary re-invoked on the `chaos_child`
//! harness test (guarded on `DLP_CHAOS_DIR`, ignored otherwise), which
//! runs a small fixed grid — two cacheable convert cells plus one
//! watchdog-strangled cell that dead-letters on every run — against a
//! store, manifest, and DLQ in the given directory, exercises the
//! atomic DLQ rewrite, and writes its canonical report last. Arming
//! `DLP_CRASHPOINT=<site>` makes the child abort mid-write; the parent
//! then fscks the wreckage, re-runs the child (which resumes from the
//! manifest when it still loads), and requires the recovered canonical
//! report to be byte-identical to an uninterrupted run's.
//!
//! `cargo xtask chaos` runs the same contract against the release
//! `sweep` binary; this test pins it in-tree at tier 1.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dlp_core::store::{fsck, iofault, load_dlq, rewrite_dlq, IoFaultPlan, StoreLock, CRASHPOINTS};
use dlp_core::{
    CellSpec, DeadLetterQueue, ExperimentParams, MachineConfig, ManifestWriter, ResultStore,
    Sweep, SweepManifest,
};

/// Serializes the chaos tests: crashpoint arming and the iofault shim
/// are process-global, and the child processes contend for the CPU.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dlp-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

const RECORDS: usize = 8;

/// The chaos grid: two cacheable cells plus a 2-tick-watchdog cell
/// that dead-letters on every run (reaching the DLQ write paths).
fn build_grid() -> Sweep {
    let params = ExperimentParams::default();
    let mut sweep = Sweep::with_threads(1);
    let id = sweep.add_kernel_by_name("convert").expect("suite kernel");
    for config in [MachineConfig::Baseline, MachineConfig::S] {
        sweep.push_config(id, config, RECORDS, &params);
    }
    sweep.push_cell(CellSpec {
        kernel: id,
        config: Some(MachineConfig::SO),
        mech: MachineConfig::SO.mechanisms(),
        records: RECORDS,
        params: ExperimentParams { watchdog: Some(2), ..ExperimentParams::default() },
        label: "strangled".into(),
    });
    sweep
}

/// The uninterrupted run's canonical report — the byte-level contract
/// every recovery must converge to.
fn reference_json() -> String {
    build_grid().run().canonical_json()
}

/// Spawn this test binary as a chaos child working in `dir`.
fn spawn_child(dir: &Path, extra: &[(&str, &str)]) -> std::process::Child {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.args(["chaos_child", "--exact", "--ignored"])
        .env_remove("DLP_CRASHPOINT")
        .env_remove("DLP_STORE_IOFAULT")
        .env("DLP_CHAOS_DIR", dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in extra {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn chaos child")
}

fn run_child(dir: &Path, extra: &[(&str, &str)]) -> std::process::ExitStatus {
    spawn_child(dir, extra).wait().expect("wait for chaos child")
}

#[cfg(unix)]
fn aborted(status: &std::process::ExitStatus) -> bool {
    use std::os::unix::process::ExitStatusExt as _;
    status.signal() == Some(6) // SIGABRT — the crashpoint's exit
}

#[cfg(not(unix))]
fn aborted(status: &std::process::ExitStatus) -> bool {
    status.code() == Some(3) // Windows reports abort() as exit code 3
}

/// The child harness: runs the chaos grid against `DLP_CHAOS_DIR`,
/// resuming from a surviving manifest; exercises the DLQ rewrite; and
/// writes the canonical report *last*, so a crashpoint kill anywhere
/// in the store's write paths precedes it. Ignored unless spawned by a
/// parent test (it is not a test of anything by itself).
#[test]
#[ignore = "crash-test child harness; spawned by the chaos tests"]
fn chaos_child() {
    let Ok(dir) = std::env::var("DLP_CHAOS_DIR") else { return };
    let dir = PathBuf::from(dir);
    let store_dir = std::env::var("DLP_CHAOS_STORE")
        .map_or_else(|_| dir.join("store"), PathBuf::from);

    if std::env::var("DLP_CHAOS_HOLD_LOCK").is_ok() {
        // Lock-holder mode: open the store (taking the lock), signal
        // the parent, and hold until released.
        let _store = ResultStore::open(&store_dir).expect("open store");
        std::fs::write(dir.join("held"), b"").expect("write marker");
        let deadline = Instant::now() + Duration::from_secs(60);
        while !dir.join("release").exists() {
            assert!(Instant::now() < deadline, "parent never released the lock holder");
            std::thread::sleep(Duration::from_millis(10));
        }
        return;
    }

    let mut sweep = build_grid();
    sweep.set_store(Arc::new(ResultStore::open(&store_dir).expect("open store")));
    let manifest_path = dir.join("manifest.jsonl");
    match SweepManifest::load(&manifest_path) {
        Ok(m) if m.grid_digest == sweep.grid_digest() => {
            sweep.set_resume(m);
            sweep.set_manifest(ManifestWriter::append_to(&manifest_path).expect("reopen"));
        }
        _ => {
            sweep.set_manifest(
                ManifestWriter::create(&manifest_path, &sweep.cell_digests()).expect("create"),
            );
        }
    }
    let dlq_path = dir.join("dlq.jsonl");
    sweep.set_dlq(Arc::new(DeadLetterQueue::new(&dlq_path)));
    let report = sweep.run();

    // Exercise the atomic queue rewrite (the dlq-rewrite.* sites).
    let records = load_dlq(&dlq_path);
    if !records.is_empty() {
        rewrite_dlq(&dlq_path, &records).expect("rewrite dlq");
    }
    std::fs::write(dir.join("report.json"), report.canonical_json()).expect("write report");
}

#[test]
fn kill_matrix_recovers_byte_identical_reports() {
    let _gate = gate();
    let reference = reference_json();
    for site in CRASHPOINTS {
        let dir = tmpdir(&format!("kill-{site}"));

        let status = run_child(&dir, &[("DLP_CRASHPOINT", site)]);
        assert!(
            aborted(&status),
            "{site}: the armed crashpoint must abort the child (got {status})"
        );
        assert!(
            !dir.join("report.json").exists(),
            "{site}: a killed child must not have reached its report"
        );

        // The wreckage must fsck without error, whatever state the
        // kill left — quarantining and gc'ing as needed.
        let repair = fsck(&dir.join("store"))
            .unwrap_or_else(|e| panic!("{site}: post-kill fsck failed: {e}"));
        assert_eq!(repair.quarantined, 0, "{site}: kills tear files, they never corrupt entries");

        // Recovery: the child resumes from whatever survived.
        let resumed = SweepManifest::load(&dir.join("manifest.jsonl")).is_ok();
        let status = run_child(&dir, &[]);
        assert!(status.success(), "{site}: recovery run failed (resume={resumed}, {status})");
        let got = std::fs::read_to_string(dir.join("report.json")).expect("recovered report");
        assert_eq!(
            got, reference,
            "{site}: recovered canonical report must be byte-identical to uninterrupted"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn concurrent_sweeps_on_one_store_serialize_and_merge() {
    let _gate = gate();
    let reference = reference_json();
    let shared = tmpdir("shared-store");
    let store_dir = shared.join("store");
    let store_env = store_dir.to_string_lossy().into_owned();

    let dir_a = tmpdir("concurrent-a");
    let dir_b = tmpdir("concurrent-b");
    let a = spawn_child(&dir_a, &[("DLP_CHAOS_STORE", store_env.as_str())]);
    let b = spawn_child(&dir_b, &[("DLP_CHAOS_STORE", store_env.as_str())]);
    for (label, child) in [("a", a), ("b", b)] {
        let status = child.wait_with_output().expect("wait").status;
        assert!(status.success(), "concurrent child {label} failed ({status})");
    }
    for dir in [&dir_a, &dir_b] {
        let got = std::fs::read_to_string(dir.join("report.json")).expect("report");
        assert_eq!(got, reference, "both serialized sweeps produce the canonical report");
    }

    // The merged store is warm: a third run executes only the
    // uncacheable watchdog cell and reproduces the same bytes.
    let mut warm = build_grid();
    warm.set_store(Arc::new(ResultStore::open(&store_dir).expect("open merged store")));
    let report = warm.run();
    assert_eq!(report.store_hits, 2, "both cacheable cells hit the merged store");
    assert_eq!(report.cells_executed, 1, "only the uncacheable watchdog cell re-runs");
    assert_eq!(report.canonical_json(), reference);
    for dir in [shared, dir_a, dir_b] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn store_lock_excludes_other_processes_until_they_exit() {
    let _gate = gate();
    let dir = tmpdir("lock");
    let store_dir = dir.join("store");
    std::fs::create_dir_all(&store_dir).expect("create store dir");

    let mut holder = spawn_child(&dir, &[("DLP_CHAOS_HOLD_LOCK", "1")]);
    let deadline = Instant::now() + Duration::from_secs(60);
    while !dir.join("held").exists() {
        assert!(Instant::now() < deadline, "lock-holder child never signalled");
        std::thread::sleep(Duration::from_millis(10));
    }

    let contended = StoreLock::try_acquire(&store_dir).expect("try_acquire");
    assert!(contended.is_none(), "another process holds the lock");

    std::fs::write(dir.join("release"), b"").expect("release marker");
    let status = holder.wait().expect("wait for holder");
    assert!(status.success(), "lock holder exited cleanly ({status})");

    let freed = StoreLock::try_acquire(&store_dir).expect("try_acquire after exit");
    assert!(freed.is_some(), "the OS lock dies with the holding process");
    drop(freed);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Disarm the iofault shim even when an assertion fails mid-test.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        iofault::disarm();
    }
}

#[test]
fn injected_io_faults_degrade_to_misses_never_wrong_results() {
    let _gate = gate();
    let reference = reference_json();
    let none = IoFaultPlan::none();
    // One plan per fault class, each certain (1e6 ppm): every store
    // write errors / is cut short / loses its tail / takes a bit flip.
    let plans = [
        ("error", IoFaultPlan { seed: 11, error_ppm: 1_000_000, ..none }),
        ("short", IoFaultPlan { seed: 12, short_ppm: 1_000_000, ..none }),
        ("torn", IoFaultPlan { seed: 13, torn_ppm: 1_000_000, ..none }),
        ("flip", IoFaultPlan { seed: 14, flip_ppm: 1_000_000, ..none }),
    ];
    for (name, plan) in plans {
        let dir = tmpdir(&format!("iofault-{name}"));
        // Open (stamping) before arming: the faults under test are the
        // sweep's writes, not the store's creation.
        let store = Arc::new(ResultStore::open(dir.join("store")).expect("open store"));

        iofault::arm(plan);
        let _disarm = Disarm;
        let mut sweep = build_grid();
        sweep.set_store(Arc::clone(&store));
        sweep.set_dlq(Arc::new(DeadLetterQueue::new(dir.join("dlq.jsonl"))));
        let faulted = sweep.run();
        assert_eq!(
            faulted.canonical_json(),
            reference,
            "{name}: injected faults must not change a single reported byte"
        );
        let injected: u64 = iofault::injected().iter().sum();
        assert!(injected > 0, "{name}: the plan injected nothing");
        drop(_disarm);
        drop(store);

        let repair = fsck(&dir.join("store")).expect("fsck");
        if name == "error" {
            assert_eq!(repair.scanned, 0, "{name}: failed puts leave no entry files");
            assert_eq!(repair.gc_tmp, 0, "{name}: errors fire before the tempfile exists");
        } else {
            assert_eq!(repair.scanned, 2, "{name}: both cacheable cells left an entry");
            assert_eq!(repair.valid, 0, "{name}: every corrupted entry is detected");
            assert_eq!(repair.quarantined, 2, "{name}: corrupted entries are quarantined");
        }

        // Un-faulted repair run: misses recompute, the store heals.
        let store = Arc::new(ResultStore::open(dir.join("store")).expect("reopen"));
        let mut repair_sweep = build_grid();
        repair_sweep.set_store(Arc::clone(&store));
        let healed = repair_sweep.run();
        assert_eq!(healed.store_hits, 0, "{name}: nothing corrupt was served");
        assert_eq!(healed.canonical_json(), reference);
        drop(store);
        let clean = fsck(&dir.join("store")).expect("fsck healed store");
        assert_eq!((clean.scanned, clean.valid, clean.quarantined), (2, 2, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
