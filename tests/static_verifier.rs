//! Tier-1 guarantees of the static program verifier (`dlp-verify`):
//!
//! 1. **Exhaustive acceptance** — every perf-suite kernel lowers and
//!    verifies on every published machine configuration (the full
//!    13×6 grid), so the verifier never rejects a sound artifact.
//! 2. **Mutation rejection** — breaking a sound artifact in a targeted
//!    way (drop a producer, unbalance a channel, overflow an L0 index)
//!    yields exactly the advertised `V*` diagnostic code.
//! 3. **Budget soundness** — verifier-accepted random MIMD programs
//!    never trip the engine's watchdog-derived step-budget bail-out
//!    (property-based).
//! 4. **Pinned constants** — the verifier's machine-model constants
//!    match the simulator's (they live in different crates because the
//!    scheduler must not depend on the simulator).

use dlp_common::{vcode, DlpError, GridShape, Value};
use dlp_core::{prepare_kernel, ExperimentParams, MachineConfig};
use dlp_kernels::{suite, DlpKernel, MimdTarget};
use proptest::prelude::*;
use trips_isa::{MimdInst, MimdOp, MimdProgram, Opcode, OpRole, Target};
use trips_sched::verify::{
    verify_dataflow, verify_mimd, DataflowVerifyParams, MimdVerifyParams, DEFAULT_NUM_REGS,
};
use trips_sched::{schedule_dataflow, LayoutPlan, ScheduleOptions, TargetConfig};

fn kernel(name: &str) -> Box<dyn DlpKernel> {
    suite().into_iter().find(|k| k.name() == name).expect("suite kernel")
}

#[test]
fn all_perf_suite_lowerings_verify_on_every_config() {
    let params = ExperimentParams::default();
    let mut checked = 0usize;
    for k in suite().into_iter().filter(|k| k.in_perf_suite()) {
        for config in MachineConfig::ALL {
            prepare_kernel(k.as_ref(), config.mechanisms(), 64, &params).unwrap_or_else(|e| {
                panic!("{} on {config} must verify: {e}", k.name());
            });
            checked += 1;
        }
    }
    assert_eq!(checked, 78, "the full 13-kernel x 6-config grid was covered");
}

/// Schedule a kernel's dataflow block and return it with the verifier
/// parameters that accept it unmodified.
fn scheduled(name: &str, cfg: TargetConfig) -> (trips_isa::DataflowBlock, DataflowVerifyParams) {
    let k = kernel(name);
    let grid = GridShape::trips_baseline();
    let timing = dlp_common::TimingParams::default();
    let sched = schedule_dataflow(
        &k.ir(),
        grid,
        &timing,
        cfg,
        LayoutPlan::default(),
        ScheduleOptions { max_unroll: Some(64), ..ScheduleOptions::default() },
    )
    .expect("suite kernel lowers");
    let params = DataflowVerifyParams {
        lmw_max_words: timing.mem.lmw_max_words as usize,
        l0_data_entries: timing.mem.l0_data_bytes,
        unroll: sched.unroll,
        operand_revitalization: cfg.operand_revitalization,
        tables_in_l0: sched.tables_in_l0,
        table_len: sched.table_image.len(),
        ..DataflowVerifyParams::new(grid, timing.core.rs_slots_per_node)
    };
    verify_dataflow(&sched.block, &params).expect("unmutated block verifies");
    (sched.block, params)
}

#[test]
fn mutation_dropped_producer_is_v0107() {
    let (block, params) =
        scheduled("convert", TargetConfig { smc: true, dlp_unroll: true, ..TargetConfig::default() });
    let mut insts = block.insts().to_vec();
    // Redirect the first port-to-port operand wire into a register sink,
    // starving the consumer's port. (Skip Lut consumers: an immediate-fed
    // `lut` legitimately needs no left producer.)
    let by_slot: std::collections::BTreeMap<_, _> =
        insts.iter().map(|i| (i.slot, i.op)).collect();
    let mut mutated = false;
    'outer: for inst in &mut insts {
        for t in &mut inst.targets {
            if let Target::Port { slot, .. } = *t {
                if !matches!(by_slot[&slot], Opcode::Lut) {
                    *t = Target::Reg(0);
                    mutated = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(mutated, "convert's block has at least one operand wire");
    let broken = trips_isa::DataflowBlock::new("mutated", insts, block.reg_reads().to_vec());
    match verify_dataflow(&broken, &params) {
        Err(DlpError::Verify { code, .. }) => assert_eq!(code, vcode::MISSING_PRODUCER),
        other => panic!("expected V0107, got {other:?}"),
    }
}

#[test]
fn mutation_l0_index_overflow_is_v0123() {
    // A lookup-heavy kernel on the L0-data-store configuration places
    // real `lut` instructions; pushing one's static index past the store
    // must be caught before a cycle is simulated.
    let cfg = TargetConfig {
        smc: true,
        l0_data_store: true,
        operand_revitalization: true,
        dlp_unroll: true,
    };
    for name in ["blowfish", "md5", "rijndael"] {
        let (block, params) = scheduled(name, cfg);
        let mut insts = block.insts().to_vec();
        let Some(lut) = insts.iter_mut().find(|i| matches!(i.op, Opcode::Lut)) else {
            continue;
        };
        lut.imm = Some(Value::from_u64(params.l0_data_entries as u64 + 7));
        let broken = trips_isa::DataflowBlock::new("mutated", insts, block.reg_reads().to_vec());
        match verify_dataflow(&broken, &params) {
            Err(DlpError::Verify { code, .. }) => assert_eq!(code, vcode::L0_INDEX_BOUNDS),
            other => panic!("{name}: expected V0123, got {other:?}"),
        }
        return;
    }
    panic!("no lookup kernel placed a lut instruction on the L0 configuration");
}

fn raw(op: MimdOp, rd: u8, ra: u8, rb: u8, imm: i64) -> MimdInst {
    MimdInst { op, rd, ra, rb, imm, role: OpRole::Useful }
}

#[test]
fn mutation_unbalanced_channel_is_v0213() {
    // Start from a real kernel's rolled program (which uses no channels),
    // then give rank 1 a receive that rank 0 never answers.
    let prog = kernel("convert")
        .mimd_program(MimdTarget { tables_in_l0: false })
        .expect("convert assembles");
    let orphan = MimdProgram::from_insts(vec![
        raw(MimdOp::Recv, 1, 0, 0, 0),
        raw(MimdOp::Halt, 0, 0, 0, 0),
    ]);
    let params = MimdVerifyParams::new(2, 1_000_000);
    verify_mimd(&[prog.clone(), prog.clone()], &params).expect("channel-free pair verifies");
    match verify_mimd(&[prog, orphan], &params) {
        Err(DlpError::Verify { code, .. }) => assert_eq!(code, vcode::CHANNEL_IMBALANCE),
        other => panic!("expected V0213, got {other:?}"),
    }
}

#[test]
fn verifier_constants_match_the_simulator() {
    assert_eq!(
        DEFAULT_NUM_REGS,
        trips_sim::Machine::NUM_REGS,
        "dlp-verify cannot depend on trips-sim, so the register-file size is pinned by test"
    );
    assert_eq!(
        MimdVerifyParams::new(1, 0).l0_inst_capacity,
        dlp_common::TimingParams::default().core.l0_inst_capacity,
        "default L0 instruction capacity tracks the timing defaults"
    );
}

/// A random *verifiable* MIMD program: forward-only branches over
/// ALU/immediate work, terminated by `halt`. Forward branches make every
/// execution path strictly advance, so termination is structural — the
/// property the verifier's budget check relies on.
fn build_program(len: usize, seed: u64) -> MimdProgram {
    // Tiny xorshift so the program is a pure function of the sampled
    // seed (the vendored proptest stub has no flat-map composition).
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut insts: Vec<MimdInst> = (0..len - 1)
        .map(|pc| {
            let rd = (next() % 28) as u8;
            let ra = (next() % 28) as u8;
            match next() % 4 {
                0 => raw(MimdOp::Li, rd, 0, 0, next() as i32 as i64),
                1 => raw(MimdOp::AluI(Opcode::Add), rd, ra, 0, (next() % 128) as i64 - 64),
                2 => raw(MimdOp::Alu(Opcode::Xor), rd, ra, (next() % 28) as u8, 0),
                _ => {
                    let tgt = pc as i64 + 1 + (next() % (len - 1 - pc) as u64) as i64;
                    let op = if next() & 1 == 0 { MimdOp::Bez } else { MimdOp::Bnz };
                    raw(op, 0, ra, 0, tgt)
                }
            }
        })
        .collect();
    insts.push(raw(MimdOp::Halt, 0, 0, 0, 0));
    MimdProgram::from_insts(insts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A verifier-accepted program never trips the engine's
    /// watchdog-derived step-budget bail-out when run under the same
    /// watchdog the verifier was told about.
    #[test]
    fn accepted_programs_never_trip_the_watchdog(len in 2usize..40, seed in any::<u64>()) {
        let prog = build_program(len, seed);
        let grid = GridShape::new(2, 2);
        let watchdog = 100_000u64;
        let progs = vec![prog; grid.nodes()];
        let params = MimdVerifyParams::new(grid.nodes(), watchdog);
        prop_assert!(verify_mimd(&progs, &params).is_ok());

        let mut machine = trips_sim::Machine::new(
            grid,
            dlp_common::TimingParams::default(),
            MachineConfig::M.mechanisms(),
        );
        machine.set_watchdog(watchdog);
        let mut arena = trips_sim::EngineArena::new();
        match machine.run_mimd_in(&progs, 4, &mut arena) {
            Ok(_) => {}
            Err(e) => prop_assert!(
                e.kind() != "watchdog",
                "verifier-accepted program hit the watchdog: {}", e
            ),
        }
    }
}
