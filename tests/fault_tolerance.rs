//! Tier-1 guarantees of the fault-injection subsystem:
//!
//! 1. **Graceful degradation** — a cell that trips the watchdog (or an
//!    unrecoverable fault budget) through the full [`Sweep`] pipeline
//!    becomes a structured [`CellOutcome::Failed`] with the error-kind
//!    taxonomy and the retry policy's attempt count; sibling cells are
//!    untouched.
//! 2. **Determinism** — a faulted sweep is bit-identical across worker
//!    counts and repeated runs, fault counters included.
//! 3. **Bit-exact recovery** — every faulted run that completes
//!    computed exactly the fault-free outputs (detect-and-replay never
//!    delivers a corrupted value), and a zero-fault plan is a strict
//!    no-op on the statistics.
//! 4. **No panics** — arbitrary seeded fault plans drive both engines
//!    to either a verified result or a structured `DlpError`, never a
//!    panic (property-based).

use std::sync::OnceLock;

use dlp_common::{FaultPlan, FaultRate};
use dlp_core::sweep::{Sweep, SweepPolicy};
use dlp_core::{
    prepare_kernel, run_kernel_mech, run_prepared, CellOutcome, CellSpec, ExperimentParams,
    MachineConfig, PreparedProgram,
};
use dlp_kernels::{suite, DlpKernel};
use proptest::prelude::*;

fn kernel(name: &str) -> Box<dyn DlpKernel> {
    suite().into_iter().find(|k| k.name() == name).expect("suite kernel")
}

#[test]
fn watchdog_cell_fails_cleanly_without_poisoning_siblings() {
    let params = ExperimentParams::default();
    // An impossibly tight watchdog: the cell must fail, not hang.
    let strangled = ExperimentParams { watchdog: Some(2), ..params };

    let mut sweep = Sweep::with_threads(2);
    sweep.set_policy(SweepPolicy::default().with_attempts(2));
    let id = sweep.add_kernel_by_name("convert").expect("suite kernel");
    sweep.push_cell(CellSpec {
        kernel: id,
        config: Some(MachineConfig::S),
        mech: MachineConfig::S.mechanisms(),
        records: 24,
        params: strangled,
        label: "strangled".into(),
    });
    sweep.push_config(id, MachineConfig::S, 24, &params);

    let report = sweep.run();
    match &report.cells[0].outcome {
        CellOutcome::Failed { error, kind, attempts, timed_out } => {
            assert_eq!(kind, "watchdog", "taxonomy tag: {error}");
            assert!(error.contains("watchdog"), "rendered error names the cause: {error}");
            assert!(error.contains("convert"), "watchdog context names the block: {error}");
            assert_eq!(*attempts, 2, "the policy's retry budget was spent");
            assert!(!timed_out, "no soft timeout was configured");
        }
        CellOutcome::Ran { .. } => panic!("a 2-tick watchdog cannot be satisfied"),
        CellOutcome::Skipped { reason, .. } => panic!("no breaker is armed: {reason}"),
    }
    assert!(report.cells[1].outcome.verified(), "sibling cell is unaffected");
    assert_eq!(report.failures().len(), 1);
    assert_eq!(report.cells[0].outcome.failure_kind(), Some("watchdog"));
    assert_eq!(report.extra_attempts, 1, "one retry beyond the first attempt");
}

#[test]
fn lowering_failures_report_zero_attempts() {
    // dct's 1920-instruction body cannot place on a 1×1 grid: the cell
    // fails in phase 1 (scheduling) and never executes, so the retry
    // policy — which only re-rolls fault schedules — must not touch it.
    let params = ExperimentParams {
        grid: dlp_common::GridShape::new(1, 1),
        ..ExperimentParams::default()
    };
    let mut sweep = Sweep::with_threads(2);
    sweep.set_policy(SweepPolicy::default().with_attempts(3));
    let id = sweep.add_kernel_by_name("dct").expect("suite kernel");
    sweep.push_config(id, MachineConfig::S, 24, &params);
    let report = sweep.run();
    match &report.cells[0].outcome {
        CellOutcome::Failed { kind, attempts, .. } => {
            assert_eq!(kind, "capacity-exceeded");
            assert_eq!(*attempts, 0, "lowering failures are never retried");
        }
        CellOutcome::Ran { .. } => panic!("dct cannot place on a 1x1 grid"),
        CellOutcome::Skipped { reason, .. } => panic!("no breaker is armed: {reason}"),
    }
    assert_eq!(report.extra_attempts, 0);
}

/// `convert` with its rolled MIMD form replaced by a program whose
/// `recv` no rank ever answers — statically ill-formed, so the program
/// verifier must reject it before a single cycle is simulated.
struct UnbalancedChannels(Box<dyn DlpKernel>);

impl DlpKernel for UnbalancedChannels {
    fn name(&self) -> &'static str {
        "unbalanced-channels"
    }
    fn description(&self) -> &'static str {
        "convert with a receive nobody answers"
    }
    fn ir(&self) -> dlp_kernel_ir::KernelIr {
        self.0.ir()
    }
    fn mimd_program(
        &self,
        _target: dlp_kernels::MimdTarget,
    ) -> Result<trips_isa::MimdProgram, dlp_common::DlpError> {
        use trips_isa::{MimdInst, MimdOp, OpRole};
        let inst = |op| MimdInst { op, rd: 1, ra: 0, rb: 0, imm: 0, role: OpRole::Useful };
        Ok(trips_isa::MimdProgram::from_insts(vec![inst(MimdOp::Recv), inst(MimdOp::Halt)]))
    }
    fn workload(&self, records: usize, seed: u64) -> dlp_kernels::Workload {
        self.0.workload(records, seed)
    }
    fn output_kind(&self) -> dlp_kernels::OutputKind {
        self.0.output_kind()
    }
}

#[test]
fn verifier_rejections_report_zero_attempts() {
    // Like lowering failures, verifier rejections happen in phase 1
    // (planning): deterministic, so the retry policy — which only
    // re-rolls fault schedules — must never spend attempts on them.
    let params = ExperimentParams::default();
    let mut sweep = Sweep::with_threads(2);
    sweep.set_policy(SweepPolicy::default().with_attempts(3));
    let id = sweep.add_kernel(Box::new(UnbalancedChannels(kernel("convert"))));
    sweep.push_config(id, MachineConfig::M, 24, &params);
    let report = sweep.run();
    match &report.cells[0].outcome {
        CellOutcome::Failed { error, kind, attempts, .. } => {
            assert_eq!(kind, "verify", "taxonomy tag: {error}");
            assert!(error.contains("V0213"), "rendered error carries the V* code: {error}");
            assert_eq!(*attempts, 0, "verifier rejections are never retried");
        }
        CellOutcome::Ran { .. } => panic!("an unanswered recv cannot pass the verifier"),
        CellOutcome::Skipped { reason, .. } => panic!("no breaker is armed: {reason}"),
    }
    assert_eq!(report.extra_attempts, 0);
}

/// A moderately hostile uniform plan: visible fault activity at smoke
/// scale, but comfortably inside the retry budget.
fn hostile() -> FaultPlan {
    FaultPlan::uniform(FaultRate::per_million(20_000))
}

fn faulted_grid(threads: usize) -> Vec<CellOutcome> {
    let params = ExperimentParams { fault: hostile(), ..ExperimentParams::default() };
    let mut sweep = Sweep::with_threads(threads);
    for name in ["convert", "fft", "blowfish"] {
        let id = sweep.add_kernel_by_name(name).expect("suite kernel");
        for config in [MachineConfig::Baseline, MachineConfig::SO, MachineConfig::MD] {
            sweep.push_config(id, config, 24, &params);
        }
    }
    sweep.run().cells.into_iter().map(|c| c.outcome).collect()
}

#[test]
fn faulted_sweep_is_bit_identical_across_worker_counts() {
    let serial = faulted_grid(1);
    let parallel = faulted_grid(4);
    assert_eq!(serial, parallel, "fault schedules must not depend on the worker count");
    let injected: u64 = serial
        .iter()
        .filter_map(CellOutcome::stats)
        .map(|s| s.faults_injected)
        .sum();
    assert!(injected > 0, "the hostile plan must actually fire at this scale");
}

#[test]
fn recovered_runs_compute_fault_free_outputs() {
    for (name, config) in [("convert", MachineConfig::Baseline), ("blowfish", MachineConfig::M)] {
        let k = kernel(name);
        let clean_params = ExperimentParams::default();
        let (clean, mismatch) =
            run_kernel_mech(k.as_ref(), config.mechanisms(), 24, &clean_params)
                .expect("fault-free run succeeds");
        assert_eq!(mismatch, None);
        assert_eq!(clean.faults_injected, 0, "no injector installed");

        let params = ExperimentParams { fault: hostile(), ..clean_params };
        let (faulted, mismatch) = run_kernel_mech(k.as_ref(), config.mechanisms(), 24, &params)
            .expect("hostile-but-recoverable run succeeds");
        // The core promise: detect-and-replay, so the delivered values —
        // and therefore every output word — are those of the fault-free
        // run, just later.
        assert_eq!(mismatch, None, "{name} on {config}: recovery must be bit-exact");
        assert!(faulted.faults_injected > 0, "{name} on {config}: plan must fire");
        assert!(
            faulted.cycles() >= clean.cycles(),
            "{name} on {config}: recovery is never free"
        );
    }
}

#[test]
fn zero_fault_plan_is_a_strict_noop() {
    let k = kernel("fft");
    let base = ExperimentParams::default();
    // A salted all-zero plan still counts as "no faults" and must not
    // perturb a single counter.
    let zeroed =
        ExperimentParams { fault: FaultPlan::none().with_salt(0xDEAD_BEEF), ..base };
    let a = run_kernel_mech(k.as_ref(), MachineConfig::SO.mechanisms(), 24, &base)
        .expect("runs");
    let b = run_kernel_mech(k.as_ref(), MachineConfig::SO.mechanisms(), 24, &zeroed)
        .expect("runs");
    assert_eq!(a, b, "a zero-rate plan must be invisible");
}

/// Prepared programs for the fuzz target, lowered once: scheduling is
/// the expensive part and is independent of the fault plan.
fn fuzz_programs() -> &'static (PreparedProgram, PreparedProgram, ExperimentParams) {
    static PREPARED: OnceLock<(PreparedProgram, PreparedProgram, ExperimentParams)> =
        OnceLock::new();
    PREPARED.get_or_init(|| {
        let params = ExperimentParams::default();
        let k = kernel("convert");
        let dataflow =
            prepare_kernel(k.as_ref(), MachineConfig::Baseline.mechanisms(), 8, &params)
                .expect("convert lowers on baseline");
        let mimd = prepare_kernel(k.as_ref(), MachineConfig::M.mechanisms(), 8, &params)
            .expect("convert lowers on M");
        (dataflow, mimd, params)
    })
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        proptest::collection::vec(0u32..300_001, 6..7),
        any::<u64>(),
        0u32..4,
        1u64..9,
        (1u64..65, 1u64..65),
    )
        .prop_map(|(rates, salt, max_retries, backoff, (stall, fill))| {
            let mut plan = FaultPlan::none().with_salt(salt);
            plan.noc_drop = FaultRate::per_million(rates[0]);
            plan.noc_corrupt = FaultRate::per_million(rates[1]);
            plan.dma_stall = FaultRate::per_million(rates[2]);
            plan.smc_stall = FaultRate::per_million(rates[3]);
            plan.l1_fill_delay = FaultRate::per_million(rates[4]);
            plan.operand_flip = FaultRate::per_million(rates[5]);
            plan.max_retries = max_retries;
            plan.backoff_ticks = backoff;
            plan.backoff_cap = backoff * 8;
            plan.stall_ticks = stall;
            plan.fill_delay_ticks = fill;
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seeded plan — including zero retry budgets, which make the
    /// first fault unrecoverable — drives both engines to a verified
    /// result or a structured error, never a panic and never a wrong
    /// output.
    #[test]
    fn arbitrary_fault_plans_never_panic_either_engine(plan in arb_plan()) {
        let (dataflow, mimd, base) = fuzz_programs();
        let k = kernel("convert");
        let params = ExperimentParams {
            fault: plan,
            // Bounded even under a fault storm: a spinning engine is a
            // bug this test must surface as Watchdog, not a timeout.
            watchdog: Some(5_000_000),
            ..*base
        };
        for prepared in [dataflow, mimd] {
            match run_prepared(k.as_ref(), prepared, 8, &params) {
                Ok((_, mismatch)) => prop_assert_eq!(mismatch, None),
                Err(e) => {
                    let kind = e.kind();
                    prop_assert!(
                        kind == "fault-unrecoverable" || kind == "watchdog",
                        "unexpected failure kind {}: {}", kind, e
                    );
                }
            }
        }
    }
}
