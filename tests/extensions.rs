//! Integration tests for the beyond-the-paper extensions: the full
//! configuration space, the energy model, Table 6, and partitioned MIMD
//! execution through the public APIs.

use dlp_core::{
    run_kernel, run_kernel_mech, EnergyModel, ExperimentParams, MachineConfig,
};
use dlp_kernels::suite;
use trips_sim::MechanismSet;

/// Every coherent mechanism combination either runs `convert` correctly or
/// fails with a clean "unsupported" error (MIMD programs need the SMC).
#[test]
fn configuration_space_is_sound_on_convert() {
    let params = ExperimentParams::default();
    let kernels = suite();
    let kernel = kernels.iter().find(|k| k.name() == "convert").expect("kernel");
    let mut ran = 0;
    for mech in MechanismSet::all_coherent() {
        match run_kernel_mech(kernel.as_ref(), mech, 16, &params) {
            Ok((stats, mismatch)) => {
                assert_eq!(mismatch, None, "{mech} computed wrong results");
                assert!(stats.cycles() > 0);
                ran += 1;
            }
            Err(e) => {
                // Only the SMC-less MIMD machines may refuse.
                assert!(
                    mech.local_pc && !mech.smc,
                    "{mech} unexpectedly failed: {e}"
                );
            }
        }
    }
    assert_eq!(ran, 14, "14 of the 16 machines run convert");
}

/// The energy model shows each mechanism's signature saving (§7 future
/// work): operand revitalization cuts register-file energy; the L0 store
/// cuts L1 energy on table-indexed kernels.
#[test]
fn energy_breakdown_reflects_mechanism_savings() {
    let params = ExperimentParams::default();
    let model = EnergyModel::default();
    let kernels = suite();

    let run = |name: &str, config: MachineConfig, records: usize| {
        let k = kernels.iter().find(|k| k.name() == name).expect("kernel");
        let out = run_kernel(k.as_ref(), config, records, &params).expect("runs");
        assert!(out.verified());
        // Each iteration executes the block once: ops/iteration ~= block size.
        let block = (out.stats.total_ops() / out.stats.iterations.max(1)) as usize;
        model.breakdown(&out.stats, block)
    };

    // Operand revitalization: S-O's register-file energy is a fraction of
    // S's. Needs several revitalized iterations for the once-per-kernel
    // delivery to show, hence the larger record count.
    let s = run("vertex-simple", MachineConfig::S, 512);
    let so = run("vertex-simple", MachineConfig::SO, 512);
    assert!(
        so.regfile_nj * 4.0 < s.regfile_nj,
        "operand revitalization should slash register-file energy ({} vs {})",
        so.regfile_nj,
        s.regfile_nj
    );

    // The L0 store: blowfish's lookup energy moves from l1 to (cheaper) l0.
    let so = run("blowfish", MachineConfig::SO, 64);
    let sod = run("blowfish", MachineConfig::SOD, 64);
    assert!(sod.l1_nj < so.l1_nj / 4.0, "L0 should absorb L1 lookup energy");
    assert!(sod.l0_nj > 0.0);
    assert!(
        sod.total_nj() < so.total_nj(),
        "the cheap local store should lower total energy ({} vs {})",
        sod.total_nj(),
        so.total_nj()
    );
}

/// Table 6 regenerates with the right comparison directions at smoke scale.
#[test]
fn table6_preserves_comparison_directions() {
    let params = ExperimentParams::default();
    let rows = dlp_core::specialized::table6(&params, 0).expect("table 6 runs verified");
    assert_eq!(rows.len(), 13);
    let row = |name: &str| rows.iter().find(|r| r.kernel == name).expect("row");

    // Crypto: TRIPS cycles/block is an order of magnitude below
    // CryptoManiac's published numbers (smaller is better).
    for name in ["blowfish", "rijndael"] {
        let r = row(name);
        let specialized = r.specialized.expect("published value");
        assert!(
            r.trips < specialized,
            "{name}: ours {} should beat specialized {}",
            r.trips,
            specialized
        );
    }
    // Fragment shading: the specialized GPU wins.
    let r = row("fragment-simple");
    assert!(r.trips < r.specialized.expect("published value"));
}

/// The recommender's configuration is never beaten by more than a small
/// factor by any other Table 5 configuration at experiment scale — the
/// property that makes the flexible architecture work. (Checked on one
/// kernel per preference group to keep runtime sane.)
#[test]
fn recommended_configuration_is_competitive() {
    let params = ExperimentParams::default();
    let kernels = suite();
    for name in ["fft", "vertex-simple", "blowfish"] {
        let kernel = kernels.iter().find(|k| k.name() == name).expect("kernel");
        let rec = dlp_core::recommend(&kernel.ir().attributes()).config;
        let records = dlp_core::default_records(name, 1).min(512);
        let chosen = run_kernel(kernel.as_ref(), rec, records, &params).expect("runs");
        assert!(chosen.verified());
        for config in MachineConfig::DLP {
            let other = run_kernel(kernel.as_ref(), config, records, &params).expect("runs");
            assert!(other.verified());
            assert!(
                chosen.stats.cycles() as f64 <= other.stats.cycles() as f64 * 1.15,
                "{name}: recommended {rec} ({}) loses badly to {config} ({})",
                chosen.stats.cycles(),
                other.stats.cycles()
            );
        }
    }
}
