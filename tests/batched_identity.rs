//! Tier-1 contract of the lane-batched engine (DESIGN.md §10): for
//! every lane, [`run_prepared_batch_in`] returns **bit-identical**
//! results — statistics, fault counters, mismatch index, and structured
//! errors — to running [`run_prepared_in`] on that lane alone.
//!
//! 1. Every cell of the full kernel × configuration grid, batched with
//!    genuinely divergent lanes (distinct workload seeds → distinct
//!    uniformity classes → the lockstep path).
//! 2. Uniform lanes (the collapse path) replicate the scalar result.
//! 3. Mixed record counts in one batch (cross-record packing,
//!    DESIGN.md §12): exhausted lanes mask off as padded tails, and
//!    lanes whose counts pad to the same unroll multiple collapse into
//!    one class while each still verifies its own prefix.
//! 4. Properties: arbitrary fault plans with distinct per-lane salts —
//!    including plans that kill some lanes and not others — and
//!    arbitrary per-lane record counts batch identically on both engine
//!    families. Bit-identity to the scalar runs is exactly the
//!    statement that a padded-off (masked) lane never contributes to
//!    any sibling's stat counter.

use std::sync::OnceLock;

use dlp_common::{FaultPlan, FaultRate};
use dlp_core::{
    batchable, prepare_kernel, run_prepared_batch_in, run_prepared_in, BatchLane,
    ExperimentParams, MachineConfig, PreparedProgram, RunScratch,
};
use dlp_kernels::{suite, DlpKernel};
use proptest::prelude::*;

/// Three lanes varying only the workload seed: three uniformity
/// classes, so the lockstep engine (not the uniform-collapse fast path)
/// carries the batch.
fn seed_lanes(base: &ExperimentParams, records: usize) -> Vec<BatchLane> {
    (0..3u64)
        .map(|i| BatchLane {
            records,
            params: ExperimentParams { seed: base.seed.wrapping_add(i), ..*base },
        })
        .collect()
}

#[test]
fn every_grid_cell_batches_bit_identically() {
    let base = ExperimentParams::default();
    for k in suite() {
        for config in MachineConfig::ALL {
            let records = 8;
            let prepared = prepare_kernel(k.as_ref(), config.mechanisms(), records, &base)
                .unwrap_or_else(|e| panic!("{} on {config} fails to lower: {e}", k.name()));
            let lanes = seed_lanes(&base, records);
            assert!(batchable(&lanes));

            let mut scratch = RunScratch::new();
            let scalar: Vec<_> = lanes
                .iter()
                .map(|l| run_prepared_in(k.as_ref(), &prepared, l.records, &l.params, &mut scratch))
                .collect();
            let batched = run_prepared_batch_in(k.as_ref(), &prepared, &lanes, &mut scratch);
            assert_eq!(
                batched,
                scalar,
                "{} on {config}: batched lanes must be bit-identical to scalar",
                k.name()
            );
        }
    }
}

#[test]
fn uniform_lanes_collapse_to_the_scalar_result() {
    let params = ExperimentParams::default();
    let k = suite().into_iter().find(|k| k.name() == "fft").expect("suite kernel");
    let prepared =
        prepare_kernel(k.as_ref(), MachineConfig::SO.mechanisms(), 16, &params).expect("lowers");
    let mut scratch = RunScratch::new();
    let scalar = run_prepared_in(k.as_ref(), &prepared, 16, &params, &mut scratch);
    let lanes = vec![BatchLane { records: 16, params }; 8];
    let batched = run_prepared_batch_in(k.as_ref(), &prepared, &lanes, &mut scratch);
    assert_eq!(batched.len(), 8);
    for lane in &batched {
        assert_eq!(*lane, scalar, "every uniform lane replicates the one scalar run");
    }
}

#[test]
fn mixed_record_counts_batch_in_lockstep() {
    // Cross-record packing: records 8 / 24 / 64 join one batch. The
    // short lanes exhaust first and ride along as mask-padded tails
    // while the 64-record lane keeps the shared queue busy; distinct
    // seeds keep the lanes in distinct uniformity classes so the
    // lockstep path (not uniform collapse) carries the batch.
    let base = ExperimentParams::default();
    let k = suite().into_iter().find(|k| k.name() == "convert").expect("suite kernel");
    for config in [MachineConfig::S, MachineConfig::M] {
        let prepared =
            prepare_kernel(k.as_ref(), config.mechanisms(), 64, &base).expect("lowers");
        let lanes: Vec<BatchLane> = [8usize, 24, 64]
            .iter()
            .enumerate()
            .map(|(i, &records)| BatchLane {
                records,
                params: ExperimentParams { seed: base.seed.wrapping_add(i as u64), ..base },
            })
            .collect();
        assert!(batchable(&lanes), "mixed record counts must be batchable on {config}");
        let mut scratch = RunScratch::new();
        let scalar: Vec<_> = lanes
            .iter()
            .map(|l| run_prepared_in(k.as_ref(), &prepared, l.records, &l.params, &mut scratch))
            .collect();
        let batched = run_prepared_batch_in(k.as_ref(), &prepared, &lanes, &mut scratch);
        assert_eq!(
            batched, scalar,
            "mixed-record batch on {config}: every lane bit-identical to its scalar run"
        );
    }
}

#[test]
fn padded_tails_share_a_class_yet_verify_their_own_prefix() {
    // Two lanes whose record counts pad to the same unroll multiple
    // collapse into a single uniformity class (one simulation serves
    // both), but each lane is still verified against its *own* record
    // prefix — the padding records must stay invisible.
    let params = ExperimentParams::default();
    let k = suite().into_iter().find(|k| k.name() == "convert").expect("suite kernel");
    let prepared =
        prepare_kernel(k.as_ref(), MachineConfig::S.mechanisms(), 64, &params).expect("lowers");
    let u = prepared.unroll();
    let hi = 4 * u;
    let lo = hi - (u.saturating_sub(1)); // pads back up to `hi` when u > 1
    let lanes = vec![BatchLane { records: hi, params }, BatchLane { records: lo, params }];
    assert!(batchable(&lanes));
    let mut scratch = RunScratch::new();
    let scalar: Vec<_> = lanes
        .iter()
        .map(|l| run_prepared_in(k.as_ref(), &prepared, l.records, &l.params, &mut scratch))
        .collect();
    let batched = run_prepared_batch_in(k.as_ref(), &prepared, &lanes, &mut scratch);
    assert_eq!(batched, scalar);
}

/// Prepared programs for the property tests, lowered once.
fn fuzz_programs() -> &'static (PreparedProgram, PreparedProgram, ExperimentParams) {
    static CELL: OnceLock<(PreparedProgram, PreparedProgram, ExperimentParams)> = OnceLock::new();
    CELL.get_or_init(|| {
        let params = ExperimentParams::default();
        let k = suite().into_iter().find(|k| k.name() == "convert").expect("suite kernel");
        let dataflow =
            prepare_kernel(k.as_ref(), MachineConfig::Baseline.mechanisms(), 8, &params)
                .expect("convert lowers on baseline");
        let mimd = prepare_kernel(k.as_ref(), MachineConfig::M.mechanisms(), 8, &params)
            .expect("convert lowers on M");
        (dataflow, mimd, params)
    })
}

/// Prepared programs for the tail-padding property test, lowered once
/// with a record cap of 64 so any record count in `1..=64` is in
/// contract.
fn tail_programs() -> &'static (PreparedProgram, PreparedProgram, ExperimentParams) {
    static CELL: OnceLock<(PreparedProgram, PreparedProgram, ExperimentParams)> = OnceLock::new();
    CELL.get_or_init(|| {
        let params = ExperimentParams::default();
        let k = suite().into_iter().find(|k| k.name() == "convert").expect("suite kernel");
        let dataflow =
            prepare_kernel(k.as_ref(), MachineConfig::Baseline.mechanisms(), 64, &params)
                .expect("convert lowers on baseline");
        let mimd = prepare_kernel(k.as_ref(), MachineConfig::M.mechanisms(), 64, &params)
            .expect("convert lowers on M");
        (dataflow, mimd, params)
    })
}

fn kernel(name: &str) -> Box<dyn DlpKernel> {
    suite().into_iter().find(|k| k.name() == name).expect("suite kernel")
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        proptest::collection::vec(0u32..300_001, 6..7),
        any::<u64>(),
        0u32..4,
        1u64..9,
        (1u64..65, 1u64..65),
    )
        .prop_map(|(rates, salt, max_retries, backoff, (stall, fill))| {
            let mut plan = FaultPlan::none().with_salt(salt);
            plan.noc_drop = FaultRate::per_million(rates[0]);
            plan.noc_corrupt = FaultRate::per_million(rates[1]);
            plan.dma_stall = FaultRate::per_million(rates[2]);
            plan.smc_stall = FaultRate::per_million(rates[3]);
            plan.l1_fill_delay = FaultRate::per_million(rates[4]);
            plan.operand_flip = FaultRate::per_million(rates[5]);
            plan.max_retries = max_retries;
            plan.backoff_ticks = backoff;
            plan.backoff_cap = backoff * 8;
            plan.stall_ticks = stall;
            plan.fill_delay_ticks = fill;
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary fault plans, distinct per-lane salts, both engine
    /// families, lane counts 1 / 2 / 8: per-lane results — successes,
    /// fault counters, watchdogs, unrecoverable-fault errors — are
    /// bit-identical between the batched and scalar paths. Divergence
    /// (one lane dying while siblings run on) is exactly what the
    /// event-mask machinery must keep invisible.
    #[test]
    fn arbitrary_fault_plans_batch_identically(
        plan in arb_plan(),
        n_lanes in (0usize..3).prop_map(|i| [1usize, 2, 8][i]),
    ) {
        let (dataflow, mimd, base) = fuzz_programs();
        let k = kernel("convert");
        for prepared in [dataflow, mimd] {
            let lanes: Vec<BatchLane> = (0..n_lanes as u64)
                .map(|i| BatchLane {
                    records: 8,
                    params: ExperimentParams {
                        fault: plan.with_salt(plan.salt.wrapping_add(i)),
                        watchdog: Some(5_000_000),
                        ..*base
                    },
                })
                .collect();
            let mut scratch = RunScratch::new();
            let scalar: Vec<_> = lanes
                .iter()
                .map(|l| run_prepared_in(k.as_ref(), prepared, l.records, &l.params, &mut scratch))
                .collect();
            let batched = run_prepared_batch_in(k.as_ref(), prepared, &lanes, &mut scratch);
            prop_assert_eq!(batched, scalar);
        }
    }

    /// Arbitrary per-lane record counts in one batch: every lane's
    /// stats, mismatch index, and errors are bit-identical to its
    /// scalar run. The scalar run never sees the sibling lanes, so
    /// equality is precisely the property that a padded-off (masked)
    /// lane contributes to no stat counter while its longer siblings
    /// drain the queue.
    #[test]
    fn padded_off_lanes_never_contribute_to_stats(
        recs in proptest::collection::vec(1usize..65, 2..9),
    ) {
        let (dataflow, mimd, base) = tail_programs();
        let k = kernel("convert");
        for prepared in [dataflow, mimd] {
            let lanes: Vec<BatchLane> = recs
                .iter()
                .enumerate()
                .map(|(i, &records)| BatchLane {
                    records,
                    params: ExperimentParams {
                        seed: base.seed.wrapping_add(i as u64),
                        ..*base
                    },
                })
                .collect();
            prop_assert!(batchable(&lanes));
            let mut scratch = RunScratch::new();
            let scalar: Vec<_> = lanes
                .iter()
                .map(|l| run_prepared_in(k.as_ref(), prepared, l.records, &l.params, &mut scratch))
                .collect();
            let batched = run_prepared_batch_in(k.as_ref(), prepared, &lanes, &mut scratch);
            prop_assert_eq!(batched, scalar);
        }
    }
}
