//! # dlp-verify
//!
//! Static program verification for lowered artifacts: every
//! [`DataflowBlock`] and every MIMD program is analysed *before* the
//! simulator spends a single cycle on it. The checks here are the deep
//! counterpart to the shallow shape checks in `trips-isa` — they reason
//! about the whole artifact (dependence graphs, reachability, channel
//! balance, capacity budgets) rather than one instruction at a time.
//!
//! Every rejection carries a stable code from the
//! [`dlp_common::vcode`] taxonomy inside [`DlpError::Verify`], so sweep
//! failure reports can be triaged mechanically: `V01xx` codes cover
//! dataflow blocks, `V02xx` codes cover MIMD programs.
//!
//! ## What is (deliberately) *not* checked here
//!
//! Mechanism support — a `lut` on a machine without the L0 data store,
//! an SMC access without the SMC — stays a *dynamic* concern of the
//! engines ([`DlpError::Unsupported`]). A kernel is lowered once per
//! `(kernel, machine shape)` plan and run on many mechanism sets; the
//! verifier validates the artifact's internal structure, not its fit to
//! a particular mechanism inventory.
//!
//! ## Conservatism
//!
//! The MIMD channel-balance check ([`vcode::CHANNEL_IMBALANCE`]) counts
//! *static* send/recv occurrences among reachable instructions per
//! ordered rank pair. Programs whose communication is balanced only
//! dynamically (e.g. rank-guarded sends inside replicated programs)
//! would be rejected; the workspace's lowering never produces such
//! programs, and the engine's dynamic deadlock detection remains the
//! backstop.
//!
//! # Example
//!
//! ```
//! use dlp_verify::{verify_dataflow, DataflowVerifyParams};
//! use trips_isa::{DataflowBlock, PlacedInst, Slot, Target, Port, Opcode};
//! use dlp_common::{Coord, GridShape, Value};
//!
//! let s0 = Slot::new(Coord::new(0, 0), 0);
//! let s1 = Slot::new(Coord::new(0, 1), 0);
//! let mut a = PlacedInst::new(s0, Opcode::MovI);
//! a.imm = Some(Value::from_u64(21));
//! a.targets = vec![Target::port(s1, Port::Left)];
//! let mut b = PlacedInst::new(s1, Opcode::Add);
//! b.imm = Some(Value::from_u64(21));
//! b.targets = vec![Target::Reg(3)];
//!
//! let block = DataflowBlock::new("answer", vec![a, b], vec![]);
//! verify_dataflow(&block, &DataflowVerifyParams::new(GridShape::new(8, 8), 64))?;
//! # Ok::<(), dlp_common::DlpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;

use std::collections::HashMap;
use std::fmt;

use dlp_common::{vcode, DlpError, GridShape};
use trips_isa::{DataflowBlock, MimdOp, MimdProgram, Opcode, Slot, Target};

/// Register-file size the dataflow engine provides (`Machine::NUM_REGS`).
///
/// `dlp-verify` sits below the simulator in the dependency order, so it
/// cannot name the constant directly; `dlp-core` carries a test pinning
/// the two together.
pub const DEFAULT_NUM_REGS: usize = 512;

/// Register-file size of a MIMD node (the operand buffers repurposed as
/// 32 read/write registers).
pub const MIMD_NUM_REGS: usize = 32;

/// A single verifier rejection: a stable taxonomy code, the location of
/// the defect, and a human-readable explanation.
///
/// Converts into [`DlpError::Verify`] at the public API boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Stable `V*` code from [`dlp_common::vcode`].
    pub code: &'static str,
    /// Where the defect sits (instruction index, slot, or rank; empty
    /// when program-wide).
    pub span: String,
    /// Description of the defect.
    pub detail: String,
}

impl VerifyError {
    /// Create a verification error.
    #[must_use]
    pub fn new(code: &'static str, span: impl Into<String>, detail: impl Into<String>) -> Self {
        VerifyError { code, span: span.into(), detail: detail.into() }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span.is_empty() {
            write!(f, "[{}] {}", self.code, self.detail)
        } else {
            write!(f, "[{}] at {}: {}", self.code, self.span, self.detail)
        }
    }
}

impl From<VerifyError> for DlpError {
    fn from(e: VerifyError) -> DlpError {
        DlpError::Verify { code: e.code, span: e.span, detail: e.detail }
    }
}

/// Machine-shape and plan facts the dataflow verifier checks against.
#[derive(Clone, Debug)]
pub struct DataflowVerifyParams {
    /// The ALU array shape.
    pub grid: GridShape,
    /// Reservation-station slots per node.
    pub slots_per_node: usize,
    /// Architectural register-file size ([`DEFAULT_NUM_REGS`]).
    pub num_regs: usize,
    /// Widest legal `lmw` fan-out (the SMC row-channel width).
    pub lmw_max_words: usize,
    /// L0 data-store entries per node.
    pub l0_data_entries: usize,
    /// The plan's revitalization (unroll) count.
    pub unroll: usize,
    /// The scheduler's unroll clamp; counts outside `1..=unroll_cap`
    /// can never have been produced by a sound plan.
    pub unroll_cap: usize,
    /// Whether the target machine revitalizes operands; persistent
    /// operand marks are illegal without it.
    pub operand_revitalization: bool,
    /// Whether the plan loads the lookup table into the L0 data store.
    pub tables_in_l0: bool,
    /// Lookup-table length in entries (0 when the kernel has none).
    pub table_len: usize,
}

impl DataflowVerifyParams {
    /// Parameters for a machine shape, with workspace-default capacities
    /// and a trivial (unit) plan.
    #[must_use]
    pub fn new(grid: GridShape, slots_per_node: usize) -> Self {
        DataflowVerifyParams {
            grid,
            slots_per_node,
            num_regs: DEFAULT_NUM_REGS,
            lmw_max_words: 8,
            l0_data_entries: 2 * 1024,
            unroll: 1,
            unroll_cap: 512,
            operand_revitalization: false,
            tables_in_l0: false,
            table_len: 0,
        }
    }
}

/// Verify a lowered dataflow block against a machine shape and plan.
///
/// Runs the shallow shape checks ([`DataflowBlock::validate`]) first,
/// then the deep analyses:
///
/// * operand-dependence acyclicity — a cycle of port-to-port operands
///   can never fire, a static deadlock ([`vcode::DEPENDENCE_CYCLE`]);
/// * register-range legality for block outputs and register reads
///   ([`vcode::REGISTER_RANGE`]);
/// * `lmw` fan-out within the streaming-channel width
///   ([`vcode::LMW_FANOUT`]);
/// * statically indexed `lut` reads within the L0 data store
///   ([`vcode::L0_INDEX_BOUNDS`]);
/// * revitalization-count consistency with the unroll cap
///   ([`vcode::UNROLL_INCONSISTENT`]);
/// * persistent operands only under operand revitalization
///   ([`vcode::PERSISTENCE_WITHOUT_REVIT`]);
/// * lookup-table image within the L0 data store when the plan places
///   it there ([`vcode::L0_TABLE_OVERFLOW`]).
///
/// # Errors
///
/// [`DlpError::Verify`] with the first defect's taxonomy code, or
/// [`DlpError::CapacityExceeded`] from the shallow slot-budget check.
pub fn verify_dataflow(
    block: &DataflowBlock,
    params: &DataflowVerifyParams,
) -> Result<(), DlpError> {
    block.validate(params.grid, params.slots_per_node)?;
    deep_verify_dataflow(block, params).map_err(DlpError::from)
}

fn deep_verify_dataflow(
    block: &DataflowBlock,
    params: &DataflowVerifyParams,
) -> Result<(), VerifyError> {
    for inst in block.insts() {
        for t in &inst.targets {
            if let Target::Reg(r) = *t {
                if r as usize >= params.num_regs {
                    return Err(VerifyError::new(
                        vcode::REGISTER_RANGE,
                        inst.slot.to_string(),
                        format!(
                            "target register r{r} exceeds the {}-entry register file",
                            params.num_regs
                        ),
                    ));
                }
            }
        }
        if matches!(inst.op, Opcode::Lmw) && inst.targets.len() > params.lmw_max_words {
            return Err(VerifyError::new(
                vcode::LMW_FANOUT,
                inst.slot.to_string(),
                format!(
                    "lmw fans out to {} words but the streaming channel moves at most {}",
                    inst.targets.len(),
                    params.lmw_max_words
                ),
            ));
        }
        if matches!(inst.op, Opcode::Lut) {
            if let Some(imm) = inst.imm {
                let idx = imm.as_u64();
                if idx >= params.l0_data_entries as u64 {
                    return Err(VerifyError::new(
                        vcode::L0_INDEX_BOUNDS,
                        inst.slot.to_string(),
                        format!(
                            "static lut index {idx} reads past the {}-entry L0 data store",
                            params.l0_data_entries
                        ),
                    ));
                }
            }
        }
        if !params.operand_revitalization && !inst.persistent.is_empty() {
            return Err(VerifyError::new(
                vcode::PERSISTENCE_WITHOUT_REVIT,
                inst.slot.to_string(),
                "persistent operand ports on a machine without operand revitalization".to_string(),
            ));
        }
    }
    for rr in block.reg_reads() {
        if rr.reg as usize >= params.num_regs {
            return Err(VerifyError::new(
                vcode::REGISTER_RANGE,
                format!("r{}", rr.reg),
                format!(
                    "register read r{} exceeds the {}-entry register file",
                    rr.reg, params.num_regs
                ),
            ));
        }
        if !params.operand_revitalization && rr.persistent {
            return Err(VerifyError::new(
                vcode::PERSISTENCE_WITHOUT_REVIT,
                format!("r{}", rr.reg),
                format!(
                    "persistent register read r{} on a machine without operand revitalization",
                    rr.reg
                ),
            ));
        }
    }

    if params.unroll == 0 || params.unroll > params.unroll_cap {
        return Err(VerifyError::new(
            vcode::UNROLL_INCONSISTENT,
            String::new(),
            format!(
                "revitalization count {} outside the legal range 1..={}",
                params.unroll, params.unroll_cap
            ),
        ));
    }
    if params.tables_in_l0 && params.table_len > params.l0_data_entries {
        return Err(VerifyError::new(
            vcode::L0_TABLE_OVERFLOW,
            String::new(),
            format!(
                "lookup table of {} entries exceeds the {}-entry L0 data store",
                params.table_len, params.l0_data_entries
            ),
        ));
    }

    dataflow_acyclic(block)
}

/// Kahn's algorithm over the port-to-port operand-dependence graph.
///
/// Register reads and immediates are external sources; only
/// `Target::Port` edges between placed instructions participate. A
/// non-empty residue after the topological sweep is a set of
/// instructions each waiting on another member of the set — none can
/// ever fire, so the block deadlocks on its first map.
fn dataflow_acyclic(block: &DataflowBlock) -> Result<(), VerifyError> {
    let insts = block.insts();
    let by_slot: HashMap<Slot, usize> =
        insts.iter().enumerate().map(|(i, inst)| (inst.slot, i)).collect();
    let mut indegree = vec![0usize; insts.len()];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); insts.len()];
    for (i, inst) in insts.iter().enumerate() {
        for t in &inst.targets {
            if let Target::Port { slot, .. } = *t {
                // validate() already guaranteed the slot exists.
                let j = by_slot[&slot];
                succs[i].push(j);
                indegree[j] += 1;
            }
        }
    }
    let mut ready: Vec<usize> = (0..insts.len()).filter(|&i| indegree[i] == 0).collect();
    let mut fired = 0usize;
    while let Some(i) = ready.pop() {
        fired += 1;
        for &j in &succs[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                ready.push(j);
            }
        }
    }
    if fired < insts.len() {
        let stuck = indegree.iter().position(|&d| d > 0).expect("residue is non-empty");
        return Err(VerifyError::new(
            vcode::DEPENDENCE_CYCLE,
            insts[stuck].slot.to_string(),
            format!(
                "{} instructions form an operand-dependence cycle and can never fire \
                 (first at {})",
                insts.len() - fired,
                insts[stuck].slot
            ),
        ));
    }
    Ok(())
}

/// Machine and partition facts the MIMD verifier checks against.
#[derive(Clone, Debug)]
pub struct MimdVerifyParams {
    /// Number of participating ranks (programs in the partition).
    pub n_ranks: usize,
    /// Per-node register-file size ([`MIMD_NUM_REGS`]).
    pub num_regs: usize,
    /// L0 instruction-store entries per node.
    pub l0_inst_capacity: usize,
    /// The watchdog tick limit the run will execute under; the derived
    /// step budget is `n_ranks * (watchdog + 1)` (see the MIMD engine).
    pub watchdog: u64,
}

impl MimdVerifyParams {
    /// Parameters for a partition size, with workspace-default
    /// capacities and the default watchdog.
    #[must_use]
    pub fn new(n_ranks: usize, watchdog: u64) -> Self {
        MimdVerifyParams { n_ranks, num_regs: MIMD_NUM_REGS, l0_inst_capacity: 256, watchdog }
    }
}

/// Verify a partition's MIMD programs (one per rank; empty programs are
/// idle ranks and are skipped, mirroring the engine).
///
/// Per program: re-asserts the assembler invariants for artifacts built
/// via [`MimdProgram::from_insts`] ([`vcode::NON_ALU_OPCODE`],
/// [`vcode::MIMD_REGISTER_RANGE`], [`vcode::BRANCH_RANGE`]), checks the
/// L0 instruction-store fit ([`vcode::L0_INST_OVERFLOW`]), channel
/// endpoints ([`vcode::CHANNEL_ENDPOINT`]), label/branch-target
/// reachability ([`vcode::UNREACHABLE_CODE`]) and that no reachable
/// path runs off the end ([`vcode::FALLS_OFF_END`]).
///
/// Across the partition: static send/recv balance per ordered rank
/// pair ([`vcode::CHANNEL_IMBALANCE`]) and step-budget plausibility
/// against the watchdog-derived budget ([`vcode::STEP_BUDGET`]).
///
/// # Errors
///
/// [`DlpError::Verify`] with the first defect's taxonomy code.
pub fn verify_mimd(progs: &[MimdProgram], params: &MimdVerifyParams) -> Result<(), DlpError> {
    deep_verify_mimd(progs, params).map_err(DlpError::from)
}

fn deep_verify_mimd(progs: &[MimdProgram], params: &MimdVerifyParams) -> Result<(), VerifyError> {
    // sends[(from, to)] / recvs[(from, to)] count static occurrences of
    // matching endpoints among reachable instructions.
    let mut sends: HashMap<(usize, usize), usize> = HashMap::new();
    let mut recvs: HashMap<(usize, usize), usize> = HashMap::new();
    // Minimum number of instruction steps the partition must execute to
    // halt every rank.
    let mut min_total_steps: u64 = 0;

    for (rank, prog) in progs.iter().enumerate() {
        if prog.is_empty() {
            continue; // idle rank: the engine excludes it from the run
        }
        let insts = prog.insts();
        let len = insts.len();
        if len > params.l0_inst_capacity {
            return Err(VerifyError::new(
                vcode::L0_INST_OVERFLOW,
                format!("rank {rank}"),
                format!(
                    "program of {len} instructions exceeds the {}-entry L0 instruction store",
                    params.l0_inst_capacity
                ),
            ));
        }
        for (i, inst) in insts.iter().enumerate() {
            let span = || format!("rank {rank} inst {i}");
            if let MimdOp::Alu(op) | MimdOp::AluI(op) = inst.op {
                if op.is_mem() || matches!(op, Opcode::MovI | Opcode::Iter | Opcode::Nop) {
                    return Err(VerifyError::new(
                        vcode::NON_ALU_OPCODE,
                        span(),
                        format!("{op} is not a register ALU op"),
                    ));
                }
            }
            for r in [inst.rd, inst.ra, inst.rb] {
                if r as usize >= params.num_regs {
                    return Err(VerifyError::new(
                        vcode::MIMD_REGISTER_RANGE,
                        span(),
                        format!("register r{r} exceeds the {}-register file", params.num_regs),
                    ));
                }
            }
            if let MimdOp::Jmp | MimdOp::Bez | MimdOp::Bnz = inst.op {
                if inst.imm < 0 || inst.imm as usize > len {
                    return Err(VerifyError::new(
                        vcode::BRANCH_RANGE,
                        span(),
                        format!("branch target {} outside the {len}-instruction program", inst.imm),
                    ));
                }
            }
            if let MimdOp::Send | MimdOp::Recv = inst.op {
                if inst.imm < 0 || inst.imm as usize >= params.n_ranks {
                    return Err(VerifyError::new(
                        vcode::CHANNEL_ENDPOINT,
                        span(),
                        format!(
                            "channel endpoint {} outside the {}-rank partition",
                            inst.imm, params.n_ranks
                        ),
                    ));
                }
            }
        }

        // Breadth-first reachability from entry. `dist[pc]` is the
        // minimum number of instructions executed before `pc` issues.
        let mut dist: Vec<Option<u64>> = vec![None; len];
        let mut queue = std::collections::VecDeque::new();
        dist[0] = Some(0);
        queue.push_back(0usize);
        let mut min_halt_steps: Option<u64> = None;
        while let Some(pc) = queue.pop_front() {
            let d = dist[pc].expect("queued pcs have distances");
            let inst = &insts[pc];
            let mut succ = |next: usize| -> Result<(), VerifyError> {
                if next >= len {
                    return Err(VerifyError::new(
                        vcode::FALLS_OFF_END,
                        format!("rank {rank} inst {pc}"),
                        format!(
                            "a reachable path runs off the end of the {len}-instruction program"
                        ),
                    ));
                }
                if dist[next].is_none() {
                    dist[next] = Some(d + 1);
                    queue.push_back(next);
                }
                Ok(())
            };
            match inst.op {
                MimdOp::Halt => {
                    if min_halt_steps.is_none() {
                        min_halt_steps = Some(d + 1);
                    }
                }
                MimdOp::Jmp => succ(inst.imm as usize)?,
                MimdOp::Bez | MimdOp::Bnz => {
                    succ(inst.imm as usize)?;
                    succ(pc + 1)?;
                }
                _ => succ(pc + 1)?,
            }
        }
        if let Some(pc) = dist.iter().position(Option::is_none) {
            return Err(VerifyError::new(
                vcode::UNREACHABLE_CODE,
                format!("rank {rank} inst {pc}"),
                format!("instruction {pc} ({}) is unreachable from entry", insts[pc]),
            ));
        }
        let Some(halt_steps) = min_halt_steps else {
            return Err(VerifyError::new(
                vcode::STEP_BUDGET,
                format!("rank {rank}"),
                "no halting path exists, so no finite step budget fits".to_string(),
            ));
        };
        min_total_steps = min_total_steps.saturating_add(halt_steps);

        for (i, inst) in insts.iter().enumerate() {
            if dist[i].is_none() {
                continue;
            }
            match inst.op {
                MimdOp::Send => *sends.entry((rank, inst.imm as usize)).or_insert(0) += 1,
                MimdOp::Recv => *recvs.entry((inst.imm as usize, rank)).or_insert(0) += 1,
                _ => {}
            }
        }
    }

    for (&(from, to), &n_sends) in &sends {
        let n_recvs = recvs.get(&(from, to)).copied().unwrap_or(0);
        if n_sends != n_recvs {
            return Err(VerifyError::new(
                vcode::CHANNEL_IMBALANCE,
                format!("rank {from} -> rank {to}"),
                format!("{n_sends} static sends but {n_recvs} static recvs"),
            ));
        }
    }
    for (&(from, to), &n_recvs) in &recvs {
        if !sends.contains_key(&(from, to)) {
            return Err(VerifyError::new(
                vcode::CHANNEL_IMBALANCE,
                format!("rank {from} -> rank {to}"),
                format!("0 static sends but {n_recvs} static recvs"),
            ));
        }
    }

    let n_ranks = progs.iter().filter(|p| !p.is_empty()).count() as u64;
    let step_budget = n_ranks.saturating_mul(params.watchdog.saturating_add(1));
    if min_total_steps > step_budget {
        return Err(VerifyError::new(
            vcode::STEP_BUDGET,
            String::new(),
            format!(
                "shortest complete execution needs {min_total_steps} steps but the \
                 watchdog-derived budget is {step_budget}"
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_common::{Coord, Value};
    use trips_isa::{MimdAsm, MimdInst, OpRole, PlacedInst, Port, PortSet};

    fn slot(r: u8, c: u8, i: u16) -> Slot {
        Slot::new(Coord::new(r, c), i)
    }

    fn movi(s: Slot, v: u64, targets: Vec<Target>) -> PlacedInst {
        PlacedInst { imm: Some(Value::from_u64(v)), targets, ..PlacedInst::new(s, Opcode::MovI) }
    }

    fn df_params() -> DataflowVerifyParams {
        DataflowVerifyParams::new(GridShape::new(8, 8), 64)
    }

    #[test]
    fn straight_line_block_verifies() {
        let s0 = slot(0, 0, 0);
        let s1 = slot(0, 1, 0);
        let a = movi(s0, 1, vec![Target::port(s1, Port::Left)]);
        let mut b = PlacedInst::new(s1, Opcode::Add);
        b.imm = Some(Value::from_u64(2));
        b.targets = vec![Target::Reg(0)];
        let blk = DataflowBlock::new("t", vec![a, b], vec![]);
        assert!(verify_dataflow(&blk, &df_params()).is_ok());
    }

    #[test]
    fn two_instruction_cycle_is_static_deadlock() {
        let s0 = slot(0, 0, 0);
        let s1 = slot(0, 1, 0);
        let mut a = PlacedInst::new(s0, Opcode::Not);
        a.targets = vec![Target::port(s1, Port::Left)];
        let mut b = PlacedInst::new(s1, Opcode::Not);
        b.targets = vec![Target::port(s0, Port::Left)];
        let blk = DataflowBlock::new("cycle", vec![a, b], vec![]);
        assert!(matches!(
            verify_dataflow(&blk, &df_params()),
            Err(DlpError::Verify { code: vcode::DEPENDENCE_CYCLE, .. })
        ));
    }

    #[test]
    fn register_out_of_range_rejected() {
        let s0 = slot(0, 0, 0);
        let a = movi(s0, 1, vec![Target::Reg(9999)]);
        let blk = DataflowBlock::new("t", vec![a], vec![]);
        assert!(matches!(
            verify_dataflow(&blk, &df_params()),
            Err(DlpError::Verify { code: vcode::REGISTER_RANGE, .. })
        ));
    }

    #[test]
    fn lut_index_bounds_enforced() {
        let s0 = slot(0, 0, 0);
        let mut lut = PlacedInst::new(s0, Opcode::Lut);
        lut.imm = Some(Value::from_u64(1 << 20));
        lut.targets = vec![Target::Reg(0)];
        let blk = DataflowBlock::new("t", vec![lut], vec![]);
        assert!(matches!(
            verify_dataflow(&blk, &df_params()),
            Err(DlpError::Verify { code: vcode::L0_INDEX_BOUNDS, .. })
        ));
    }

    #[test]
    fn persistence_requires_revitalization() {
        let s0 = slot(0, 0, 0);
        let mut a = movi(s0, 1, vec![Target::Reg(0)]);
        a.persistent = PortSet::EMPTY.with(Port::Left);
        let blk = DataflowBlock::new("t", vec![a], vec![]);
        let mut p = df_params();
        assert!(matches!(
            verify_dataflow(&blk, &p),
            Err(DlpError::Verify { code: vcode::PERSISTENCE_WITHOUT_REVIT, .. })
        ));
        p.operand_revitalization = true;
        assert!(verify_dataflow(&blk, &p).is_ok());
    }

    #[test]
    fn unroll_cap_enforced() {
        let s0 = slot(0, 0, 0);
        let a = movi(s0, 1, vec![Target::Reg(0)]);
        let blk = DataflowBlock::new("t", vec![a], vec![]);
        let mut p = df_params();
        p.unroll = 0;
        assert!(matches!(
            verify_dataflow(&blk, &p),
            Err(DlpError::Verify { code: vcode::UNROLL_INCONSISTENT, .. })
        ));
        p.unroll = p.unroll_cap + 1;
        assert!(verify_dataflow(&blk, &p).is_err());
    }

    #[test]
    fn table_overflow_rejected() {
        let s0 = slot(0, 0, 0);
        let a = movi(s0, 1, vec![Target::Reg(0)]);
        let blk = DataflowBlock::new("t", vec![a], vec![]);
        let mut p = df_params();
        p.tables_in_l0 = true;
        p.table_len = p.l0_data_entries + 1;
        assert!(matches!(
            verify_dataflow(&blk, &p),
            Err(DlpError::Verify { code: vcode::L0_TABLE_OVERFLOW, .. })
        ));
    }

    fn halting(n_ranks: usize) -> MimdVerifyParams {
        MimdVerifyParams::new(n_ranks, 1_000_000)
    }

    #[test]
    fn assembled_loop_verifies() {
        let mut asm = MimdAsm::new();
        asm.li(1, 0);
        asm.li(2, 10);
        asm.label("top");
        asm.alui(Opcode::Add, 1, 1, 1);
        asm.alui(Opcode::Sub, 2, 2, 1);
        asm.bnz(2, "top");
        asm.halt();
        let p = asm.assemble().unwrap();
        assert!(verify_mimd(&[p], &halting(1)).is_ok());
    }

    fn raw(op: MimdOp, rd: u8, ra: u8, imm: i64) -> MimdInst {
        MimdInst { op, rd, ra, rb: 0, imm, role: OpRole::Useful }
    }

    #[test]
    fn unbalanced_recv_rejected() {
        // Rank 1 receives from rank 0, which never sends.
        let p0 = MimdProgram::from_insts(vec![raw(MimdOp::Halt, 0, 0, 0)]);
        let p1 = MimdProgram::from_insts(vec![
            raw(MimdOp::Recv, 1, 0, 0),
            raw(MimdOp::Halt, 0, 0, 0),
        ]);
        assert!(matches!(
            verify_mimd(&[p0, p1], &halting(2)),
            Err(DlpError::Verify { code: vcode::CHANNEL_IMBALANCE, .. })
        ));
    }

    #[test]
    fn balanced_pair_accepted() {
        let p0 = MimdProgram::from_insts(vec![
            raw(MimdOp::Li, 1, 0, 7),
            raw(MimdOp::Send, 0, 1, 1),
            raw(MimdOp::Halt, 0, 0, 0),
        ]);
        let p1 = MimdProgram::from_insts(vec![
            raw(MimdOp::Recv, 1, 0, 0),
            raw(MimdOp::Halt, 0, 0, 0),
        ]);
        assert!(verify_mimd(&[p0, p1], &halting(2)).is_ok());
    }

    #[test]
    fn endpoint_outside_partition_rejected() {
        let p = MimdProgram::from_insts(vec![
            raw(MimdOp::Send, 0, 1, 5),
            raw(MimdOp::Halt, 0, 0, 0),
        ]);
        assert!(matches!(
            verify_mimd(&[p], &halting(1)),
            Err(DlpError::Verify { code: vcode::CHANNEL_ENDPOINT, .. })
        ));
    }

    #[test]
    fn falls_off_end_rejected() {
        let p = MimdProgram::from_insts(vec![raw(MimdOp::Li, 1, 0, 0)]);
        assert!(matches!(
            verify_mimd(&[p], &halting(1)),
            Err(DlpError::Verify { code: vcode::FALLS_OFF_END, .. })
        ));
    }

    #[test]
    fn unreachable_code_rejected() {
        let p = MimdProgram::from_insts(vec![
            raw(MimdOp::Jmp, 0, 0, 2),
            raw(MimdOp::Li, 1, 0, 0), // skipped by the jmp, no other entry
            raw(MimdOp::Halt, 0, 0, 0),
        ]);
        assert!(matches!(
            verify_mimd(&[p], &halting(1)),
            Err(DlpError::Verify { code: vcode::UNREACHABLE_CODE, .. })
        ));
    }

    #[test]
    fn no_halting_path_rejected() {
        let p = MimdProgram::from_insts(vec![raw(MimdOp::Jmp, 0, 0, 0)]);
        assert!(matches!(
            verify_mimd(&[p], &halting(1)),
            Err(DlpError::Verify { code: vcode::STEP_BUDGET, .. })
        ));
    }

    #[test]
    fn step_budget_scales_with_watchdog() {
        // Straight-line program of 4 steps; a budget of 2 cannot fit it.
        let p = MimdProgram::from_insts(vec![
            raw(MimdOp::Li, 1, 0, 0),
            raw(MimdOp::Li, 2, 0, 0),
            raw(MimdOp::Li, 3, 0, 0),
            raw(MimdOp::Halt, 0, 0, 0),
        ]);
        let tight = MimdVerifyParams::new(1, 1); // budget = 1 * (1 + 1) = 2
        assert!(matches!(
            verify_mimd(std::slice::from_ref(&p), &tight),
            Err(DlpError::Verify { code: vcode::STEP_BUDGET, .. })
        ));
        assert!(verify_mimd(&[p], &halting(1)).is_ok());
    }

    #[test]
    fn empty_programs_are_idle_ranks() {
        let p = MimdProgram::from_insts(vec![raw(MimdOp::Halt, 0, 0, 0)]);
        assert!(verify_mimd(&[MimdProgram::default(), p], &halting(2)).is_ok());
    }

    #[test]
    fn oversized_program_rejected() {
        let mut insts = vec![raw(MimdOp::Li, 1, 0, 0); 300];
        insts.push(raw(MimdOp::Halt, 0, 0, 0));
        let p = MimdProgram::from_insts(insts);
        assert!(matches!(
            verify_mimd(&[p], &halting(1)),
            Err(DlpError::Verify { code: vcode::L0_INST_OVERFLOW, .. })
        ));
    }
}
