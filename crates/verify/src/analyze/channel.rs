//! Symbolic channel-flow analysis over MIMD partitions.
//!
//! The legality verifier balances static send/recv counts over the
//! *whole program* per ordered rank pair (`V0213`). That misses a class
//! of livelock-prone programs whose totals balance but whose *loops* do
//! not: a send inside a loop body matched by a recv outside it drifts
//! one message per iteration until someone blocks. This pass balances
//! each loop region separately ([`wcode::LOOP_CHANNEL_IMBALANCE`]) and
//! flags ranks whose code can contribute nothing to the observable
//! result ([`wcode::DEAD_RANK`]).
//!
//! A *loop region* is the instruction range `[target, branch]` of a
//! retreating edge (a branch whose resolved target does not exceed its
//! own index). Partitions are replicated programs in this workspace, so
//! a region occupies the same index range on every rank and cross-rank
//! matching by range is exact; for hand-built heterogeneous partitions
//! the matching is conservative and may warn spuriously — warnings
//! advise, they do not reject.

use std::collections::BTreeMap;

use dlp_common::wcode;
use trips_isa::{MimdOp, MimdProgram};

use super::Warning;

/// Analyze a partition's channel flow; returns the findings.
#[must_use]
pub fn analyze_mimd_channels(progs: &[MimdProgram]) -> Vec<Warning> {
    let mut warnings = Vec::new();

    // Loop regions keyed by (lo, hi) instruction range; each accumulates
    // sends and recvs per ordered (from, to) rank pair.
    type PairCounts = BTreeMap<(usize, usize), (usize, usize)>;
    let mut regions: BTreeMap<(usize, usize), PairCounts> = BTreeMap::new();
    for prog in progs {
        for (pc, inst) in prog.insts().iter().enumerate() {
            if let MimdOp::Jmp | MimdOp::Bez | MimdOp::Bnz = inst.op {
                let target = inst.imm.max(0) as usize;
                if target <= pc {
                    regions.entry((target, pc)).or_default();
                }
            }
        }
    }
    for (rank, prog) in progs.iter().enumerate() {
        for (pc, inst) in prog.insts().iter().enumerate() {
            let pair = match inst.op {
                MimdOp::Send => (rank, inst.imm.max(0) as usize),
                MimdOp::Recv => (inst.imm.max(0) as usize, rank),
                _ => continue,
            };
            for (&(lo, hi), counts) in &mut regions {
                if (lo..=hi).contains(&pc) {
                    let entry = counts.entry(pair).or_insert((0, 0));
                    match inst.op {
                        MimdOp::Send => entry.0 += 1,
                        _ => entry.1 += 1,
                    }
                }
            }
        }
    }
    for (&(lo, hi), counts) in &regions {
        for (&(from, to), &(sends, recvs)) in counts {
            if sends != recvs {
                warnings.push(Warning::new(
                    wcode::LOOP_CHANNEL_IMBALANCE,
                    format!("loop {lo}..={hi} rank {from} -> rank {to}"),
                    format!(
                        "{sends} sends but {recvs} recvs inside the loop body: \
                         the channel drifts every iteration"
                    ),
                ));
            }
        }
    }

    for (rank, prog) in progs.iter().enumerate() {
        if prog.is_empty() {
            continue; // idle rank, excluded from the run by the engine
        }
        let contributes = prog
            .insts()
            .iter()
            .any(|i| matches!(i.op, MimdOp::Send | MimdOp::St(_)));
        if !contributes {
            warnings.push(Warning::new(
                wcode::DEAD_RANK,
                format!("rank {rank}"),
                "program neither sends nor stores: it cannot affect the result".to_string(),
            ));
        }
    }
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_isa::{MemSpace, MimdAsm, Opcode};

    fn codes(warnings: &[Warning]) -> Vec<&'static str> {
        warnings.iter().map(|w| w.code).collect()
    }

    /// Two ranks whose totals balance but whose loops do not: rank 0
    /// sends inside its loop, rank 1 receives *outside* its own loop.
    /// The whole-program `V0213` totals (1 send, 1 recv) pass; the
    /// per-loop balance does not.
    #[test]
    fn loop_imbalance_caught_where_totals_balance() {
        let mut a0 = MimdAsm::new();
        a0.li(1, 2);
        a0.label("top");
        a0.send(1, 1); // in-loop send
        a0.alui(Opcode::Sub, 1, 1, 1);
        a0.bnz(1, "top");
        a0.halt();
        let p0 = a0.assemble().unwrap();

        let mut a1 = MimdAsm::new();
        a1.li(1, 2);
        a1.label("top");
        a1.recv(2, 0); // same index range as rank 0's loop => in-region
        a1.alui(Opcode::Sub, 1, 1, 1);
        a1.bnz(1, "top");
        a1.st(MemSpace::Smc, 2, 0, 2);
        a1.halt();
        let p1 = a1.assemble().unwrap();

        // Balanced replica-style pair: no loop warnings.
        assert_eq!(codes(&analyze_mimd_channels(&[p0.clone(), p1])), Vec::<&str>::new());

        // Move the recv after the loop: totals still balance (2 sends
        // in rank 0's two iterations vs... statically 1 send / 1 recv),
        // but the loop body now sends with no matching in-loop recv.
        let mut a2 = MimdAsm::new();
        a2.li(1, 2);
        a2.label("top");
        a2.alui(Opcode::Add, 2, 2, 0);
        a2.alui(Opcode::Sub, 1, 1, 1);
        a2.bnz(1, "top");
        a2.recv(2, 0); // post-loop recv
        a2.st(MemSpace::Smc, 2, 0, 2);
        a2.halt();
        let p2 = a2.assemble().unwrap();
        let warnings = analyze_mimd_channels(&[p0, p2]);
        assert_eq!(codes(&warnings), vec![wcode::LOOP_CHANNEL_IMBALANCE]);
        assert!(warnings[0].span.contains("rank 0 -> rank 1"), "{}", warnings[0].span);
    }

    #[test]
    fn dead_rank_detected() {
        let mut a0 = MimdAsm::new();
        a0.li(1, 7);
        a0.st(MemSpace::Smc, 1, 0, 1);
        a0.halt();
        let alive = a0.assemble().unwrap();

        let mut a1 = MimdAsm::new();
        a1.li(1, 7);
        a1.alui(Opcode::Add, 1, 1, 1);
        a1.halt();
        let dead = a1.assemble().unwrap();

        let warnings = analyze_mimd_channels(&[alive, dead, MimdProgram::default()]);
        assert_eq!(codes(&warnings), vec![wcode::DEAD_RANK]);
        assert_eq!(warnings[0].span, "rank 1");
    }

    #[test]
    fn nested_loops_check_each_region() {
        // Outer loop balanced, inner loop sends one extra message.
        let mut asm = MimdAsm::new();
        asm.li(1, 2);
        asm.label("outer");
        asm.li(2, 2);
        asm.label("inner");
        asm.send(2, 0);
        asm.recv(3, 0);
        asm.send(2, 0); // extra in-inner send
        asm.alui(Opcode::Sub, 2, 2, 1);
        asm.bnz(2, "inner");
        asm.recv(3, 0); // rebalances the outer region and the totals
        asm.alui(Opcode::Sub, 1, 1, 1);
        asm.bnz(1, "outer");
        asm.st(MemSpace::Smc, 3, 0, 3);
        asm.halt();
        let p = asm.assemble().unwrap();
        let warnings = analyze_mimd_channels(&[p]);
        assert_eq!(codes(&warnings), vec![wcode::LOOP_CHANNEL_IMBALANCE]);
        assert!(warnings[0].span.starts_with("loop 2..=6"), "{}", warnings[0].span);
    }
}
