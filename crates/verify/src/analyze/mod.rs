//! `dlp-analyze`: semantic static analysis over kernels and lowerings.
//!
//! The legality verifier in the crate root answers *"may this artifact
//! run?"*; this module answers *"what will it do, and how long must it
//! take?"* Three analyses share the [`Warning`] vocabulary of
//! [`dlp_common::wcode`]:
//!
//! * [`analyze_kernel`] — an interval abstract interpreter over the
//!   kernel IR ([`interval`]): proves **dynamic** table-read and
//!   irregular-load index bounds (upgrading the static-index-only
//!   `V0123` check), folds constants, and flags dead operands.
//! * [`analyze_mimd_channels`] — a symbolic channel-flow pass over MIMD
//!   partitions ([`channel`]): per-loop send/recv balance and dead-rank
//!   detection, finer than the whole-program `V0213` totals.
//! * [`cost`] — a **sound static cost model**: a critical-path +
//!   resource-pressure lower bound on `sim_cycles`, proven in-tree
//!   against every cell of the experiment grid (`tests/cost_soundness`).
//!
//! Warnings never reject an artifact; the strict mode lives in
//! `cargo xtask analyze-grid --deny-warnings`.

use std::fmt;

use serde::Serialize;

pub mod channel;
pub mod cost;
pub mod interval;

pub use channel::analyze_mimd_channels;
pub use cost::{DataflowCost, MimdCost};
pub use interval::{analyze_kernel, AbstractValue};

/// A single analyzer finding: a stable taxonomy code, the location of
/// the finding, and a human-readable explanation.
///
/// The advisory mirror of [`crate::VerifyError`]: same shape, but a
/// warning never fails a lowering on its own.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Warning {
    /// Stable `W*` code from [`dlp_common::wcode`].
    pub code: &'static str,
    /// Where the finding sits (IR node, rank/loop, or cost component;
    /// empty when program-wide).
    pub span: String,
    /// Description of the finding.
    pub detail: String,
}

impl Warning {
    /// Create a warning.
    #[must_use]
    pub fn new(code: &'static str, span: impl Into<String>, detail: impl Into<String>) -> Self {
        Warning { code, span: span.into(), detail: detail.into() }
    }
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span.is_empty() {
            write!(f, "[{}] {}", self.code, self.detail)
        } else {
            write!(f, "[{}] at {}: {}", self.code, self.span, self.detail)
        }
    }
}

/// Everything the analyzer learned about one prepared lowering: the
/// warnings from every pass plus the cost model for the lowered form.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    /// Findings from all passes, in pass order.
    pub warnings: Vec<Warning>,
    /// Cost model of a dataflow lowering (`None` for MIMD plans).
    pub dataflow_cost: Option<DataflowCost>,
    /// Cost model of a MIMD lowering (`None` for dataflow plans).
    pub mimd_cost: Option<MimdCost>,
}

impl AnalysisReport {
    /// The sound lower bound on `sim_cycles` for a run over
    /// `iterations` block iterations (dataflow) or any number of
    /// records (MIMD, whose bound is record-count-independent).
    #[must_use]
    pub fn bound_cycles(&self, iterations: u64) -> u64 {
        if let Some(c) = &self.dataflow_cost {
            return c.bound_cycles(iterations);
        }
        if let Some(c) = &self.mimd_cost {
            return c.bound_cycles();
        }
        0
    }

    /// Scheduling estimate in ticks for a run over `records` records —
    /// the LPT ordering key. **Not** sound (the MIMD term extrapolates
    /// per-record work); use [`AnalysisReport::bound_cycles`] for
    /// guarantees.
    #[must_use]
    pub fn estimate_ticks(&self, records: u64, iterations: u64) -> u64 {
        if let Some(c) = &self.dataflow_cost {
            return c.bound_ticks(iterations);
        }
        if let Some(c) = &self.mimd_cost {
            return c.estimate_ticks(records);
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warnings_render_with_and_without_span() {
        let w = Warning::new(dlp_common::wcode::DEAD_NODE, "node 3", "unused");
        assert_eq!(w.to_string(), "[W0101-dead-node] at node 3: unused");
        let w = Warning::new(dlp_common::wcode::DEAD_RANK, "", "whole-program");
        assert_eq!(w.to_string(), "[W0202-dead-rank] whole-program");
    }

    #[test]
    fn empty_report_bounds_nothing() {
        let r = AnalysisReport::default();
        assert_eq!(r.bound_cycles(64), 0);
        assert_eq!(r.estimate_ticks(64, 64), 0);
    }
}
