//! Interval abstract interpretation over the kernel IR.
//!
//! One forward pass over the (topologically ordered) DAG computes an
//! [`AbstractValue`] per node — a constant, an unsigned interval, or
//! `Top` — using transfer functions that over-approximate the exact
//! semantics in `trips_isa::exec::eval`. The pass then judges:
//!
//! * table reads: index provably in bounds (silent), provably *never*
//!   in bounds ([`wcode::TABLE_INDEX_ALWAYS_OOB`]), or unprovable
//!   ([`wcode::UNPROVABLE_TABLE_INDEX`]) — the *dynamic*-index upgrade
//!   of the legality verifier's static-immediate `V0123` check;
//! * irregular loads whose address the domain cannot bound at all
//!   ([`wcode::UNPROVABLE_IRREGULAR_ADDRESS`]);
//! * dead instructions ([`wcode::DEAD_NODE`], via
//!   [`dlp_kernel_ir::IrFacts`] liveness), foldable constants
//!   ([`wcode::FOLDABLE_CONSTANT`]), constant outputs
//!   ([`wcode::CONSTANT_OUTPUT`]) and constant-predicate selects
//!   ([`wcode::DEGENERATE_SELECT`]).
//!
//! ## Soundness of the domain
//!
//! Every abstract value must contain the concrete value for **every**
//! input record. Intervals are over the `u64` view (the view table
//! indexing and addressing use). Transfer functions either fold exactly
//! (all-constant operands go through `exec::eval` itself) or widen:
//! anything sign-dependent, floating-point, or wrap-prone returns `Top`
//! unless the operand intervals exclude the hazard (e.g. `Sub` stays an
//! interval only when `lo(a) >= hi(b)` rules out wraparound).

use dlp_common::{wcode, Value};
use dlp_kernel_ir::{IrFacts, IrOp, KernelIr};
use trips_isa::{exec, Opcode};

use super::Warning;

/// One lattice point of the interval domain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AbstractValue {
    /// Exactly this value on every record.
    Const(Value),
    /// Unsigned interval: the `u64` view lies in `lo..=hi`.
    Range {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// No information.
    Top,
}

impl AbstractValue {
    /// The interval view: `Const` is a point, `Top` is unbounded.
    #[must_use]
    pub fn bounds(self) -> Option<(u64, u64)> {
        match self {
            AbstractValue::Const(v) => Some((v.as_u64(), v.as_u64())),
            AbstractValue::Range { lo, hi } => Some((lo, hi)),
            AbstractValue::Top => None,
        }
    }

    /// The constant, when exactly known.
    #[must_use]
    pub fn constant(self) -> Option<Value> {
        match self {
            AbstractValue::Const(v) => Some(v),
            _ => None,
        }
    }

    fn range(lo: u64, hi: u64) -> AbstractValue {
        if lo == hi {
            AbstractValue::Const(Value::from_u64(lo))
        } else {
            AbstractValue::Range { lo, hi }
        }
    }

    /// Least upper bound of two abstract values.
    #[must_use]
    pub fn join(self, other: AbstractValue) -> AbstractValue {
        if let (AbstractValue::Const(a), AbstractValue::Const(b)) = (self, other) {
            if a == b {
                return AbstractValue::Const(a);
            }
        }
        match (self.bounds(), other.bounds()) {
            (Some((la, ha)), Some((lb, hb))) => AbstractValue::range(la.min(lb), ha.max(hb)),
            _ => AbstractValue::Top,
        }
    }
}

/// Bit-length mask: the largest value expressible in as many bits as
/// `m`, i.e. an upper bound for `x | y` and `x ^ y` when `x, y <= m`.
fn bitlen_mask(m: u64) -> u64 {
    if m == 0 {
        0
    } else {
        u64::MAX >> m.leading_zeros()
    }
}

/// Transfer function for a binary ALU opcode on non-constant operands.
fn bin_transfer(op: Opcode, a: AbstractValue, b: AbstractValue) -> AbstractValue {
    use Opcode::*;
    let ab = a.bounds();
    let bb = b.bounds();
    match op {
        Add => match (ab, bb) {
            (Some((la, ha)), Some((lb, hb))) => match ha.checked_add(hb) {
                Some(hi) => AbstractValue::range(la + lb, hi),
                None => AbstractValue::Top,
            },
            _ => AbstractValue::Top,
        },
        Sub => match (ab, bb) {
            // Interval only when wraparound is impossible for every pair.
            (Some((la, ha)), Some((lb, hb))) if la >= hb => {
                AbstractValue::range(la - hb, ha - lb)
            }
            _ => AbstractValue::Top,
        },
        Mul => match (ab, bb) {
            (Some((la, ha)), Some((lb, hb))) => match ha.checked_mul(hb) {
                Some(hi) => AbstractValue::range(la * lb, hi),
                None => AbstractValue::Top,
            },
            _ => AbstractValue::Top,
        },
        // Unsigned quotient never exceeds the dividend (0 when r == 0).
        Div => match ab {
            Some((_, ha)) => AbstractValue::range(0, ha),
            None => AbstractValue::Top,
        },
        Rem => match (ab, bb) {
            (_, Some((_, 0))) => AbstractValue::Const(Value::ZERO),
            (Some((_, ha)), Some((_, hb))) => AbstractValue::range(0, ha.min(hb - 1)),
            (Some((_, ha)), None) => AbstractValue::range(0, ha),
            (None, Some((_, hb))) => AbstractValue::range(0, hb - 1),
            (None, None) => AbstractValue::Top,
        },
        // 32-bit results are zero-extended.
        Add32 | Sub32 | Mul32 | RotL32 | RotR32 => AbstractValue::range(0, u64::from(u32::MAX)),
        And => match (ab, bb) {
            (Some((_, ha)), Some((_, hb))) => AbstractValue::range(0, ha.min(hb)),
            (Some((_, ha)), None) => AbstractValue::range(0, ha),
            (None, Some((_, hb))) => AbstractValue::range(0, hb),
            (None, None) => AbstractValue::Top,
        },
        // or/xor cannot set a bit above either operand's bit length.
        Or | Xor => match (ab, bb) {
            (Some((_, ha)), Some((_, hb))) => AbstractValue::range(0, bitlen_mask(ha.max(hb))),
            _ => AbstractValue::Top,
        },
        Shr => match ab {
            // Logical right shift never grows; refine by the minimum
            // shift when the count cannot wrap `& 63`.
            Some((_, ha)) => {
                let hi = match bb {
                    Some((lb, hb)) if hb < 64 => ha >> lb,
                    _ => ha,
                };
                AbstractValue::range(0, hi)
            }
            None => AbstractValue::Top,
        },
        Teq | Tne | Tlt | Tle | Tgt | Tge | Tltu | Tgeu | FTeq | FTlt | FTle => {
            AbstractValue::range(0, 1)
        }
        // Shl overflows, Sra sign-extends, FP bit patterns are opaque.
        _ => AbstractValue::Top,
    }
}

/// Transfer function for a unary ALU opcode on a non-constant operand.
fn un_transfer(op: Opcode, a: AbstractValue) -> AbstractValue {
    match op {
        Opcode::Mov => a,
        // Not flips high bits; FP and conversions are sign/NaN-laden.
        _ => AbstractValue::Top,
    }
}

/// Run the interval interpreter over `ir` and report findings.
///
/// `ir` must be valid ([`KernelIr::validate`]); node spans in the
/// returned warnings are IR node indices.
#[must_use]
pub fn analyze_kernel(ir: &KernelIr) -> (Vec<AbstractValue>, Vec<Warning>) {
    let facts = IrFacts::compute(ir);
    let nodes = ir.nodes();
    let mut vals: Vec<AbstractValue> = Vec::with_capacity(nodes.len());
    let mut warnings = Vec::new();
    let mut flagged = vec![false; nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        let span = |i: usize| format!("{} node {i}", ir.name());
        let before = warnings.len();
        let v = match node.op {
            IrOp::RecordIn(_) => AbstractValue::Top,
            IrOp::Const(c) => AbstractValue::Const(ir.constants()[c as usize].1),
            IrOp::Imm(v) => AbstractValue::Const(v),
            IrOp::TableRead { table, index } => {
                let t = &ir.tables()[table as usize];
                let len = t.entries.len() as u64;
                match vals[index.index()].bounds() {
                    Some((lo, _)) if lo >= len => {
                        warnings.push(Warning::new(
                            wcode::TABLE_INDEX_ALWAYS_OOB,
                            span(i),
                            format!(
                                "index of table '{}' is always >= its {len} entries \
                                 (lower bound {lo}); every read returns zero",
                                t.name
                            ),
                        ));
                        AbstractValue::Const(Value::ZERO)
                    }
                    Some((lo, hi)) if hi < len => {
                        // Provably in bounds: the result is confined to the
                        // reachable entries.
                        if let Some(c) = vals[index.index()].constant() {
                            AbstractValue::Const(t.entries[c.as_u64() as usize])
                        } else {
                            let slice = &t.entries[lo as usize..=hi as usize];
                            let els = slice.iter().map(|v| v.as_u64());
                            AbstractValue::range(
                                els.clone().min().unwrap_or(0),
                                els.max().unwrap_or(0),
                            )
                        }
                    }
                    got => {
                        let shown = match got {
                            Some((lo, hi)) => format!("[{lo}, {hi}]"),
                            None => "unbounded".to_string(),
                        };
                        warnings.push(Warning::new(
                            wcode::UNPROVABLE_TABLE_INDEX,
                            span(i),
                            format!(
                                "index of table '{}' ({len} entries) is {shown}: \
                                 not provably in bounds",
                                t.name
                            ),
                        ));
                        // Out-of-bounds reads yield zero, so the result
                        // still joins the in-bounds image with zero.
                        let els = t.entries.iter().map(|v| v.as_u64());
                        AbstractValue::range(0, els.max().unwrap_or(0))
                    }
                }
            }
            IrOp::IrregularLoad { addr } => {
                if vals[addr.index()].bounds().is_none() {
                    warnings.push(Warning::new(
                        wcode::UNPROVABLE_IRREGULAR_ADDRESS,
                        span(i),
                        "irregular-load address is unbounded: the interval domain \
                         cannot confine it to any window"
                            .to_string(),
                    ));
                }
                AbstractValue::Top
            }
            IrOp::Un { op, a } => match vals[a.index()].constant() {
                Some(av) => AbstractValue::Const(exec::eval(op, av, Value::ZERO, Value::ZERO)),
                None => un_transfer(op, vals[a.index()]),
            },
            IrOp::Bin { op, a, b } => {
                match (vals[a.index()].constant(), vals[b.index()].constant()) {
                    (Some(av), Some(bv)) => {
                        AbstractValue::Const(exec::eval(op, av, bv, Value::ZERO))
                    }
                    _ => bin_transfer(op, vals[a.index()], vals[b.index()]),
                }
            }
            IrOp::Sel { p, a, b } => match vals[p.index()].constant() {
                Some(pv) => {
                    let (taken, arm) = if pv.is_true() { (a, "false") } else { (b, "true") };
                    warnings.push(Warning::new(
                        wcode::DEGENERATE_SELECT,
                        span(i),
                        format!("select predicate is the constant {pv:?}; the {arm} arm is dead"),
                    ));
                    vals[taken.index()]
                }
                None => vals[a.index()].join(vals[b.index()]),
            },
        };
        vals.push(v);
        flagged[i] = warnings.len() > before;
    }

    for (i, node) in nodes.iter().enumerate() {
        if !node.op.is_instruction() {
            continue;
        }
        if !facts.live[i] {
            warnings.push(Warning::new(
                wcode::DEAD_NODE,
                format!("{} node {i}", ir.name()),
                "instruction's value never reaches a record output".to_string(),
            ));
        } else if flagged[i] {
            // Already diagnosed above (e.g. an always-OOB read folding to
            // zero); a second "foldable" advisory would be noise.
        } else if let Some(c) = vals[i].constant() {
            warnings.push(Warning::new(
                wcode::FOLDABLE_CONSTANT,
                format!("{} node {i}", ir.name()),
                format!("instruction always computes {c:?}: foldable at build time"),
            ));
        }
    }
    for &(w, r) in ir.outputs() {
        if let Some(c) = vals[r.index()].constant() {
            warnings.push(Warning::new(
                wcode::CONSTANT_OUTPUT,
                format!("{} out {w}", ir.name()),
                format!("output word {w} is the compile-time constant {c:?}"),
            ));
        }
    }
    (vals, warnings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_kernel_ir::{ControlClass, Domain, IrBuilder};

    fn finish(b: IrBuilder) -> KernelIr {
        b.finish(ControlClass::Straight).expect("valid IR")
    }

    fn codes(warnings: &[Warning]) -> Vec<&'static str> {
        warnings.iter().map(|w| w.code).collect()
    }

    #[test]
    fn masked_index_is_proven_in_bounds() {
        // in[0] & 0x7f indexes a 128-entry table: provable, no warning.
        let mut b = IrBuilder::new("masked", Domain::Network, 1, 1);
        let t = b.table("sbox", (0..128).map(Value::from_u64).collect());
        let x = b.input(0);
        let mask = b.imm(Value::from_u64(0x7f));
        let idx = b.bin(Opcode::And, x, mask);
        let v = b.table_read(t, idx);
        b.output(0, v);
        let (vals, warnings) = analyze_kernel(&finish(b));
        assert_eq!(codes(&warnings), Vec::<&str>::new());
        // The table image itself bounds the result.
        assert_eq!(vals.last().unwrap().bounds(), Some((0, 127)));
    }

    #[test]
    fn unmasked_index_is_flagged() {
        let mut b = IrBuilder::new("wild", Domain::Network, 1, 1);
        let t = b.table("sbox", (0..16).map(Value::from_u64).collect());
        let x = b.input(0);
        let v = b.table_read(t, x);
        b.output(0, v);
        let (vals, warnings) = analyze_kernel(&finish(b));
        assert_eq!(codes(&warnings), vec![wcode::UNPROVABLE_TABLE_INDEX]);
        // OOB reads return zero, already inside the table's [0, 15] image.
        assert_eq!(vals.last().unwrap().bounds(), Some((0, 15)));
    }

    #[test]
    fn always_oob_index_is_distinguished() {
        let mut b = IrBuilder::new("oob", Domain::Network, 1, 1);
        let t = b.table("tiny", vec![Value::from_u64(9); 4]);
        let idx = b.imm(Value::from_u64(100));
        let v = b.table_read(t, idx);
        let x = b.input(0);
        let s = b.bin(Opcode::Add, v, x);
        b.output(0, s);
        let (vals, warnings) = analyze_kernel(&finish(b));
        assert_eq!(codes(&warnings), vec![wcode::TABLE_INDEX_ALWAYS_OOB]);
        // eval_record returns zero for OOB reads; the domain agrees.
        assert_eq!(vals[1].constant(), Some(Value::ZERO));
    }

    #[test]
    fn dead_and_foldable_nodes_reported() {
        let mut b = IrBuilder::new("deadfold", Domain::Scientific, 1, 2);
        let x = b.input(0);
        let two = b.imm(Value::from_u64(2));
        let three = b.imm(Value::from_u64(3));
        let folded = b.bin(Opcode::Mul, two, three); // 6, live via output 1
        let _dead = b.bin(Opcode::Add, x, two); // never used
        let sum = b.bin(Opcode::Add, x, folded);
        b.output(0, sum);
        b.output(1, folded);
        let (vals, warnings) = analyze_kernel(&finish(b));
        assert_eq!(vals[folded.index()].constant(), Some(Value::from_u64(6)));
        let cs = codes(&warnings);
        assert!(cs.contains(&wcode::DEAD_NODE));
        assert!(cs.contains(&wcode::FOLDABLE_CONSTANT));
        assert!(cs.contains(&wcode::CONSTANT_OUTPUT));
    }

    #[test]
    fn constant_predicate_select_reported() {
        let mut b = IrBuilder::new("degsel", Domain::Graphics, 2, 1);
        let x = b.input(0);
        let y = b.input(1);
        let p = b.imm(Value::from_u64(1));
        let s = b.sel(p, x, y);
        b.output(0, s);
        let (_, warnings) = analyze_kernel(&finish(b));
        assert_eq!(codes(&warnings), vec![wcode::DEGENERATE_SELECT]);
    }

    #[test]
    fn unbounded_irregular_address_reported() {
        let mut b = IrBuilder::new("irr", Domain::Scientific, 1, 1);
        let x = b.input(0);
        let v = b.irregular_load(x);
        b.output(0, v);
        let (_, warnings) = analyze_kernel(&finish(b));
        assert_eq!(codes(&warnings), vec![wcode::UNPROVABLE_IRREGULAR_ADDRESS]);

        // A masked address is bounded, so no warning fires.
        let mut b = IrBuilder::new("irr2", Domain::Scientific, 1, 1);
        let x = b.input(0);
        let mask = b.imm(Value::from_u64(0xff));
        let a = b.bin(Opcode::And, x, mask);
        let v = b.irregular_load(a);
        b.output(0, v);
        let (_, warnings) = analyze_kernel(&finish(b));
        assert_eq!(codes(&warnings), Vec::<&str>::new());
    }

    #[test]
    fn interval_arithmetic_is_sound_on_samples() {
        // mod-then-add: ((in[0] % 10) + 5) in [5, 14].
        let mut b = IrBuilder::new("arith", Domain::Scientific, 1, 1);
        let x = b.input(0);
        let ten = b.imm(Value::from_u64(10));
        let five = b.imm(Value::from_u64(5));
        let m = b.bin(Opcode::Rem, x, ten);
        let s = b.bin(Opcode::Add, m, five);
        b.output(0, s);
        let ir = finish(b);
        let (vals, _) = analyze_kernel(&ir);
        let (lo, hi) = vals.last().unwrap().bounds().expect("bounded");
        assert_eq!((lo, hi), (5, 14));
        for sample in [0u64, 1, 9, 10, 12345, u64::MAX] {
            let out = ir.eval_record(&[Value::from_u64(sample)], &|_| Value::ZERO);
            let got = out[0].as_u64();
            assert!((lo..=hi).contains(&got), "{sample} -> {got} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn sub_widens_to_top_when_wrap_is_possible() {
        let a = AbstractValue::Range { lo: 0, hi: 5 };
        let b = AbstractValue::Range { lo: 0, hi: 3 };
        assert_eq!(bin_transfer(Opcode::Sub, a, b), AbstractValue::Top);
        let safe = AbstractValue::Range { lo: 10, hi: 12 };
        assert_eq!(
            bin_transfer(Opcode::Sub, safe, b),
            AbstractValue::Range { lo: 7, hi: 12 }
        );
    }

    #[test]
    fn join_behaves_like_a_lattice() {
        let c1 = AbstractValue::Const(Value::from_u64(4));
        let c2 = AbstractValue::Const(Value::from_u64(9));
        assert_eq!(c1.join(c1), c1);
        assert_eq!(c1.join(c2), AbstractValue::Range { lo: 4, hi: 9 });
        assert_eq!(c1.join(AbstractValue::Top), AbstractValue::Top);
    }
}
