//! Sound static cost models: lower bounds on `sim_cycles`.
//!
//! Each model mirrors a *subset* of the simulator's timing rules —
//! exactly the monotone ones — and drops everything that can only add
//! time (network contention and queueing, memory-bank conflicts, cache
//! misses, store-buffer drain, fault retries, setup blocks). What
//! remains is a certified lower bound: for every lowering the engine
//! can run, `bound_cycles <= stats.sim_cycles()`. The bound is proven
//! in-tree against all cells of the experiment grid by
//! `tests/cost_soundness`.
//!
//! Three resource arguments compose by `max`:
//!
//! * **Fetch/dependence** — the fetch engine streams the block before
//!   the first iteration seeds, and a sink completes no earlier than
//!   its seed start plus the placed critical path (node latencies plus
//!   `hop_ticks x` Manhattan distance per forwarded operand).
//! * **Issue** — every node issues at most one instruction per cycle
//!   ([`Throttle`] capacity 1), so the busiest node's `iterations x K`
//!   issues occupy that many distinct cycles, none earlier than the
//!   first seed.
//! * **Register-bank ports** — each bank injects at most
//!   `reg_reads_per_bank_per_cycle` operands per cycle, so a bank
//!   serving `R` reads occupies `ceil(R / ports)` distinct cycles.
//!
//! The MIMD model is simpler: a rank cannot halt before the broadcast
//! fetch completes plus the *cheapest* path from `pc 0` to a `Halt`,
//! every instruction advancing the rank clock by at least its weight.
//!
//! [`Throttle`]: ../../../trips_mem/struct.Throttle.html

use std::collections::{BinaryHeap, HashMap};

use dlp_common::{ticks_to_cycles, wcode, GridShape, Tick, TimingParams};
use serde::Serialize;
use trips_isa::{MimdOp, MimdProgram, Opcode, PlacedInst, Target};

use super::Warning;

/// Fetch-engine occupancy for streaming `insts` instructions.
///
/// Duplicates `Machine::fetch_ticks` (crates/sim/src/machine.rs), which
/// is crate-private there; `tests/cost_soundness` keeps the two honest.
#[must_use]
pub fn fetch_ticks(insts: usize, timing: &TimingParams) -> Tick {
    let per_cycle = u64::from(timing.fetch.insts_per_cycle.max(1));
    (insts as u64).div_ceil(per_cycle) * 2
}

/// Baseline (ILP-mode) fetch occupancy for one kernel instance: the
/// instance streams as a sequence of budget-bounded hyperblocks with a
/// dispatch bubble between them. Mirrors `Machine::fetch_ticks_baseline`.
#[must_use]
pub fn fetch_ticks_baseline(insts: usize, grid: GridShape, timing: &TimingParams) -> Tick {
    let per_cycle = u64::from(timing.fetch.insts_per_cycle.max(1));
    let chunk = (timing.core.baseline_slots_per_node * grid.nodes()).max(1);
    let blocks = insts.max(1).div_ceil(chunk) as u64;
    (insts as u64).div_ceil(per_cycle) * 2 + (blocks - 1) * 4
}

/// The weight of one placed instruction on the critical path: the time
/// from issue to the earliest tick its result can leave the node.
/// `Nop` never produces an event; `Lut` hits the node-local L0 store.
fn node_weight(op: Opcode, timing: &TimingParams) -> Tick {
    match op {
        Opcode::Nop => 0,
        Opcode::Lut => timing.mem.l0_latency,
        _ => op.latency(&timing.ops),
    }
}

/// Static cost model of one dataflow lowering.
///
/// Built once per prepared plan; [`DataflowCost::bound_ticks`] then
/// evaluates the bound for any iteration count, so a single analysis
/// serves every record count the sweep asks for.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct DataflowCost {
    /// One-time mapping latency charged before the first fetch.
    pub map_overhead: Tick,
    /// Fetch occupancy per streamed kernel instance.
    pub per_fetch: Tick,
    /// Whether instruction revitalization keeps the block resident
    /// (fetch once) instead of re-streaming it per iteration.
    pub inst_revit: bool,
    /// Revitalization broadcast delay between resident iterations.
    pub revitalize_delay: Tick,
    /// Placed critical path in ticks: node latencies plus per-hop
    /// forwarding along the longest root-to-sink chain.
    pub critical_path: Tick,
    /// Non-`Nop` instructions on the busiest node (issue pressure `K`).
    pub max_node_insts: u64,
    /// Register reads per bank on the first iteration.
    pub bank_first: Vec<u64>,
    /// Register reads per bank on every later iteration (persistent
    /// reads drop out under operand revitalization).
    pub bank_rest: Vec<u64>,
    /// Injection ports per bank per cycle.
    pub reads_per_bank: u64,
}

impl DataflowCost {
    /// Analyze `block` as lowered for `grid` under `timing` and the
    /// given mechanism flags. Also reports cost-model advisories
    /// (currently [`wcode::ISSUE_HOTSPOT`]).
    #[must_use]
    pub fn of(
        block: &trips_isa::DataflowBlock,
        grid: GridShape,
        timing: &TimingParams,
        inst_revit: bool,
        op_revit: bool,
    ) -> (Self, Vec<Warning>) {
        let insts = block.insts();
        let critical_path = critical_path_ticks(insts, timing);

        // Issue pressure: non-Nop instructions per node.
        let mut per_node: HashMap<(u8, u8), u64> = HashMap::new();
        for inst in insts {
            if !matches!(inst.op, Opcode::Nop) {
                *per_node.entry((inst.slot.node.row, inst.slot.node.col)).or_insert(0) += 1;
            }
        }
        let (&hot_node, &max_node_insts) =
            per_node.iter().max_by_key(|&(c, n)| (*n, std::cmp::Reverse(*c))).unwrap_or((&(0, 0), &0));

        // Register-bank pressure: reads per bank, first vs later
        // iterations (operand revitalization skips persistent reads
        // after the first seed; without instruction revitalization
        // every iteration seeds fresh).
        let banks = timing.core.reg_banks.max(1) as usize;
        let mut bank_first = vec![0u64; banks];
        let mut bank_rest = vec![0u64; banks];
        for rr in block.reg_reads() {
            let bank = rr.reg as usize % banks;
            bank_first[bank] += 1;
            if !(inst_revit && op_revit && rr.persistent) {
                bank_rest[bank] += 1;
            }
        }

        let per_fetch = if inst_revit {
            fetch_ticks(block.len(), timing)
        } else {
            fetch_ticks_baseline(block.len(), grid, timing)
        };
        let cost = DataflowCost {
            map_overhead: timing.fetch.map_overhead,
            per_fetch,
            inst_revit,
            revitalize_delay: timing.fetch.revitalize_delay,
            critical_path,
            max_node_insts,
            bank_first,
            bank_rest,
            reads_per_bank: u64::from(timing.core.reg_reads_per_bank_per_cycle.max(1)),
        };

        let mut warnings = Vec::new();
        if max_node_insts > 1 && 2 * max_node_insts > critical_path {
            warnings.push(Warning::new(
                wcode::ISSUE_HOTSPOT,
                format!("node ({},{})", hot_node.0, hot_node.1),
                format!(
                    "{max_node_insts} instructions serialize on one node's issue port \
                     ({} ticks) beyond the {critical_path}-tick critical path",
                    2 * max_node_insts
                ),
            ));
        }
        (cost, warnings)
    }

    /// The sound lower bound in ticks for a run of `iterations` block
    /// iterations: `max` of the fetch/dependence, issue, and bank
    /// arguments. Zero iterations run nothing.
    #[must_use]
    pub fn bound_ticks(&self, iterations: u64) -> Tick {
        if iterations == 0 {
            return 0;
        }
        // First seed cannot start before mapping plus the first fetch.
        let s1 = self.map_overhead + self.per_fetch;
        let mut bound = if self.inst_revit {
            // Resident block: iterations chain through revitalization,
            // each traversing the critical path.
            s1 + iterations * self.critical_path + (iterations - 1) * self.revitalize_delay
        } else {
            // Re-streamed block: the fetch engine serializes instances;
            // the last instance still traverses the critical path.
            self.map_overhead + iterations * self.per_fetch + self.critical_path
        };
        if self.max_node_insts > 0 {
            // `iterations * K` issues on a 1-per-cycle port, none
            // earlier than cycle `s1 / 2`.
            bound = bound.max(2 * (s1 / 2 + iterations * self.max_node_insts - 1));
        }
        for (first, rest) in self.bank_first.iter().zip(&self.bank_rest) {
            let reads = first + (iterations - 1) * rest;
            if reads > 0 {
                bound = bound.max(2 * (s1 / 2 + reads.div_ceil(self.reads_per_bank) - 1));
            }
        }
        bound
    }

    /// [`DataflowCost::bound_ticks`] in cycles — directly comparable to
    /// `SimStats::sim_cycles()` (the conversion is monotone).
    #[must_use]
    pub fn bound_cycles(&self, iterations: u64) -> u64 {
        ticks_to_cycles(self.bound_ticks(iterations))
    }
}

/// Longest root-to-sink path over the placed block: node weights from
/// [`node_weight`], edge weights `hop_ticks x` Manhattan distance for
/// forwarded operands. Edges out of `Lmw` weigh zero (words stream from
/// the memory port, not the issuing node); `Reg` targets leave the
/// block. A malformed (cyclic) block yields 0 — still a lower bound.
fn critical_path_ticks(insts: &[PlacedInst], timing: &TimingParams) -> Tick {
    let by_slot: HashMap<_, _> =
        insts.iter().enumerate().map(|(i, inst)| (inst.slot, i)).collect();
    let mut succs: Vec<Vec<(usize, Tick)>> = vec![Vec::new(); insts.len()];
    let mut indeg = vec![0usize; insts.len()];
    for (i, inst) in insts.iter().enumerate() {
        if matches!(inst.op, Opcode::Nop) {
            continue; // a Nop never fires an event: no outgoing edges
        }
        for tgt in &inst.targets {
            let Target::Port { slot, .. } = tgt else { continue };
            let Some(&j) = by_slot.get(slot) else { continue };
            let hops = if matches!(inst.op, Opcode::Lmw) {
                0
            } else {
                u64::from(inst.slot.node.manhattan(slot.node)) * timing.net.hop_ticks
            };
            succs[i].push((j, hops));
            indeg[j] += 1;
        }
    }
    let mut finish = vec![0u64; insts.len()];
    let mut queue: Vec<usize> =
        (0..insts.len()).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0usize;
    let mut cp = 0u64;
    while let Some(i) = queue.pop() {
        seen += 1;
        finish[i] += node_weight(insts[i].op, timing);
        cp = cp.max(finish[i]);
        for &(j, edge) in &succs[i] {
            finish[j] = finish[j].max(finish[i] + edge);
            indeg[j] -= 1;
            if indeg[j] == 0 {
                queue.push(j);
            }
        }
    }
    if seen == insts.len() {
        cp
    } else {
        0 // cycle: the legality verifier rejects it; stay sound
    }
}

/// Static cost model of one MIMD partition.
///
/// The bound is record-count independent: the per-record loop lives
/// *inside* each rank's program, and the model only claims the cheapest
/// complete traversal. [`MimdCost::estimate_ticks`] adds an (unsound)
/// per-record extrapolation for scheduling.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct MimdCost {
    /// Broadcast fetch of the longest program before any rank steps.
    pub start: Tick,
    /// Max over non-empty ranks of the cheapest `pc 0 -> Halt` path.
    pub max_rank_path: Tick,
    /// Total instruction weight across ranks divided by rank count —
    /// the per-record term of the scheduling estimate.
    pub per_record_estimate: Tick,
}

impl MimdCost {
    /// Analyze a partition (the slice handed to the engine, replicas
    /// included) under `timing`.
    #[must_use]
    pub fn of(progs: &[MimdProgram], timing: &TimingParams) -> Self {
        let active: Vec<&MimdProgram> = progs.iter().filter(|p| !p.is_empty()).collect();
        if active.is_empty() {
            return MimdCost { start: 0, max_rank_path: 0, per_record_estimate: 0 };
        }
        let longest = progs.iter().map(MimdProgram::len).max().unwrap_or(0);
        let start = fetch_ticks(longest, timing);
        let max_rank_path =
            active.iter().map(|p| min_halt_path(p, timing)).max().unwrap_or(0);
        let total_weight: u64 = active
            .iter()
            .flat_map(|p| p.insts().iter())
            .map(|inst| mimd_weight(inst.op, timing))
            .sum();
        MimdCost {
            start,
            max_rank_path,
            per_record_estimate: total_weight / active.len() as u64,
        }
    }

    /// The sound lower bound in ticks: no rank halts before the fetch
    /// completes plus its cheapest path to `Halt`. Requires at least
    /// one record (the grid always runs some); an empty partition
    /// bounds nothing.
    #[must_use]
    pub fn bound_ticks(&self) -> Tick {
        self.start + self.max_rank_path
    }

    /// [`MimdCost::bound_ticks`] in cycles.
    #[must_use]
    pub fn bound_cycles(&self) -> u64 {
        ticks_to_cycles(self.bound_ticks())
    }

    /// Scheduling estimate: the bound plus a per-record extrapolation.
    /// **Not** sound — ordering key only.
    #[must_use]
    pub fn estimate_ticks(&self, records: u64) -> Tick {
        self.bound_ticks() + records * self.per_record_estimate
    }
}

/// Minimum time one instruction advances its rank's clock. Loads and
/// sends also traverse the network, which only adds; a `Recv` consumes
/// its message with an ALU-latency step once data is present (waiting
/// only delays). `Halt` retires the rank instantly.
fn mimd_weight(op: MimdOp, timing: &TimingParams) -> Tick {
    match op {
        MimdOp::Alu(o) | MimdOp::AluI(o) => o.latency(&timing.ops),
        MimdOp::Li => timing.ops.mov,
        MimdOp::Lut => timing.mem.l0_latency,
        MimdOp::Halt => 0,
        MimdOp::Ld(_)
        | MimdOp::St(_)
        | MimdOp::Jmp
        | MimdOp::Bez
        | MimdOp::Bnz
        | MimdOp::Send
        | MimdOp::Recv => timing.ops.int_alu,
    }
}

/// Cheapest-cost path from `pc 0` to any `Halt`, taking the cheaper arm
/// of every conditional (Dijkstra; weights are non-negative). A program
/// with no reachable `Halt` deadlocks or trips the watchdog — such runs
/// return errors, not stats, so 0 keeps the model trivially sound.
fn min_halt_path(prog: &MimdProgram, timing: &TimingParams) -> Tick {
    let insts = prog.insts();
    let mut dist = vec![u64::MAX; insts.len()];
    let mut heap = BinaryHeap::new();
    dist[0] = 0;
    heap.push(std::cmp::Reverse((0u64, 0usize)));
    while let Some(std::cmp::Reverse((d, pc))) = heap.pop() {
        if d > dist[pc] {
            continue;
        }
        let inst = insts[pc];
        if matches!(inst.op, MimdOp::Halt) {
            return d;
        }
        let w = mimd_weight(inst.op, timing);
        let target = usize::try_from(inst.imm.max(0)).unwrap_or(usize::MAX);
        let succs: &[usize] = match inst.op {
            MimdOp::Jmp => &[target],
            MimdOp::Bez | MimdOp::Bnz => &[pc + 1, target],
            _ => &[pc + 1],
        };
        for &s in succs {
            if s < insts.len() && dist[s] > d + w {
                dist[s] = d + w;
                heap.push(std::cmp::Reverse((dist[s], s)));
            }
        }
    }
    0
}

/// Advisory for a configured watchdog: warn when the *lower* bound
/// already consumes more than half the budget — any contention the
/// model ignores may push the run over ([`wcode::WATCHDOG_MARGIN`]).
#[must_use]
pub fn watchdog_margin(span: &str, bound_ticks: Tick, watchdog_ticks: Tick) -> Option<Warning> {
    if watchdog_ticks > 0 && bound_ticks * 2 > watchdog_ticks {
        Some(Warning::new(
            wcode::WATCHDOG_MARGIN,
            span,
            format!(
                "static lower bound {bound_ticks} ticks exceeds half the \
                 {watchdog_ticks}-tick watchdog budget"
            ),
        ))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_common::{Coord, Value};
    use trips_isa::{DataflowBlock, MemSpace, MimdAsm, Port, Slot};

    fn slot(r: u8, c: u8, i: u16) -> Slot {
        Slot::new(Coord::new(r, c), i)
    }

    /// movi -> add -> store placed on a diagonal: CP = mov + 1 hop +
    /// int_alu + 2 hops + int_alu (store address handoff).
    fn chain_block() -> DataflowBlock {
        let s0 = slot(0, 0, 0);
        let s1 = slot(0, 1, 0);
        let s2 = slot(1, 2, 0);
        let mut a = PlacedInst::new(s0, Opcode::MovI);
        a.imm = Some(Value::from_u64(7));
        a.targets = vec![Target::port(s1, Port::Left)];
        let mut b = PlacedInst::new(s1, Opcode::Add);
        b.imm = Some(Value::from_u64(1));
        b.targets = vec![Target::port(s2, Port::Left)];
        let mut st = PlacedInst::new(s2, Opcode::Store(MemSpace::L1));
        st.imm = Some(Value::from_u64(0));
        DataflowBlock::new("chain", vec![a, b, st], vec![])
    }

    #[test]
    fn critical_path_includes_hops_and_latencies() {
        let timing = TimingParams::default();
        let (cost, warnings) =
            DataflowCost::of(&chain_block(), GridShape::new(4, 4), &timing, true, false);
        // mov 2 + hop 1 + int_alu 2 + 2 hops + int_alu 2 = 9 ticks.
        assert_eq!(cost.critical_path, 9);
        assert_eq!(cost.max_node_insts, 1); // one inst per node
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn revitalized_iterations_chain_through_the_critical_path() {
        let timing = TimingParams::default();
        let (cost, _) =
            DataflowCost::of(&chain_block(), GridShape::new(4, 4), &timing, true, false);
        assert_eq!(cost.bound_ticks(0), 0);
        let s1 = timing.fetch.map_overhead + cost.per_fetch;
        assert_eq!(cost.bound_ticks(1), s1 + 9);
        assert_eq!(
            cost.bound_ticks(10),
            s1 + 10 * 9 + 9 * timing.fetch.revitalize_delay
        );
        // Monotone in iterations, and cycles round up.
        assert!(cost.bound_cycles(10) >= cost.bound_cycles(1));
        assert_eq!(cost.bound_cycles(1), ticks_to_cycles(cost.bound_ticks(1)));
    }

    #[test]
    fn baseline_restreams_every_iteration() {
        let timing = TimingParams::default();
        let grid = GridShape::new(4, 4);
        let (cost, _) = DataflowCost::of(&chain_block(), grid, &timing, false, false);
        assert_eq!(cost.per_fetch, fetch_ticks_baseline(3, grid, &timing));
        let i = 20;
        assert_eq!(
            cost.bound_ticks(i),
            timing.fetch.map_overhead + i * cost.per_fetch + cost.critical_path
        );
    }

    #[test]
    fn issue_pressure_dominates_a_serialized_node() {
        let timing = TimingParams::default();
        // 12 independent MovIs crammed onto one node: issue-bound.
        let node = slot(0, 0, 0).node;
        let insts: Vec<PlacedInst> = (0..12)
            .map(|i| {
                let mut p = PlacedInst::new(Slot::new(node, i), Opcode::MovI);
                p.imm = Some(Value::from_u64(u64::from(i)));
                p
            })
            .collect();
        let blk = DataflowBlock::new("hot", insts, vec![]);
        let (cost, warnings) =
            DataflowCost::of(&blk, GridShape::new(4, 4), &timing, true, true);
        assert_eq!(cost.max_node_insts, 12);
        assert_eq!(cost.critical_path, timing.ops.mov); // all independent
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].code, wcode::ISSUE_HOTSPOT);
        let s1 = timing.fetch.map_overhead + cost.per_fetch;
        let iters = 8;
        assert_eq!(cost.bound_ticks(iters), 2 * (s1 / 2 + iters * 12 - 1));
    }

    #[test]
    fn bank_pressure_and_operand_revitalization() {
        let timing = TimingParams::default();
        let banks = timing.core.reg_banks as u16;
        // 6 reads of registers all mapping to bank 1; half persistent.
        let reads: Vec<trips_isa::RegRead> = (0..6)
            .map(|i| trips_isa::RegRead {
                reg: 1 + i * banks,
                targets: vec![Target::port(slot(0, 0, 0), Port::Left)],
                persistent: i % 2 == 0,
            })
            .collect();
        let mut sink = PlacedInst::new(slot(0, 0, 0), Opcode::Add);
        sink.imm = Some(Value::ZERO);
        let blk = DataflowBlock::new("banky", vec![sink], reads);
        let (norevit, _) =
            DataflowCost::of(&blk, GridShape::new(4, 4), &timing, true, false);
        assert_eq!(norevit.bank_first[1], 6);
        assert_eq!(norevit.bank_rest[1], 6);
        let (revit, _) = DataflowCost::of(&blk, GridShape::new(4, 4), &timing, true, true);
        assert_eq!(revit.bank_rest[1], 3); // persistent reads drop out
        assert!(revit.bound_ticks(50) <= norevit.bound_ticks(50));
    }

    #[test]
    fn mimd_bound_takes_the_cheapest_branch_arm() {
        let timing = TimingParams::default();
        let mut asm = MimdAsm::new();
        asm.li(1, 5); // mov
        asm.bez(1, "out"); // int_alu; cheap arm jumps straight out
        asm.alui(Opcode::FSqrt, 2, 2, 0); // expensive arm, not on min path
        asm.label("out");
        asm.halt();
        let p = asm.assemble().unwrap();
        let cost = MimdCost::of(std::slice::from_ref(&p), &timing);
        assert_eq!(cost.start, fetch_ticks(4, &timing));
        assert_eq!(cost.max_rank_path, timing.ops.mov + timing.ops.int_alu);
        assert_eq!(cost.bound_ticks(), cost.start + cost.max_rank_path);
        // The estimate extrapolates per record and stays above the bound.
        assert!(cost.estimate_ticks(64) >= cost.bound_ticks());
        // Empty partitions bound nothing.
        assert_eq!(MimdCost::of(&[], &timing).bound_ticks(), 0);
        assert_eq!(MimdCost::of(&[MimdProgram::default()], &timing).bound_ticks(), 0);
    }

    #[test]
    fn watchdog_margin_fires_past_half_budget() {
        assert!(watchdog_margin("cell", 0, 100).is_none());
        assert!(watchdog_margin("cell", 50, 100).is_none());
        let w = watchdog_margin("cell", 51, 100).unwrap();
        assert_eq!(w.code, wcode::WATCHDOG_MARGIN);
        assert_eq!(w.span, "cell");
        assert!(watchdog_margin("cell", 51, 0).is_none(), "no watchdog, no margin");
    }
}
