//! # trips-isa
//!
//! The instruction set of the simulated TRIPS-style grid processor from
//! *"Universal Mechanisms for Data-Parallel Architectures"* (MICRO 2003).
//!
//! Two execution models share one opcode vocabulary ([`Opcode`]):
//!
//! * **Dataflow (block) mode** — the native TRIPS model. A
//!   [`DataflowBlock`] statically places instructions into
//!   reservation-station slots on the ALU array; each instruction encodes
//!   *where its result goes* (its [`Target`] list) rather than register
//!   names. Instructions issue dynamically when their operand ports fill
//!   (statically placed, dynamically issued — SPDI). This mode underlies the
//!   baseline and the S / S-O / S-O-D configurations.
//! * **MIMD mode** — the local-program-counter mechanism (§4.3). Each node
//!   runs a small sequential [`MimdProgram`] out of its L0 instruction
//!   store, with real branches, a private register file, and explicit
//!   `Send`/`Recv` over the operand mesh. Programs are written with
//!   [`MimdAsm`], a tiny assembler with label fix-ups.
//!
//! Functional semantics live in [`exec`] and are shared by both simulator
//!   engines, so a kernel computes identical values in either mode.
//!
//! ## Predication model
//!
//! The real TRIPS ISA predicates arbitrary instructions; nullified
//! instructions never fire. To keep the dataflow engine's completion
//! condition simple ("every instruction executes exactly once"), this
//! reproduction expresses conditionals with the three-ported [`Opcode::Sel`]
//! (predicate / true-value / false-value): both sides are computed and the
//! select merges them. That is precisely the masking overhead the paper
//! ascribes to vector/SIMD machines on data-dependent control — and MIMD
//! mode removes it with real branches, reproducing the paper's trade-off.
//!
//! ## Example
//!
//! ```
//! use trips_isa::{MimdAsm, MimdProgram, Opcode};
//!
//! // A MIMD loop: r2 = 10; do { r1 += r2; r2 -= 1 } while r2 != 0
//! let mut asm = MimdAsm::new();
//! asm.li(2, 10);
//! asm.label("loop");
//! asm.alu(Opcode::Add, 1, 1, 2);
//! asm.alui(Opcode::Sub, 2, 2, 1);
//! asm.bnz(2, "loop");
//! asm.halt();
//! let prog: MimdProgram = asm.assemble()?;
//! assert_eq!(prog.len(), 5);
//! # Ok::<(), dlp_common::DlpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataflow;
pub mod exec;
mod mimd;
mod mimd_text;
mod opcode;

pub use dataflow::{DataflowBlock, PlacedInst, Port, PortSet, RegRead, Slot, Target};
pub use mimd::{MimdAsm, MimdInst, MimdOp, MimdProgram, REG_NODE_COUNT, REG_NODE_ID, REG_RECORDS};
pub use mimd_text::parse_mimd;
pub use opcode::{MemSpace, OpClass, OpRole, Opcode};
