//! The dataflow (block-atomic) program representation.
//!
//! A [`DataflowBlock`] is the unit the TRIPS-style processor fetches and maps
//! onto its ALU array. Instructions are *statically placed* into
//! reservation-station slots and *dynamically issued* when their operand
//! ports fill (SPDI). Instead of naming source registers, each instruction
//! names the consumers of its result — the [`Target`] list — which is what
//! lets the microarchitecture route operands point-to-point over the mesh.

use std::collections::HashMap;
use std::fmt;

use dlp_common::{vcode, Coord, DlpError, GridShape, Value};
use serde::{Deserialize, Serialize};

use crate::{OpRole, Opcode};

/// An operand port on a reservation station.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Port {
    /// Left operand.
    Left,
    /// Right operand.
    Right,
    /// Predicate operand (used by [`Opcode::Sel`]).
    Pred,
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Port::Left => write!(f, "L"),
            Port::Right => write!(f, "R"),
            Port::Pred => write!(f, "P"),
        }
    }
}

/// A small set of operand ports, used to mark which operands are
/// *persistent* under operand revitalization (§4.4): persistent operands
/// survive a revitalize and need not be re-delivered each iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PortSet(u8);

impl PortSet {
    /// The empty set.
    pub const EMPTY: PortSet = PortSet(0);
    /// All three ports.
    pub const ALL: PortSet = PortSet(0b111);

    fn bit(port: Port) -> u8 {
        match port {
            Port::Left => 0b001,
            Port::Right => 0b010,
            Port::Pred => 0b100,
        }
    }

    /// Insert a port into the set.
    #[must_use]
    pub fn with(self, port: Port) -> PortSet {
        PortSet(self.0 | Self::bit(port))
    }

    /// Whether the set contains `port`.
    #[must_use]
    pub fn contains(self, port: Port) -> bool {
        self.0 & Self::bit(port) != 0
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// A reservation-station slot: a node coordinate plus a slot index within
/// that node's local instruction storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Slot {
    /// The ALU node.
    pub node: Coord,
    /// Index within the node's reservation stations.
    pub index: u16,
}

impl Slot {
    /// Create a slot.
    #[must_use]
    pub const fn new(node: Coord, index: u16) -> Self {
        Slot { node, index }
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.node, self.index)
    }
}

/// Where an instruction's result is delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Target {
    /// An operand port of another instruction in the same block.
    Port {
        /// Destination slot.
        slot: Slot,
        /// Destination port.
        port: Port,
    },
    /// An architectural register (routed to the register-file banks on the
    /// top edge; forms a block output).
    Reg(u16),
}

impl Target {
    /// Convenience constructor for a port target.
    #[must_use]
    pub const fn port(slot: Slot, port: Port) -> Target {
        Target::Port { slot, port }
    }
}

/// One statically placed instruction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlacedInst {
    /// Where the instruction lives on the array.
    pub slot: Slot,
    /// Operation.
    pub op: Opcode,
    /// Optional immediate. When present it feeds the **right** port (or, for
    /// [`Opcode::MovI`], is the produced value; for [`Opcode::Lmw`], the word
    /// count).
    pub imm: Option<Value>,
    /// Consumers of the result, in fan-out order. For [`Opcode::Lmw`],
    /// target *i* receives word *i*.
    pub targets: Vec<Target>,
    /// Useful vs overhead classification for the ops/cycle metric.
    pub role: OpRole,
    /// Operand ports that persist across revitalization (operand
    /// revitalization, §4.4). Ignored when the mechanism is disabled.
    pub persistent: PortSet,
}

impl PlacedInst {
    /// Create an instruction with no targets (builder style).
    #[must_use]
    pub fn new(slot: Slot, op: Opcode) -> Self {
        PlacedInst {
            slot,
            op,
            imm: None,
            targets: Vec::new(),
            role: OpRole::Useful,
            persistent: PortSet::EMPTY,
        }
    }
}

/// A register-file read injected into the block when it is mapped (or on
/// each revitalization, unless marked persistent).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegRead {
    /// Architectural register number; its bank is `reg % reg_banks`.
    pub reg: u16,
    /// Consumers of the value.
    pub targets: Vec<Target>,
    /// Whether operand revitalization keeps this value alive across
    /// iterations (true for kernel constants on S-O/S-O-D machines).
    pub persistent: bool,
}

/// A complete block-atomic dataflow program for one kernel.
///
/// # Example
///
/// ```
/// use trips_isa::{DataflowBlock, PlacedInst, Slot, Target, Port, Opcode};
/// use dlp_common::{Coord, GridShape, Value};
///
/// let s0 = Slot::new(Coord::new(0, 0), 0);
/// let s1 = Slot::new(Coord::new(0, 1), 0);
/// let mut a = PlacedInst::new(s0, Opcode::MovI);
/// a.imm = Some(Value::from_u64(21));
/// a.targets = vec![Target::port(s1, Port::Left)];
/// let mut b = PlacedInst::new(s1, Opcode::Add);
/// b.imm = Some(Value::from_u64(21));
/// b.targets = vec![Target::Reg(3)];
///
/// let block = DataflowBlock::new("answer", vec![a, b], vec![]);
/// block.validate(GridShape::new(8, 8), 64)?;
/// # Ok::<(), dlp_common::DlpError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataflowBlock {
    name: String,
    insts: Vec<PlacedInst>,
    reg_reads: Vec<RegRead>,
}

impl DataflowBlock {
    /// Assemble a block from placed instructions and register reads.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        insts: Vec<PlacedInst>,
        reg_reads: Vec<RegRead>,
    ) -> Self {
        DataflowBlock { name: name.into(), insts, reg_reads }
    }

    /// Block name (for diagnostics).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The placed instructions.
    #[must_use]
    pub fn insts(&self) -> &[PlacedInst] {
        &self.insts
    }

    /// The register reads injected at map time.
    #[must_use]
    pub fn reg_reads(&self) -> &[RegRead] {
        &self.reg_reads
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the block is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Number of store instructions (part of the completion condition).
    #[must_use]
    pub fn store_count(&self) -> usize {
        self.insts.iter().filter(|i| matches!(i.op, Opcode::Store(_))).count()
    }

    /// Check structural well-formedness against a machine shape.
    ///
    /// Verifies that every slot is on the grid and within the slot budget,
    /// that no two instructions share a slot, that every port target refers
    /// to an existing instruction's *required* port, that no port has two
    /// producers, and that every required port of every instruction has
    /// exactly one producer (a target, a register read, or — for the right
    /// port — an immediate).
    ///
    /// # Errors
    ///
    /// Returns [`DlpError::Verify`] (with the matching
    /// [`dlp_common::vcode`] diagnostic) or [`DlpError::CapacityExceeded`]
    /// describing the first defect found.
    pub fn validate(&self, grid: GridShape, slots_per_node: usize) -> Result<(), DlpError> {
        let mut by_slot: HashMap<Slot, usize> = HashMap::new();
        for (i, inst) in self.insts.iter().enumerate() {
            if !grid.contains(inst.slot.node) {
                return Err(DlpError::verify(
                    vcode::OFF_GRID,
                    format!("inst {i}"),
                    format!("instruction {i} placed off-grid at {}", inst.slot),
                ));
            }
            if inst.slot.index as usize >= slots_per_node {
                return Err(DlpError::CapacityExceeded {
                    resource: "reservation-station slots per node",
                    needed: inst.slot.index as usize + 1,
                    available: slots_per_node,
                });
            }
            if by_slot.insert(inst.slot, i).is_some() {
                return Err(DlpError::verify(
                    vcode::DUPLICATE_SLOT,
                    inst.slot.to_string(),
                    format!("two instructions share slot {}", inst.slot),
                ));
            }
            if !inst.op.produces_result() && !inst.targets.is_empty() {
                return Err(DlpError::verify(
                    vcode::TARGETS_ON_RESULTLESS,
                    inst.slot.to_string(),
                    format!("{} at {} produces no result but has targets", inst.op, inst.slot),
                ));
            }
            if inst.op.produces_result()
                && inst.targets.is_empty()
                && !matches!(inst.op, Opcode::Nop)
            {
                return Err(DlpError::verify(
                    vcode::DROPPED_RESULT,
                    inst.slot.to_string(),
                    format!("{} at {} result is dropped (no targets)", inst.op, inst.slot),
                ));
            }
            if matches!(inst.op, Opcode::Lmw) {
                let n = inst.imm.map_or(0, |v| v.as_u64());
                if n == 0 || n as usize != inst.targets.len() {
                    return Err(DlpError::verify(
                        vcode::LMW_ARITY,
                        inst.slot.to_string(),
                        format!(
                            "lmw at {} has word count {n} but {} targets",
                            inst.slot,
                            inst.targets.len()
                        ),
                    ));
                }
            }
        }

        // Count producers per (slot, port).
        let mut producers: HashMap<(Slot, Port), usize> = HashMap::new();
        let mut feed = |slot: Slot, port: Port| -> Result<(), DlpError> {
            let idx = by_slot.get(&slot).copied().ok_or_else(|| {
                DlpError::verify(
                    vcode::DANGLING_OPERAND,
                    slot.to_string(),
                    format!("target {slot} does not name an instruction"),
                )
            })?;
            let (l, r, p) = self.insts[idx].op.ports();
            let required = match port {
                Port::Left => l,
                Port::Right => r,
                Port::Pred => p,
            };
            if !required {
                return Err(DlpError::verify(
                    vcode::UNREAD_PORT,
                    slot.to_string(),
                    format!(
                        "port {port} of {} at {slot} is not read by that opcode",
                        self.insts[idx].op
                    ),
                ));
            }
            // For stores the immediate is an address offset, not a right-port
            // value, so a network-fed right port does not conflict with it.
            if port == Port::Right
                && self.insts[idx].imm.is_some()
                && !matches!(self.insts[idx].op, Opcode::Store(_))
            {
                return Err(DlpError::verify(
                    vcode::IMMEDIATE_CONFLICT,
                    slot.to_string(),
                    format!("right port of {slot} is fed by both immediate and network"),
                ));
            }
            *producers.entry((slot, port)).or_insert(0) += 1;
            Ok(())
        };

        for inst in &self.insts {
            for t in &inst.targets {
                if let Target::Port { slot, port } = *t {
                    feed(slot, port)?;
                }
            }
        }
        for rr in &self.reg_reads {
            if rr.targets.is_empty() {
                return Err(DlpError::verify(
                    vcode::REGREAD_NO_TARGETS,
                    format!("r{}", rr.reg),
                    format!("register read r{} has no targets", rr.reg),
                ));
            }
            for t in &rr.targets {
                match *t {
                    Target::Port { slot, port } => feed(slot, port)?,
                    Target::Reg(r) => {
                        return Err(DlpError::verify(
                            vcode::REGREAD_TO_REGISTER,
                            format!("r{}", rr.reg),
                            format!("register read r{} targets register r{r}", rr.reg),
                        ))
                    }
                }
            }
        }

        for inst in &self.insts {
            if let Some(((slot, port), n)) =
                producers.iter().find(|((s, _), n)| *s == inst.slot && **n > 1).map(|(k, v)| (*k, *v))
            {
                return Err(DlpError::verify(
                    vcode::MULTIPLE_PRODUCERS,
                    slot.to_string(),
                    format!("port {port} of {slot} has {n} producers"),
                ));
            }
            let (l, r, p) = inst.op.ports();
            let has = |port: Port| producers.contains_key(&(inst.slot, port));
            if l && !has(Port::Left) && !matches!(inst.op, Opcode::Lut if inst.imm.is_some()) {
                return Err(DlpError::verify(
                    vcode::MISSING_PRODUCER,
                    inst.slot.to_string(),
                    format!("left port of {} ({}) has no producer", inst.slot, inst.op),
                ));
            }
            if r && !has(Port::Right) && inst.imm.is_none() {
                return Err(DlpError::verify(
                    vcode::MISSING_PRODUCER,
                    inst.slot.to_string(),
                    format!("right port of {} ({}) has no producer", inst.slot, inst.op),
                ));
            }
            if p && !has(Port::Pred) {
                return Err(DlpError::verify(
                    vcode::MISSING_PRODUCER,
                    inst.slot.to_string(),
                    format!("predicate port of {} ({}) has no producer", inst.slot, inst.op),
                ));
            }
        }
        Ok(())
    }

    /// Render a human-readable disassembly listing.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "block {} ({} insts, {} reg reads):", self.name, self.insts.len(), self.reg_reads.len());
        for rr in &self.reg_reads {
            let tgts: Vec<String> = rr.targets.iter().map(target_str).collect();
            let p = if rr.persistent { " [persist]" } else { "" };
            let _ = writeln!(out, "  read r{} -> {}{}", rr.reg, tgts.join(", "), p);
        }
        let mut insts: Vec<&PlacedInst> = self.insts.iter().collect();
        insts.sort_by_key(|i| i.slot);
        for inst in insts {
            let imm = inst.imm.map_or(String::new(), |v| format!(" #{v}"));
            let tgts: Vec<String> = inst.targets.iter().map(target_str).collect();
            let arrow = if tgts.is_empty() { String::new() } else { format!(" -> {}", tgts.join(", ")) };
            let _ = writeln!(out, "  {}: {}{}{}", inst.slot, inst.op, imm, arrow);
        }
        out
    }
}

fn target_str(t: &Target) -> String {
    match t {
        Target::Port { slot, port } => format!("{slot}.{port}"),
        Target::Reg(r) => format!("r{r}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_common::Coord;

    fn slot(r: u8, c: u8, i: u16) -> Slot {
        Slot::new(Coord::new(r, c), i)
    }

    fn movi(s: Slot, v: u64, targets: Vec<Target>) -> PlacedInst {
        PlacedInst {
            imm: Some(Value::from_u64(v)),
            targets,
            ..PlacedInst::new(s, Opcode::MovI)
        }
    }

    #[test]
    fn valid_two_inst_block() {
        let s0 = slot(0, 0, 0);
        let s1 = slot(0, 1, 0);
        let a = movi(s0, 1, vec![Target::port(s1, Port::Left)]);
        let mut b = PlacedInst::new(s1, Opcode::Add);
        b.imm = Some(Value::from_u64(2));
        b.targets = vec![Target::Reg(0)];
        let blk = DataflowBlock::new("t", vec![a, b], vec![]);
        assert!(blk.validate(GridShape::new(8, 8), 64).is_ok());
        assert_eq!(blk.len(), 2);
        assert_eq!(blk.store_count(), 0);
    }

    #[test]
    fn dangling_target_rejected() {
        let s0 = slot(0, 0, 0);
        let a = movi(s0, 1, vec![Target::port(slot(5, 5, 3), Port::Left)]);
        let blk = DataflowBlock::new("t", vec![a], vec![]);
        assert!(matches!(
            blk.validate(GridShape::new(8, 8), 64),
            Err(DlpError::Verify { code: vcode::DANGLING_OPERAND, .. })
        ));
    }

    #[test]
    fn duplicate_slot_rejected() {
        let s0 = slot(0, 0, 0);
        let a = movi(s0, 1, vec![Target::Reg(0)]);
        let b = movi(s0, 2, vec![Target::Reg(1)]);
        let blk = DataflowBlock::new("t", vec![a, b], vec![]);
        assert!(blk.validate(GridShape::new(8, 8), 64).is_err());
    }

    #[test]
    fn double_producer_rejected() {
        let s0 = slot(0, 0, 0);
        let s1 = slot(0, 1, 0);
        let s2 = slot(0, 2, 0);
        let a = movi(s0, 1, vec![Target::port(s2, Port::Left)]);
        let b = movi(s1, 2, vec![Target::port(s2, Port::Left)]);
        let mut c = PlacedInst::new(s2, Opcode::Not);
        c.targets = vec![Target::Reg(0)];
        let blk = DataflowBlock::new("t", vec![a, b, c], vec![]);
        assert!(blk.validate(GridShape::new(8, 8), 64).is_err());
    }

    #[test]
    fn missing_operand_rejected() {
        let s0 = slot(0, 0, 0);
        let mut a = PlacedInst::new(s0, Opcode::Add); // nothing feeds it
        a.targets = vec![Target::Reg(0)];
        let blk = DataflowBlock::new("t", vec![a], vec![]);
        assert!(blk.validate(GridShape::new(8, 8), 64).is_err());
    }

    #[test]
    fn slot_budget_enforced() {
        let s0 = slot(0, 0, 99);
        let a = movi(s0, 1, vec![Target::Reg(0)]);
        let blk = DataflowBlock::new("t", vec![a], vec![]);
        assert!(matches!(
            blk.validate(GridShape::new(8, 8), 64),
            Err(DlpError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn lmw_target_arity_checked() {
        let s0 = slot(0, 0, 0);
        let s1 = slot(0, 1, 0);
        let s2 = slot(0, 2, 0);
        let addr = movi(s0, 0, vec![Target::port(s1, Port::Left)]);
        let mut lmw = PlacedInst::new(s1, Opcode::Lmw);
        lmw.imm = Some(Value::from_u64(2)); // two words...
        lmw.targets = vec![Target::port(s2, Port::Left)]; // ...one target
        let mut sink = PlacedInst::new(s2, Opcode::Not);
        sink.targets = vec![Target::Reg(0)];
        let blk = DataflowBlock::new("t", vec![addr, lmw, sink], vec![]);
        assert!(blk.validate(GridShape::new(8, 8), 64).is_err());
    }

    #[test]
    fn reg_read_feeds_port() {
        let s0 = slot(0, 0, 0);
        let mut a = PlacedInst::new(s0, Opcode::Not);
        a.targets = vec![Target::Reg(1)];
        let rr = RegRead { reg: 4, targets: vec![Target::port(s0, Port::Left)], persistent: true };
        let blk = DataflowBlock::new("t", vec![a], vec![rr]);
        assert!(blk.validate(GridShape::new(8, 8), 64).is_ok());
    }

    #[test]
    fn disassembly_mentions_everything() {
        let s0 = slot(0, 0, 0);
        let a = movi(s0, 7, vec![Target::Reg(2)]);
        let blk = DataflowBlock::new("demo", vec![a], vec![]);
        let d = blk.disassemble();
        assert!(d.contains("demo"));
        assert!(d.contains("movi"));
        assert!(d.contains("r2"));
    }

    #[test]
    fn portset_operations() {
        let s = PortSet::EMPTY.with(Port::Left).with(Port::Pred);
        assert!(s.contains(Port::Left));
        assert!(!s.contains(Port::Right));
        assert!(s.contains(Port::Pred));
        assert!(!s.is_empty());
        assert!(PortSet::EMPTY.is_empty());
        assert!(PortSet::ALL.contains(Port::Right));
    }
}
