//! Pure functional semantics of the opcode vocabulary.
//!
//! Both simulator engines (dataflow and MIMD) call [`eval`], so a kernel
//! computes bit-identical results in either execution model — the property
//! the integration suite leans on when cross-checking simulated kernels
//! against their reference implementations.

use dlp_common::Value;

use crate::Opcode;

/// Evaluate a non-memory opcode.
///
/// `l`, `r`, `p` are the left, right and predicate operands; unary ops read
/// only `l`, and only [`Opcode::Sel`] reads `p`. Memory opcodes and the
/// engine-provided [`Opcode::MovI`]/[`Opcode::Iter`] are not evaluated here.
///
/// # Panics
///
/// Panics when called with a memory opcode or `MovI`/`Iter`/`Nop` — those
/// are the engine's responsibility, and reaching here indicates a simulator
/// bug rather than a program bug.
#[must_use]
pub fn eval(op: Opcode, l: Value, r: Value, p: Value) -> Value {
    use Opcode::*;
    match op {
        Add => Value::from_u64(l.as_u64().wrapping_add(r.as_u64())),
        Sub => Value::from_u64(l.as_u64().wrapping_sub(r.as_u64())),
        Mul => Value::from_u64(l.as_u64().wrapping_mul(r.as_u64())),
        Div => Value::from_u64(l.as_u64().checked_div(r.as_u64()).unwrap_or(0)),
        Rem => Value::from_u64(l.as_u64().checked_rem(r.as_u64()).unwrap_or(0)),
        Add32 => Value::from_u32(l.as_u32().wrapping_add(r.as_u32())),
        Sub32 => Value::from_u32(l.as_u32().wrapping_sub(r.as_u32())),
        Mul32 => Value::from_u32(l.as_u32().wrapping_mul(r.as_u32())),
        RotL32 => Value::from_u32(l.as_u32().rotate_left(r.as_u32() % 32)),
        RotR32 => Value::from_u32(l.as_u32().rotate_right(r.as_u32() % 32)),
        And => Value::from_u64(l.as_u64() & r.as_u64()),
        Or => Value::from_u64(l.as_u64() | r.as_u64()),
        Xor => Value::from_u64(l.as_u64() ^ r.as_u64()),
        Not => Value::from_u64(!l.as_u64()),
        Shl => Value::from_u64(l.as_u64() << (r.as_u64() & 63)),
        Shr => Value::from_u64(l.as_u64() >> (r.as_u64() & 63)),
        Sra => Value::from_i64(l.as_i64() >> (r.as_u64() & 63)),
        Teq => bool_val(l.as_u64() == r.as_u64()),
        Tne => bool_val(l.as_u64() != r.as_u64()),
        Tlt => bool_val(l.as_i64() < r.as_i64()),
        Tle => bool_val(l.as_i64() <= r.as_i64()),
        Tgt => bool_val(l.as_i64() > r.as_i64()),
        Tge => bool_val(l.as_i64() >= r.as_i64()),
        Tltu => bool_val(l.as_u64() < r.as_u64()),
        Tgeu => bool_val(l.as_u64() >= r.as_u64()),
        FAdd => Value::from_f32(l.as_f32() + r.as_f32()),
        FSub => Value::from_f32(l.as_f32() - r.as_f32()),
        FMul => Value::from_f32(l.as_f32() * r.as_f32()),
        FDiv => Value::from_f32(l.as_f32() / r.as_f32()),
        FSqrt => Value::from_f32(l.as_f32().sqrt()),
        FMin => Value::from_f32(l.as_f32().min(r.as_f32())),
        FMax => Value::from_f32(l.as_f32().max(r.as_f32())),
        FNeg => Value::from_f32(-l.as_f32()),
        FAbs => Value::from_f32(l.as_f32().abs()),
        FFloor => Value::from_f32(l.as_f32().floor()),
        FTeq => bool_val(l.as_f32() == r.as_f32()),
        FTlt => bool_val(l.as_f32() < r.as_f32()),
        FTle => bool_val(l.as_f32() <= r.as_f32()),
        I2F => Value::from_f32(l.as_i32() as f32),
        F2I => {
            let x = l.as_f32();
            let i = if x.is_nan() {
                0
            } else if x >= i32::MAX as f32 {
                i32::MAX
            } else if x <= i32::MIN as f32 {
                i32::MIN
            } else {
                x as i32
            };
            Value::from_i32(i)
        }
        Mov => l,
        Sel => {
            if p.is_true() {
                l
            } else {
                r
            }
        }
        MovI | Iter | Nop | Load(_) | Store(_) | Lmw | Lut => {
            panic!("opcode {op} is engine-evaluated, not ALU-evaluated")
        }
    }
}

fn bool_val(b: bool) -> Value {
    Value::from_u64(u64::from(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn v64(x: u64) -> Value {
        Value::from_u64(x)
    }

    fn e(op: Opcode, l: Value, r: Value) -> Value {
        eval(op, l, r, Value::ZERO)
    }

    #[test]
    fn integer_arithmetic() {
        assert_eq!(e(Opcode::Add, v64(3), v64(4)).as_u64(), 7);
        assert_eq!(e(Opcode::Sub, v64(3), v64(4)).as_u64(), u64::MAX);
        assert_eq!(e(Opcode::Mul, v64(3), v64(4)).as_u64(), 12);
        assert_eq!(e(Opcode::Div, v64(9), v64(2)).as_u64(), 4);
        assert_eq!(e(Opcode::Div, v64(9), v64(0)).as_u64(), 0);
        assert_eq!(e(Opcode::Rem, v64(9), v64(4)).as_u64(), 1);
    }

    #[test]
    fn wrap32_semantics() {
        assert_eq!(
            e(Opcode::Add32, Value::from_u32(0xFFFF_FFFF), Value::from_u32(2)).as_u32(),
            1
        );
        // Result is zero-extended: no garbage in high bits.
        assert_eq!(
            e(Opcode::Add32, Value::from_bits(0xAAAA_0000_0000_0001), Value::from_u32(1)).bits(),
            2
        );
        assert_eq!(e(Opcode::RotL32, Value::from_u32(0x8000_0000), Value::from_u32(1)).as_u32(), 1);
        assert_eq!(e(Opcode::RotR32, Value::from_u32(1), Value::from_u32(1)).as_u32(), 0x8000_0000);
    }

    #[test]
    fn comparisons_are_canonical() {
        assert_eq!(e(Opcode::Tlt, Value::from_i64(-1), v64(0)).as_u64(), 1);
        assert_eq!(e(Opcode::Tltu, Value::from_i64(-1), v64(0)).as_u64(), 0);
        assert_eq!(e(Opcode::Teq, v64(5), v64(5)).as_u64(), 1);
        assert_eq!(e(Opcode::Tne, v64(5), v64(5)).as_u64(), 0);
        assert_eq!(e(Opcode::Tge, Value::from_i64(-3), Value::from_i64(-3)).as_u64(), 1);
    }

    #[test]
    fn float_ops() {
        let a = Value::from_f32(1.5);
        let b = Value::from_f32(2.0);
        assert_eq!(e(Opcode::FAdd, a, b).as_f32(), 3.5);
        assert_eq!(e(Opcode::FMul, a, b).as_f32(), 3.0);
        assert_eq!(e(Opcode::FDiv, b, a).as_f32(), 2.0 / 1.5);
        assert_eq!(e(Opcode::FSqrt, Value::from_f32(9.0), Value::ZERO).as_f32(), 3.0);
        assert_eq!(e(Opcode::FNeg, a, Value::ZERO).as_f32(), -1.5);
        assert_eq!(e(Opcode::FAbs, Value::from_f32(-4.0), Value::ZERO).as_f32(), 4.0);
        assert_eq!(e(Opcode::FFloor, Value::from_f32(2.7), Value::ZERO).as_f32(), 2.0);
        assert_eq!(e(Opcode::FTlt, a, b).as_u64(), 1);
    }

    #[test]
    fn conversions() {
        assert_eq!(e(Opcode::I2F, Value::from_i32(-7), Value::ZERO).as_f32(), -7.0);
        assert_eq!(e(Opcode::F2I, Value::from_f32(-7.9), Value::ZERO).as_i32(), -7);
        assert_eq!(e(Opcode::F2I, Value::from_f32(f32::NAN), Value::ZERO).as_i32(), 0);
        assert_eq!(e(Opcode::F2I, Value::from_f32(1e30), Value::ZERO).as_i32(), i32::MAX);
    }

    #[test]
    fn select_reads_predicate() {
        let a = v64(10);
        let b = v64(20);
        assert_eq!(eval(Opcode::Sel, a, b, v64(1)).as_u64(), 10);
        assert_eq!(eval(Opcode::Sel, a, b, v64(0)).as_u64(), 20);
    }

    #[test]
    #[should_panic(expected = "engine-evaluated")]
    fn memory_ops_panic() {
        e(Opcode::Lmw, Value::ZERO, Value::ZERO);
    }

    proptest! {
        #[test]
        fn add_matches_wrapping(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(e(Opcode::Add, v64(a), v64(b)).as_u64(), a.wrapping_add(b));
        }

        #[test]
        fn xor_is_involutive(a in any::<u64>(), b in any::<u64>()) {
            let x = e(Opcode::Xor, v64(a), v64(b));
            prop_assert_eq!(e(Opcode::Xor, x, v64(b)).as_u64(), a);
        }

        #[test]
        fn rot32_roundtrip(a in any::<u32>(), n in 0u32..32) {
            let r = e(Opcode::RotL32, Value::from_u32(a), Value::from_u32(n));
            prop_assert_eq!(e(Opcode::RotR32, r, Value::from_u32(n)).as_u32(), a);
        }

        #[test]
        fn comparisons_are_total_order_consistent(a in any::<i64>(), b in any::<i64>()) {
            let lt = e(Opcode::Tlt, Value::from_i64(a), Value::from_i64(b)).is_true();
            let ge = e(Opcode::Tge, Value::from_i64(a), Value::from_i64(b)).is_true();
            prop_assert_ne!(lt, ge);
        }

        #[test]
        fn sel_picks_one_side(a in any::<u64>(), b in any::<u64>(), p in any::<u64>()) {
            let out = eval(Opcode::Sel, v64(a), v64(b), v64(p)).as_u64();
            prop_assert!(out == a || out == b);
        }
    }
}
