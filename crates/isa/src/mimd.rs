//! The MIMD sub-ISA used by the local-program-counter mechanism (§4.3).
//!
//! When the array is configured as a fine-grain MIMD machine, each node
//! fetches sequentially from its L0 instruction store under a local PC and
//! executes against a private register file (the operand-storage buffers
//! repurposed as read/write registers). Real branches replace predication,
//! and explicit `Send`/`Recv` instructions use the inter-ALU network for
//! fine-grain synchronization.
//!
//! ## Register conventions
//!
//! The setup block preloads three registers before releasing the local PCs
//! (mirroring the paper's setup-block protocol):
//!
//! * `r30` — this node's linear index within the partition,
//! * `r31` — number of nodes in the partition,
//! * `r29` — total number of records (kernel instances) to process.
//!
//! Kernels typically stride records by `r31` starting at `r30`.

use std::collections::HashMap;
use std::fmt;

use dlp_common::{vcode, Coord, DlpError, Value};
use serde::{Deserialize, Serialize};

use crate::{MemSpace, OpRole, Opcode};

/// Register holding the node's linear index at program start.
pub const REG_NODE_ID: u8 = 30;
/// Register holding the partition's node count at program start.
pub const REG_NODE_COUNT: u8 = 31;
/// Register holding the total record count at program start.
pub const REG_RECORDS: u8 = 29;

/// MIMD operation kinds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum MimdOp {
    /// ALU operation `rd = op(ra, rb)`; unary ops ignore `rb`.
    Alu(Opcode),
    /// ALU operation with immediate right operand: `rd = op(ra, imm)`.
    AluI(Opcode),
    /// Load immediate: `rd = imm`.
    Li,
    /// Load word: `rd = mem[ra + imm]` (word address) from the given space.
    Ld(MemSpace),
    /// Store word: `mem[ra + imm] = rb` in the given space.
    St(MemSpace),
    /// L0 data-store read: `rd = l0[ra + imm]`.
    Lut,
    /// Unconditional jump to instruction index `imm`.
    Jmp,
    /// Branch to `imm` when `ra == 0`.
    Bez,
    /// Branch to `imm` when `ra != 0`.
    Bnz,
    /// Send `ra` to node `imm` (linear index within the partition).
    Send,
    /// Receive into `rd` the oldest message sent by node `imm`.
    Recv,
    /// Stop this node.
    Halt,
}

/// One MIMD instruction (register encoding).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MimdInst {
    /// Operation.
    pub op: MimdOp,
    /// Destination register.
    pub rd: u8,
    /// First source register.
    pub ra: u8,
    /// Second source register.
    pub rb: u8,
    /// Immediate / branch target / node index.
    pub imm: i64,
    /// Useful vs overhead classification.
    pub role: OpRole,
}

impl fmt::Display for MimdInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            MimdOp::Alu(op) => write!(f, "{op} r{}, r{}, r{}", self.rd, self.ra, self.rb),
            MimdOp::AluI(op) => write!(f, "{op}i r{}, r{}, #{}", self.rd, self.ra, self.imm),
            MimdOp::Li => write!(f, "li r{}, #{:#x}", self.rd, self.imm),
            MimdOp::Ld(s) => write!(f, "ld.{s} r{}, [r{} + {}]", self.rd, self.ra, self.imm),
            MimdOp::St(s) => write!(f, "st.{s} [r{} + {}], r{}", self.ra, self.imm, self.rb),
            MimdOp::Lut => write!(f, "lut r{}, [r{} + {}]", self.rd, self.ra, self.imm),
            MimdOp::Jmp => write!(f, "jmp {}", self.imm),
            MimdOp::Bez => write!(f, "bez r{}, {}", self.ra, self.imm),
            MimdOp::Bnz => write!(f, "bnz r{}, {}", self.ra, self.imm),
            MimdOp::Send => write!(f, "send r{} -> node {}", self.ra, self.imm),
            MimdOp::Recv => write!(f, "recv r{} <- node {}", self.rd, self.imm),
            MimdOp::Halt => write!(f, "halt"),
        }
    }
}

/// A validated MIMD program for one node (or one replicated node role).
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct MimdProgram {
    insts: Vec<MimdInst>,
}

impl MimdProgram {
    /// Build a program directly from resolved instructions (used by the
    /// text parser; prefer [`MimdAsm`] when writing programs in code —
    /// it resolves labels and validates registers).
    #[must_use]
    pub fn from_insts(insts: Vec<MimdInst>) -> Self {
        MimdProgram { insts }
    }

    /// The instructions.
    #[must_use]
    pub fn insts(&self) -> &[MimdInst] {
        &self.insts
    }

    /// Program length in instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Render a disassembly listing.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let _ = writeln!(out, "{i:4}: {inst}");
        }
        out
    }
}

/// A tiny assembler for [`MimdProgram`]s with label fix-ups.
///
/// See the crate-level example. Registers are physical (`0..=31`); the
/// conventions in the module docs reserve `r29`–`r31`.
#[derive(Debug, Default)]
pub struct MimdAsm {
    insts: Vec<MimdInst>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String)>,
    default_role: OpRole,
}

impl MimdAsm {
    /// Create an empty assembler.
    #[must_use]
    pub fn new() -> Self {
        MimdAsm::default()
    }

    /// Set the role recorded on subsequently emitted instructions.
    pub fn set_role(&mut self, role: OpRole) -> &mut Self {
        self.default_role = role;
        self
    }

    fn push(&mut self, op: MimdOp, rd: u8, ra: u8, rb: u8, imm: i64) -> &mut Self {
        self.insts.push(MimdInst { op, rd, ra, rb, imm, role: self.default_role });
        self
    }

    /// Define a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined (an assembler-usage bug).
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        let prev = self.labels.insert(name.clone(), self.insts.len());
        assert!(prev.is_none(), "label {name} defined twice");
        self
    }

    /// `rd = op(ra, rb)`.
    pub fn alu(&mut self, op: Opcode, rd: u8, ra: u8, rb: u8) -> &mut Self {
        self.push(MimdOp::Alu(op), rd, ra, rb, 0)
    }

    /// `rd = op(ra, imm)`.
    pub fn alui(&mut self, op: Opcode, rd: u8, ra: u8, imm: i64) -> &mut Self {
        self.push(MimdOp::AluI(op), rd, ra, 0, imm)
    }

    /// `rd = imm` (bits; use [`MimdAsm::lif`] for f32 immediates).
    pub fn li(&mut self, rd: u8, imm: i64) -> &mut Self {
        self.push(MimdOp::Li, rd, 0, 0, imm)
    }

    /// `rd = bits(imm as f32)`.
    pub fn lif(&mut self, rd: u8, imm: f32) -> &mut Self {
        self.push(MimdOp::Li, rd, 0, 0, i64::from(Value::from_f32(imm).bits() as u32))
    }

    /// `rd = mem[ra + off]` from `space`.
    pub fn ld(&mut self, space: MemSpace, rd: u8, ra: u8, off: i64) -> &mut Self {
        self.push(MimdOp::Ld(space), rd, ra, 0, off)
    }

    /// `mem[ra + off] = rb` in `space`.
    pub fn st(&mut self, space: MemSpace, ra: u8, off: i64, rb: u8) -> &mut Self {
        self.push(MimdOp::St(space), 0, ra, rb, off)
    }

    /// `rd = l0[ra + off]`.
    pub fn lut(&mut self, rd: u8, ra: u8, off: i64) -> &mut Self {
        self.push(MimdOp::Lut, rd, ra, 0, off)
    }

    /// Unconditional jump to `label`.
    pub fn jmp(&mut self, label: impl Into<String>) -> &mut Self {
        self.fixups.push((self.insts.len(), label.into()));
        self.push(MimdOp::Jmp, 0, 0, 0, 0)
    }

    /// Branch to `label` when `ra == 0`.
    pub fn bez(&mut self, ra: u8, label: impl Into<String>) -> &mut Self {
        self.fixups.push((self.insts.len(), label.into()));
        self.push(MimdOp::Bez, 0, ra, 0, 0)
    }

    /// Branch to `label` when `ra != 0`.
    pub fn bnz(&mut self, ra: u8, label: impl Into<String>) -> &mut Self {
        self.fixups.push((self.insts.len(), label.into()));
        self.push(MimdOp::Bnz, 0, ra, 0, 0)
    }

    /// Send `ra` to partition node `node`.
    pub fn send(&mut self, ra: u8, node: usize) -> &mut Self {
        self.push(MimdOp::Send, 0, ra, 0, node as i64)
    }

    /// Receive into `rd` from partition node `node`.
    pub fn recv(&mut self, rd: u8, node: usize) -> &mut Self {
        self.push(MimdOp::Recv, rd, 0, 0, node as i64)
    }

    /// Stop this node.
    pub fn halt(&mut self) -> &mut Self {
        self.push(MimdOp::Halt, 0, 0, 0, 0)
    }

    /// Current instruction count (useful for capacity checks while building).
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether nothing has been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Resolve labels and produce the program.
    ///
    /// # Errors
    ///
    /// Returns [`DlpError::Verify`] (with the matching
    /// [`dlp_common::vcode`] diagnostic) for undefined labels, ALU opcodes
    /// that are not register-to-register computations (memory or engine
    /// ops inside [`MimdOp::Alu`]), or out-of-range registers.
    pub fn assemble(mut self) -> Result<MimdProgram, DlpError> {
        for (at, label) in &self.fixups {
            let tgt = self.labels.get(label).ok_or_else(|| {
                DlpError::verify(
                    vcode::UNDEFINED_LABEL,
                    format!("inst {at}"),
                    format!("undefined label {label}"),
                )
            })?;
            self.insts[*at].imm = *tgt as i64;
        }
        for (i, inst) in self.insts.iter().enumerate() {
            if let MimdOp::Alu(op) | MimdOp::AluI(op) = inst.op {
                if op.is_mem() || matches!(op, Opcode::MovI | Opcode::Iter | Opcode::Nop) {
                    return Err(DlpError::verify(
                        vcode::NON_ALU_OPCODE,
                        format!("inst {i}"),
                        format!("instruction {i}: {op} is not a register ALU op"),
                    ));
                }
            }
            for r in [inst.rd, inst.ra, inst.rb] {
                if r >= 32 {
                    return Err(DlpError::verify(
                        vcode::MIMD_REGISTER_RANGE,
                        format!("inst {i}"),
                        format!("instruction {i}: register r{r} out of range"),
                    ));
                }
            }
            if let MimdOp::Jmp | MimdOp::Bez | MimdOp::Bnz = inst.op {
                if inst.imm < 0 || inst.imm as usize > self.insts.len() {
                    return Err(DlpError::verify(
                        vcode::BRANCH_RANGE,
                        format!("inst {i}"),
                        format!("instruction {i}: branch target {} out of range", inst.imm),
                    ));
                }
            }
        }
        let _ = Coord::new(0, 0); // keep Coord import alive for doc links
        Ok(MimdProgram { insts: self.insts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_loop_with_backward_label() {
        let mut asm = MimdAsm::new();
        asm.li(1, 0);
        asm.li(2, 10);
        asm.label("top");
        asm.alui(Opcode::Add, 1, 1, 1);
        asm.alui(Opcode::Sub, 2, 2, 1);
        asm.bnz(2, "top");
        asm.halt();
        let p = asm.assemble().unwrap();
        assert_eq!(p.len(), 6);
        // bnz target resolved to index 2 (after the two li's).
        assert_eq!(p.insts()[4].imm, 2);
    }

    #[test]
    fn forward_labels_resolve() {
        let mut asm = MimdAsm::new();
        asm.bez(1, "done");
        asm.li(2, 1);
        asm.label("done");
        asm.halt();
        let p = asm.assemble().unwrap();
        assert_eq!(p.insts()[0].imm, 2);
    }

    #[test]
    fn undefined_label_rejected() {
        let mut asm = MimdAsm::new();
        asm.jmp("nowhere");
        assert!(matches!(
            asm.assemble(),
            Err(DlpError::Verify { code: vcode::UNDEFINED_LABEL, .. })
        ));
    }

    #[test]
    fn memory_opcode_in_alu_rejected() {
        let mut asm = MimdAsm::new();
        asm.alu(Opcode::Lmw, 1, 2, 3);
        asm.halt();
        assert!(asm.assemble().is_err());
    }

    #[test]
    fn out_of_range_register_rejected() {
        let mut asm = MimdAsm::new();
        asm.li(32, 0);
        assert!(asm.assemble().is_err());
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let mut asm = MimdAsm::new();
        asm.label("x");
        asm.label("x");
    }

    #[test]
    fn float_immediate_roundtrips() {
        let mut asm = MimdAsm::new();
        asm.lif(3, 1.25);
        asm.halt();
        let p = asm.assemble().unwrap();
        let bits = p.insts()[0].imm as u32;
        assert_eq!(f32::from_bits(bits), 1.25);
    }

    #[test]
    fn disassembly_lists_every_instruction() {
        let mut asm = MimdAsm::new();
        asm.li(1, 5);
        asm.ld(MemSpace::Smc, 2, 1, 0);
        asm.st(MemSpace::L1, 1, 4, 2);
        asm.lut(3, 2, 0);
        asm.send(3, 1);
        asm.recv(4, 0);
        asm.halt();
        let p = asm.assemble().unwrap();
        let d = p.disassemble();
        for needle in ["li", "ld.smc", "st.l1", "lut", "send", "recv", "halt"] {
            assert!(d.contains(needle), "missing {needle} in:\n{d}");
        }
    }
}
