//! Textual MIMD assembly: parse the listing format
//! [`MimdProgram::disassemble`] emits.
//!
//! The paper's kernels were "hand-coded in the TRIPS instruction set"; this
//! module lets this reproduction's MIMD programs be written, stored and
//! diffed as text. Round-tripping `parse ∘ disassemble = id` is enforced by
//! property tests.
//!
//! # Example
//!
//! ```
//! use trips_isa::parse_mimd;
//!
//! let prog = parse_mimd(
//!     "li r1, #10\n\
//!      addi r2, r1, #5\n\
//!      st.smc [r2 + 0], r1\n\
//!      halt\n",
//! )?;
//! assert_eq!(prog.len(), 4);
//! # Ok::<(), dlp_common::DlpError>(())
//! ```

use dlp_common::DlpError;

use crate::{MemSpace, MimdInst, MimdOp, MimdProgram, OpRole, Opcode};

/// Every register-to-register opcode the MIMD `Alu`/`AluI` forms accept,
/// used to map mnemonics back to opcodes.
const ALU_OPS: [Opcode; 43] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::Div,
    Opcode::Rem,
    Opcode::Add32,
    Opcode::Sub32,
    Opcode::Mul32,
    Opcode::RotL32,
    Opcode::RotR32,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Not,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Sra,
    Opcode::Teq,
    Opcode::Tne,
    Opcode::Tlt,
    Opcode::Tle,
    Opcode::Tgt,
    Opcode::Tge,
    Opcode::Tltu,
    Opcode::Tgeu,
    Opcode::FAdd,
    Opcode::FSub,
    Opcode::FMul,
    Opcode::FDiv,
    Opcode::FSqrt,
    Opcode::FMin,
    Opcode::FMax,
    Opcode::FNeg,
    Opcode::FAbs,
    Opcode::FFloor,
    Opcode::FTeq,
    Opcode::FTlt,
    Opcode::FTle,
    Opcode::I2F,
    Opcode::F2I,
    Opcode::Mov,
    Opcode::Sel,
    Opcode::Nop,
];

fn alu_by_mnemonic(m: &str) -> Option<Opcode> {
    ALU_OPS.into_iter().find(|op| op.mnemonic() == m)
}

fn err(line_no: usize, detail: impl std::fmt::Display) -> DlpError {
    DlpError::MalformedProgram { detail: format!("mimd asm line {}: {detail}", line_no + 1) }
}

fn parse_reg(tok: &str, line_no: usize) -> Result<u8, DlpError> {
    let tok = tok.trim().trim_end_matches(',');
    let digits = tok.strip_prefix('r').ok_or_else(|| err(line_no, format!("expected register, got `{tok}`")))?;
    let r: u8 =
        digits.parse().map_err(|_| err(line_no, format!("bad register `{tok}`")))?;
    if r >= 32 {
        return Err(err(line_no, format!("register r{r} out of range")));
    }
    Ok(r)
}

fn parse_imm(tok: &str, line_no: usize) -> Result<i64, DlpError> {
    let tok = tok.trim().trim_start_matches('#').trim_end_matches(',');
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| err(line_no, format!("bad immediate `{tok}`")))?;
    Ok(if neg { -v } else { v })
}

/// Parse `[rX + off]` (the load/store address form).
fn parse_addr(text: &str, line_no: usize) -> Result<(u8, i64), DlpError> {
    let inner = text
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line_no, format!("expected [reg + off], got `{text}`")))?;
    let (reg, off) = inner
        .split_once('+')
        .ok_or_else(|| err(line_no, format!("expected `reg + off` in `{text}`")))?;
    Ok((parse_reg(reg, line_no)?, parse_imm(off, line_no)?))
}

fn mem_space(suffix: &str, line_no: usize) -> Result<MemSpace, DlpError> {
    match suffix {
        "smc" => Ok(MemSpace::Smc),
        "l1" => Ok(MemSpace::L1),
        other => Err(err(line_no, format!("unknown memory space `{other}`"))),
    }
}

/// Parse a textual MIMD program (the [`MimdProgram::disassemble`] format;
/// leading `N:` line numbers and blank lines are ignored, `;` starts a
/// comment).
///
/// Branch targets are absolute instruction indices, exactly as the
/// disassembly prints them.
///
/// # Errors
///
/// Returns [`DlpError::MalformedProgram`] naming the offending line.
pub fn parse_mimd(text: &str) -> Result<MimdProgram, DlpError> {
    let mut insts = Vec::new();
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        // Strip an optional leading "N:" listing index.
        let line = match line.split_once(':') {
            Some((idx, rest)) if idx.trim().parse::<usize>().is_ok() => rest.trim(),
            _ => line,
        };
        let (mnemonic, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        let inst = parse_inst(mnemonic, rest, line_no)?;
        insts.push(inst);
    }
    // Validate branch targets via the assembler's rules by re-checking.
    for (i, inst) in insts.iter().enumerate() {
        if let MimdOp::Jmp | MimdOp::Bez | MimdOp::Bnz = inst.op {
            if inst.imm < 0 || inst.imm as usize > insts.len() {
                return Err(DlpError::MalformedProgram {
                    detail: format!("mimd asm: instruction {i} branches to {} (out of range)", inst.imm),
                });
            }
        }
    }
    Ok(MimdProgram::from_insts(insts))
}

fn parse_inst(mnemonic: &str, rest: &str, line_no: usize) -> Result<MimdInst, DlpError> {
    let mut inst = MimdInst { op: MimdOp::Halt, rd: 0, ra: 0, rb: 0, imm: 0, role: OpRole::Useful };
    let args: Vec<&str> = rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    match mnemonic {
        "halt" => {}
        "li" => {
            inst.op = MimdOp::Li;
            if args.len() != 2 {
                return Err(err(line_no, "li takes `rd, #imm`"));
            }
            inst.rd = parse_reg(args[0], line_no)?;
            inst.imm = parse_imm(args[1], line_no)?;
        }
        "jmp" => {
            inst.op = MimdOp::Jmp;
            inst.imm = parse_imm(rest, line_no)?;
        }
        "bez" | "bnz" => {
            inst.op = if mnemonic == "bez" { MimdOp::Bez } else { MimdOp::Bnz };
            if args.len() != 2 {
                return Err(err(line_no, "branch takes `ra, target`"));
            }
            inst.ra = parse_reg(args[0], line_no)?;
            inst.imm = parse_imm(args[1], line_no)?;
        }
        "lut" => {
            inst.op = MimdOp::Lut;
            if args.len() != 2 {
                return Err(err(line_no, "lut takes `rd, [ra + off]`"));
            }
            inst.rd = parse_reg(args[0], line_no)?;
            let (ra, off) = parse_addr(args[1], line_no)?;
            inst.ra = ra;
            inst.imm = off;
        }
        "send" => {
            // `send rA -> node N`
            inst.op = MimdOp::Send;
            let (reg, node) = rest
                .split_once("->")
                .ok_or_else(|| err(line_no, "send takes `ra -> node N`"))?;
            inst.ra = parse_reg(reg, line_no)?;
            let node = node.trim().strip_prefix("node").unwrap_or(node).trim();
            inst.imm = parse_imm(node, line_no)?;
        }
        "recv" => {
            // `recv rD <- node N`
            inst.op = MimdOp::Recv;
            let (reg, node) = rest
                .split_once("<-")
                .ok_or_else(|| err(line_no, "recv takes `rd <- node N`"))?;
            inst.rd = parse_reg(reg, line_no)?;
            let node = node.trim().strip_prefix("node").unwrap_or(node).trim();
            inst.imm = parse_imm(node, line_no)?;
        }
        m if m.starts_with("ld.") || m.starts_with("st.") => {
            let space = mem_space(&m[3..], line_no)?;
            if args.len() != 2 {
                return Err(err(line_no, "memory ops take two operands"));
            }
            if m.starts_with("ld.") {
                inst.op = MimdOp::Ld(space);
                inst.rd = parse_reg(args[0], line_no)?;
                let (ra, off) = parse_addr(args[1], line_no)?;
                inst.ra = ra;
                inst.imm = off;
            } else {
                inst.op = MimdOp::St(space);
                let (ra, off) = parse_addr(args[0], line_no)?;
                inst.ra = ra;
                inst.imm = off;
                inst.rb = parse_reg(args[1], line_no)?;
            }
        }
        m => {
            // ALU register or immediate form: `add rd, ra, rb` /
            // `addi rd, ra, #imm`.
            let (base, imm_form) = match alu_by_mnemonic(m) {
                Some(op) => (op, false),
                None => {
                    let stripped = m.strip_suffix('i').unwrap_or(m);
                    let op = alu_by_mnemonic(stripped)
                        .ok_or_else(|| err(line_no, format!("unknown mnemonic `{m}`")))?;
                    (op, true)
                }
            };
            if args.len() != 3 {
                return Err(err(line_no, format!("`{m}` takes `rd, ra, <rb|#imm>`")));
            }
            inst.rd = parse_reg(args[0], line_no)?;
            inst.ra = parse_reg(args[1], line_no)?;
            if imm_form {
                inst.op = MimdOp::AluI(base);
                inst.imm = parse_imm(args[2], line_no)?;
            } else {
                inst.op = MimdOp::Alu(base);
                inst.rb = parse_reg(args[2], line_no)?;
            }
        }
    }
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MimdAsm;
    use proptest::prelude::*;

    #[test]
    fn parses_every_form() {
        let text = "\
             0: li r1, #0x10\n\
             1: add r2, r1, r1\n\
             2: subi r3, r2, #-4\n\
             3: ld.smc r4, [r3 + 2]\n\
             4: st.l1 [r3 + 8], r4\n\
             5: lut r5, [r4 + 1024]\n\
             6: bez r5, 9\n\
             7: send r5 -> node 3\n\
             8: recv r6 <- node 1\n\
             9: jmp 10\n\
            10: halt\n";
        let p = parse_mimd(text).unwrap();
        assert_eq!(p.len(), 11);
        assert_eq!(p.insts()[0].imm, 0x10);
        assert!(matches!(p.insts()[2].op, MimdOp::AluI(Opcode::Sub)));
        assert_eq!(p.insts()[2].imm, -4);
        assert!(matches!(p.insts()[3].op, MimdOp::Ld(MemSpace::Smc)));
        assert!(matches!(p.insts()[4].op, MimdOp::St(MemSpace::L1)));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let p = parse_mimd("; a comment\n\nli r1, #1 ; trailing\nhalt\n").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_mimd("frobnicate r1, r2, r3").is_err());
        assert!(parse_mimd("li r99, #1").is_err());
        assert!(parse_mimd("jmp 500").is_err());
        assert!(parse_mimd("ld.tcm r1, [r2 + 0]").is_err());
    }

    #[test]
    fn disassemble_parse_roundtrip_handwritten() {
        let mut asm = MimdAsm::new();
        asm.li(1, 5);
        asm.label("top");
        asm.alui(Opcode::Sub, 1, 1, 1);
        asm.lut(2, 1, 7);
        asm.st(MemSpace::Smc, 1, 3, 2);
        asm.bnz(1, "top");
        asm.send(2, 1);
        asm.recv(3, 0);
        asm.halt();
        let p = asm.assemble().unwrap();
        let q = parse_mimd(&p.disassemble()).unwrap();
        assert_eq!(p, q);
    }

    /// Strategy over single well-formed instructions.
    fn inst_strategy() -> impl Strategy<Value = MimdInst> {
        let reg = 0u8..32;
        let alu_idx = 0usize..super::ALU_OPS.len();
        prop_oneof![
            (alu_idx.clone(), reg.clone(), reg.clone(), reg.clone()).prop_map(|(i, d, a, b)| MimdInst {
                op: MimdOp::Alu(super::ALU_OPS[i]),
                rd: d,
                ra: a,
                rb: b,
                imm: 0,
                role: OpRole::Useful,
            }),
            (alu_idx, reg.clone(), reg.clone(), -1000i64..1000).prop_map(|(i, d, a, imm)| MimdInst {
                op: MimdOp::AluI(super::ALU_OPS[i]),
                rd: d,
                ra: a,
                rb: 0,
                imm,
                role: OpRole::Useful,
            }),
            (reg.clone(), 0i64..1_000_000).prop_map(|(d, imm)| MimdInst {
                op: MimdOp::Li,
                rd: d,
                ra: 0,
                rb: 0,
                imm,
                role: OpRole::Useful,
            }),
            (reg.clone(), reg.clone(), 0i64..4096, any::<bool>()).prop_map(|(d, a, off, smc)| MimdInst {
                op: MimdOp::Ld(if smc { MemSpace::Smc } else { MemSpace::L1 }),
                rd: d,
                ra: a,
                rb: 0,
                imm: off,
                role: OpRole::Useful,
            }),
            (reg.clone(), reg.clone(), 0i64..4096, any::<bool>()).prop_map(|(a, b, off, smc)| MimdInst {
                op: MimdOp::St(if smc { MemSpace::Smc } else { MemSpace::L1 }),
                rd: 0,
                ra: a,
                rb: b,
                imm: off,
                role: OpRole::Useful,
            }),
            (reg.clone(), reg.clone(), 0i64..2048).prop_map(|(d, a, off)| MimdInst {
                op: MimdOp::Lut,
                rd: d,
                ra: a,
                rb: 0,
                imm: off,
                role: OpRole::Useful,
            }),
            (reg, 0i64..64).prop_map(|(a, n)| MimdInst {
                op: MimdOp::Send,
                rd: 0,
                ra: a,
                rb: 0,
                imm: n,
                role: OpRole::Useful,
            }),
        ]
    }

    proptest! {
        /// parse(disassemble(p)) == p, modulo the role field (text does not
        /// carry roles).
        #[test]
        fn random_programs_roundtrip(
            insts in proptest::collection::vec(inst_strategy(), 1..40)
        ) {
            let mut insts = insts;
            // Terminate so the program is plausible; branches not generated
            // (their targets depend on length), jmp 0 is valid.
            insts.push(MimdInst { op: MimdOp::Halt, rd: 0, ra: 0, rb: 0, imm: 0, role: OpRole::Useful });
            let p = MimdProgram::from_insts(insts);
            let q = parse_mimd(&p.disassemble()).unwrap();
            prop_assert_eq!(p.len(), q.len());
            for (a, b) in p.insts().iter().zip(q.insts()) {
                prop_assert_eq!(a.op, b.op);
                prop_assert_eq!(a.rd, b.rd);
                prop_assert_eq!(a.ra, b.ra);
                prop_assert_eq!(a.rb, b.rb);
                prop_assert_eq!(a.imm, b.imm);
            }
        }
    }
}
