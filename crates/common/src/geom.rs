//! Grid geometry: node coordinates and array shape.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A position on the ALU array: `(row, col)`.
///
/// Row 0 is the top edge (adjacent to the register-file banks in the TRIPS
/// floorplan); column 0 is the left edge (adjacent to the memory interface:
/// L1 banks and SMC row channels).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Coord {
    /// Row index, 0 at the top (register-file edge).
    pub row: u8,
    /// Column index, 0 at the left (memory-interface edge).
    pub col: u8,
}

impl Coord {
    /// Create a coordinate.
    #[must_use]
    pub const fn new(row: u8, col: u8) -> Self {
        Coord { row, col }
    }

    /// Manhattan distance to another coordinate, in hops.
    #[must_use]
    pub const fn manhattan(self, other: Coord) -> u32 {
        self.row.abs_diff(other.row) as u32 + self.col.abs_diff(other.col) as u32
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// The shape of the ALU array.
///
/// The paper's baseline is an 8×8 mesh ([`GridShape::trips_baseline`]), but
/// the mechanisms are array-size agnostic and the simulator accepts any
/// shape, which the ablation benches exploit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct GridShape {
    rows: u8,
    cols: u8,
}

impl GridShape {
    /// Create a grid shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(rows: u8, cols: u8) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be nonzero");
        GridShape { rows, cols }
    }

    /// The paper's baseline 8×8 array (§5.2).
    #[must_use]
    pub fn trips_baseline() -> Self {
        GridShape::new(8, 8)
    }

    /// Number of rows.
    #[must_use]
    pub const fn rows(self) -> u8 {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub const fn cols(self) -> u8 {
        self.cols
    }

    /// Total node count.
    #[must_use]
    pub const fn nodes(self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// Whether `c` lies inside the grid.
    #[must_use]
    pub const fn contains(self, c: Coord) -> bool {
        c.row < self.rows && c.col < self.cols
    }

    /// Linearize a coordinate to an index in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside the grid.
    #[must_use]
    pub fn index(self, c: Coord) -> usize {
        assert!(self.contains(c), "coordinate {c} outside {self:?}");
        c.row as usize * self.cols as usize + c.col as usize
    }

    /// Inverse of [`GridShape::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.nodes()`.
    #[must_use]
    pub fn coord(self, idx: usize) -> Coord {
        assert!(idx < self.nodes(), "index {idx} outside {self:?}");
        Coord::new((idx / self.cols as usize) as u8, (idx % self.cols as usize) as u8)
    }

    /// Manhattan distance between two in-grid coordinates, in hops.
    #[must_use]
    pub fn manhattan(self, a: Coord, b: Coord) -> u32 {
        a.manhattan(b)
    }

    /// Iterate over all coordinates in row-major order.
    pub fn iter(self) -> impl Iterator<Item = Coord> {
        (0..self.nodes()).map(move |i| self.coord(i))
    }
}

impl Default for GridShape {
    fn default() -> Self {
        GridShape::trips_baseline()
    }
}

impl fmt::Display for GridShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn index_roundtrip() {
        let g = GridShape::new(8, 8);
        for i in 0..g.nodes() {
            assert_eq!(g.index(g.coord(i)), i);
        }
    }

    #[test]
    fn iteration_is_row_major() {
        let g = GridShape::new(2, 3);
        let coords: Vec<_> = g.iter().collect();
        assert_eq!(
            coords,
            vec![
                Coord::new(0, 0),
                Coord::new(0, 1),
                Coord::new(0, 2),
                Coord::new(1, 0),
                Coord::new(1, 1),
                Coord::new(1, 2),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn index_out_of_bounds_panics() {
        let _ = GridShape::new(2, 2).index(Coord::new(2, 0));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_shape_panics() {
        let _ = GridShape::new(0, 4);
    }

    proptest! {
        #[test]
        fn manhattan_is_symmetric(a in 0u8..8, b in 0u8..8, c in 0u8..8, d in 0u8..8) {
            let p = Coord::new(a, b);
            let q = Coord::new(c, d);
            prop_assert_eq!(p.manhattan(q), q.manhattan(p));
        }

        #[test]
        fn manhattan_triangle_inequality(
            a in 0u8..8, b in 0u8..8, c in 0u8..8,
            d in 0u8..8, e in 0u8..8, f in 0u8..8,
        ) {
            let p = Coord::new(a, b);
            let q = Coord::new(c, d);
            let r = Coord::new(e, f);
            prop_assert!(p.manhattan(r) <= p.manhattan(q) + q.manhattan(r));
        }
    }
}
