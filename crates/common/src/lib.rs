//! # dlp-common
//!
//! Shared substrate types for the `dlp-mech` workspace, a reproduction of
//! *"Universal Mechanisms for Data-Parallel Architectures"* (MICRO 2003).
//!
//! This crate holds the vocabulary every other crate speaks:
//!
//! * [`Value`] — a 64-bit bag of bits with typed views (`u32`, `i32`, `f32`,
//!   `u64`, `f64`), the datum that flows through the simulated operand network.
//! * [`Coord`] and [`GridShape`] — positions on the ALU array.
//! * [`TimingParams`] — functional-unit, cache and network latencies
//!   (defaults match the paper's §5.2 baseline: Alpha-21264-like latencies,
//!   0.5-cycle inter-ALU hops on a 10FO4 clock).
//! * [`SimStats`] — counters accumulated by the timing simulator, and the
//!   derived metrics the paper reports (ops/cycle, speedup, harmonic mean).
//! * [`SplitMix64`] — a tiny deterministic RNG for reproducible workloads.
//! * [`fault`] — deterministic transient-fault injection ([`FaultPlan`],
//!   [`FaultInjector`]): seeded chaos at the NoC/DMA/SMC/L1/operand-store
//!   hook points, with honest recovery accounting.
//! * [`crashpoint`] — the host-side twin of [`fault`]: named kill sites
//!   threaded through the persistence layer's write paths, armed via
//!   `DLP_CRASHPOINT` to abort the process deterministically for
//!   crash-consistency testing.
//! * [`json`] — compact JSON emission through serde's data model (the
//!   workspace has no `serde_json`; the experiment harness writes its
//!   artifacts with [`json::to_string`]).
//!
//! # Example
//!
//! ```
//! use dlp_common::{Value, GridShape, Coord};
//!
//! let v = Value::from_f32(1.5);
//! assert_eq!(v.as_f32(), 1.5);
//!
//! let grid = GridShape::new(8, 8);
//! let hops = grid.manhattan(Coord::new(0, 0), Coord::new(3, 4));
//! assert_eq!(hops, 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crashpoint;
mod error;
pub mod fault;
mod geom;
pub mod json;
mod params;
mod rng;
mod stats;
mod value;
pub mod vcode;
pub mod wcode;

pub use error::DlpError;
pub use fault::{FatalFault, FaultInjector, FaultPlan, FaultRate, FaultSite, FaultStats};
pub use geom::{Coord, GridShape};
pub use params::{CoreParams, FetchParams, MemParams, NetParams, OpClassLatency, TimingParams};
pub use rng::SplitMix64;
pub use stats::{harmonic_mean, OpsPerCycle, SimStats};
pub use value::Value;

/// Simulation time in *ticks* (half-cycles).
///
/// The paper's baseline assumes a 0.5-cycle hop delay between adjacent ALUs,
/// so the simulator advances in half-cycle ticks to keep all latencies
/// integral. Use [`ticks_to_cycles`] when reporting.
pub type Tick = u64;

/// Convert ticks (half-cycles) to cycles, rounding up.
#[must_use]
pub fn ticks_to_cycles(ticks: Tick) -> u64 {
    ticks.div_ceil(2)
}

/// Convert whole cycles to ticks (half-cycles).
#[must_use]
pub fn cycles_to_ticks(cycles: u64) -> Tick {
    cycles * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_cycle_roundtrip() {
        assert_eq!(ticks_to_cycles(0), 0);
        assert_eq!(ticks_to_cycles(1), 1);
        assert_eq!(ticks_to_cycles(2), 1);
        assert_eq!(ticks_to_cycles(3), 2);
        assert_eq!(cycles_to_ticks(5), 10);
        assert_eq!(ticks_to_cycles(cycles_to_ticks(7)), 7);
    }
}
