//! Simulation statistics and the derived metrics the paper reports.

use std::fmt;
use std::ops::AddAssign;

use serde::{Deserialize, Serialize};

use crate::{ticks_to_cycles, Tick};

/// Counters accumulated by the timing simulator during one run.
///
/// The paper's primary metric (Table 4) is *useful computation operations
/// sustained per cycle*, explicitly **excluding** overhead instructions such
/// as address computation, loads and stores — so the counters distinguish
/// useful ops from overhead ops.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total elapsed simulated time, in ticks (half-cycles).
    pub ticks: Tick,
    /// Useful (algorithmic) operations executed.
    pub useful_ops: u64,
    /// Overhead operations executed (address arithmetic, moves, predicate
    /// plumbing, loop tests).
    pub overhead_ops: u64,
    /// Load instructions completed (any memory path).
    pub loads: u64,
    /// Store instructions completed.
    pub stores: u64,
    /// Words delivered by LMW wide loads.
    pub lmw_words: u64,
    /// L1 cache accesses.
    pub l1_accesses: u64,
    /// L1 cache misses.
    pub l1_misses: u64,
    /// SMC (software-managed cache) accesses.
    pub smc_accesses: u64,
    /// L0 data-store (lookup table) accesses.
    pub l0_accesses: u64,
    /// Register-file reads.
    pub reg_reads: u64,
    /// Register-file writes.
    pub reg_writes: u64,
    /// Operand-network messages injected.
    pub net_msgs: u64,
    /// Total operand-network hop traversals.
    pub net_hops: u64,
    /// Blocks fetched and mapped onto the array.
    pub blocks_fetched: u64,
    /// Instruction-revitalization events (loop iterations reusing mappings).
    pub revitalizations: u64,
    /// Kernel iterations completed.
    pub iterations: u64,
    /// MIMD instructions fetched from local L0 instruction stores.
    pub mimd_fetches: u64,
    /// Cycles any node spent stalled waiting on memory.
    pub mem_stall_node_cycles: u64,
    /// Transient faults injected by the fault plan (zero without one).
    pub faults_injected: u64,
    /// Fault-recovery replays performed (NoC resends, operand re-latches).
    pub fault_retries: u64,
    /// Extra simulated ticks charged to fault recovery (backoff waits,
    /// stall windows, delayed fills).
    pub fault_stall_ticks: u64,
}

impl SimStats {
    /// A zeroed statistics record.
    #[must_use]
    pub fn new() -> Self {
        SimStats::default()
    }

    /// Elapsed cycles (ticks are half-cycles).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        ticks_to_cycles(self.ticks)
    }

    /// Useful operations per cycle — the paper's Table 4 metric.
    #[must_use]
    pub fn ops_per_cycle(&self) -> OpsPerCycle {
        OpsPerCycle(if self.cycles() == 0 {
            0.0
        } else {
            self.useful_ops as f64 / self.cycles() as f64
        })
    }

    /// All executed operations (useful + overhead).
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.useful_ops + self.overhead_ops
    }

    /// L1 miss ratio, or 0 when there were no accesses.
    #[must_use]
    pub fn l1_miss_ratio(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.l1_accesses as f64
        }
    }

    /// Fold a run's fault-injector counters into this record.
    pub fn record_faults(&mut self, f: crate::fault::FaultStats) {
        self.faults_injected += f.injected;
        self.fault_retries += f.retries;
        self.fault_stall_ticks += f.stall_ticks;
    }

    /// Speedup of `self` over `baseline` in execution cycles (the paper's
    /// Figure 5 metric: relative speedup measured in execution cycles).
    ///
    /// # Panics
    ///
    /// Panics if `self` took zero cycles.
    #[must_use]
    pub fn speedup_over(&self, baseline: &SimStats) -> f64 {
        assert!(self.cycles() > 0, "cannot compute speedup of a zero-cycle run");
        baseline.cycles() as f64 / self.cycles() as f64
    }
}

impl AddAssign for SimStats {
    fn add_assign(&mut self, rhs: SimStats) {
        self.ticks += rhs.ticks;
        self.useful_ops += rhs.useful_ops;
        self.overhead_ops += rhs.overhead_ops;
        self.loads += rhs.loads;
        self.stores += rhs.stores;
        self.lmw_words += rhs.lmw_words;
        self.l1_accesses += rhs.l1_accesses;
        self.l1_misses += rhs.l1_misses;
        self.smc_accesses += rhs.smc_accesses;
        self.l0_accesses += rhs.l0_accesses;
        self.reg_reads += rhs.reg_reads;
        self.reg_writes += rhs.reg_writes;
        self.net_msgs += rhs.net_msgs;
        self.net_hops += rhs.net_hops;
        self.blocks_fetched += rhs.blocks_fetched;
        self.revitalizations += rhs.revitalizations;
        self.iterations += rhs.iterations;
        self.mimd_fetches += rhs.mimd_fetches;
        self.mem_stall_node_cycles += rhs.mem_stall_node_cycles;
        self.faults_injected += rhs.faults_injected;
        self.fault_retries += rhs.fault_retries;
        self.fault_stall_ticks += rhs.fault_stall_ticks;
    }
}

/// Useful operations sustained per cycle (Table 4 metric).
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct OpsPerCycle(pub f64);

impl fmt::Display for OpsPerCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}", self.0)
    }
}

/// Harmonic mean of a set of positive values (the paper's Figure 5 summary
/// statistic for cross-application speedup).
///
/// Returns `None` for an empty slice or when any value is non-positive.
#[must_use]
pub fn harmonic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let inv_sum: f64 = values.iter().map(|v| 1.0 / v).sum();
    Some(values.len() as f64 / inv_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ops_per_cycle_excludes_overhead() {
        let s = SimStats { ticks: 20, useful_ops: 50, overhead_ops: 100, ..SimStats::default() };
        assert_eq!(s.cycles(), 10);
        assert!((s.ops_per_cycle().0 - 5.0).abs() < 1e-12);
        assert_eq!(s.total_ops(), 150);
    }

    #[test]
    fn zero_cycles_yield_zero_rate() {
        assert_eq!(SimStats::default().ops_per_cycle().0, 0.0);
    }

    #[test]
    fn speedup_is_baseline_over_self() {
        let base = SimStats { ticks: 200, ..SimStats::default() };
        let fast = SimStats { ticks: 50, ..SimStats::default() };
        assert!((fast.speedup_over(&base) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = SimStats { ticks: 10, useful_ops: 1, loads: 2, ..SimStats::default() };
        let b = SimStats { ticks: 5, useful_ops: 3, loads: 4, ..SimStats::default() };
        a += b;
        assert_eq!(a.ticks, 15);
        assert_eq!(a.useful_ops, 4);
        assert_eq!(a.loads, 6);
    }

    #[test]
    fn harmonic_mean_known_values() {
        let hm = harmonic_mean(&[1.0, 2.0, 4.0]).unwrap();
        assert!((hm - 12.0 / 7.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), None);
        assert_eq!(harmonic_mean(&[1.0, 0.0]), None);
        assert_eq!(harmonic_mean(&[1.0, -2.0]), None);
    }

    proptest! {
        #[test]
        fn harmonic_mean_bounded_by_min_max(
            xs in proptest::collection::vec(0.01f64..1000.0, 1..20)
        ) {
            let hm = harmonic_mean(&xs).unwrap();
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(0.0_f64, f64::max);
            prop_assert!(hm >= lo - 1e-9);
            prop_assert!(hm <= hi + 1e-9);
        }

        #[test]
        fn harmonic_mean_of_constant_is_constant(x in 0.01f64..1000.0, n in 1usize..10) {
            let xs = vec![x; n];
            let hm = harmonic_mean(&xs).unwrap();
            prop_assert!((hm - x).abs() < 1e-9 * x.max(1.0));
        }
    }
}
