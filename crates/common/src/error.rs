//! The workspace-wide error type.

use std::fmt;

/// Errors shared across the `dlp-mech` crates.
///
/// Each layer (scheduler, simulator, kernel library) converts its own
/// failures into a `DlpError`, so user-facing entry points return a single
/// error type.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DlpError {
    /// A kernel does not fit the machine resources it was scheduled onto
    /// (reservation stations, L0 instruction store, register budget).
    CapacityExceeded {
        /// Which resource overflowed.
        resource: &'static str,
        /// How much was requested.
        needed: usize,
        /// How much the machine provides.
        available: usize,
    },
    /// A machine configuration does not support a kernel requirement
    /// (e.g., running a data-dependent-loop kernel on a configuration
    /// without predication or local PCs).
    Unsupported {
        /// What was required.
        what: String,
    },
    /// An ill-formed program was handed to the simulator (dangling target,
    /// operand port collision, unplaced instruction).
    MalformedProgram {
        /// Description of the defect.
        detail: String,
    },
    /// The simulator reached its watchdog limit without completing,
    /// indicating deadlock or livelock in the simulated program.
    Watchdog {
        /// Ticks elapsed when the watchdog fired.
        ticks: u64,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Description of the problem.
        detail: String,
    },
}

impl fmt::Display for DlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlpError::CapacityExceeded { resource, needed, available } => {
                write!(f, "capacity exceeded: {resource} needs {needed}, machine has {available}")
            }
            DlpError::Unsupported { what } => write!(f, "unsupported on this configuration: {what}"),
            DlpError::MalformedProgram { detail } => write!(f, "malformed program: {detail}"),
            DlpError::Watchdog { ticks } => {
                write!(f, "simulation watchdog fired after {ticks} ticks (deadlock?)")
            }
            DlpError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
        }
    }
}

impl std::error::Error for DlpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errs = [
            DlpError::CapacityExceeded { resource: "reservation stations", needed: 10, available: 4 },
            DlpError::Unsupported { what: "data-dependent branch".into() },
            DlpError::MalformedProgram { detail: "dangling target".into() },
            DlpError::Watchdog { ticks: 100 },
            DlpError::InvalidConfig { detail: "zero rows".into() },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<DlpError>();
    }
}
