//! The workspace-wide error type.

use std::fmt;

/// Errors shared across the `dlp-mech` crates.
///
/// Each layer (scheduler, simulator, kernel library) converts its own
/// failures into a `DlpError`, so user-facing entry points return a single
/// error type.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DlpError {
    /// A kernel does not fit the machine resources it was scheduled onto
    /// (reservation stations, L0 instruction store, register budget).
    CapacityExceeded {
        /// Which resource overflowed.
        resource: &'static str,
        /// How much was requested.
        needed: usize,
        /// How much the machine provides.
        available: usize,
    },
    /// A machine configuration does not support a kernel requirement
    /// (e.g., running a data-dependent-loop kernel on a configuration
    /// without predication or local PCs).
    Unsupported {
        /// What was required.
        what: String,
    },
    /// An ill-formed program was handed to the simulator (dangling target,
    /// operand port collision, unplaced instruction).
    MalformedProgram {
        /// Description of the defect.
        detail: String,
    },
    /// The static program verifier rejected a lowered artifact before a
    /// single cycle was simulated. Unlike [`DlpError::MalformedProgram`]
    /// (the simulator's *dynamic* defect reports), every verifier
    /// rejection carries a stable code from the [`crate::vcode`]
    /// taxonomy, so sweep reports can be triaged mechanically.
    Verify {
        /// The stable `V*` diagnostic code (see [`crate::vcode`]).
        code: &'static str,
        /// Where in the artifact the defect sits (an instruction index,
        /// slot, or rank rendering; empty when program-wide).
        span: String,
        /// Description of the defect.
        detail: String,
    },
    /// The simulator reached its watchdog limit without completing,
    /// indicating deadlock or livelock in the simulated program.
    Watchdog {
        /// Ticks elapsed when the watchdog fired.
        ticks: u64,
        /// Where the simulation was when the watchdog fired (engine, block
        /// or rank, progress) — so a failed sweep cell can be located
        /// without a re-run. Empty when the site offered no context.
        context: String,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Description of the problem.
        detail: String,
    },
    /// An injected fault exhausted its retry budget; the run was aborted
    /// cleanly instead of delivering corrupt data or spinning to the
    /// watchdog.
    FaultUnrecoverable {
        /// The fault site (stable name from `FaultSite::name`).
        site: &'static str,
        /// Simulated tick at which recovery was abandoned.
        tick: u64,
        /// What was tried before giving up.
        detail: String,
    },
    /// A bug in the simulator itself (e.g. a panic caught at a sweep-cell
    /// boundary) — never the simulated program's fault.
    Internal {
        /// Description of the defect, including any panic payload.
        detail: String,
    },
}

impl DlpError {
    /// Shorthand constructor for a [`DlpError::Verify`] diagnostic.
    #[must_use]
    pub fn verify(
        code: &'static str,
        span: impl Into<String>,
        detail: impl Into<String>,
    ) -> DlpError {
        DlpError::Verify { code, span: span.into(), detail: detail.into() }
    }

    /// A stable, machine-readable kind tag for each variant — used by the
    /// sweep's structured failure diagnostics and the fault bins.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            DlpError::CapacityExceeded { .. } => "capacity-exceeded",
            DlpError::Unsupported { .. } => "unsupported",
            DlpError::MalformedProgram { .. } => "malformed-program",
            DlpError::Verify { .. } => "verify",
            DlpError::Watchdog { .. } => "watchdog",
            DlpError::InvalidConfig { .. } => "invalid-config",
            DlpError::FaultUnrecoverable { .. } => "fault-unrecoverable",
            DlpError::Internal { .. } => "internal",
        }
    }
}

impl fmt::Display for DlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlpError::CapacityExceeded { resource, needed, available } => {
                write!(f, "capacity exceeded: {resource} needs {needed}, machine has {available}")
            }
            DlpError::Unsupported { what } => write!(f, "unsupported on this configuration: {what}"),
            DlpError::MalformedProgram { detail } => write!(f, "malformed program: {detail}"),
            DlpError::Verify { code, span, detail } => {
                if span.is_empty() {
                    write!(f, "verification failed [{code}]: {detail}")
                } else {
                    write!(f, "verification failed [{code}] at {span}: {detail}")
                }
            }
            DlpError::Watchdog { ticks, context } => {
                if context.is_empty() {
                    write!(f, "simulation watchdog fired after {ticks} ticks (deadlock?)")
                } else {
                    write!(
                        f,
                        "simulation watchdog fired after {ticks} ticks in {context} (deadlock?)"
                    )
                }
            }
            DlpError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
            DlpError::FaultUnrecoverable { site, tick, detail } => {
                write!(f, "unrecoverable fault at {site} (tick {tick}): {detail}")
            }
            DlpError::Internal { detail } => write!(f, "internal simulator error: {detail}"),
        }
    }
}

impl std::error::Error for DlpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errs = [
            DlpError::CapacityExceeded { resource: "reservation stations", needed: 10, available: 4 },
            DlpError::Unsupported { what: "data-dependent branch".into() },
            DlpError::MalformedProgram { detail: "dangling target".into() },
            DlpError::verify("V0102-dangling-operand", "inst 3", "target names an empty slot"),
            DlpError::verify("V0120-dependence-cycle", "", "4 instructions wait on each other"),
            DlpError::Watchdog { ticks: 100, context: String::new() },
            DlpError::Watchdog { ticks: 100, context: "mimd rank 3".into() },
            DlpError::InvalidConfig { detail: "zero rows".into() },
            DlpError::FaultUnrecoverable { site: "noc-link", tick: 42, detail: "8 retries".into() },
            DlpError::Internal { detail: "panicked: index out of bounds".into() },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn kinds_are_stable_and_distinct() {
        let errs = [
            DlpError::CapacityExceeded { resource: "r", needed: 1, available: 0 },
            DlpError::Unsupported { what: "x".into() },
            DlpError::MalformedProgram { detail: "d".into() },
            DlpError::verify("V0101-off-grid", "inst 0", "d"),
            DlpError::Watchdog { ticks: 1, context: String::new() },
            DlpError::InvalidConfig { detail: "d".into() },
            DlpError::FaultUnrecoverable { site: "dma", tick: 0, detail: "d".into() },
            DlpError::Internal { detail: "d".into() },
        ];
        let kinds: Vec<_> = errs.iter().map(DlpError::kind).collect();
        let mut unique = kinds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), kinds.len());
        assert_eq!(DlpError::Watchdog { ticks: 1, context: String::new() }.kind(), "watchdog");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<DlpError>();
    }
}
