//! The stable `V*` diagnostic taxonomy of the static program verifier.
//!
//! Every structural rejection of a lowered artifact — whether raised by
//! the shallow shape checks in `trips-isa` or by the deep analyses in
//! `dlp-verify` — carries one of these codes inside
//! [`DlpError::Verify`](crate::DlpError::Verify), so sweep reports and CI
//! logs can be triaged without parsing prose. Codes are append-only:
//! `V01xx` covers dataflow blocks, `V02xx` covers MIMD programs, and a
//! code, once published, never changes meaning.

/// Dataflow: an instruction is placed on a node outside the grid.
pub const OFF_GRID: &str = "V0101-off-grid";
/// Dataflow: a target names a slot holding no instruction.
pub const DANGLING_OPERAND: &str = "V0102-dangling-operand";
/// Dataflow: two instructions claim the same reservation-station slot.
pub const DUPLICATE_SLOT: &str = "V0103-duplicate-slot";
/// Dataflow: a target feeds a port its opcode never reads.
pub const UNREAD_PORT: &str = "V0104-unread-port";
/// Dataflow: a right port is fed by both an immediate and the network.
pub const IMMEDIATE_CONFLICT: &str = "V0105-immediate-conflict";
/// Dataflow: one operand port has more than one producer.
pub const MULTIPLE_PRODUCERS: &str = "V0106-multiple-producers";
/// Dataflow: a required operand port has no producer at all.
pub const MISSING_PRODUCER: &str = "V0107-missing-producer";
/// Dataflow: an instruction's result is produced but routed nowhere.
pub const DROPPED_RESULT: &str = "V0108-dropped-result";
/// Dataflow: a result-less opcode (store, nop) carries targets.
pub const TARGETS_ON_RESULTLESS: &str = "V0109-targets-on-resultless";
/// Dataflow: an `lmw` word count disagrees with its target list.
pub const LMW_ARITY: &str = "V0110-lmw-arity";
/// Dataflow: a register read delivers to no consumer.
pub const REGREAD_NO_TARGETS: &str = "V0111-regread-no-targets";
/// Dataflow: a register read targets a register instead of a port.
pub const REGREAD_TO_REGISTER: &str = "V0112-regread-to-register";
/// Dataflow: the operand-dependence graph contains a cycle, so the
/// instructions in it can never all fire — a static deadlock.
pub const DEPENDENCE_CYCLE: &str = "V0120-dependence-cycle";
/// Dataflow: a register target or register read exceeds the register
/// file.
pub const REGISTER_RANGE: &str = "V0121-register-out-of-range";
/// Dataflow: an `lmw` fans out wider than the streaming channel allows.
pub const LMW_FANOUT: &str = "V0122-lmw-fanout";
/// Dataflow: a statically-indexed `lut` reads past the L0 data store.
pub const L0_INDEX_BOUNDS: &str = "V0123-l0-index-bounds";
/// Dataflow: the revitalization (unroll) count is outside the legal
/// range or inconsistent with the block.
pub const UNROLL_INCONSISTENT: &str = "V0124-unroll-inconsistent";
/// Dataflow: persistent operands on a configuration without operand
/// revitalization.
pub const PERSISTENCE_WITHOUT_REVIT: &str = "V0125-persistence-without-revitalization";
/// The lookup-table image exceeds the L0 data-store capacity.
pub const L0_TABLE_OVERFLOW: &str = "V0126-l0-table-overflow";

/// MIMD: a branch references a label that was never defined.
pub const UNDEFINED_LABEL: &str = "V0201-undefined-label";
/// MIMD: a non-register opcode appears in an ALU instruction.
pub const NON_ALU_OPCODE: &str = "V0202-non-alu-opcode";
/// MIMD: a register operand exceeds the 32-register file.
pub const MIMD_REGISTER_RANGE: &str = "V0203-mimd-register-out-of-range";
/// MIMD: a branch target lies outside the program.
pub const BRANCH_RANGE: &str = "V0204-branch-out-of-range";
/// MIMD: an instruction can never be reached from entry.
pub const UNREACHABLE_CODE: &str = "V0210-unreachable-code";
/// MIMD: a reachable path runs off the end of the program.
pub const FALLS_OFF_END: &str = "V0211-falls-off-end";
/// MIMD: a send or receive names a node outside the partition.
pub const CHANNEL_ENDPOINT: &str = "V0212-channel-endpoint-out-of-range";
/// MIMD: sends and receives between a rank pair do not balance.
pub const CHANNEL_IMBALANCE: &str = "V0213-channel-imbalance";
/// MIMD: a program exceeds the L0 instruction-store capacity.
pub const L0_INST_OVERFLOW: &str = "V0215-l0-inst-overflow";
/// MIMD: a program cannot fit inside the watchdog-derived step budget.
pub const STEP_BUDGET: &str = "V0216-step-budget-implausible";

/// Every published code with a one-line description, in code order —
/// the source of the DESIGN.md diagnostics table.
pub const ALL: &[(&str, &str)] = &[
    (OFF_GRID, "instruction placed on a node outside the grid"),
    (DANGLING_OPERAND, "target names a slot holding no instruction"),
    (DUPLICATE_SLOT, "two instructions share one reservation-station slot"),
    (UNREAD_PORT, "target feeds a port its opcode never reads"),
    (IMMEDIATE_CONFLICT, "right port fed by both immediate and network"),
    (MULTIPLE_PRODUCERS, "operand port has more than one producer"),
    (MISSING_PRODUCER, "required operand port has no producer"),
    (DROPPED_RESULT, "result produced but routed nowhere"),
    (TARGETS_ON_RESULTLESS, "result-less opcode carries targets"),
    (LMW_ARITY, "lmw word count disagrees with its target list"),
    (REGREAD_NO_TARGETS, "register read delivers to no consumer"),
    (REGREAD_TO_REGISTER, "register read targets a register"),
    (DEPENDENCE_CYCLE, "operand-dependence cycle: static deadlock"),
    (REGISTER_RANGE, "register index exceeds the register file"),
    (LMW_FANOUT, "lmw fans out wider than the streaming channel"),
    (L0_INDEX_BOUNDS, "static lut index reads past the L0 data store"),
    (UNROLL_INCONSISTENT, "revitalization count outside the legal range"),
    (PERSISTENCE_WITHOUT_REVIT, "persistent operands without operand revitalization"),
    (L0_TABLE_OVERFLOW, "table image exceeds the L0 data store"),
    (UNDEFINED_LABEL, "branch references an undefined label"),
    (NON_ALU_OPCODE, "non-register opcode in an ALU instruction"),
    (MIMD_REGISTER_RANGE, "register operand exceeds the 32-register file"),
    (BRANCH_RANGE, "branch target outside the program"),
    (UNREACHABLE_CODE, "instruction unreachable from entry"),
    (FALLS_OFF_END, "reachable path runs off the end of the program"),
    (CHANNEL_ENDPOINT, "send/recv names a node outside the partition"),
    (CHANNEL_IMBALANCE, "sends and receives between a rank pair do not balance"),
    (L0_INST_OVERFLOW, "program exceeds the L0 instruction store"),
    (STEP_BUDGET, "program cannot fit the watchdog-derived step budget"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = Vec::new();
        for (code, desc) in ALL {
            assert!(code.starts_with('V'), "{code}");
            let digits = &code[1..5];
            assert!(digits.chars().all(|c| c.is_ascii_digit()), "{code}");
            assert!(code.as_bytes()[5] == b'-', "{code} has a slug after the number");
            assert!(!desc.is_empty());
            assert!(!seen.contains(code), "{code} listed twice");
            seen.push(code);
        }
        assert!(ALL.len() >= 25, "taxonomy covers both program families");
    }

    #[test]
    fn families_partition_by_prefix() {
        for (code, _) in ALL {
            assert!(
                code.starts_with("V01") || code.starts_with("V02"),
                "{code} outside the published families"
            );
        }
    }
}
