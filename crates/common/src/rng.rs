//! A tiny deterministic RNG for reproducible workload generation.

use serde::{Deserialize, Serialize};

/// SplitMix64 pseudo-random generator.
///
/// Workload generators must be deterministic so that simulated kernel outputs
/// can be compared bit-for-bit against reference implementations across runs
/// and machines. `SplitMix64` (Steele, Lea & Flood) is tiny, fast, and passes
/// BigCrush for this purpose; the heavier `rand` crate is reserved for
/// property-test strategies.
///
/// # Example
///
/// ```
/// use dlp_common::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // workload-generation purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }

    /// A uniform `f32` in `[lo, hi)`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x5EED_CAFE_F00D_D00D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_vector() {
        // First output of SplitMix64 seeded with 0 (from the reference
        // implementation).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(123);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn below_zero_panics() {
        SplitMix64::new(1).below(0);
    }
}
