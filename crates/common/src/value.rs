//! The 64-bit datum that flows through the simulated machine.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 64-bit bag of bits with typed views.
///
/// Every operand routed through the simulated operand network is a `Value`.
/// The TRIPS-era machine the paper models is a 64-bit architecture whose
/// media/graphics kernels operate on 32-bit floats and whose network/security
/// kernels operate on 32/64-bit integers, so `Value` provides reinterpreting
/// views rather than a tagged union: the ISA opcode, not the datum, decides
/// the interpretation — exactly as in hardware.
///
/// Narrow views read/write the **low** 32 bits; constructors zero-extend.
///
/// # Example
///
/// ```
/// use dlp_common::Value;
///
/// let v = Value::from_u32(0xDEAD_BEEF);
/// assert_eq!(v.as_u32(), 0xDEAD_BEEF);
/// assert_eq!(v.bits(), 0x0000_0000_DEAD_BEEF);
///
/// let f = Value::from_f32(-2.5);
/// assert_eq!(f.as_f32(), -2.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Value(u64);

impl Value {
    /// The all-zero value.
    pub const ZERO: Value = Value(0);

    /// Construct from raw bits.
    #[must_use]
    pub const fn from_bits(bits: u64) -> Self {
        Value(bits)
    }

    /// The raw 64-bit pattern.
    #[must_use]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Construct from a `u64` (identity on bits).
    #[must_use]
    pub const fn from_u64(x: u64) -> Self {
        Value(x)
    }

    /// View as `u64`.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Construct from an `i64` (two's-complement bits).
    #[must_use]
    pub const fn from_i64(x: i64) -> Self {
        Value(x as u64)
    }

    /// View as `i64` (two's-complement reinterpretation).
    #[must_use]
    pub const fn as_i64(self) -> i64 {
        self.0 as i64
    }

    /// Construct from a `u32`, zero-extending.
    #[must_use]
    pub const fn from_u32(x: u32) -> Self {
        Value(x as u64)
    }

    /// View the low 32 bits as `u32`.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0 as u32
    }

    /// Construct from an `i32` (two's-complement low bits, zero-extended).
    #[must_use]
    pub const fn from_i32(x: i32) -> Self {
        Value(x as u32 as u64)
    }

    /// View the low 32 bits as `i32`.
    #[must_use]
    pub const fn as_i32(self) -> i32 {
        self.0 as u32 as i32
    }

    /// Construct from an `f32` bit pattern in the low 32 bits.
    #[must_use]
    pub fn from_f32(x: f32) -> Self {
        Value(x.to_bits() as u64)
    }

    /// View the low 32 bits as `f32`.
    #[must_use]
    pub fn as_f32(self) -> f32 {
        f32::from_bits(self.0 as u32)
    }

    /// Construct from an `f64` bit pattern.
    #[must_use]
    pub fn from_f64(x: f64) -> Self {
        Value(x.to_bits())
    }

    /// View all 64 bits as `f64`.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        f64::from_bits(self.0)
    }

    /// Whether the value is boolean-true under the ISA's test semantics
    /// (nonzero bits).
    #[must_use]
    pub const fn is_true(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Value({:#018x})", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Self {
        Value::from_u64(x)
    }
}

impl From<u32> for Value {
    fn from(x: u32) -> Self {
        Value::from_u32(x)
    }
}

impl From<i32> for Value {
    fn from(x: i32) -> Self {
        Value::from_i32(x)
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::from_i64(x)
    }
}

impl From<f32> for Value {
    fn from(x: f32) -> Self {
        Value::from_f32(x)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::from_f64(x)
    }
}

impl From<Value> for u64 {
    fn from(v: Value) -> u64 {
        v.bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn narrow_views_use_low_bits() {
        let v = Value::from_bits(0xFFFF_FFFF_0000_00FF);
        assert_eq!(v.as_u32(), 0xFF);
        assert_eq!(v.as_i32(), 0xFF);
    }

    #[test]
    fn i32_zero_extends() {
        let v = Value::from_i32(-1);
        assert_eq!(v.bits(), 0xFFFF_FFFF);
        assert_eq!(v.as_i32(), -1);
    }

    #[test]
    fn truthiness() {
        assert!(!Value::ZERO.is_true());
        assert!(Value::from_u32(1).is_true());
        // Negative-zero f32 has a nonzero bit pattern and is "true" — the ISA
        // tests bits, comparisons produce canonical 0/1.
        assert!(Value::from_f32(-0.0).is_true());
    }

    #[test]
    fn formatting() {
        let v = Value::from_u32(0b1010);
        assert_eq!(format!("{v:x}"), "a");
        assert_eq!(format!("{v:X}"), "A");
        assert_eq!(format!("{v:b}"), "1010");
        assert_eq!(format!("{v:o}"), "12");
        assert!(!format!("{v:?}").is_empty());
    }

    proptest! {
        #[test]
        fn f32_roundtrip(x in proptest::num::f32::ANY) {
            let v = Value::from_f32(x);
            prop_assert_eq!(v.as_f32().to_bits(), x.to_bits());
        }

        #[test]
        fn f64_roundtrip(x in proptest::num::f64::ANY) {
            let v = Value::from_f64(x);
            prop_assert_eq!(v.as_f64().to_bits(), x.to_bits());
        }

        #[test]
        fn u64_roundtrip(x in any::<u64>()) {
            prop_assert_eq!(Value::from_u64(x).as_u64(), x);
        }

        #[test]
        fn i32_roundtrip(x in any::<i32>()) {
            prop_assert_eq!(Value::from_i32(x).as_i32(), x);
        }
    }
}
