//! Timing parameters for the simulated machine.
//!
//! Defaults reproduce the paper's §5.2 baseline: an 8×8 mesh with
//! functional-unit and cache latencies configured to match an Alpha 21264,
//! a 10FO4 clock making the inter-ALU hop delay half a cycle, 64 KB SMC
//! banks (one per row), 2 MB of L2, and partitioned 64 KB L1 caches.
//!
//! All latencies are stored in **ticks** (half-cycles) so that the 0.5-cycle
//! hop stays integral; see [`crate::Tick`].

use serde::{Deserialize, Serialize};

use crate::Tick;

/// Execution latencies per functional-unit class, in ticks (half-cycles).
///
/// Defaults follow the Alpha 21264's well-known latencies: 1-cycle integer
/// ALU, 7-cycle integer multiply, 4-cycle FP add/multiply, 12-cycle FP
/// divide.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpClassLatency {
    /// Integer add/sub/logic/shift/compare/select.
    pub int_alu: Tick,
    /// Integer multiply.
    pub int_mul: Tick,
    /// Integer divide.
    pub int_div: Tick,
    /// Floating-point add/sub/compare.
    pub fp_add: Tick,
    /// Floating-point multiply.
    pub fp_mul: Tick,
    /// Floating-point divide.
    pub fp_div: Tick,
    /// Floating-point square root.
    pub fp_sqrt: Tick,
    /// Register-to-register moves, immediates, sign extension.
    pub mov: Tick,
}

impl Default for OpClassLatency {
    fn default() -> Self {
        OpClassLatency {
            int_alu: 2,  // 1 cycle
            int_mul: 14, // 7 cycles
            int_div: 40, // 20 cycles
            fp_add: 8,   // 4 cycles
            fp_mul: 8,   // 4 cycles
            fp_div: 24,  // 12 cycles
            fp_sqrt: 36, // 18 cycles
            mov: 2,      // 1 cycle
        }
    }
}

/// Memory-system parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemParams {
    /// L0 data-store (per-ALU lookup table) access latency, in ticks.
    pub l0_latency: Tick,
    /// L0 data-store capacity in bytes (paper §4.4: 2 KB sufficed).
    pub l0_data_bytes: usize,
    /// L1 cache hit latency, in ticks.
    pub l1_hit_latency: Tick,
    /// L1 miss penalty (added on top of the hit latency), in ticks.
    pub l1_miss_penalty: Tick,
    /// L1 cache capacity in bytes (partitioned 64 KB in the baseline).
    pub l1_bytes: usize,
    /// L1 line size in bytes.
    pub l1_line_bytes: usize,
    /// New L1 accesses accepted per bank per cycle.
    pub l1_accesses_per_cycle: u32,
    /// SMC / L2 bank access latency, in ticks.
    pub smc_latency: Tick,
    /// SMC bank capacity in bytes (64 KB per row in the baseline).
    pub smc_bank_bytes: usize,
    /// Words per cycle each row's streaming channel can deliver.
    pub smc_channel_words_per_cycle: u32,
    /// Maximum contiguous words a single LMW (load-multiple-word) fetches.
    pub lmw_max_words: u32,
    /// Store-buffer entries per row (coalescing window).
    pub store_buffer_entries: usize,
    /// Store-buffer drain bandwidth, lines per cycle per row.
    pub store_drains_per_cycle: u32,
    /// Main-memory access latency, in ticks (L2/SMC miss).
    pub dram_latency: Tick,
}

impl Default for MemParams {
    fn default() -> Self {
        MemParams {
            l0_latency: 2, // 1 cycle
            l0_data_bytes: 2 * 1024,
            l1_hit_latency: 6,    // 3 cycles
            l1_miss_penalty: 20,  // +10 cycles to L2
            l1_bytes: 64 * 1024,
            l1_line_bytes: 64,
            l1_accesses_per_cycle: 2,
            smc_latency: 16, // 8 cycles
            smc_bank_bytes: 64 * 1024,
            smc_channel_words_per_cycle: 8,
            lmw_max_words: 8,
            store_buffer_entries: 16,
            store_drains_per_cycle: 1,
            dram_latency: 120, // 60 cycles
        }
    }
}

/// Operand-network parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetParams {
    /// Per-hop delay in ticks (paper: 0.5 cycles = 1 tick at 10FO4).
    pub hop_ticks: Tick,
    /// Messages a single link accepts per tick (link bandwidth).
    pub link_msgs_per_tick: u32,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams { hop_ticks: 1, link_msgs_per_tick: 1 }
    }
}

/// Complete machine timing description.
///
/// This is deliberately a plain, fully public parameter struct (a passive
/// configuration record); the structured knobs let the ablation benches sweep
/// individual mechanisms without touching simulator code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TimingParams {
    /// Functional-unit latencies.
    pub ops: OpClassLatency,
    /// Memory-system parameters.
    pub mem: MemParams,
    /// Operand-network parameters.
    pub net: NetParams,
    /// Fetch/map parameters.
    pub fetch: FetchParams,
    /// Execution-core storage parameters.
    pub core: CoreParams,
}

/// Instruction fetch/map parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchParams {
    /// Instructions fetched and mapped onto the array per cycle.
    pub insts_per_cycle: u32,
    /// Fixed per-block map/dispatch overhead, in ticks.
    pub map_overhead: Tick,
    /// Latency of the global revitalize broadcast between loop iterations,
    /// in ticks (paper §4.3: amortized by unrolling).
    pub revitalize_delay: Tick,
    /// Block instances the baseline keeps in flight concurrently (TRIPS
    /// frames). Instruction revitalization replaces this pipelining with a
    /// serial revitalize barrier, which is why it must unroll instead.
    pub baseline_frames: u32,
}

impl Default for FetchParams {
    fn default() -> Self {
        FetchParams {
            insts_per_cycle: 16,
            map_overhead: 16,     // 8 cycles
            revitalize_delay: 10, // 5 cycles: global broadcast across the array
            baseline_frames: 16,
        }
    }
}

/// Execution-core storage parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreParams {
    /// Reservation-station slots per node available to DLP mapping
    /// (instruction revitalization fills all of these).
    pub rs_slots_per_node: usize,
    /// Reservation-station slots per node the baseline ILP compiler can fill
    /// per hyperblock (limits baseline block size).
    pub baseline_slots_per_node: usize,
    /// Register-file banks along the top edge.
    pub reg_banks: u32,
    /// Reads each register bank serves per cycle.
    pub reg_reads_per_bank_per_cycle: u32,
    /// Instructions the per-node L0 instruction store holds (MIMD mode).
    pub l0_inst_capacity: usize,
    /// Architectural registers per node in MIMD mode (operand buffers).
    pub mimd_regs: usize,
}

impl Default for CoreParams {
    fn default() -> Self {
        CoreParams {
            rs_slots_per_node: 64,
            baseline_slots_per_node: 2,
            reg_banks: 8,
            reg_reads_per_bank_per_cycle: 1,
            l0_inst_capacity: 256,
            mimd_regs: 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_baseline() {
        let p = TimingParams::default();
        // Alpha-21264-like: 1-cycle int ALU, 7-cycle imul, 4-cycle FP add/mul.
        assert_eq!(p.ops.int_alu, 2);
        assert_eq!(p.ops.int_mul, 14);
        assert_eq!(p.ops.fp_add, 8);
        // 0.5-cycle hop.
        assert_eq!(p.net.hop_ticks, 1);
        // 2 KB L0 data store, 64 KB SMC banks, 64 KB L1.
        assert_eq!(p.mem.l0_data_bytes, 2048);
        assert_eq!(p.mem.smc_bank_bytes, 64 * 1024);
        assert_eq!(p.mem.l1_bytes, 64 * 1024);
    }

    #[test]
    fn params_implement_common_traits() {
        fn assert_traits<T: Clone + Copy + std::fmt::Debug + PartialEq + serde::Serialize>() {}
        assert_traits::<TimingParams>();
        assert_traits::<OpClassLatency>();
        assert_traits::<MemParams>();
        assert_traits::<NetParams>();
        let a = TimingParams::default();
        assert_eq!(a, a);
    }
}
