//! The stable `W*` warning taxonomy of the semantic static analyzer.
//!
//! Where [`vcode`](crate::vcode) names the *rejections* of the legality
//! verifier, these codes name the *advisories* of `dlp-analyze`: findings
//! that do not make a lowering illegal but flag dead computation, indices
//! the interval interpreter cannot prove in bounds, channel traffic that
//! cannot balance per loop iteration, or cost-model pressure worth a
//! look. Codes are append-only: `W01xx` covers the kernel-IR abstract
//! interpretation, `W02xx` covers MIMD channel-flow findings, and
//! `W03xx` covers the static cost model; a code, once published, never
//! changes meaning. `cargo xtask analyze-grid --deny-warnings` turns any
//! of them into a hard failure.

/// IR: a node's value is never used by any output (dead operand).
pub const DEAD_NODE: &str = "W0101-dead-node";
/// IR: a table-read index cannot be proven within the table.
pub const UNPROVABLE_TABLE_INDEX: &str = "W0102-unprovable-table-index";
/// IR: a table-read index is provably *always* out of bounds.
pub const TABLE_INDEX_ALWAYS_OOB: &str = "W0103-table-index-always-out-of-bounds";
/// IR: an irregular-load address cannot be proven within the window.
pub const UNPROVABLE_IRREGULAR_ADDRESS: &str = "W0104-unprovable-irregular-address";
/// IR: an instruction's operands are all constants — foldable at build
/// time.
pub const FOLDABLE_CONSTANT: &str = "W0105-foldable-constant";
/// IR: an output word is a compile-time constant.
pub const CONSTANT_OUTPUT: &str = "W0106-constant-output";
/// IR: a select's predicate is constant, so one arm is dead.
pub const DEGENERATE_SELECT: &str = "W0107-degenerate-select";

/// MIMD: sends and receives between a rank pair do not balance inside
/// one loop body (they may still balance whole-program).
pub const LOOP_CHANNEL_IMBALANCE: &str = "W0201-loop-channel-imbalance";
/// MIMD: a rank's reachable code neither sends nor stores — it can
/// contribute nothing to the observable result.
pub const DEAD_RANK: &str = "W0202-dead-rank";

/// Cost model: the static lower bound consumes most of the watchdog
/// budget — the cell is one perturbation away from a spurious trip.
pub const WATCHDOG_MARGIN: &str = "W0301-watchdog-margin";
/// Cost model: per-node issue pressure exceeds the critical path — the
/// placement serializes on one node, not on the dataflow.
pub const ISSUE_HOTSPOT: &str = "W0302-issue-hotspot";

/// Every published code with a one-line description, in code order —
/// the source of the DESIGN.md warning-registry table.
pub const ALL: &[(&str, &str)] = &[
    (DEAD_NODE, "node value unused by any output"),
    (UNPROVABLE_TABLE_INDEX, "table-read index not provably in bounds"),
    (TABLE_INDEX_ALWAYS_OOB, "table-read index provably always out of bounds"),
    (UNPROVABLE_IRREGULAR_ADDRESS, "irregular-load address not provably in window"),
    (FOLDABLE_CONSTANT, "all-constant operands: foldable at build time"),
    (CONSTANT_OUTPUT, "output word is a compile-time constant"),
    (DEGENERATE_SELECT, "constant select predicate leaves one arm dead"),
    (LOOP_CHANNEL_IMBALANCE, "sends and receives do not balance inside a loop body"),
    (DEAD_RANK, "rank's reachable code neither sends nor stores"),
    (WATCHDOG_MARGIN, "static bound consumes most of the watchdog budget"),
    (ISSUE_HOTSPOT, "issue pressure on one node exceeds the critical path"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = Vec::new();
        for (code, desc) in ALL {
            assert!(code.starts_with('W'), "{code}");
            let digits = &code[1..5];
            assert!(digits.chars().all(|c| c.is_ascii_digit()), "{code}");
            assert!(code.as_bytes()[5] == b'-', "{code} has a slug after the number");
            assert!(!desc.is_empty());
            assert!(!seen.contains(code), "{code} listed twice");
            seen.push(code);
        }
        assert!(ALL.len() >= 10, "taxonomy covers IR, MIMD, and cost families");
    }

    #[test]
    fn families_partition_by_prefix() {
        for (code, _) in ALL {
            assert!(
                code.starts_with("W01") || code.starts_with("W02") || code.starts_with("W03"),
                "{code} outside the published families"
            );
        }
    }
}
