//! Minimal JSON emission through serde's data model.
//!
//! The workspace's sanctioned dependency set has no `serde_json`, so the
//! experiment harness emits its JSON artifacts (`report.json`,
//! `BENCH_sweep.json`) through this hand-rolled [`serde::Serializer`].
//! It covers the subset of the data model the report types exercise —
//! scalars, strings, options, sequences, tuples, maps, structs, and all
//! enum-variant flavors — and makes two pragmatic choices:
//!
//! * non-finite floats serialize as `null` (JSON has no NaN/Inf);
//! * map keys that are not strings are serialized and then quoted, so
//!   `BTreeMap<MachineConfig, f64>` emits `{"S": 1.5, ...}`;
//! * struct enum variants emit their fields as a bare object with no
//!   variant-name wrapper (unit variants render as strings, newtype
//!   variants as `{"Name": value}`) — consumers distinguish variants by
//!   their field names, e.g. a sweep cell's `"outcome"` is either
//!   `{"stats": ..., "mismatch": ...}` or `{"error": "..."}`.
//!
//! Output is compact (no whitespace). There is deliberately no parser:
//! nothing in the workspace reads JSON back.

use serde::ser::{self, Serialize};
use std::fmt::Write as _;

/// Serialize `value` to a compact JSON string.
///
/// # Panics
///
/// Panics if `value`'s `Serialize` impl feeds bytes into the serializer
/// (the one unsupported corner of the data model).
///
/// # Examples
///
/// ```
/// use serde::Serialize;
///
/// #[derive(Serialize)]
/// struct Cell {
///     kernel: &'static str,
///     cycles: u64,
///     speedup: Option<f64>,
/// }
///
/// let json = dlp_common::json::to_string(&Cell {
///     kernel: "fft",
///     cycles: 1024,
///     speedup: None,
/// });
/// assert_eq!(json, r#"{"kernel":"fft","cycles":1024,"speedup":null}"#);
/// ```
#[must_use]
pub fn to_string<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    let mut ser = JsonSer { out: &mut out };
    value.serialize(&mut ser).expect("value serializes to JSON");
    out
}

/// The serializer; writes compact JSON into a borrowed buffer.
struct JsonSer<'a> {
    out: &'a mut String,
}

/// Serialization failure (only produced for unsupported `bytes`).
#[derive(Debug)]
pub struct JsonError(String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for JsonError {}
impl ser::Error for JsonError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        JsonError(msg.to_string())
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

impl<'a, 'b> ser::Serializer for &'b mut JsonSer<'a> {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), JsonError> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), JsonError> {
        self.serialize_i64(v.into())
    }
    fn serialize_i16(self, v: i16) -> Result<(), JsonError> {
        self.serialize_i64(v.into())
    }
    fn serialize_i32(self, v: i32) -> Result<(), JsonError> {
        self.serialize_i64(v.into())
    }
    fn serialize_i64(self, v: i64) -> Result<(), JsonError> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), JsonError> {
        self.serialize_u64(v.into())
    }
    fn serialize_u16(self, v: u16) -> Result<(), JsonError> {
        self.serialize_u64(v.into())
    }
    fn serialize_u32(self, v: u32) -> Result<(), JsonError> {
        self.serialize_u64(v.into())
    }
    fn serialize_u64(self, v: u64) -> Result<(), JsonError> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), JsonError> {
        self.serialize_f64(v.into())
    }
    fn serialize_f64(self, v: f64) -> Result<(), JsonError> {
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), JsonError> {
        self.serialize_str(&v.to_string())
    }
    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        let _ = write!(self.out, "\"{}\"", escape(v));
        Ok(())
    }
    fn serialize_bytes(self, _v: &[u8]) -> Result<(), JsonError> {
        Err(ser::Error::custom("bytes unsupported"))
    }
    fn serialize_none(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonError> {
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        self.serialize_str(variant)
    }
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        let _ = write!(self.out, "{{\"{}\":", escape(variant));
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<Self, JsonError> {
        self.out.push('[');
        Ok(self)
    }
    fn serialize_tuple(self, len: usize) -> Result<Self, JsonError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(self, _n: &'static str, len: usize) -> Result<Self, JsonError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _n: &'static str,
        _i: u32,
        _v: &'static str,
        len: usize,
    ) -> Result<Self, JsonError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Self, JsonError> {
        self.out.push('{');
        Ok(self)
    }
    fn serialize_struct(self, _n: &'static str, _len: usize) -> Result<Self, JsonError> {
        self.out.push('{');
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _n: &'static str,
        _i: u32,
        _v: &'static str,
        _len: usize,
    ) -> Result<Self, JsonError> {
        self.out.push('{');
        Ok(self)
    }
}

/// Shared element-separation helper: emit a comma unless the container
/// was just opened.
fn sep(out: &mut String) {
    if !out.ends_with('[') && !out.ends_with('{') && !out.ends_with(':') {
        out.push(',');
    }
}

impl<'a, 'b> ser::SerializeSeq for &'b mut JsonSer<'a> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        sep(self.out);
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), JsonError> {
        self.out.push(']');
        Ok(())
    }
}
impl<'a, 'b> ser::SerializeTuple for &'b mut JsonSer<'a> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        ser::SerializeSeq::end(self)
    }
}
impl<'a, 'b> ser::SerializeTupleStruct for &'b mut JsonSer<'a> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        ser::SerializeSeq::end(self)
    }
}
impl<'a, 'b> ser::SerializeTupleVariant for &'b mut JsonSer<'a> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        ser::SerializeSeq::end(self)
    }
}
impl<'a, 'b> ser::SerializeMap for &'b mut JsonSer<'a> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), JsonError> {
        sep(self.out);
        // JSON keys must be strings; serialize into a buffer and quote
        // if the serializer produced a bare scalar.
        let mut buf = String::new();
        let mut ser = JsonSer { out: &mut buf };
        key.serialize(&mut ser)?;
        if buf.starts_with('"') {
            self.out.push_str(&buf);
        } else {
            let _ = write!(self.out, "\"{}\"", buf.replace('"', "\\\""));
        }
        Ok(())
    }
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        self.out.push(':');
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), JsonError> {
        self.out.push('}');
        Ok(())
    }
}
impl<'a, 'b> ser::SerializeStruct for &'b mut JsonSer<'a> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        sep(self.out);
        let _ = write!(self.out, "\"{key}\":");
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), JsonError> {
        self.out.push('}');
        Ok(())
    }
}
impl<'a, 'b> ser::SerializeStructVariant for &'b mut JsonSer<'a> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }
    fn end(self) -> Result<(), JsonError> {
        ser::SerializeStruct::end(self)
    }
}

#[cfg(test)]
mod tests {
    use super::to_string;
    use serde::Serialize;
    use std::collections::BTreeMap;

    #[derive(Serialize)]
    enum Tag {
        Plain,
        Wrapped(u8),
        Fields { x: i32 },
    }

    #[test]
    fn scalars_and_structs() {
        #[derive(Serialize)]
        struct S {
            a: u64,
            b: f64,
            c: Option<String>,
            d: Vec<bool>,
        }
        let got = to_string(&S {
            a: 7,
            b: f64::NAN,
            c: Some("hi\"x".into()),
            d: vec![true, false],
        });
        assert_eq!(got, r#"{"a":7,"b":null,"c":"hi\"x","d":[true,false]}"#);
    }

    #[test]
    fn enum_variants() {
        assert_eq!(to_string(&Tag::Plain), r#""Plain""#);
        assert_eq!(to_string(&Tag::Wrapped(3)), r#"{"Wrapped":3}"#);
        // Struct variants are unwrapped by workspace convention (see the
        // module docs): fields only, no variant-name layer.
        assert_eq!(to_string(&Tag::Fields { x: -1 }), r#"{"x":-1}"#);
    }

    #[test]
    fn non_string_map_keys_are_quoted() {
        let mut m = BTreeMap::new();
        m.insert(2u32, "two");
        assert_eq!(to_string(&m), r#"{"2":"two"}"#);
    }
}
