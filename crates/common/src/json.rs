//! Minimal JSON emission through serde's data model.
//!
//! The workspace's sanctioned dependency set has no `serde_json`, so the
//! experiment harness emits its JSON artifacts (`report.json`,
//! `BENCH_sweep.json`) through this hand-rolled [`serde::Serializer`].
//! It covers the subset of the data model the report types exercise —
//! scalars, strings, options, sequences, tuples, maps, structs, and all
//! enum-variant flavors — and makes two pragmatic choices:
//!
//! * non-finite floats serialize as `null` (JSON has no NaN/Inf);
//! * map keys that are not strings are serialized and then quoted, so
//!   `BTreeMap<MachineConfig, f64>` emits `{"S": 1.5, ...}`;
//! * struct enum variants emit their fields as a bare object with no
//!   variant-name wrapper (unit variants render as strings, newtype
//!   variants as `{"Name": value}`) — consumers distinguish variants by
//!   their field names, e.g. a sweep cell's `"outcome"` is either
//!   `{"stats": ..., "mismatch": ...}` or `{"error": "..."}`.
//!
//! Output is compact (no whitespace).
//!
//! Since the result store, sweep manifests, and dead-letter queue read
//! their own artifacts back, the module also carries a small recursive-
//! descent [`parse`] returning a [`JsonValue`] tree. Numbers keep their
//! raw text ([`JsonValue::Num`]) so that full-precision `u64` values
//! (seeds, fingerprints) round-trip exactly — they would be mangled by
//! an `f64` intermediate. The parser accepts anything [`to_string`]
//! emits plus standard JSON written by hand (whitespace, all escape
//! forms including `\uXXXX`).

use serde::ser::{self, Serialize};
use std::fmt::Write as _;

/// Serialize `value` to a compact JSON string.
///
/// # Panics
///
/// Panics if `value`'s `Serialize` impl feeds bytes into the serializer
/// (the one unsupported corner of the data model).
///
/// # Examples
///
/// ```
/// use serde::Serialize;
///
/// #[derive(Serialize)]
/// struct Cell {
///     kernel: &'static str,
///     cycles: u64,
///     speedup: Option<f64>,
/// }
///
/// let json = dlp_common::json::to_string(&Cell {
///     kernel: "fft",
///     cycles: 1024,
///     speedup: None,
/// });
/// assert_eq!(json, r#"{"kernel":"fft","cycles":1024,"speedup":null}"#);
/// ```
#[must_use]
pub fn to_string<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    let mut ser = JsonSer { out: &mut out };
    value.serialize(&mut ser).expect("value serializes to JSON");
    out
}

/// The serializer; writes compact JSON into a borrowed buffer.
struct JsonSer<'a> {
    out: &'a mut String,
}

/// Serialization failure (only produced for unsupported `bytes`).
#[derive(Debug)]
pub struct JsonError(String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for JsonError {}
impl ser::Error for JsonError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        JsonError(msg.to_string())
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

impl<'a, 'b> ser::Serializer for &'b mut JsonSer<'a> {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), JsonError> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), JsonError> {
        self.serialize_i64(v.into())
    }
    fn serialize_i16(self, v: i16) -> Result<(), JsonError> {
        self.serialize_i64(v.into())
    }
    fn serialize_i32(self, v: i32) -> Result<(), JsonError> {
        self.serialize_i64(v.into())
    }
    fn serialize_i64(self, v: i64) -> Result<(), JsonError> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), JsonError> {
        self.serialize_u64(v.into())
    }
    fn serialize_u16(self, v: u16) -> Result<(), JsonError> {
        self.serialize_u64(v.into())
    }
    fn serialize_u32(self, v: u32) -> Result<(), JsonError> {
        self.serialize_u64(v.into())
    }
    fn serialize_u64(self, v: u64) -> Result<(), JsonError> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), JsonError> {
        self.serialize_f64(v.into())
    }
    fn serialize_f64(self, v: f64) -> Result<(), JsonError> {
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), JsonError> {
        self.serialize_str(&v.to_string())
    }
    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        let _ = write!(self.out, "\"{}\"", escape(v));
        Ok(())
    }
    fn serialize_bytes(self, _v: &[u8]) -> Result<(), JsonError> {
        Err(ser::Error::custom("bytes unsupported"))
    }
    fn serialize_none(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonError> {
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        self.serialize_str(variant)
    }
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        let _ = write!(self.out, "{{\"{}\":", escape(variant));
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<Self, JsonError> {
        self.out.push('[');
        Ok(self)
    }
    fn serialize_tuple(self, len: usize) -> Result<Self, JsonError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(self, _n: &'static str, len: usize) -> Result<Self, JsonError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _n: &'static str,
        _i: u32,
        _v: &'static str,
        len: usize,
    ) -> Result<Self, JsonError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Self, JsonError> {
        self.out.push('{');
        Ok(self)
    }
    fn serialize_struct(self, _n: &'static str, _len: usize) -> Result<Self, JsonError> {
        self.out.push('{');
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _n: &'static str,
        _i: u32,
        _v: &'static str,
        _len: usize,
    ) -> Result<Self, JsonError> {
        self.out.push('{');
        Ok(self)
    }
}

/// Shared element-separation helper: emit a comma unless the container
/// was just opened.
fn sep(out: &mut String) {
    if !out.ends_with('[') && !out.ends_with('{') && !out.ends_with(':') {
        out.push(',');
    }
}

impl<'a, 'b> ser::SerializeSeq for &'b mut JsonSer<'a> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        sep(self.out);
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), JsonError> {
        self.out.push(']');
        Ok(())
    }
}
impl<'a, 'b> ser::SerializeTuple for &'b mut JsonSer<'a> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        ser::SerializeSeq::end(self)
    }
}
impl<'a, 'b> ser::SerializeTupleStruct for &'b mut JsonSer<'a> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        ser::SerializeSeq::end(self)
    }
}
impl<'a, 'b> ser::SerializeTupleVariant for &'b mut JsonSer<'a> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        ser::SerializeSeq::end(self)
    }
}
impl<'a, 'b> ser::SerializeMap for &'b mut JsonSer<'a> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), JsonError> {
        sep(self.out);
        // JSON keys must be strings; serialize into a buffer and quote
        // if the serializer produced a bare scalar.
        let mut buf = String::new();
        let mut ser = JsonSer { out: &mut buf };
        key.serialize(&mut ser)?;
        if buf.starts_with('"') {
            self.out.push_str(&buf);
        } else {
            let _ = write!(self.out, "\"{}\"", buf.replace('"', "\\\""));
        }
        Ok(())
    }
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        self.out.push(':');
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), JsonError> {
        self.out.push('}');
        Ok(())
    }
}
impl<'a, 'b> ser::SerializeStruct for &'b mut JsonSer<'a> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        sep(self.out);
        let _ = write!(self.out, "\"{key}\":");
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), JsonError> {
        self.out.push('}');
        Ok(())
    }
}
impl<'a, 'b> ser::SerializeStructVariant for &'b mut JsonSer<'a> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }
    fn end(self) -> Result<(), JsonError> {
        ser::SerializeStruct::end(self)
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A parsed JSON document.
///
/// Objects preserve insertion order as a `Vec` of pairs (no hashing, so
/// iteration is deterministic); numbers keep their source text so
/// integer values round-trip at full 64-bit precision.
///
/// # Examples
///
/// ```
/// use dlp_common::json::{parse, JsonValue};
///
/// let v = parse(r#"{"cells":2,"seed":18446744073709551615}"#).unwrap();
/// assert_eq!(v.get("cells").and_then(JsonValue::as_u64), Some(2));
/// assert_eq!(v.get("seed").and_then(JsonValue::as_u64), Some(u64::MAX));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source text (e.g. `"-3.5"`, `"42"`).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as ordered `(key, value)` pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match); `None` on other shapes.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, when it is a number that parses as one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, when it is a number that parses as one.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, when it is a number that parses as one.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (`null` reads as `None`, matching the
    /// serializer's non-finite-float convention).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Parse a JSON document.
///
/// # Errors
///
/// [`JsonError`] with a byte offset on malformed input or trailing
/// garbage — the store layer treats any parse failure as a cache miss.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> JsonError {
        JsonError(format!("{what} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.lit("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our
                            // serializer; map them to the replacement
                            // character rather than failing the parse.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" || text.parse::<f64>().is_err() {
            return Err(self.err("invalid number"));
        }
        Ok(JsonValue::Num(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::{parse, to_string, JsonValue};
    use serde::Serialize;
    use std::collections::BTreeMap;

    #[derive(Serialize)]
    enum Tag {
        Plain,
        Wrapped(u8),
        Fields { x: i32 },
    }

    #[test]
    fn scalars_and_structs() {
        #[derive(Serialize)]
        struct S {
            a: u64,
            b: f64,
            c: Option<String>,
            d: Vec<bool>,
        }
        let got = to_string(&S {
            a: 7,
            b: f64::NAN,
            c: Some("hi\"x".into()),
            d: vec![true, false],
        });
        assert_eq!(got, r#"{"a":7,"b":null,"c":"hi\"x","d":[true,false]}"#);
    }

    #[test]
    fn enum_variants() {
        assert_eq!(to_string(&Tag::Plain), r#""Plain""#);
        assert_eq!(to_string(&Tag::Wrapped(3)), r#"{"Wrapped":3}"#);
        // Struct variants are unwrapped by workspace convention (see the
        // module docs): fields only, no variant-name layer.
        assert_eq!(to_string(&Tag::Fields { x: -1 }), r#"{"x":-1}"#);
    }

    #[test]
    fn non_string_map_keys_are_quoted() {
        let mut m = BTreeMap::new();
        m.insert(2u32, "two");
        assert_eq!(to_string(&m), r#"{"2":"two"}"#);
    }

    #[test]
    fn parse_round_trips_serializer_output() {
        #[derive(Serialize)]
        struct S {
            a: u64,
            b: f64,
            c: Option<String>,
            d: Vec<bool>,
        }
        let json = to_string(&S {
            a: u64::MAX,
            b: -2.5,
            c: Some("quote\" slash\\ newline\n".into()),
            d: vec![true, false],
        });
        let v = parse(&json).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(u64::MAX));
        assert_eq!(v.get("b").and_then(JsonValue::as_f64), Some(-2.5));
        assert_eq!(
            v.get("c").and_then(JsonValue::as_str),
            Some("quote\" slash\\ newline\n")
        );
        assert_eq!(
            v.get("d").and_then(JsonValue::as_array).map(<[JsonValue]>::len),
            Some(2)
        );
    }

    #[test]
    fn parse_handles_whitespace_nesting_and_escapes() {
        let v = parse(
            " { \"outer\" : [ 1 , { \"k\" : null } , \"\\u0041\\t\" ] , \"neg\" : -17 } ",
        )
        .unwrap();
        let arr = v.get("outer").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert!(arr[1].get("k").unwrap().is_null());
        assert_eq!(arr[2].as_str(), Some("A\t"));
        assert_eq!(v.get("neg").and_then(JsonValue::as_i64), Some(-17));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "01a", "\"unterminated",
            "{\"a\":1} trailing", "nul", "-", "\"bad \\x escape\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail to parse");
        }
    }

    #[test]
    fn parse_preserves_object_order_and_duplicate_lookup_takes_first() {
        let v = parse(r#"{"z":1,"a":2,"z":3}"#).unwrap();
        match &v {
            JsonValue::Obj(pairs) => {
                let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["z", "a", "z"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
        assert_eq!(v.get("z").and_then(JsonValue::as_u64), Some(1));
    }
}
