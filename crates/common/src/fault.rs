//! Deterministic transient-fault injection.
//!
//! The substrate the paper proposes is *reconfigurable*: one array morphs
//! per kernel. That only earns trust if the mechanisms keep working when
//! the fabric misbehaves — a router drops a flit, a DMA engine stalls, an
//! SMC bank goes busy, an operand store latches a flipped bit. This module
//! is the chaos layer that asks those questions reproducibly:
//!
//! * [`FaultPlan`] — *what* to inject and *how often*: per-site rates plus
//!   a retry budget and backoff/stall magnitudes. A plan is pure data
//!   (`Copy`), carried inside `ExperimentParams`, and is seeded from the
//!   experiment seed so any run can be replayed bit-for-bit.
//! * [`FaultInjector`] — the run-time state: one deterministic
//!   [`SplitMix64`] stream owned by the machine, rolled at each hook point
//!   in program order (each cell simulates serially, so the stream is
//!   identical across sweep thread counts), plus accumulated
//!   [`FaultStats`] and the fatal-escalation latch.
//!
//! # Recovery model
//!
//! Every fault is *detected* at its site (link-level CRC, bank timeout,
//! operand parity) and retried or absorbed; delivered values are never
//! silently corrupted. A recovered run therefore produces output values
//! bit-identical to the fault-free run — only slower, with the extra
//! ticks charged honestly at the site. A fault whose retries exhaust
//! [`FaultPlan::max_retries`] latches a [`FatalFault`]; the engines notice
//! the latch at the next event/step boundary and abort with
//! `DlpError::FaultUnrecoverable`. Injection stops once the latch is set,
//! so a doomed run drains quickly instead of compounding damage.
//!
//! # Determinism contract
//!
//! A plan with every rate zero ([`FaultPlan::is_none`]) produces a
//! disabled injector: every hook takes an early-return path that performs
//! **zero** RNG draws and calls the exact fault-free code, so a zero-fault
//! plan is a true no-op (golden stats are bit-identical). With nonzero
//! rates, the injector draws once per *opportunity* in simulation order,
//! so equal seeds yield equal fault schedules and equal `SimStats`.

use serde::{Deserialize, Serialize};

use crate::{DlpError, SplitMix64, Tick};

/// Domain-separation constant mixed into the run seed so the fault stream
/// is independent of the workload-generation stream derived from the same
/// experiment seed.
const FAULT_STREAM_SALT: u64 = 0xFA17_5EED_0000_2003;

/// A per-site fault probability, in events per million opportunities.
///
/// Stored as parts-per-million so plans are exact integers (`Eq`, hashable,
/// serializable without float noise). `FaultRate(1_000_000)` fires on every
/// opportunity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultRate(pub u32);

impl FaultRate {
    /// Never fires.
    pub const ZERO: FaultRate = FaultRate(0);

    /// A rate of `n` events per million opportunities (clamped to 10⁶).
    #[must_use]
    pub const fn per_million(n: u32) -> FaultRate {
        FaultRate(if n > 1_000_000 { 1_000_000 } else { n })
    }

    /// True when this rate can never fire.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

/// Where a fault was injected — carried in diagnostics and
/// `DlpError::FaultUnrecoverable`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultSite {
    /// Mesh link dropped or corrupted a message (detected by link CRC,
    /// NACKed, replayed with exponential backoff).
    NocLink,
    /// DMA engine stalled mid-transfer (absorbed by the staging throttle).
    Dma,
    /// SMC bank went busy for a stall window.
    SmcBank,
    /// L1 fill was delayed after a miss.
    L1Fill,
    /// Operand store latched a flipped bit (detected by parity, value
    /// re-latched from the in-flight buffer).
    OperandStore,
}

impl FaultSite {
    /// Stable lower-case site name for diagnostics and JSON.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            FaultSite::NocLink => "noc-link",
            FaultSite::Dma => "dma",
            FaultSite::SmcBank => "smc-bank",
            FaultSite::L1Fill => "l1-fill",
            FaultSite::OperandStore => "operand-store",
        }
    }
}

/// A deterministic transient-fault schedule: per-site rates plus recovery
/// budgets. Pure data; the run-time state lives in [`FaultInjector`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultPlan {
    /// NoC message-drop rate (per routed message).
    pub noc_drop: FaultRate,
    /// NoC message-corruption rate (per routed message; detected by link
    /// CRC and replayed exactly like a drop).
    pub noc_corrupt: FaultRate,
    /// DMA stall rate (per staged transfer).
    pub dma_stall: FaultRate,
    /// SMC bank stall-window rate (per bank access).
    pub smc_stall: FaultRate,
    /// L1 fill-delay rate (per miss fill).
    pub l1_fill_delay: FaultRate,
    /// Operand-store bit-flip rate (per operand write).
    pub operand_flip: FaultRate,
    /// Retry budget per fault event before escalating to
    /// `DlpError::FaultUnrecoverable`.
    pub max_retries: u32,
    /// Base backoff in ticks; retry *k* waits `backoff_ticks << (k-1)`,
    /// capped at [`FaultPlan::backoff_cap`].
    pub backoff_ticks: Tick,
    /// Upper bound on a single backoff wait.
    pub backoff_cap: Tick,
    /// Length of a DMA/SMC stall window, in ticks.
    pub stall_ticks: Tick,
    /// Extra ticks a faulted L1 fill takes.
    pub fill_delay_ticks: Tick,
    /// Extra salt mixed into the stream seed. The sweep retry policy
    /// re-salts per attempt so a retried cell sees an independent (but
    /// still deterministic) schedule.
    pub salt: u64,
}

impl FaultPlan {
    /// The no-fault plan: all rates zero. Installing it is a true no-op.
    #[must_use]
    pub const fn none() -> FaultPlan {
        FaultPlan {
            noc_drop: FaultRate::ZERO,
            noc_corrupt: FaultRate::ZERO,
            dma_stall: FaultRate::ZERO,
            smc_stall: FaultRate::ZERO,
            l1_fill_delay: FaultRate::ZERO,
            operand_flip: FaultRate::ZERO,
            max_retries: 8,
            backoff_ticks: 4,
            backoff_cap: 64,
            stall_ticks: 32,
            fill_delay_ticks: 16,
            salt: 0,
        }
    }

    /// A plan injecting at `rate` (parts per million) at **every** site,
    /// with the default recovery budgets.
    #[must_use]
    pub const fn uniform(rate: FaultRate) -> FaultPlan {
        let mut plan = FaultPlan::none();
        plan.noc_drop = rate;
        plan.noc_corrupt = rate;
        plan.dma_stall = rate;
        plan.smc_stall = rate;
        plan.l1_fill_delay = rate;
        plan.operand_flip = rate;
        plan
    }

    /// True when every rate is zero (nothing can ever fire).
    #[must_use]
    pub const fn is_none(&self) -> bool {
        self.noc_drop.is_zero()
            && self.noc_corrupt.is_zero()
            && self.dma_stall.is_zero()
            && self.smc_stall.is_zero()
            && self.l1_fill_delay.is_zero()
            && self.operand_flip.is_zero()
    }

    /// This plan with a different salt (used by the sweep retry policy).
    #[must_use]
    pub const fn with_salt(mut self, salt: u64) -> FaultPlan {
        self.salt = salt;
        self
    }

    /// Build the run-time injector for this plan, seeded from the
    /// experiment seed. Deterministic: same plan + same seed → the same
    /// fault schedule, independent of sweep thread count.
    #[must_use]
    pub fn injector(&self, run_seed: u64) -> FaultInjector {
        FaultInjector::new(*self, run_seed)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Counters accumulated by a [`FaultInjector`] over one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Transient faults injected (each failed attempt counts once).
    pub injected: u64,
    /// Recovery replays performed (NoC resends, operand re-latches).
    pub retries: u64,
    /// Extra simulated ticks charged to fault recovery (backoff waits,
    /// stall windows, delayed fills).
    pub stall_ticks: u64,
}

/// A fault whose retry budget was exhausted; latched by the injector and
/// surfaced by the engines as `DlpError::FaultUnrecoverable`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FatalFault {
    /// Where the fault struck.
    pub site: FaultSite,
    /// Simulated tick at which recovery was abandoned.
    pub tick: Tick,
    /// Retries performed before giving up.
    pub retries: u32,
}

impl FatalFault {
    /// Convert into the workspace error type.
    #[must_use]
    pub fn to_error(self) -> DlpError {
        DlpError::FaultUnrecoverable {
            site: self.site.name(),
            tick: self.tick,
            detail: format!("{} retries exhausted", self.retries),
        }
    }
}

/// Run-time fault state: one deterministic RNG stream, accumulated
/// counters, and the fatal latch. Owned by the simulated machine; every
/// hook point threads `&mut FaultInjector` through.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    enabled: bool,
    rng: SplitMix64,
    stats: FaultStats,
    fatal: Option<FatalFault>,
}

impl FaultInjector {
    /// An injector that never fires and never draws from its RNG.
    #[must_use]
    pub fn disabled() -> FaultInjector {
        FaultInjector::new(FaultPlan::none(), 0)
    }

    /// Build from a plan and the run seed. All-zero-rate plans come up
    /// disabled, which short-circuits every hook.
    #[must_use]
    pub fn new(plan: FaultPlan, run_seed: u64) -> FaultInjector {
        // Scramble the salt through one SplitMix64 step so salt=0/seed=s
        // and salt=s/seed=0 do not collide.
        let mut mix = SplitMix64::new(run_seed ^ FAULT_STREAM_SALT);
        let base = mix.next_u64();
        let mut salted = SplitMix64::new(plan.salt ^ 0x9E37_79B9_7F4A_7C15);
        let seed = base ^ salted.next_u64();
        FaultInjector {
            enabled: !plan.is_none(),
            plan,
            rng: SplitMix64::new(seed),
            stats: FaultStats::default(),
            fatal: None,
        }
    }

    /// The plan this injector executes.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Fast-path guard: false when the plan cannot fire (or a fatal fault
    /// is already latched). Hooks must check this before any other call so
    /// the zero-fault path performs no RNG draws.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled && self.fatal.is_none()
    }

    /// Roll one fault opportunity at `rate`. Draws exactly one RNG value
    /// per call when enabled; never fires when disabled or fatal.
    pub fn roll(&mut self, rate: FaultRate) -> bool {
        if !self.enabled() || rate.is_zero() {
            return false;
        }
        self.rng.below(1_000_000) < u64::from(rate.0)
    }

    /// Backoff before retry `attempt` (1-based): bounded exponential.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Tick {
        let shift = attempt.saturating_sub(1).min(32);
        self.plan
            .backoff_ticks
            .checked_shl(shift)
            .unwrap_or(self.plan.backoff_cap)
            .clamp(1, self.plan.backoff_cap.max(1))
    }

    /// Record one injected-and-recovered fault: `retries` replays costing
    /// `stall` extra ticks in total.
    pub fn recovered(&mut self, injected: u64, retries: u64, stall: Tick) {
        self.stats.injected += injected;
        self.stats.retries += retries;
        self.stats.stall_ticks += stall;
    }

    /// Record one fault absorbed as a stall window (no replay needed).
    pub fn stalled(&mut self, stall: Tick) {
        self.stats.injected += 1;
        self.stats.stall_ticks += stall;
    }

    /// Latch a budget-exhausted fault. First escalation wins; injection
    /// stops afterwards ([`FaultInjector::enabled`] goes false).
    pub fn escalate(&mut self, site: FaultSite, tick: Tick, retries: u32) {
        if self.fatal.is_none() {
            self.fatal = Some(FatalFault { site, tick, retries });
        }
    }

    /// The latched fatal fault, if any. Engines check this at every
    /// event/step boundary and abort with its error.
    #[must_use]
    pub fn fatal(&self) -> Option<FatalFault> {
        self.fatal
    }

    /// Retry budget from the plan.
    #[must_use]
    pub fn max_retries(&self) -> u32 {
        self.plan.max_retries
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Drain the counters, returning everything accumulated since the last
    /// drain. The engines call this once per run so staging faults are
    /// charged to the run they delay — the same convention as setup ticks.
    pub fn take_stats(&mut self) -> FaultStats {
        std::mem::take(&mut self.stats)
    }

    /// Model an operand-store write at `t`: parity-check the latched
    /// value, re-latching from the in-flight buffer on a flip (bounded by
    /// the retry budget). Returns the tick at which the value is good.
    pub fn operand_write(&mut self, mut t: Tick) -> Tick {
        if !self.enabled() || self.plan.operand_flip.is_zero() {
            return t;
        }
        let mut attempt = 0u32;
        while self.roll(self.plan.operand_flip) {
            attempt += 1;
            if attempt > self.plan.max_retries {
                // Earlier re-latches were already recorded; count only the
                // budget-breaking flip itself before latching fatal.
                self.recovered(1, 0, 0);
                self.escalate(FaultSite::OperandStore, t, attempt - 1);
                return t;
            }
            let wait = self.backoff(attempt);
            t += wait;
            self.recovered(1, 1, wait);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_is_disabled_and_never_draws() {
        let mut inj = FaultPlan::none().injector(42);
        assert!(!inj.enabled());
        for _ in 0..1000 {
            assert!(!inj.roll(FaultRate::per_million(1_000_000)));
        }
        assert_eq!(inj.stats(), FaultStats::default());
        // The RNG state must be untouched: a clone seeded identically
        // produces the same first draw after force-enabling.
        let again = FaultPlan::none().injector(42);
        assert_eq!(format!("{:?}", inj.rng), format!("{:?}", again.rng));
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::uniform(FaultRate::per_million(250_000));
        let mut a = plan.injector(7);
        let mut b = plan.injector(7);
        for _ in 0..10_000 {
            assert_eq!(a.roll(plan.noc_drop), b.roll(plan.noc_drop));
        }
    }

    #[test]
    fn different_salt_different_schedule() {
        let rate = FaultRate::per_million(500_000);
        let mut a = FaultPlan::uniform(rate).injector(7);
        let mut b = FaultPlan::uniform(rate).with_salt(1).injector(7);
        let fires_a: Vec<bool> = (0..64).map(|_| a.roll(rate)).collect();
        let fires_b: Vec<bool> = (0..64).map(|_| b.roll(rate)).collect();
        assert_ne!(fires_a, fires_b);
    }

    #[test]
    fn rate_is_roughly_honored() {
        let rate = FaultRate::per_million(100_000); // 10%
        let mut inj = FaultPlan::uniform(rate).injector(99);
        let fires = (0..100_000).filter(|_| inj.roll(rate)).count();
        assert!((8_000..12_000).contains(&fires), "{fires} fires at 10%");
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let inj = FaultPlan::uniform(FaultRate::per_million(1)).injector(0);
        assert_eq!(inj.backoff(1), 4);
        assert_eq!(inj.backoff(2), 8);
        assert_eq!(inj.backoff(3), 16);
        assert_eq!(inj.backoff(10), 64); // capped
        assert_eq!(inj.backoff(60), 64); // shift clamped, still capped
    }

    #[test]
    fn escalate_latches_first_and_stops_injection() {
        let plan = FaultPlan::uniform(FaultRate::per_million(1_000_000));
        let mut inj = plan.injector(3);
        assert!(inj.roll(plan.noc_drop));
        inj.escalate(FaultSite::NocLink, 100, 8);
        inj.escalate(FaultSite::SmcBank, 200, 1);
        let fatal = inj.fatal().unwrap();
        assert_eq!(fatal.site, FaultSite::NocLink);
        assert_eq!(fatal.tick, 100);
        assert!(!inj.enabled());
        assert!(!inj.roll(plan.noc_drop));
        let err = fatal.to_error();
        assert!(err.to_string().contains("noc-link"));
    }

    #[test]
    fn operand_write_always_fires_escalates_within_budget() {
        let mut plan = FaultPlan::none();
        plan.operand_flip = FaultRate::per_million(1_000_000);
        plan.max_retries = 3;
        let mut inj = plan.injector(5);
        let t = inj.operand_write(10);
        // Every re-latch flips again, so the budget exhausts.
        assert!(inj.fatal().is_some());
        assert_eq!(inj.fatal().unwrap().site, FaultSite::OperandStore);
        assert!(t >= 10);
        assert_eq!(inj.stats().retries, 3);
    }

    #[test]
    fn operand_write_zero_rate_is_free() {
        let mut plan = FaultPlan::uniform(FaultRate::per_million(900_000));
        plan.operand_flip = FaultRate::ZERO;
        let mut inj = plan.injector(5);
        assert_eq!(inj.operand_write(77), 77);
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn uniform_and_none_roundtrip() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::uniform(FaultRate::ZERO).is_none());
        assert!(!FaultPlan::uniform(FaultRate::per_million(1)).is_none());
        assert_eq!(FaultRate::per_million(2_000_000), FaultRate(1_000_000));
    }
}
