//! Deterministic process-kill injection ("crashpoints") for
//! crash-consistency testing of the host persistence layer.
//!
//! A *crashpoint* is a named site threaded through a durable write path
//! (store entries, checkpoint manifests, the dead-letter queue — see
//! `dlp_core::store::CRASHPOINTS` for the full list). In normal
//! operation every site is a no-op costing one atomic load. When a site
//! is **armed** — via the `DLP_CRASHPOINT=<name>[:N]` environment
//! variable or [`arm`] (the `sweep --crashpoint` CLI path) — the Nth
//! pass through that site aborts the process on the spot, exactly where
//! a power loss or `kill -9` could have landed.
//!
//! This is the host-I/O twin of `dlp_common::fault`: PR 3 injects
//! seeded transient faults into the *simulated* hardware; this module
//! injects deterministic kills into the *host* write paths so the chaos
//! harness (`cargo xtask chaos`, tier-1 `tests/chaos_recovery.rs`) can
//! prove crash-anywhere recovery mechanically — kill at every site,
//! resume, and require the canonical report byte-identical to an
//! uninterrupted run.
//!
//! The abort is [`std::process::abort`], not a panic: nothing unwinds,
//! no destructor runs, no buffered writer flushes — the honest
//! worst-case kill.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// An armed crashpoint: which site fires, and on which pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArmedCrashpoint {
    /// The site name ([`hit`] argument) that fires.
    pub name: String,
    /// The 1-based hit ordinal that aborts the process.
    pub nth: u64,
}

/// Parse a `name[:N]` arming spec. `N` defaults to 1 (the first hit)
/// and must be at least 1; an empty name is invalid.
#[must_use]
pub fn parse_spec(spec: &str) -> Option<ArmedCrashpoint> {
    let (name, nth) = match spec.rsplit_once(':') {
        Some((name, n)) => (name, n.parse().ok()?),
        None => (spec, 1),
    };
    if name.is_empty() || nth == 0 {
        return None;
    }
    Some(ArmedCrashpoint { name: name.to_string(), nth })
}

static ARMED: OnceLock<Option<ArmedCrashpoint>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);

fn armed() -> &'static Option<ArmedCrashpoint> {
    ARMED.get_or_init(|| std::env::var("DLP_CRASHPOINT").ok().as_deref().and_then(parse_spec))
}

/// Arm a crashpoint from code (the CLI path), pre-empting the
/// environment variable. Arming is once-per-process: returns `false`
/// if a spec (from a prior [`arm`] call or an already-consulted
/// environment variable) is in force, or if `spec` does not parse.
pub fn arm(spec: &str) -> bool {
    match parse_spec(spec) {
        Some(parsed) => ARMED.set(Some(parsed)).is_ok(),
        None => false,
    }
}

/// Record one pass through the named site, aborting the process if this
/// is the armed site's Nth pass. Unarmed (the normal case) this is one
/// lazy-initialized load and a string compare miss.
pub fn hit(name: &str) {
    if let Some(armed) = armed() {
        if armed.name == name {
            let n = HITS.fetch_add(1, Ordering::SeqCst) + 1;
            if n == armed.nth {
                eprintln!("crashpoint {name}: aborting at hit {n}");
                std::process::abort();
            }
        }
    }
}

/// Passes recorded through the armed site so far (always 0 when
/// nothing is armed).
#[must_use]
pub fn hits() -> u64 {
    HITS.load(Ordering::SeqCst)
}

/// The two kill sites of one atomic tempfile-and-rename write, named so
/// the shared atomic writer can be killed on either side of the commit
/// point (the rename).
#[derive(Clone, Copy, Debug)]
pub struct CrashSites {
    /// Fires after the temp file is written and fsynced, before the
    /// rename — a kill here must leave the destination untouched.
    pub tmp: &'static str,
    /// Fires after the rename (and parent-directory fsync) — a kill
    /// here must leave the new content fully visible.
    pub renamed: &'static str,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing() {
        assert_eq!(
            parse_spec("entry.tmp"),
            Some(ArmedCrashpoint { name: "entry.tmp".into(), nth: 1 })
        );
        assert_eq!(
            parse_spec("manifest.append:3"),
            Some(ArmedCrashpoint { name: "manifest.append".into(), nth: 3 })
        );
        assert_eq!(parse_spec(""), None, "empty name");
        assert_eq!(parse_spec("x:0"), None, "hit ordinals are 1-based");
        assert_eq!(parse_spec("x:nope"), None, "non-numeric ordinal");
        assert_eq!(parse_spec(":2"), None, "missing name");
    }

    #[test]
    fn unarmed_hits_are_no_ops() {
        // The test process never sets DLP_CRASHPOINT, so any number of
        // hits must neither abort nor count.
        for _ in 0..3 {
            hit("entry.tmp");
        }
        assert_eq!(hits(), 0);
    }
}
