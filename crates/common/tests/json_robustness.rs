//! Property tests for the JSON parser's failure behavior.
//!
//! Every durable artifact in the workspace (store entries, manifests,
//! dead-letter queues) is parsed by `dlp_common::json` after surviving
//! whatever a crash or a faulty disk left behind, so the parser's
//! contract under damage is load-bearing: arbitrary garbage, truncated
//! documents, and bit-flipped bytes must all come back as `Err` — and
//! must never panic, loop, or return a value for a damaged document.

use std::collections::BTreeMap;

use dlp_common::json;
use proptest::collection::vec;
use proptest::prelude::*;

/// Object documents with predictable shape: serialization of a string
/// -> integer map, like the store's own records in miniature.
fn object_doc() -> impl Strategy<Value = String> {
    vec((0u8..26, 0u8..26, any::<i64>()), 0..8).prop_map(|fields| {
        let map: BTreeMap<String, i64> = fields
            .into_iter()
            .map(|(a, b, v)| {
                (format!("{}{}", (b'a' + a) as char, (b'a' + b) as char), v)
            })
            .collect();
        json::to_string(&map)
    })
}

proptest! {
    /// Arbitrary printable text never panics the parser; it returns a
    /// `Result` either way.
    #[test]
    fn arbitrary_text_never_panics(bytes in vec(32u8..127, 0..256)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = json::parse(&text);
    }

    /// Arbitrary raw bytes, lossily decoded (the shape damaged files
    /// actually arrive in), never panic the parser either.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..256)) {
        let _ = json::parse(&String::from_utf8_lossy(&bytes));
    }

    /// A well-formed object document parses, and every strict prefix —
    /// every possible torn write — is rejected, never misread.
    #[test]
    fn truncated_documents_are_rejected(doc in object_doc(), cut in 0usize..1024) {
        prop_assert!(json::parse(&doc).is_ok());
        let mut at = cut % doc.len();
        while !doc.is_char_boundary(at) {
            at -= 1;
        }
        if at < doc.len() {
            prop_assert!(
                json::parse(&doc[..at]).is_err(),
                "strict prefix {:?} of {:?} parsed",
                &doc[..at],
                doc
            );
        }
    }

    /// One flipped bit anywhere in a document must not panic, and a
    /// damaged document either fails to parse or parses to *some*
    /// value reachable from the damaged text — never an out-of-band
    /// state. (Detecting the damage at all is the sealed-line digest's
    /// job, one layer up in the store.)
    #[test]
    fn bit_flips_never_panic(doc in object_doc(), pos in any::<usize>(), bit in 0u8..8) {
        let mut bytes = doc.into_bytes();
        let at = pos % bytes.len();
        bytes[at] ^= 1 << bit;
        let _ = json::parse(&String::from_utf8_lossy(&bytes));
    }

    /// Deep nesting terminates with an answer instead of blowing the
    /// stack: the parser bounds its recursion.
    #[test]
    fn deep_nesting_terminates(depth in 1usize..2048) {
        let doc = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        let _ = json::parse(&doc);
    }
}
