//! # dlp-bench
//!
//! The experiment harness. Each binary regenerates one of the paper's
//! tables or figures (see DESIGN.md's per-experiment index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — benchmark descriptions |
//! | `table2` | Table 2 — kernel attributes from the IR |
//! | `table3` | Table 3 — attribute → mechanism map |
//! | `table4` | Table 4 — baseline TRIPS ops/cycle |
//! | `table5` | Table 5 — machine configurations |
//! | `table6` | Table 6 — comparison to specialized hardware |
//! | `figure5` | Figure 5 — per-config speedups + flexible summary |
//! | `section3` | §3 — classic-architecture survey |
//! | `sweep` | the full kernel × configuration grid in one parallel batch → `BENCH_sweep.json` |
//! | `hotpath` | engine hot-path throughput (simulation only, scheduling excluded) → `BENCH_hotpath.json` |
//!
//! The Criterion benches (`cargo bench`) measure simulator throughput per
//! kernel/configuration, sweep the mechanism ablations (revitalize
//! delay, L0 latency, LMW width), and time the engine hot paths
//! ([`hotpath`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hotpath;

use dlp_core::{ExperimentParams, MachineConfig, RunOutcome, Sweep};

/// Whether `--quick` was passed (smoke-scale workloads).
#[must_use]
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Record count for a kernel honoring `--quick`.
#[must_use]
pub fn records_for(kernel: &str, quick: bool) -> usize {
    if quick {
        24
    } else {
        dlp_core::default_records(kernel, 1)
    }
}

/// Run every performance-suite kernel on `config` through the parallel
/// [`Sweep`] engine, verified, results in suite order.
///
/// # Panics
///
/// Panics if any kernel fails to run or verify — the harness must not
/// print tables from a broken simulation.
#[must_use]
pub fn run_suite_on(config: MachineConfig, quick: bool) -> Vec<RunOutcome> {
    let params = ExperimentParams::default();
    let mut sweep = Sweep::new();
    for id in sweep.add_perf_suite() {
        let records = records_for(sweep.kernel(id).name(), quick);
        sweep.push_config(id, config, records, &params);
    }
    let report = sweep.run();
    report
        .ensure_verified()
        .unwrap_or_else(|e| panic!("suite on {config}: {e}"));
    report
        .cells
        .iter()
        .map(|cell| match &cell.outcome {
            dlp_core::CellOutcome::Ran { stats, mismatch } => RunOutcome {
                kernel: cell.kernel.clone(),
                config,
                records: cell.records,
                stats: *stats,
                mismatch: *mismatch,
            },
            dlp_core::CellOutcome::Failed { .. } | dlp_core::CellOutcome::Skipped { .. } => {
                unreachable!("ensure_verified passed")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_for_honors_quick() {
        assert_eq!(records_for("convert", true), 24);
        assert!(records_for("convert", false) > 24);
    }

    #[test]
    fn suite_runs_in_parallel_and_stays_ordered() {
        let outs = run_suite_on(MachineConfig::S, true);
        assert_eq!(outs.len(), 13);
        let names: Vec<&str> = outs.iter().map(|o| o.kernel.as_str()).collect();
        let expected: Vec<String> = dlp_kernels::suite()
            .into_iter()
            .filter(|k| k.in_perf_suite())
            .map(|k| k.name().to_string())
            .collect();
        assert_eq!(names, expected.iter().map(String::as_str).collect::<Vec<_>>());
    }
}
