//! The hot-path perf-regression harness.
//!
//! The cycle-level engines spend their time in three inner loops: the
//! dataflow event loop (operand delivery, issue arbitration, NoC link
//! reservation), the MIMD per-node fetch loop, and the mesh router.
//! This module pins one *dataflow-heavy* and one *MIMD-heavy* kernel to
//! the configurations that stress those loops and measures simulation
//! throughput with the scheduling cost excluded — each case is prepared
//! once ([`dlp_core::prepare_kernel`]) and only
//! [`dlp_core::run_prepared`] is timed, so the numbers move when the
//! engines' hot paths do and not when the scheduler does.
//!
//! Two consumers share the case list:
//!
//! * `cargo bench --bench hotpath` — the Criterion view, for quick
//!   interactive comparisons.
//! * `cargo run --release -p dlp-bench --bin hotpath` — the artifact
//!   view, which writes `BENCH_hotpath.json` (schema documented in
//!   `EXPERIMENTS.md`) for CI to archive; regressions show up as a drop
//!   in `cells_per_sec` between two commits' artifacts.

use std::time::Instant;

use dlp_core::sweep::derive_seed;
use dlp_core::{prepare_kernel, run_prepared, ExperimentParams, MachineConfig};
use dlp_kernels::{suite, DlpKernel};
use serde::{Deserialize, Serialize};

/// One measured hot-path case: a kernel pinned to the engine family it
/// stresses.
#[derive(Clone, Copy, Debug)]
pub struct HotpathCase {
    /// Suite kernel name.
    pub kernel: &'static str,
    /// Machine configuration to simulate.
    pub config: MachineConfig,
    /// Which engine's inner loop dominates (`"dataflow"` or `"mimd"`).
    pub engine: &'static str,
}

/// The measured grid: `fft` (long NoC-bound dataflow blocks, wide
/// fan-out) across the dataflow configurations, `blowfish` (16 Feistel
/// rounds of table lookups per record) across the MIMD ones.
pub const HOTPATH_CASES: &[HotpathCase] = &[
    HotpathCase { kernel: "fft", config: MachineConfig::Baseline, engine: "dataflow" },
    HotpathCase { kernel: "fft", config: MachineConfig::SO, engine: "dataflow" },
    HotpathCase { kernel: "fft", config: MachineConfig::SOD, engine: "dataflow" },
    HotpathCase { kernel: "blowfish", config: MachineConfig::M, engine: "mimd" },
    HotpathCase { kernel: "blowfish", config: MachineConfig::MD, engine: "mimd" },
];

/// A case lowered and ready to time: everything
/// [`PreparedCase::run_once`] needs.
pub struct PreparedCase {
    kernel: Box<dyn DlpKernel>,
    prepared: dlp_core::PreparedProgram,
    records: usize,
    params: ExperimentParams,
}

/// Lowers `case` for `records` records, with the same derived seed the
/// sweep engine would use.
///
/// # Panics
///
/// Panics when the kernel is missing from the suite or fails to lower —
/// the harness must not silently measure nothing.
#[must_use]
pub fn prepare_case(case: &HotpathCase, records: usize) -> PreparedCase {
    let kernel = suite()
        .into_iter()
        .find(|k| k.name() == case.kernel)
        .unwrap_or_else(|| panic!("{} is a suite kernel", case.kernel));
    let base = ExperimentParams::default();
    let params = ExperimentParams { seed: derive_seed(base.seed, case.kernel), ..base };
    let prepared = prepare_kernel(kernel.as_ref(), case.config.mechanisms(), records, &params)
        .expect("hot-path case lowers");
    PreparedCase { kernel, prepared, records, params }
}

impl PreparedCase {
    /// Runs the prepared case once (the timed unit), returning the
    /// simulated cycle count.
    ///
    /// # Panics
    ///
    /// Panics on simulation failure or an output mismatch: a hot-path
    /// optimization that breaks verification must fail the bench, not
    /// post a fast number.
    #[must_use]
    pub fn run_once(&self) -> u64 {
        let (stats, mismatch) =
            run_prepared(self.kernel.as_ref(), &self.prepared, self.records, &self.params)
                .expect("hot-path case simulates");
        assert_eq!(mismatch, None, "{} must verify", self.kernel.name());
        stats.cycles()
    }
}

/// One row of `BENCH_hotpath.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HotpathMeasurement {
    /// Kernel name.
    pub kernel: String,
    /// Configuration display name.
    pub config: String,
    /// Engine family the case stresses (`"dataflow"` / `"mimd"`).
    pub engine: String,
    /// Records simulated per cell.
    pub records: usize,
    /// Timed repetitions.
    pub iters: usize,
    /// Simulated machine cycles per cell (a determinism cross-check:
    /// this must not move unless machine behavior changes).
    pub sim_cycles: u64,
    /// Total wall-clock for the timed repetitions, milliseconds.
    pub wall_ms: f64,
    /// Verified kernel runs per second of host time — the headline
    /// throughput a hot-path regression shows up in.
    pub cells_per_sec: f64,
    /// Simulated records per second of host time.
    pub records_per_sec: f64,
}

/// Prepares `case`, warms it once, then times `iters` runs.
///
/// # Panics
///
/// Panics on lowering, simulation, or verification failure (see
/// [`PreparedCase::run_once`]).
#[must_use]
pub fn measure(case: &HotpathCase, records: usize, iters: usize) -> HotpathMeasurement {
    let prepared = prepare_case(case, records);
    let sim_cycles = prepared.run_once(); // warm: page in workload paths
    let started = Instant::now();
    for _ in 0..iters {
        assert_eq!(prepared.run_once(), sim_cycles, "simulation is deterministic");
    }
    let wall = started.elapsed().as_secs_f64();
    HotpathMeasurement {
        kernel: case.kernel.to_string(),
        config: case.config.to_string(),
        engine: case.engine.to_string(),
        records,
        iters,
        sim_cycles,
        wall_ms: wall * 1e3,
        cells_per_sec: iters as f64 / wall.max(1e-9),
        records_per_sec: (iters * records) as f64 / wall.max(1e-9),
    }
}

/// The full `BENCH_hotpath.json` artifact.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HotpathReport {
    /// Whether the fast (CI smoke) scale was used.
    pub fast: bool,
    /// One row per [`HOTPATH_CASES`] entry.
    pub cases: Vec<HotpathMeasurement>,
}
