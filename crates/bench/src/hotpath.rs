//! The hot-path perf-regression harness.
//!
//! The cycle-level engines spend their time in three inner loops: the
//! dataflow event loop (operand delivery, issue arbitration, NoC link
//! reservation), the MIMD per-node fetch loop, and the mesh router.
//! This module pins one *dataflow-heavy* and one *MIMD-heavy* kernel to
//! the configurations that stress those loops and measures simulation
//! throughput with the scheduling cost excluded — each case is prepared
//! once ([`dlp_core::prepare_kernel`]) and only
//! [`dlp_core::run_prepared_in`] is timed, so the numbers move when the
//! engines' hot paths do and not when the scheduler does. Since
//! schema 4 every case is additionally timed through the lane-batched
//! entry point ([`dlp_core::run_prepared_batch_in`], DESIGN.md §10)
//! with `lanes` identical lanes per dispatch, and the artifact carries
//! the batched-vs-scalar speedup alongside a `batched_sim_cycles`
//! column CI asserts equal to the scalar `sim_cycles`. A
//! [`measure_queue`] microbenchmark additionally times the event
//! scheduler itself — the calendar queue against the `BinaryHeap` it
//! replaced — with a checksum asserting both emit the identical order.
//!
//! Two consumers share the case list:
//!
//! * `cargo bench --bench hotpath` — the Criterion view, for quick
//!   interactive comparisons.
//! * `cargo run --release -p dlp-bench --bin hotpath` — the artifact
//!   view, which writes `BENCH_hotpath.json` (schema documented in
//!   `EXPERIMENTS.md`) for CI to archive; regressions show up as a drop
//!   in `cells_per_sec` between two commits' artifacts.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

use dlp_common::{SplitMix64, Tick};
use dlp_core::sweep::derive_seed;
use dlp_core::{
    prepare_kernel, run_prepared_batch_in, run_prepared_in, BatchLane, ExperimentParams,
    MachineConfig, RunScratch, WorkloadCache,
};
use dlp_kernels::{suite, DlpKernel};
use serde::{Deserialize, Serialize};
use trips_sim::equeue::CalendarQueue;

/// One measured hot-path case: a kernel pinned to the engine family it
/// stresses.
#[derive(Clone, Copy, Debug)]
pub struct HotpathCase {
    /// Suite kernel name.
    pub kernel: &'static str,
    /// Machine configuration to simulate.
    pub config: MachineConfig,
    /// Which engine's inner loop dominates (`"dataflow"` or `"mimd"`).
    pub engine: &'static str,
}

/// The measured grid: `fft` (long NoC-bound dataflow blocks, wide
/// fan-out) across the dataflow configurations, `blowfish` (16 Feistel
/// rounds of table lookups per record) across the MIMD ones.
pub const HOTPATH_CASES: &[HotpathCase] = &[
    HotpathCase { kernel: "fft", config: MachineConfig::Baseline, engine: "dataflow" },
    HotpathCase { kernel: "fft", config: MachineConfig::SO, engine: "dataflow" },
    HotpathCase { kernel: "fft", config: MachineConfig::SOD, engine: "dataflow" },
    HotpathCase { kernel: "blowfish", config: MachineConfig::M, engine: "mimd" },
    HotpathCase { kernel: "blowfish", config: MachineConfig::MD, engine: "mimd" },
];

/// A case lowered and ready to time: everything
/// [`PreparedCase::run_once`] needs, including the reusable
/// [`RunScratch`] (engine arena + workload cache) a sweep worker would
/// carry — so the timed region exercises the steady-state
/// (allocation-free, cached-workload) path.
pub struct PreparedCase {
    kernel: Box<dyn DlpKernel>,
    prepared: dlp_core::PreparedProgram,
    records: usize,
    params: ExperimentParams,
    cache: Arc<WorkloadCache>,
    scratch: RunScratch,
    lowering_fp: String,
}

/// Lowers `case` for `records` records, with the same derived seed the
/// sweep engine would use.
///
/// # Panics
///
/// Panics when the kernel is missing from the suite or fails to lower —
/// the harness must not silently measure nothing.
#[must_use]
pub fn prepare_case(case: &HotpathCase, records: usize) -> PreparedCase {
    let kernel = suite()
        .into_iter()
        .find(|k| k.name() == case.kernel)
        .unwrap_or_else(|| panic!("{} is a suite kernel", case.kernel));
    let base = ExperimentParams::default();
    let params = ExperimentParams { seed: derive_seed(base.seed, case.kernel), ..base };
    let mech = case.config.mechanisms();
    let prepared =
        prepare_kernel(kernel.as_ref(), mech, records, &params).expect("hot-path case lowers");
    // The same lowering identity the result store keys on (see
    // `OPERATIONS.md`): a cross-commit tripwire separating "the numbers
    // moved because the lowering changed" from a genuine engine
    // regression.
    let unroll = if mech.local_pc {
        0
    } else {
        dlp_core::natural_unroll(kernel.as_ref(), mech, &params)
            .map_or(records, |n| n.min(records))
    };
    let lowering_fp =
        dlp_core::store::lowering_fingerprint(kernel.as_ref(), mech, params.grid, &params.timing, unroll)
            .hex();
    let cache = Arc::new(WorkloadCache::new());
    let scratch = RunScratch::with_workload_cache(Arc::clone(&cache));
    PreparedCase { kernel, prepared, records, params, cache, scratch, lowering_fp }
}

impl PreparedCase {
    /// Runs the prepared case once (the timed unit), returning the
    /// simulated cycle count.
    ///
    /// # Panics
    ///
    /// Panics on simulation failure or an output mismatch: a hot-path
    /// optimization that breaks verification must fail the bench, not
    /// post a fast number.
    #[must_use]
    pub fn run_once(&mut self) -> u64 {
        let (stats, mismatch) = run_prepared_in(
            self.kernel.as_ref(),
            &self.prepared,
            self.records,
            &self.params,
            &mut self.scratch,
        )
        .expect("hot-path case simulates");
        assert_eq!(mismatch, None, "{} must verify", self.kernel.name());
        stats.cycles()
    }

    /// Runs the prepared case once through the lane-batched entry point
    /// with `lanes` identical lanes — the shape a sweep's repeated cells
    /// take (one uniformity class, so one simulation serves every lane;
    /// see DESIGN.md §10) — and returns the per-lane cycle count after
    /// asserting every lane verified and agreed.
    ///
    /// # Panics
    ///
    /// Panics on simulation failure, an output mismatch, or lanes
    /// disagreeing on cycle count — per-lane results must stay
    /// bit-identical to scalar.
    #[must_use]
    pub fn run_batched_once(&mut self, lanes: usize) -> u64 {
        let specs = vec![BatchLane { records: self.records, params: self.params }; lanes];
        let results =
            run_prepared_batch_in(self.kernel.as_ref(), &self.prepared, &specs, &mut self.scratch);
        assert_eq!(results.len(), lanes);
        let mut cycles = None;
        for r in results {
            let (stats, mismatch) = r.expect("hot-path batched case simulates");
            assert_eq!(mismatch, None, "{} must verify batched", self.kernel.name());
            let c = stats.cycles();
            assert_eq!(*cycles.get_or_insert(c), c, "identical lanes agree on cycles");
        }
        cycles.expect("at least one lane")
    }

    /// Runs the prepared case once through the lane-batched entry point
    /// with `lanes` *distinct-seed* lanes — the genuinely divergent shape
    /// that exercises the lockstep SoA engines rather than the
    /// uniform-collapse fast path — and returns an order-sensitive fold
    /// of the per-lane cycle counts (distinct seeds may legitimately
    /// produce distinct cycle counts on cache-timing-sensitive cases, so
    /// the fold, not a single count, is the determinism probe).
    ///
    /// # Panics
    ///
    /// Panics on simulation failure or any lane failing verification.
    #[must_use]
    pub fn run_lockstep_once(&mut self, lanes: usize) -> u64 {
        let specs: Vec<BatchLane> = (0..lanes)
            .map(|i| BatchLane {
                records: self.records,
                params: ExperimentParams {
                    seed: self.params.seed.wrapping_add(1 + i as u64),
                    ..self.params
                },
            })
            .collect();
        let results =
            run_prepared_batch_in(self.kernel.as_ref(), &self.prepared, &specs, &mut self.scratch);
        assert_eq!(results.len(), lanes);
        let mut fold = 0u64;
        for r in results {
            let (stats, mismatch) = r.expect("hot-path lockstep case simulates");
            assert_eq!(mismatch, None, "{} must verify in lockstep", self.kernel.name());
            fold = fold.rotate_left(7) ^ stats.cycles();
        }
        fold
    }

    /// Workload-cache hits accumulated across this case's runs (every
    /// run after the first warm-up is a hit).
    #[must_use]
    pub fn workload_cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// The case's lowering fingerprint (hex) — the same digest the
    /// result store folds into its keys.
    #[must_use]
    pub fn lowering_fp(&self) -> &str {
        &self.lowering_fp
    }
}

/// One row of `BENCH_hotpath.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HotpathMeasurement {
    /// Kernel name.
    pub kernel: String,
    /// Configuration display name.
    pub config: String,
    /// Engine family the case stresses (`"dataflow"` / `"mimd"`).
    pub engine: String,
    /// Records simulated per cell.
    pub records: usize,
    /// Timed repetitions.
    pub iters: usize,
    /// Simulated machine cycles per cell (a determinism cross-check:
    /// this must not move unless machine behavior changes).
    pub sim_cycles: u64,
    /// Total wall-clock for the timed repetitions, milliseconds.
    pub wall_ms: f64,
    /// Verified kernel runs per second of host time — the headline
    /// throughput a hot-path regression shows up in.
    pub cells_per_sec: f64,
    /// Simulated records per second of host time.
    pub records_per_sec: f64,
    /// Workload-cache hits over this case's *scalar* runs, captured
    /// before the batched repetitions (deterministic: equal to `iters`,
    /// since the warm-up generates and every timed run hits).
    pub workload_cache_hits: u64,
    /// Lanes per batched dispatch (identical lanes — the
    /// uniform-collapse path a sweep's repeated cells take).
    pub lanes: usize,
    /// Per-lane simulated cycles from the batched runs. CI asserts this
    /// equals `sim_cycles`: batching must not change machine behavior.
    pub batched_sim_cycles: u64,
    /// Total wall-clock for the batched repetitions, milliseconds.
    pub batched_wall_ms: f64,
    /// Verified lane-results per second through the batched entry point
    /// (`iters × lanes` lane-results over `batched_wall_ms`).
    pub batched_cells_per_sec: f64,
    /// `batched_cells_per_sec / cells_per_sec` — the headline
    /// lane-batching win on this case.
    pub batch_speedup: f64,
    /// Order-sensitive fold of per-lane simulated cycles from the
    /// *distinct-seed* lockstep runs (`rotate_left(7) ^ cycles` per lane
    /// in lane order). A determinism cross-check for the SIMD lockstep
    /// path: moves only when machine behavior changes.
    pub lockstep_sim_cycles: u64,
    /// Total wall-clock for the lockstep repetitions, milliseconds.
    pub lockstep_wall_ms: f64,
    /// Verified lane-results per second through the lockstep SoA path
    /// (`iters × lanes` distinct-seed lane-results over
    /// `lockstep_wall_ms`) — the SIMD-path throughput column.
    pub lockstep_cells_per_sec: f64,
    /// `lockstep_cells_per_sec / cells_per_sec` — the lockstep win over
    /// scalar on genuinely divergent lanes.
    pub lockstep_speedup: f64,
    /// Lane-slot occupancy of each lockstep dispatch:
    /// `lanes / MAX_CLASSES` — the fraction of the 64 mask-word slots a
    /// dispatch fills at this `--lanes` setting.
    pub lockstep_occupancy: f64,
    /// The case's lowering fingerprint (hex), as the result store would
    /// key it ([`dlp_core::store::lowering_fingerprint`]). Deterministic;
    /// when `cells_per_sec` moves between commits, an unchanged
    /// fingerprint pins the cause to the engines rather than the
    /// scheduler.
    pub lowering_fp: String,
}

/// Timing windows per engine: each window times `iters` runs, and the
/// fastest window is reported. Scheduler and allocator noise only ever
/// slows a window down, so the minimum is the stable estimator for the
/// speedup ratios the CI perf gate compares (a single fast-scale window
/// jitters more than the gate's 25% allowance).
const TIMING_WINDOWS: usize = 3;

/// Times [`TIMING_WINDOWS`] windows of `body` and returns the fastest.
fn best_window(mut body: impl FnMut()) -> f64 {
    (0..TIMING_WINDOWS)
        .map(|_| {
            let started = Instant::now();
            body();
            started.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Prepares `case`, warms it once, times `iters` scalar runs, then
/// times `iters` batched dispatches of `lanes` identical lanes each —
/// interleaved on the same prepared lowering and scratch, so the
/// scalar-vs-batched comparison is apples-to-apples. Each engine's
/// wall time is the best of `TIMING_WINDOWS` windows.
///
/// # Panics
///
/// Panics on lowering, simulation, or verification failure, or when the
/// batched runs' per-lane cycle count diverges from scalar (see
/// [`PreparedCase::run_once`] and [`PreparedCase::run_batched_once`]).
#[must_use]
pub fn measure(case: &HotpathCase, records: usize, iters: usize, lanes: usize) -> HotpathMeasurement {
    let mut prepared = prepare_case(case, records);
    let sim_cycles = prepared.run_once(); // warm: page in workload paths
    let wall = best_window(|| {
        for _ in 0..iters {
            assert_eq!(prepared.run_once(), sim_cycles, "simulation is deterministic");
        }
    });
    // Snapshot the scalar cache counter before the batched loop so the
    // schema-3 field keeps its deterministic meaning.
    let workload_cache_hits = prepared.workload_cache_hits();

    let batched_sim_cycles = prepared.run_batched_once(lanes); // warm
    assert_eq!(batched_sim_cycles, sim_cycles, "batching must not change machine behavior");
    let batched_wall = best_window(|| {
        for _ in 0..iters {
            assert_eq!(
                prepared.run_batched_once(lanes),
                sim_cycles,
                "batched runs are deterministic"
            );
        }
    });

    let lockstep_sim_cycles = prepared.run_lockstep_once(lanes); // warm
    let lockstep_wall = best_window(|| {
        for _ in 0..iters {
            assert_eq!(
                prepared.run_lockstep_once(lanes),
                lockstep_sim_cycles,
                "lockstep runs are deterministic"
            );
        }
    });

    let cells_per_sec = iters as f64 / wall.max(1e-9);
    let batched_cells_per_sec = (iters * lanes) as f64 / batched_wall.max(1e-9);
    let lockstep_cells_per_sec = (iters * lanes) as f64 / lockstep_wall.max(1e-9);
    HotpathMeasurement {
        kernel: case.kernel.to_string(),
        config: case.config.to_string(),
        engine: case.engine.to_string(),
        records,
        iters,
        sim_cycles,
        wall_ms: wall * 1e3,
        cells_per_sec,
        records_per_sec: (iters * records) as f64 / wall.max(1e-9),
        workload_cache_hits,
        lanes,
        batched_sim_cycles,
        batched_wall_ms: batched_wall * 1e3,
        batched_cells_per_sec,
        batch_speedup: batched_cells_per_sec / cells_per_sec.max(1e-9),
        lockstep_sim_cycles,
        lockstep_wall_ms: lockstep_wall * 1e3,
        lockstep_cells_per_sec,
        lockstep_speedup: lockstep_cells_per_sec / cells_per_sec.max(1e-9),
        lockstep_occupancy: lanes as f64 / trips_sim::batch::MAX_CLASSES as f64,
        lowering_fp: prepared.lowering_fp().to_string(),
    }
}

/// Seed for the queue-churn microbenchmark's deterministic schedule.
const CHURN_SEED: u64 = 0x0051_EEED;

/// Drives a [`CalendarQueue`] through a hold-model churn — `live`
/// resident events, `ops` pop-then-push rounds with pseudo-random tick
/// deltas in 1..=64 — and folds every popped `(tick, payload)` into a
/// checksum. The identical schedule runs through [`heap_churn`]; equal
/// checksums prove the two schedulers emit the same total order.
#[must_use]
pub fn queue_churn(live: usize, ops: u64) -> u64 {
    let mut q: CalendarQueue<(), u64> = CalendarQueue::new();
    let mut rng = SplitMix64::new(CHURN_SEED ^ live as u64);
    for i in 0..live as u64 {
        q.push((rng.next_u64() & 63) + 1, (), i);
    }
    let mut checksum = 0u64;
    for _ in 0..ops {
        let (t, (), v) = q.pop().expect("churn queue stays populated");
        checksum = checksum.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(t ^ v);
        q.push(t + (rng.next_u64() & 63) + 1, (), v);
    }
    checksum
}

/// The `BinaryHeap` reference for [`queue_churn`]: same schedule, same
/// checksum, through a `Reverse<(tick, seq)>` heap — the scheduler both
/// engines used before the calendar queue.
#[must_use]
pub fn heap_churn(live: usize, ops: u64) -> u64 {
    let mut q: BinaryHeap<Reverse<(Tick, u64, u64)>> = BinaryHeap::new();
    let mut rng = SplitMix64::new(CHURN_SEED ^ live as u64);
    let mut seq = 0u64;
    for i in 0..live as u64 {
        q.push(Reverse(((rng.next_u64() & 63) + 1, seq, i)));
        seq += 1;
    }
    let mut checksum = 0u64;
    for _ in 0..ops {
        let Reverse((t, _, v)) = q.pop().expect("churn heap stays populated");
        checksum = checksum.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(t ^ v);
        q.push(Reverse((t + (rng.next_u64() & 63) + 1, seq, v)));
        seq += 1;
    }
    checksum
}

/// The event-scheduler microbenchmark row of `BENCH_hotpath.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QueueMeasurement {
    /// Resident events held in the queue throughout the churn.
    pub live: usize,
    /// Pop-then-push rounds timed.
    pub ops: u64,
    /// Calendar-queue wall-clock, milliseconds.
    pub wall_ms: f64,
    /// Calendar-queue rounds per second.
    pub ops_per_sec: f64,
    /// `BinaryHeap` reference wall-clock, milliseconds.
    pub heap_wall_ms: f64,
    /// `BinaryHeap` reference rounds per second.
    pub heap_ops_per_sec: f64,
    /// Order checksum (identical for both schedulers by construction —
    /// [`measure_queue`] asserts it — and deterministic, so it doubles
    /// as a cross-commit determinism check).
    pub checksum: u64,
}

/// Times [`queue_churn`] against [`heap_churn`] at `live` resident
/// events and asserts their order checksums agree.
///
/// # Panics
///
/// Panics when the calendar queue and the heap emit different orders —
/// a scheduler-equivalence violation that must fail the bench.
#[must_use]
pub fn measure_queue(live: usize, ops: u64) -> QueueMeasurement {
    // Warm both once so allocation warm-up is outside the timed region
    // (matching how the engines hold their queues across runs).
    let warm_q = queue_churn(live, ops);
    let warm_h = heap_churn(live, ops);
    assert_eq!(warm_q, warm_h, "calendar queue must emit the heap's exact order");

    let started = Instant::now();
    let checksum = queue_churn(live, ops);
    let wall = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let heap_checksum = heap_churn(live, ops);
    let heap_wall = started.elapsed().as_secs_f64();
    assert_eq!(checksum, heap_checksum, "checksums diverged between timed runs");

    QueueMeasurement {
        live,
        ops,
        wall_ms: wall * 1e3,
        ops_per_sec: ops as f64 / wall.max(1e-9),
        heap_wall_ms: heap_wall * 1e3,
        heap_ops_per_sec: ops as f64 / heap_wall.max(1e-9),
        checksum,
    }
}

/// The full `BENCH_hotpath.json` artifact.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HotpathReport {
    /// Artifact schema version. 2 added `queue` and the per-case
    /// `workload_cache_hits`; 3 added the per-case `lowering_fp`;
    /// 4 added the lane-batched columns (`lanes`, `batched_sim_cycles`,
    /// `batched_wall_ms`, `batched_cells_per_sec`, `batch_speedup`);
    /// 5 the distinct-seed lockstep (SIMD-path) columns
    /// (`lockstep_sim_cycles`, `lockstep_wall_ms`,
    /// `lockstep_cells_per_sec`, `lockstep_speedup`,
    /// `lockstep_occupancy`). See `EXPERIMENTS.md`.
    pub schema: u32,
    /// Whether the fast (CI smoke) scale was used.
    pub fast: bool,
    /// One row per [`HOTPATH_CASES`] entry.
    pub cases: Vec<HotpathMeasurement>,
    /// The event-scheduler microbenchmark.
    pub queue: QueueMeasurement,
}

/// Current [`HotpathReport::schema`] version.
pub const HOTPATH_SCHEMA: u32 = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_checksums_agree_and_are_deterministic() {
        for live in [1usize, 7, 64, 700] {
            let a = queue_churn(live, 2_000);
            let b = heap_churn(live, 2_000);
            assert_eq!(a, b, "order parity at {live} live events");
            assert_eq!(a, queue_churn(live, 2_000), "deterministic at {live}");
        }
    }

    #[test]
    fn batched_lanes_match_scalar_cycles_on_both_engine_families() {
        // fft/baseline exercises the dataflow engine, blowfish/M the
        // MIMD engine; `run_batched_once` asserts per-lane agreement
        // internally, this pins batched == scalar across entry points.
        for case in [&HOTPATH_CASES[0], &HOTPATH_CASES[3]] {
            let mut prepared = prepare_case(case, 8);
            let scalar = prepared.run_once();
            assert_eq!(prepared.run_batched_once(4), scalar, "{} batched cycles", case.kernel);
        }
    }

    #[test]
    fn lockstep_fold_is_deterministic_on_both_engine_families() {
        for case in [&HOTPATH_CASES[0], &HOTPATH_CASES[3]] {
            let mut prepared = prepare_case(case, 8);
            let first = prepared.run_lockstep_once(4);
            assert_eq!(first, prepared.run_lockstep_once(4), "{} lockstep fold", case.kernel);
        }
    }

    #[test]
    fn hotpath_case_reuses_workload_via_cache() {
        let mut prepared = prepare_case(&HOTPATH_CASES[0], 8);
        let first = prepared.run_once();
        assert_eq!(prepared.workload_cache_hits(), 0, "first run generates");
        let second = prepared.run_once();
        assert_eq!(first, second, "deterministic");
        assert_eq!(prepared.workload_cache_hits(), 1, "second run hits");
    }
}
