//! Diagnostic: print the full statistics record for one kernel on one
//! configuration. Usage: `stats <kernel> <config> [records]`.

use dlp_core::{run_kernel, ExperimentParams, MachineConfig};
use dlp_kernels::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let kernel_name = args.get(1).map_or("convert", String::as_str);
    let config = match args.get(2).map(String::as_str) {
        Some("S") => MachineConfig::S,
        Some("S-O") => MachineConfig::SO,
        Some("S-O-D") => MachineConfig::SOD,
        Some("M") => MachineConfig::M,
        Some("M-D") => MachineConfig::MD,
        Some("baseline") | None => MachineConfig::Baseline,
        Some(other) => {
            eprintln!("unknown config `{other}`; expected baseline, S, S-O, S-O-D, M or M-D");
            std::process::exit(2);
        }
    };
    let records: usize = match args.get(3) {
        None => 512,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("bad record count `{s}`; expected a positive integer");
            std::process::exit(2);
        }),
    };

    let params = ExperimentParams::default();
    let kernels = suite();
    let Some(kernel) = kernels.iter().find(|k| k.name() == kernel_name) else {
        eprintln!(
            "unknown kernel `{kernel_name}`; available: {}",
            kernels.iter().map(|k| k.name()).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(2);
    };
    let out = run_kernel(kernel.as_ref(), config, records, &params)?;
    let s = &out.stats;
    println!("{kernel_name} on {config}, {records} records (verified={})", out.verified());
    println!("  cycles            {:>12}", s.cycles());
    println!("  cycles/record     {:>12.2}", out.cycles_per_record());
    println!("  useful ops        {:>12}   ({} ops/cycle)", s.useful_ops, s.ops_per_cycle());
    println!("  overhead ops      {:>12}", s.overhead_ops);
    println!("  loads / stores    {:>12} / {}", s.loads, s.stores);
    println!("  lmw words         {:>12}", s.lmw_words);
    println!("  l1 acc / miss     {:>12} / {}", s.l1_accesses, s.l1_misses);
    println!("  smc accesses      {:>12}", s.smc_accesses);
    println!("  l0 accesses       {:>12}", s.l0_accesses);
    println!("  reg reads/writes  {:>12} / {}", s.reg_reads, s.reg_writes);
    println!("  net msgs / hops   {:>12} / {}", s.net_msgs, s.net_hops);
    println!("  blocks fetched    {:>12}", s.blocks_fetched);
    println!("  revitalizations   {:>12}", s.revitalizations);
    println!("  iterations        {:>12}", s.iterations);
    println!("  mimd fetches      {:>12}", s.mimd_fetches);
    println!("  mem stall cycles  {:>12}", s.mem_stall_node_cycles);
    Ok(())
}
