//! Regenerates Table 6: TRIPS with the DLP mechanisms vs specialized
//! hardware (published numbers).
//!
//! Pass `--quick` for smoke-scale workloads.

use dlp_bench::quick_flag;
use dlp_core::specialized::table6;
use dlp_core::ExperimentParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_flag();
    let params = ExperimentParams::default();
    let rows = table6(&params, if quick { 0 } else { 1 })?;

    println!(
        "Table 6: performance comparison to specialized hardware{}\n",
        if quick { " [--quick]" } else { "" }
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12}  {:<24} units",
        "benchmark", "ours", "paper-TRIPS", "specialized", "hardware"
    );
    for r in rows {
        let fmt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.1}"));
        println!(
            "{:<22} {:>12.1} {:>12} {:>12}  {:<24} {}{}",
            r.kernel,
            r.trips,
            fmt(r.paper_trips),
            fmt(r.specialized),
            r.hardware,
            r.units.label(),
            if r.units.smaller_is_better() { " (smaller is better)" } else { "" },
        );
    }
    println!(
        "\nSpecialized and paper-TRIPS columns are published values transcribed from\n\
         the paper; 'ours' is simulated on each kernel's recommended configuration\n\
         with the paper's clock normalizations (see EXPERIMENTS.md for unit\n\
         interpretations)."
    );
    Ok(())
}
