//! Machine-readable experiment report: runs the Figure 5 and Table 6
//! experiments and writes `report.json` (serde) plus a markdown summary to
//! stdout — the artifact EXPERIMENTS.md is refreshed from.
//!
//! Pass `--quick` for smoke-scale workloads; pass `--out <path>` to choose
//! the JSON destination.

use dlp_bench::quick_flag;
use dlp_core::specialized::{table6, Table6Row};
use dlp_core::{flexible, ExperimentParams, Figure5, MachineConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    figure5: Figure5,
    table6: Vec<Table6Row>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_flag();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "report.json".to_string());

    let params = ExperimentParams::default();
    let scale = usize::from(!quick);
    let figure5 = flexible(&params, scale)?;
    let t6 = table6(&params, scale)?;

    // Markdown summary.
    println!("## Figure 5 (speedup over baseline)\n");
    println!("| benchmark | S | S-O | S-O-D | M | M-D | best |");
    println!("|---|---|---|---|---|---|---|");
    for row in &figure5.rows {
        println!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {} |",
            row.kernel,
            row.speedup[&MachineConfig::S],
            row.speedup[&MachineConfig::SO],
            row.speedup[&MachineConfig::SOD],
            row.speedup[&MachineConfig::M],
            row.speedup[&MachineConfig::MD],
            row.best,
        );
    }
    println!("\nflexible harmonic mean: {:.2}x", figure5.summary.flexible_hm);
    for config in MachineConfig::DLP {
        println!(
            "- vs fixed {config}: {:.2}x (flexible {:+.0}%)",
            figure5.summary.fixed_hm[&config],
            figure5.summary.advantage_over.get(&config).copied().unwrap_or(0.0) * 100.0
        );
    }
    println!("\n## Table 6 (vs specialized hardware)\n");
    println!("| benchmark | ours | paper TRIPS | specialized | units |");
    println!("|---|---|---|---|---|");
    for r in &t6 {
        let fmt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.1}"));
        println!(
            "| {} | {:.1} | {} | {} | {} |",
            r.kernel,
            r.trips,
            fmt(r.paper_trips),
            fmt(r.specialized),
            r.units.label()
        );
    }

    // JSON artifact.
    let report = Report { figure5, table6: t6 };
    let json = serde_json_lite(&report);
    std::fs::write(&out_path, json)?;
    eprintln!("\nwrote {out_path}");
    Ok(())
}

/// Minimal JSON serialization via serde's data model — the workspace's
/// sanctioned dependency list has no serde_json, so we emit JSON with a
/// tiny hand-rolled serializer sufficient for this report's shape.
fn serde_json_lite<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    let mut ser = JsonSer { out: &mut out };
    value.serialize(&mut ser).expect("report serializes");
    out
}

struct JsonSer<'a> {
    out: &'a mut String,
}

mod json_impl {
    use super::JsonSer;
    use serde::ser::{self, Serialize};
    use std::fmt::Write as _;

    #[derive(Debug)]
    pub struct Err_(pub String);
    impl std::fmt::Display for Err_ {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
    impl std::error::Error for Err_ {}
    impl ser::Error for Err_ {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Err_(msg.to_string())
        }
    }

    fn escape(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
    }

    impl<'a, 'b> ser::Serializer for &'b mut JsonSer<'a> {
        type Ok = ();
        type Error = Err_;
        type SerializeSeq = Self;
        type SerializeTuple = Self;
        type SerializeTupleStruct = Self;
        type SerializeTupleVariant = Self;
        type SerializeMap = Self;
        type SerializeStruct = Self;
        type SerializeStructVariant = Self;

        fn serialize_bool(self, v: bool) -> Result<(), Err_> {
            let _ = write!(self.out, "{v}");
            Ok(())
        }
        fn serialize_i8(self, v: i8) -> Result<(), Err_> {
            self.serialize_i64(v.into())
        }
        fn serialize_i16(self, v: i16) -> Result<(), Err_> {
            self.serialize_i64(v.into())
        }
        fn serialize_i32(self, v: i32) -> Result<(), Err_> {
            self.serialize_i64(v.into())
        }
        fn serialize_i64(self, v: i64) -> Result<(), Err_> {
            let _ = write!(self.out, "{v}");
            Ok(())
        }
        fn serialize_u8(self, v: u8) -> Result<(), Err_> {
            self.serialize_u64(v.into())
        }
        fn serialize_u16(self, v: u16) -> Result<(), Err_> {
            self.serialize_u64(v.into())
        }
        fn serialize_u32(self, v: u32) -> Result<(), Err_> {
            self.serialize_u64(v.into())
        }
        fn serialize_u64(self, v: u64) -> Result<(), Err_> {
            let _ = write!(self.out, "{v}");
            Ok(())
        }
        fn serialize_f32(self, v: f32) -> Result<(), Err_> {
            self.serialize_f64(v.into())
        }
        fn serialize_f64(self, v: f64) -> Result<(), Err_> {
            if v.is_finite() {
                let _ = write!(self.out, "{v}");
            } else {
                self.out.push_str("null");
            }
            Ok(())
        }
        fn serialize_char(self, v: char) -> Result<(), Err_> {
            self.serialize_str(&v.to_string())
        }
        fn serialize_str(self, v: &str) -> Result<(), Err_> {
            let _ = write!(self.out, "\"{}\"", escape(v));
            Ok(())
        }
        fn serialize_bytes(self, _v: &[u8]) -> Result<(), Err_> {
            Err(ser::Error::custom("bytes unsupported"))
        }
        fn serialize_none(self) -> Result<(), Err_> {
            self.out.push_str("null");
            Ok(())
        }
        fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), Err_> {
            value.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), Err_> {
            self.out.push_str("null");
            Ok(())
        }
        fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Err_> {
            self.serialize_unit()
        }
        fn serialize_unit_variant(
            self,
            _name: &'static str,
            _idx: u32,
            variant: &'static str,
        ) -> Result<(), Err_> {
            self.serialize_str(variant)
        }
        fn serialize_newtype_struct<T: ?Sized + Serialize>(
            self,
            _name: &'static str,
            value: &T,
        ) -> Result<(), Err_> {
            value.serialize(self)
        }
        fn serialize_newtype_variant<T: ?Sized + Serialize>(
            self,
            _name: &'static str,
            _idx: u32,
            variant: &'static str,
            value: &T,
        ) -> Result<(), Err_> {
            let _ = write!(self.out, "{{\"{}\":", escape(variant));
            value.serialize(&mut *self)?;
            self.out.push('}');
            Ok(())
        }
        fn serialize_seq(self, _len: Option<usize>) -> Result<Self, Err_> {
            self.out.push('[');
            Ok(self)
        }
        fn serialize_tuple(self, len: usize) -> Result<Self, Err_> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_struct(self, _n: &'static str, len: usize) -> Result<Self, Err_> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_variant(
            self,
            _n: &'static str,
            _i: u32,
            _v: &'static str,
            len: usize,
        ) -> Result<Self, Err_> {
            self.serialize_seq(Some(len))
        }
        fn serialize_map(self, _len: Option<usize>) -> Result<Self, Err_> {
            self.out.push('{');
            Ok(self)
        }
        fn serialize_struct(self, _n: &'static str, _len: usize) -> Result<Self, Err_> {
            self.out.push('{');
            Ok(self)
        }
        fn serialize_struct_variant(
            self,
            _n: &'static str,
            _i: u32,
            _v: &'static str,
            _len: usize,
        ) -> Result<Self, Err_> {
            self.out.push('{');
            Ok(self)
        }
    }

    /// Shared element-separation helper: emit a comma unless the container
    /// was just opened.
    fn sep(out: &mut String) {
        if !out.ends_with('[') && !out.ends_with('{') && !out.ends_with(':') {
            out.push(',');
        }
    }

    impl<'a, 'b> ser::SerializeSeq for &'b mut JsonSer<'a> {
        type Ok = ();
        type Error = Err_;
        fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Err_> {
            sep(self.out);
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Err_> {
            self.out.push(']');
            Ok(())
        }
    }
    impl<'a, 'b> ser::SerializeTuple for &'b mut JsonSer<'a> {
        type Ok = ();
        type Error = Err_;
        fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Err_> {
            ser::SerializeSeq::serialize_element(self, value)
        }
        fn end(self) -> Result<(), Err_> {
            ser::SerializeSeq::end(self)
        }
    }
    impl<'a, 'b> ser::SerializeTupleStruct for &'b mut JsonSer<'a> {
        type Ok = ();
        type Error = Err_;
        fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Err_> {
            ser::SerializeSeq::serialize_element(self, value)
        }
        fn end(self) -> Result<(), Err_> {
            ser::SerializeSeq::end(self)
        }
    }
    impl<'a, 'b> ser::SerializeTupleVariant for &'b mut JsonSer<'a> {
        type Ok = ();
        type Error = Err_;
        fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Err_> {
            ser::SerializeSeq::serialize_element(self, value)
        }
        fn end(self) -> Result<(), Err_> {
            ser::SerializeSeq::end(self)
        }
    }
    impl<'a, 'b> ser::SerializeMap for &'b mut JsonSer<'a> {
        type Ok = ();
        type Error = Err_;
        fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Err_> {
            sep(self.out);
            // JSON keys must be strings; serialize into a buffer and quote
            // if the serializer produced a bare scalar.
            let mut buf = String::new();
            let mut ser = JsonSer { out: &mut buf };
            key.serialize(&mut ser)?;
            if buf.starts_with('"') {
                self.out.push_str(&buf);
            } else {
                let _ = std::fmt::Write::write_fmt(
                    self.out,
                    format_args!("\"{}\"", buf.replace('"', "\\\"")),
                );
            }
            Ok(())
        }
        fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Err_> {
            self.out.push(':');
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Err_> {
            self.out.push('}');
            Ok(())
        }
    }
    impl<'a, 'b> ser::SerializeStruct for &'b mut JsonSer<'a> {
        type Ok = ();
        type Error = Err_;
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Err_> {
            sep(self.out);
            let _ = std::fmt::Write::write_fmt(self.out, format_args!("\"{key}\":"));
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Err_> {
            self.out.push('}');
            Ok(())
        }
    }
    impl<'a, 'b> ser::SerializeStructVariant for &'b mut JsonSer<'a> {
        type Ok = ();
        type Error = Err_;
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Err_> {
            ser::SerializeStruct::serialize_field(self, key, value)
        }
        fn end(self) -> Result<(), Err_> {
            ser::SerializeStruct::end(self)
        }
    }
}
