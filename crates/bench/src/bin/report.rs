//! Machine-readable experiment report: runs the Figure 5 and Table 6
//! experiments and writes `report.json` (serde) plus a markdown summary to
//! stdout — the artifact EXPERIMENTS.md is refreshed from.
//!
//! Pass `--quick` for smoke-scale workloads; pass `--out <path>` to choose
//! the JSON destination.

use dlp_bench::quick_flag;
use dlp_core::specialized::{table6, Table6Row};
use dlp_core::{flexible, ExperimentParams, Figure5, MachineConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    figure5: Figure5,
    table6: Vec<Table6Row>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_flag();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "report.json".to_string());

    let params = ExperimentParams::default();
    let scale = usize::from(!quick);
    let figure5 = flexible(&params, scale)?;
    let t6 = table6(&params, scale)?;

    // Markdown summary.
    println!("## Figure 5 (speedup over baseline)\n");
    println!("| benchmark | S | S-O | S-O-D | M | M-D | best |");
    println!("|---|---|---|---|---|---|---|");
    for row in &figure5.rows {
        println!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {} |",
            row.kernel,
            row.speedup[&MachineConfig::S],
            row.speedup[&MachineConfig::SO],
            row.speedup[&MachineConfig::SOD],
            row.speedup[&MachineConfig::M],
            row.speedup[&MachineConfig::MD],
            row.best,
        );
    }
    println!("\nflexible harmonic mean: {:.2}x", figure5.summary.flexible_hm);
    for config in MachineConfig::DLP {
        println!(
            "- vs fixed {config}: {:.2}x (flexible {:+.0}%)",
            figure5.summary.fixed_hm[&config],
            figure5.summary.advantage_over.get(&config).copied().unwrap_or(0.0) * 100.0
        );
    }
    println!("\n## Table 6 (vs specialized hardware)\n");
    println!("| benchmark | ours | paper TRIPS | specialized | units |");
    println!("|---|---|---|---|---|");
    for r in &t6 {
        let fmt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.1}"));
        println!(
            "| {} | {:.1} | {} | {} | {} |",
            r.kernel,
            r.trips,
            fmt(r.paper_trips),
            fmt(r.specialized),
            r.units.label()
        );
    }

    // JSON artifact, via the workspace's shared serde→JSON emitter
    // (`dlp_common::json`; the sanctioned dependency list has no
    // serde_json).
    let report = Report { figure5, table6: t6 };
    std::fs::write(&out_path, dlp_common::json::to_string(&report))?;
    eprintln!("\nwrote {out_path}");
    Ok(())
}
