//! Regenerates Table 5: the machine configurations.

use dlp_core::MachineConfig;

fn main() {
    println!("Table 5: machine configurations\n");
    println!(
        "{:<9} {:^6} {:^6} {:^6} {:^6}  architecture model",
        "config", "L0-I", "L0-D", "i-rev", "o-rev"
    );
    for c in MachineConfig::ALL {
        println!("{}", c.table5_row());
    }
    println!(
        "\nAll five DLP configurations devote one L2 bank per row to the software\n\
         managed cache (SMC) with store buffers and row streaming channels (§5.3)."
    );
}
