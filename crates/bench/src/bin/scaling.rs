//! Technology scalability: the paper's central premise for choosing the
//! grid substrate is that it scales — "an execution substrate with a large
//! number of functional units … and technology scalability" (§4). This
//! sweep runs representative kernels on 4×4 through 16×16 arrays and
//! reports sustained throughput; streaming kernels should scale close to
//! linearly with ALU count on their preferred configuration.
//!
//! Pass `--quick` for smoke-scale workloads.

use dlp_bench::{quick_flag, records_for};
use dlp_common::GridShape;
use dlp_core::{recommend, run_kernel, ExperimentParams};
use dlp_kernels::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_flag();
    let kernels = suite();
    println!(
        "array-size scaling (useful ops/cycle on each kernel's recommended config){}\n",
        if quick { " [--quick]" } else { "" }
    );
    println!("{:<18} {:>8} {:>8} {:>8} {:>8}", "kernel", "4x4", "8x8", "12x12", "16x16");
    for name in ["convert", "fft", "blowfish", "vertex-simple"] {
        let kernel = kernels.iter().find(|k| k.name() == name).expect("kernel");
        let config = recommend(&kernel.ir().attributes()).config;
        let records = records_for(name, quick);
        let mut cells = Vec::new();
        for dim in [4u8, 8, 12, 16] {
            let mut params = ExperimentParams::default();
            params.grid = GridShape::new(dim, dim);
            let out = run_kernel(kernel.as_ref(), config, records, &params)?;
            assert!(out.verified(), "{name} on {dim}x{dim}");
            cells.push(out.stats.ops_per_cycle().0);
        }
        println!(
            "{:<18} {:>8.1} {:>8.1} {:>8.1} {:>8.1}   ({config})",
            name, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!("\nthroughput should grow with the array; perfectly linear scaling would");
    println!("quadruple from 4x4 to 8x8 and again to 16x16 (memory ports scale with rows).");
    Ok(())
}
