//! Technology scalability: the paper's central premise for choosing the
//! grid substrate is that it scales — "an execution substrate with a large
//! number of functional units … and technology scalability" (§4). This
//! sweep runs representative kernels on 4×4 through 16×16 arrays and
//! reports sustained throughput; streaming kernels should scale close to
//! linearly with ALU count on their preferred configuration.
//!
//! Every kernel × array-size cell runs in one parallel [`Sweep`] batch
//! (cells carry their own grid shape).
//!
//! Pass `--quick` for smoke-scale workloads.

use dlp_bench::{quick_flag, records_for};
use dlp_common::GridShape;
use dlp_core::{recommend, CellSpec, ExperimentParams, Sweep};

const DIMS: [u8; 4] = [4, 8, 12, 16];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_flag();
    let names = ["convert", "fft", "blowfish", "vertex-simple"];

    let mut sweep = Sweep::new();
    let mut configs = Vec::new();
    for name in names {
        let id = sweep.add_kernel_by_name(name).expect("kernel");
        let config = recommend(&sweep.kernel(id).ir().attributes()).config;
        configs.push(config);
        for dim in DIMS {
            let params = ExperimentParams {
                grid: GridShape::new(dim, dim),
                ..ExperimentParams::default()
            };
            sweep.push_cell(CellSpec {
                kernel: id,
                config: Some(config),
                mech: config.mechanisms(),
                records: records_for(name, quick),
                params,
                label: format!("{dim}x{dim}"),
            });
        }
    }
    let report = sweep.run();
    report.ensure_verified()?;

    println!(
        "array-size scaling (useful ops/cycle on each kernel's recommended config){}\n",
        if quick { " [--quick]" } else { "" }
    );
    println!("{:<18} {:>8} {:>8} {:>8} {:>8}", "kernel", "4x4", "8x8", "12x12", "16x16");
    for (i, name) in names.iter().enumerate() {
        let cells: Vec<f64> = report
            .cells
            .iter()
            .filter(|c| c.kernel == *name)
            .map(|c| c.outcome.stats().expect("verified").ops_per_cycle().0)
            .collect();
        println!(
            "{:<18} {:>8.1} {:>8.1} {:>8.1} {:>8.1}   ({})",
            name, cells[0], cells[1], cells[2], cells[3], configs[i]
        );
    }
    println!("\nthroughput should grow with the array; perfectly linear scaling would");
    println!("quadruple from 4x4 to 8x8 and again to 16x16 (memory ports scale with rows).");
    println!(
        "({} cells on {} workers, {} schedules prepared, {:.0} ms)",
        report.cells.len(),
        report.threads,
        report.plans_prepared,
        report.wall_ms
    );
    Ok(())
}
