//! Regenerates the Section 3 survey: classic vector / SIMD / coarse-MIMD
//! first-order estimates per benchmark (Figure 2's qualitative story).

use dlp_classic::survey;
use dlp_kernels::suite;

fn main() {
    println!("Section 3: classic data-parallel architectures (first-order estimates)\n");
    println!(
        "{:<22} {:>10} {:>10} {:>12}   best fixed model",
        "benchmark", "vector", "simd", "coarse-mimd"
    );
    for k in suite() {
        let attrs = k.ir().attributes();
        let s = survey(&attrs);
        let best = s.iter().min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite")).expect("3");
        println!(
            "{:<22} {:>10.2} {:>10.2} {:>12.2}   {}",
            attrs.name, s[0].1, s[1].1, s[2].1, best.0
        );
    }
    println!("\nestimated cycles/record; smaller is better");
}
