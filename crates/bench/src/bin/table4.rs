//! Regenerates Table 4: baseline TRIPS performance in useful operations
//! per cycle (overhead instructions excluded, per the paper).
//!
//! Pass `--quick` for smoke-scale workloads.

use dlp_bench::{quick_flag, run_suite_on};
use dlp_core::MachineConfig;

/// The paper's Table 4 values, for side-by-side comparison.
fn paper_value(kernel: &str) -> Option<f64> {
    Some(match kernel {
        "convert" => 14.1,
        "dct" => 10.4,
        "highpassfilter" => 7.4,
        "fft" => 3.7,
        "lu" => 0.7,
        "md5" => 2.8,
        "blowfish" => 5.1,
        "rijndael" => 7.5,
        "vertex-simple" => 3.6,
        "fragment-simple" => 2.6,
        "vertex-reflection" => 5.2,
        "fragment-reflection" => 4.0,
        "vertex-skinning" => 5.6,
        _ => return None,
    })
}

fn main() {
    let quick = quick_flag();
    println!(
        "Table 4: performance on baseline TRIPS (useful ops/cycle){}\n",
        if quick { " [--quick]" } else { "" }
    );
    println!("{:<22} {:>10} {:>10}", "benchmark", "measured", "paper");
    let outs = run_suite_on(MachineConfig::Baseline, quick);
    for out in outs {
        let paper = paper_value(&out.kernel).map_or("-".into(), |v| format!("{v:.1}"));
        println!("{:<22} {:>10.1} {:>10}", out.kernel, out.stats.ops_per_cycle().0, paper);
    }
    println!(
        "\nAbsolute values depend on our reconstructed scheduler and timing model;\n\
         the shape to compare is which kernels sustain high vs low throughput\n\
         (see EXPERIMENTS.md)."
    );
}
