//! Regenerates Table 1: the benchmark suite descriptions.

use dlp_kernel_ir::Domain;
use dlp_kernels::suite;

fn main() {
    println!("Table 1: benchmark description\n");
    let groups = [
        (Domain::Multimedia, "Multimedia processing"),
        (Domain::Scientific, "Scientific codes"),
        (Domain::Network, "Network processing, security (1500 byte packets)"),
        (Domain::Graphics, "Real-time graphics processing"),
    ];
    let kernels = suite();
    for (domain, title) in groups {
        println!("{title}");
        for k in &kernels {
            if k.ir().domain() == domain {
                println!("  {:<22} {}", k.name(), k.description());
            }
        }
        println!();
    }
}
