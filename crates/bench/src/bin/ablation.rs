//! Mechanism ablations in *simulated cycles* (experiments A1–A3 of
//! DESIGN.md): sweep one knob per mechanism and report the simulated
//! cost, verified. (The Criterion benches measure harness wall-time; this
//! binary reports the architecture-level quantity.)
//!
//! All three sweeps are batched into one parallel [`Sweep`]; cells carry
//! their own timing parameters, so the schedule cache still collapses
//! cells whose knob does not affect lowering.
//!
//! Pass `--quick` for smoke-scale workloads.

use dlp_bench::{quick_flag, records_for};
use dlp_core::{CellSpec, ExperimentParams, MachineConfig, Sweep};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_flag();
    let mut sweep = Sweep::new();

    // A1: revitalize-broadcast delay on the S machine (convert).
    let convert = sweep.add_kernel_by_name("convert").expect("kernel");
    for delay_cycles in [1u64, 5, 20, 80] {
        let mut params = ExperimentParams::default();
        params.timing.fetch.revitalize_delay = delay_cycles * 2;
        sweep.push_cell(CellSpec {
            kernel: convert,
            config: Some(MachineConfig::S),
            mech: MachineConfig::S.mechanisms(),
            records: records_for("convert", quick),
            params,
            label: format!("A1 delay={delay_cycles}"),
        });
    }

    // A2: L0 access latency on the S-O-D machine (blowfish).
    let blowfish = sweep.add_kernel_by_name("blowfish").expect("kernel");
    for lat in [1u64, 3, 8] {
        let mut params = ExperimentParams::default();
        params.timing.mem.l0_latency = lat * 2;
        sweep.push_cell(CellSpec {
            kernel: blowfish,
            config: Some(MachineConfig::SOD),
            mech: MachineConfig::SOD.mechanisms(),
            records: records_for("blowfish", quick),
            params,
            label: format!("A2 latency={lat}"),
        });
    }

    // A3: LMW width on the S-O machine (highpassfilter).
    let highpass = sweep.add_kernel_by_name("highpassfilter").expect("kernel");
    for width in [1u32, 2, 4, 8] {
        let mut params = ExperimentParams::default();
        params.timing.mem.lmw_max_words = width;
        sweep.push_cell(CellSpec {
            kernel: highpass,
            config: Some(MachineConfig::SO),
            mech: MachineConfig::SO.mechanisms(),
            records: records_for("highpassfilter", quick),
            params,
            label: format!("A3 width={width}"),
        });
    }

    let report = sweep.run();
    report.ensure_verified()?;

    println!("A1: revitalize delay sweep — convert on S (simulated cycles)");
    for cell in report.cells.iter().filter(|c| c.label.starts_with("A1")) {
        let knob = cell.label.trim_start_matches("A1 delay=");
        let stats = cell.outcome.stats().expect("verified");
        println!("  delay {knob:>3} cycles: {:>8} cycles", stats.cycles());
    }
    println!("\nA2: L0 latency sweep — blowfish on S-O-D (simulated cycles)");
    for cell in report.cells.iter().filter(|c| c.label.starts_with("A2")) {
        let knob = cell.label.trim_start_matches("A2 latency=");
        let stats = cell.outcome.stats().expect("verified");
        println!("  latency {knob:>2} cycles: {:>8} cycles", stats.cycles());
    }
    println!("\nA3: LMW width sweep — highpassfilter on S-O (simulated cycles)");
    for cell in report.cells.iter().filter(|c| c.label.starts_with("A3")) {
        let knob = cell.label.trim_start_matches("A3 width=");
        let stats = cell.outcome.stats().expect("verified");
        println!("  width {knob} words: {:>8} cycles", stats.cycles());
    }
    println!(
        "\n({} cells on {} workers, {} schedules prepared, {} reused, {:.0} ms)",
        report.cells.len(),
        report.threads,
        report.plans_prepared,
        report.plan_reuses,
        report.wall_ms
    );
    Ok(())
}
