//! Mechanism ablations in *simulated cycles* (experiments A1–A3 of
//! DESIGN.md): sweep one knob per mechanism and report the simulated
//! cost, verified. (The Criterion benches measure harness wall-time; this
//! binary reports the architecture-level quantity.)
//!
//! Pass `--quick` for smoke-scale workloads.

use dlp_bench::{quick_flag, records_for};
use dlp_core::{run_kernel, ExperimentParams, MachineConfig};
use dlp_kernels::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_flag();
    let kernels = suite();
    let get = |name: &str| kernels.iter().find(|k| k.name() == name).expect("kernel");

    // A1: revitalize-broadcast delay on the S machine (convert).
    println!("A1: revitalize delay sweep — convert on S (simulated cycles)");
    let kernel = get("convert");
    let records = records_for("convert", quick);
    for delay_cycles in [1u64, 5, 20, 80] {
        let mut params = ExperimentParams::default();
        params.timing.fetch.revitalize_delay = delay_cycles * 2;
        let out = run_kernel(kernel.as_ref(), MachineConfig::S, records, &params)?;
        assert!(out.verified());
        println!("  delay {delay_cycles:>3} cycles: {:>8} cycles", out.stats.cycles());
    }

    // A2: L0 access latency on the S-O-D machine (blowfish).
    println!("\nA2: L0 latency sweep — blowfish on S-O-D (simulated cycles)");
    let kernel = get("blowfish");
    let records = records_for("blowfish", quick);
    for lat in [1u64, 3, 8] {
        let mut params = ExperimentParams::default();
        params.timing.mem.l0_latency = lat * 2;
        let out = run_kernel(kernel.as_ref(), MachineConfig::SOD, records, &params)?;
        assert!(out.verified());
        println!("  latency {lat:>2} cycles: {:>8} cycles", out.stats.cycles());
    }

    // A3: LMW width on the S-O machine (highpassfilter).
    println!("\nA3: LMW width sweep — highpassfilter on S-O (simulated cycles)");
    let kernel = get("highpassfilter");
    let records = records_for("highpassfilter", quick);
    for width in [1u32, 2, 4, 8] {
        let mut params = ExperimentParams::default();
        params.timing.mem.lmw_max_words = width;
        let out = run_kernel(kernel.as_ref(), MachineConfig::SO, records, &params)?;
        assert!(out.verified());
        println!("  width {width} words: {:>8} cycles", out.stats.cycles());
    }
    Ok(())
}
