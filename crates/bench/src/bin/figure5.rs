//! Regenerates Figure 5: speedup of each machine configuration over the
//! baseline, per benchmark (grouped by preferred configuration), plus the
//! flexible architecture's harmonic-mean bars.
//!
//! Pass `--quick` for smoke-scale workloads.

use dlp_bench::quick_flag;
use dlp_core::{flexible, ExperimentParams, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_flag();
    let params = ExperimentParams::default();
    let fig = flexible(&params, if quick { 0 } else { 1 })?;

    println!(
        "Figure 5: speedup over baseline per configuration{}\n",
        if quick { " [--quick]" } else { "" }
    );
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>7} {:>7}   best  (recommended)",
        "benchmark", "S", "S-O", "S-O-D", "M", "M-D"
    );
    // Group rows by preferred configuration like the paper's figure.
    let mut rows = fig.rows.clone();
    rows.sort_by_key(|r| (r.recommended, r.kernel.clone()));
    for row in &rows {
        println!(
            "{:<22} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}   {:<5} ({})",
            row.kernel,
            row.speedup[&MachineConfig::S],
            row.speedup[&MachineConfig::SO],
            row.speedup[&MachineConfig::SOD],
            row.speedup[&MachineConfig::M],
            row.speedup[&MachineConfig::MD],
            row.best.to_string(),
            row.recommended,
        );
    }
    println!("\nFlexible architecture (harmonic mean of per-kernel recommended configs):");
    println!("  flexible: {:.2}x over baseline", fig.summary.flexible_hm);
    for config in MachineConfig::DLP {
        let hm = fig.summary.fixed_hm[&config];
        let adv = fig.summary.advantage_over.get(&config).copied().unwrap_or(0.0) * 100.0;
        println!("  vs fixed {config:<6}: {hm:.2}x   flexible {adv:+.0}%");
    }
    println!("\npaper: flexible is +55% vs fixed S, +20% vs fixed S-O, +5% vs fixed M-D");
    Ok(())
}
