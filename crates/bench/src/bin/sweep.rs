//! The full experiment sweep: every performance-suite kernel × every
//! Table 5 machine configuration (baseline, S, S-O, S-O-D, M, M-D), run
//! by the work-stealing [`Sweep`] engine and written to
//! `BENCH_sweep.json` — the machine-readable artifact the figure and
//! table binaries' numbers are slices of (Figure 5 = the speedup
//! columns, Table 4 = the baseline ops/cycle column).
//!
//! Flags:
//!
//! * `--quick` — smoke-scale workloads (24 records per kernel).
//! * `--threads N` — worker-thread count (default: one per CPU, max 8).
//!   `--threads 1` is the serial reference; any N produces bit-identical
//!   statistics.
//! * `--no-workload-cache` — disable the shared workload cache.
//!   Statistics are bit-identical either way (the CI purity check
//!   compares the two paths); the flag exists for A/B wall-clock
//!   comparisons.
//! * `--out PATH` — JSON destination (default `BENCH_sweep.json`).

use dlp_bench::{quick_flag, records_for};
use dlp_core::{ExperimentParams, MachineConfig, Sweep};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_flag();
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1));
    let out_path = flag("--out").cloned().unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let threads: Option<usize> = flag("--threads").map(|s| s.parse()).transpose()?;

    let params = ExperimentParams::default();
    let mut sweep = threads.map_or_else(Sweep::new, Sweep::with_threads);
    if args.iter().any(|a| a == "--no-workload-cache") {
        sweep.set_workload_cache(false);
    }
    for id in sweep.add_perf_suite() {
        let records = records_for(sweep.kernel(id).name(), quick);
        sweep.push_config(id, MachineConfig::Baseline, records, &params);
        for config in MachineConfig::DLP {
            sweep.push_config(id, config, records, &params);
        }
    }

    let total = sweep.len();
    eprintln!("sweeping {total} cells on {} worker threads...", sweep.threads());
    let report = sweep.run();
    report.ensure_verified()?;

    println!("harmonic-mean speedup over baseline (all {total} cells verified):");
    for (config, hm) in report.harmonic_mean_speedups("baseline") {
        println!("  {config:<8} {hm:.2}x");
    }
    println!(
        "schedule cache: {} lowerings prepared, {} cells served from cache",
        report.plans_prepared, report.plan_reuses
    );
    println!(
        "workload cache: {} hits, {} generated",
        report.workload_cache_hits, report.workload_cache_misses
    );
    println!("wall clock: {:.0} ms on {} threads", report.wall_ms, report.threads);

    std::fs::write(&out_path, dlp_common::json::to_string(&report))?;
    eprintln!("wrote {out_path}");
    Ok(())
}
