//! The full experiment sweep: every performance-suite kernel × every
//! Table 5 machine configuration (baseline, S, S-O, S-O-D, M, M-D), run
//! by the work-stealing [`Sweep`] engine and written to
//! `BENCH_sweep.json` — the machine-readable artifact the figure and
//! table binaries' numbers are slices of (Figure 5 = the speedup
//! columns, Table 4 = the baseline ops/cycle column).
//!
//! With `--store` the sweep becomes a service endpoint: results are
//! content-addressed on disk, so a repeat run executes only cells whose
//! inputs changed (a fully-warm run executes nothing and finishes in
//! milliseconds) while emitting a canonically bit-identical report.
//! `--manifest`/`--resume` checkpoint and restart interrupted runs, and
//! `--dlq`/`--replay-dlq` capture and re-diagnose cells that exhausted
//! their retries. See `OPERATIONS.md` for the runbooks.
//!
//! Exit status: non-zero when any cell remains failed, mis-verified, or
//! breaker-skipped after retries (the artifact is still written), so CI
//! and operators can gate on it.
//!
//! Flags:
//!
//! * `--quick` — smoke-scale workloads (24 records per kernel).
//! * `--scale N` — multiply every kernel's default record count by N
//!   (ignored under `--quick`); heavier grids for scheduling and
//!   wall-clock experiments.
//! * `--threads N` — worker-thread count (default: one per CPU, max 8).
//!   `--threads 1` is the serial reference; any N produces bit-identical
//!   statistics.
//! * `--no-workload-cache` — disable the shared workload cache.
//!   Statistics are bit-identical either way (the CI purity check
//!   compares the two paths); the flag exists for A/B wall-clock
//!   comparisons.
//! * `--no-lpt` — dispatch cells in push (arrival) order instead of
//!   the default longest-predicted-first order driven by the static
//!   cost model (DESIGN.md §13). Statistics and the canonical report
//!   are bit-identical either way; the flag exists for A/B wall-clock
//!   comparisons (EXPERIMENTS.md).
//! * `--out PATH` — JSON destination (default `BENCH_sweep.json`).
//! * `--canonical` — write the provenance-free canonical form of the
//!   report (see [`SweepReport::canonical`]): byte-identical across
//!   thread counts and store temperatures, for CI diffing.
//! * `--store DIR` — serve/persist cells through a content-addressed
//!   result store rooted at DIR.
//! * `--manifest PATH` — checkpoint each completed cell to PATH (JSONL).
//! * `--resume PATH` — resume an interrupted run from its manifest,
//!   executing only the missing cells (refuses a manifest written for a
//!   different grid).
//! * `--dlq PATH` — append retry-exhausted cells to a dead-letter queue.
//! * `--replay-dlq PATH` — re-run the queue's records with
//!   `faults`-style diagnosis, dropping the ones that now succeed.
//! * `--breaker N` — skip a configuration's remaining cells after N
//!   consecutive failures.
//! * `--watchdog TICKS` — per-cell simulated-tick watchdog override.
//! * `--kernels a,b,c` — restrict the suite to the named kernels (the
//!   chaos harness uses this to build small deterministic grids).
//! * `--fsck DIR` — scan the store at DIR, quarantining corrupt or
//!   orphaned entries and removing stale temp files, then exit.
//! * `--crashpoint NAME[:N]` — abort the process at the Nth hit of the
//!   named store crashpoint (crash-consistency testing; equivalent to
//!   setting `DLP_CRASHPOINT`).

use std::path::Path;
use std::sync::Arc;

use dlp_bench::{quick_flag, records_for};
use dlp_core::store::{fsck, load_dlq, rewrite_dlq};
use dlp_core::sweep::KernelId;
use dlp_core::{
    CellOutcome, CellSpec, DeadLetterQueue, DlqRecord, ExperimentParams, MachineConfig,
    ManifestWriter, ResultStore, Sweep, SweepManifest, SweepPolicy, SweepReport,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_flag();
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1));
    let threads: Option<usize> = flag("--threads").map(|s| s.parse()).transpose()?;

    if let Some(spec) = flag("--crashpoint") {
        if !dlp_common::crashpoint::arm(spec) {
            return Err(format!("--crashpoint {spec}: bad spec (want NAME[:N])").into());
        }
    }

    if let Some(dir) = flag("--fsck") {
        let report = fsck(Path::new(dir))?;
        println!("{}", dlp_common::json::to_string(&report));
        return Ok(());
    }

    if let Some(path) = flag("--replay-dlq") {
        return replay_dlq(Path::new(path), threads);
    }

    let out_path = flag("--out").cloned().unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let scale: usize = flag("--scale").map_or(Ok(1), |s| s.parse())?;
    let watchdog: Option<u64> = flag("--watchdog").map(|s| s.parse()).transpose()?;
    let breaker: Option<u32> = flag("--breaker").map(|s| s.parse()).transpose()?;

    let params = ExperimentParams {
        watchdog: watchdog.or(ExperimentParams::default().watchdog),
        ..ExperimentParams::default()
    };
    let mut sweep = threads.map_or_else(Sweep::new, Sweep::with_threads);
    if args.iter().any(|a| a == "--no-workload-cache") {
        sweep.set_workload_cache(false);
    }
    if args.iter().any(|a| a == "--no-lpt") {
        sweep.set_lpt_schedule(false);
    }
    let mut policy = SweepPolicy::default();
    if let Some(n) = breaker {
        policy = policy.with_breaker(n);
    }
    sweep.set_policy(policy);
    let kernel_filter: Option<Vec<&str>> =
        flag("--kernels").map(|s| s.split(',').map(str::trim).collect());
    for id in sweep.add_perf_suite() {
        let name = sweep.kernel(id).name().to_string();
        if kernel_filter.as_ref().is_some_and(|names| !names.contains(&name.as_str())) {
            continue;
        }
        let records = if quick {
            records_for(&name, quick)
        } else {
            dlp_core::default_records(&name, scale)
        };
        sweep.push_config(id, MachineConfig::Baseline, records, &params);
        for config in MachineConfig::DLP {
            sweep.push_config(id, config, records, &params);
        }
    }

    if let Some(dir) = flag("--store") {
        sweep.set_store(Arc::new(ResultStore::open(dir)?));
    }
    match (flag("--resume"), flag("--manifest")) {
        (Some(path), _) => {
            let path = Path::new(path);
            let manifest = SweepManifest::load(path)?;
            if manifest.grid_digest != sweep.grid_digest() {
                return Err(format!(
                    "manifest {} was written for a different grid \
                     (digest {} vs this sweep's {}); refusing to resume",
                    path.display(),
                    manifest.grid_digest,
                    sweep.grid_digest(),
                )
                .into());
            }
            eprintln!(
                "resuming: {} of {} cells already recorded in {}",
                manifest.completed(),
                manifest.cells,
                path.display()
            );
            sweep.set_resume(manifest);
            sweep.set_manifest(ManifestWriter::append_to(path)?);
        }
        (None, Some(path)) => {
            let path = Path::new(path);
            sweep.set_manifest(ManifestWriter::create(path, &sweep.cell_digests())?);
            eprintln!("checkpointing to {}", path.display());
        }
        (None, None) => {}
    }
    let dlq = flag("--dlq").map(|p| Arc::new(DeadLetterQueue::new(p)));
    if let Some(d) = &dlq {
        sweep.set_dlq(Arc::clone(d));
    }

    let total = sweep.len();
    eprintln!("sweeping {total} cells on {} worker threads...", sweep.threads());
    let report = sweep.run();
    let problems = print_problems(&report);

    if problems == 0 {
        println!("harmonic-mean speedup over baseline (all {total} cells verified):");
        for (config, hm) in report.harmonic_mean_speedups("baseline") {
            println!("  {config:<8} {hm:.2}x");
        }
    }
    println!(
        "schedule cache: {} lowerings prepared, {} cells served from cache",
        report.plans_prepared, report.plan_reuses
    );
    println!(
        "workload cache: {} hits, {} generated",
        report.workload_cache_hits, report.workload_cache_misses
    );
    if report.store_hits + report.store_misses > 0 {
        println!(
            "result store: {} hits, {} misses — {} of {total} cells executed",
            report.store_hits, report.store_misses, report.cells_executed
        );
    }
    if report.resumed_cells > 0 {
        println!("resume: {} cells served from the manifest", report.resumed_cells);
    }
    println!("wall clock: {:.0} ms on {} threads", report.wall_ms, report.threads);

    if args.iter().any(|a| a == "--canonical") {
        std::fs::write(&out_path, report.canonical_json())?;
    } else {
        std::fs::write(&out_path, dlp_common::json::to_string(&report))?;
    }
    eprintln!("wrote {out_path}");

    if problems > 0 {
        let dlq_note = dlq
            .filter(|d| d.appended() > 0)
            .map(|d| format!("; {} dead-lettered to {}", d.appended(), d.path().display()))
            .unwrap_or_default();
        eprintln!("sweep FAILED: {problems} of {total} cells did not verify{dlq_note}");
        std::process::exit(1);
    }
    Ok(())
}

/// Prints every failed, mis-verified, or skipped cell; returns how many
/// there were.
fn print_problems(report: &SweepReport) -> usize {
    let mut problems = 0;
    for cell in &report.cells {
        match &cell.outcome {
            CellOutcome::Ran { mismatch: None, .. } => {}
            CellOutcome::Ran { mismatch: Some(at), .. } => {
                problems += 1;
                eprintln!(
                    "  MISMATCH  {} on {}: wrong output at word {at}",
                    cell.kernel, cell.config
                );
            }
            CellOutcome::Failed { error, kind, attempts, .. } => {
                problems += 1;
                eprintln!(
                    "  FAILED    {} on {} ({kind}, {attempts} attempts): {error}",
                    cell.kernel, cell.config
                );
            }
            CellOutcome::Skipped { reason, .. } => {
                problems += 1;
                eprintln!("  SKIPPED   {} on {}: {reason}", cell.kernel, cell.config);
            }
        }
    }
    problems
}

/// `--replay-dlq`: re-run every record in the dead-letter queue with
/// bounded retries and `faults`-style diagnosis, then rewrite the queue
/// with only the records that still fail (removing it when empty).
fn replay_dlq(path: &Path, threads: Option<usize>) -> Result<(), Box<dyn std::error::Error>> {
    let records = load_dlq(path);
    if records.is_empty() {
        println!("dead-letter queue {} is empty — nothing to replay", path.display());
        return Ok(());
    }
    eprintln!("replaying {} dead-lettered cells from {}...", records.len(), path.display());

    let mut sweep = threads.map_or_else(Sweep::new, Sweep::with_threads);
    // The faults bin's diagnosis policy: two re-salted retries before a
    // failure is accepted as real.
    sweep.set_policy(SweepPolicy::default().with_attempts(3));
    let mut ids: Vec<(String, KernelId)> = Vec::new();
    let mut replayable: Vec<usize> = Vec::new();
    let mut remaining: Vec<DlqRecord> = Vec::new();
    for (ri, record) in records.iter().enumerate() {
        let id = match ids.iter().find(|(name, _)| *name == record.kernel) {
            Some((_, id)) => Some(*id),
            None => {
                let id = sweep.add_kernel_by_name(&record.kernel);
                if let Some(id) = id {
                    ids.push((record.kernel.clone(), id));
                }
                id
            }
        };
        match id {
            Some(id) => {
                sweep.push_cell(CellSpec {
                    kernel: id,
                    config: MachineConfig::ALL
                        .into_iter()
                        .find(|c| c.to_string() == record.config),
                    mech: record.mech,
                    records: record.records,
                    params: record.params(),
                    label: record.label.clone(),
                });
                replayable.push(ri);
            }
            None => {
                eprintln!(
                    "  {} ({}): kernel not in the suite — kept in the queue",
                    record.kernel, record.config
                );
                remaining.push(record.clone());
            }
        }
    }

    let report = sweep.run();
    let mut recovered = 0usize;
    for (&ri, cell) in replayable.iter().zip(&report.cells) {
        let record = &records[ri];
        match &cell.outcome {
            CellOutcome::Ran { stats, mismatch: None } => {
                recovered += 1;
                println!(
                    "  RECOVERED {} on {} ({} cycles, {} faults injected, {} retried) — \
                     original failure was {}",
                    record.kernel,
                    record.config,
                    stats.cycles(),
                    stats.faults_injected,
                    stats.fault_retries,
                    record.kind,
                );
            }
            CellOutcome::Ran { mismatch: Some(at), .. } => {
                println!(
                    "  MISMATCH  {} on {}: replay computed a wrong output at word {at}",
                    record.kernel, record.config
                );
                let mut updated = record.clone();
                updated.error = format!("replay computed a wrong output at word {at}");
                updated.kind = "verify".to_string();
                remaining.push(updated);
            }
            CellOutcome::Failed { error, kind, attempts, timed_out } => {
                println!(
                    "  STILL DEAD {} on {} ({kind}, {attempts} attempts): {error}",
                    record.kernel, record.config
                );
                let mut updated = record.clone();
                updated.error = error.clone();
                updated.kind = kind.clone();
                updated.attempts = *attempts;
                updated.timed_out = *timed_out;
                remaining.push(updated);
            }
            CellOutcome::Skipped { .. } => {
                // No breaker is armed during replay; keep the record
                // untouched if this ever changes.
                remaining.push(record.clone());
            }
        }
    }

    rewrite_dlq(path, &remaining)?;
    println!(
        "replay: {recovered} of {} recovered; {} remain in {}",
        records.len(),
        remaining.len(),
        path.display()
    );
    if !remaining.is_empty() {
        std::process::exit(1);
    }
    println!("queue drained — {} removed", path.display());
    Ok(())
}
