//! The fault-injection sweep: a fault-rate × machine-configuration grid
//! demonstrating the simulator's detect-and-replay fault model, written
//! to `BENCH_faults.json` (schema in `EXPERIMENTS.md`).
//!
//! Three representative kernels run on three configurations spanning
//! both engines and every fault site — baseline (dataflow, L1), S-O
//! (dataflow, SMC streams + DMA staging), M-D (MIMD, L1 + L0) — at a
//! ladder of uniform transient-fault rates. For each cell the report
//! records the injected/retried/stall counters, the cycle overhead over
//! the fault-free run of the same cell, and whether the run recovered
//! (outputs bit-identical to fault-free, enforced here) or degraded to
//! a structured failure. The whole schedule is seeded; re-running the
//! binary reproduces every fault, retry, and failure bit for bit.
//!
//! Flags:
//!
//! * `--quick` — smoke-scale workloads (24 records per kernel).
//! * `--threads N` — worker-thread count (statistics are bit-identical
//!   for any N).
//! * `--out PATH` — JSON destination (default `BENCH_faults.json`).
//! * `--dlq PATH` — append retry-exhausted cells to a dead-letter queue
//!   for later `sweep --replay-dlq PATH` diagnosis.

use std::sync::Arc;

use dlp_common::{FaultPlan, FaultRate};
use dlp_core::{
    CellOutcome, DeadLetterQueue, ExperimentParams, MachineConfig, Sweep, SweepPolicy,
};
use serde::{Deserialize, Serialize};

/// Uniform per-event fault rates swept, in events per million (the
/// first entry is the fault-free reference every overhead is measured
/// against).
const RATES_PPM: [u32; 5] = [0, 100, 1_000, 10_000, 50_000];

/// Kernel × configuration pairs covering both engines and all five
/// fault sites.
const GRID: [(&str, MachineConfig); 3] = [
    ("convert", MachineConfig::Baseline),
    ("fft", MachineConfig::SO),
    ("blowfish", MachineConfig::MD),
];

/// One row of `BENCH_faults.json`: a kernel × configuration × rate cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct FaultRow {
    kernel: String,
    config: String,
    /// Uniform fault rate, events per million.
    rate_ppm: u32,
    /// `"recovered"` (ran, outputs verified), `"mismatch"` (ran, wrong
    /// outputs — a fault-model bug), or the [`dlp_common::DlpError`]
    /// kind of the failure (e.g. `"fault-unrecoverable"`).
    status: String,
    /// Simulated cycles (`None` when the cell failed).
    cycles: Option<u64>,
    /// Cycle overhead over the fault-free run of the same cell
    /// (`cycles / cycles@rate0 - 1`; `None` when either side failed).
    overhead: Option<f64>,
    faults_injected: u64,
    fault_retries: u64,
    fault_stall_ticks: u64,
    /// Execution attempts the sweep spent on the cell.
    attempts: u32,
}

/// The `BENCH_faults.json` artifact.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct FaultReport {
    /// Retry/timeout policy the sweep ran under.
    policy: SweepPolicy,
    /// Worker threads used (informational; results are thread-count
    /// independent).
    threads: usize,
    /// Cells that ran and verified.
    recovered: usize,
    /// Cells that degraded to a structured failure.
    failed: usize,
    /// Retry attempts beyond each cell's first.
    extra_attempts: u64,
    /// Total host wall-clock, milliseconds.
    wall_ms: f64,
    rows: Vec<FaultRow>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = dlp_bench::quick_flag();
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1));
    let out_path = flag("--out").cloned().unwrap_or_else(|| "BENCH_faults.json".to_string());
    let threads: Option<usize> = flag("--threads").map(|s| s.parse()).transpose()?;

    let mut sweep = threads.map_or_else(Sweep::new, Sweep::with_threads);
    // Bounded retries: a cell that draws an unrecoverable schedule gets
    // two re-salted draws before its failure is accepted. The watchdog
    // keeps a pathological fault storm from stalling the batch.
    sweep.set_policy(SweepPolicy::default().with_attempts(3));
    let dlq = flag("--dlq").map(|p| Arc::new(DeadLetterQueue::new(p)));
    if let Some(d) = &dlq {
        sweep.set_dlq(Arc::clone(d));
    }

    let mut specs = Vec::new();
    for (name, config) in GRID {
        let id = sweep.add_kernel_by_name(name).ok_or(format!("no suite kernel {name}"))?;
        let records = dlp_bench::records_for(name, quick);
        for rate in RATES_PPM {
            let params = ExperimentParams {
                fault: FaultPlan::uniform(FaultRate::per_million(rate)),
                watchdog: Some(50_000_000),
                ..ExperimentParams::default()
            };
            sweep.push_cell(dlp_core::CellSpec {
                kernel: id,
                config: Some(config),
                mech: config.mechanisms(),
                records,
                params,
                label: format!("rate={rate}ppm"),
            });
            specs.push((name, config, rate));
        }
    }

    eprintln!("sweeping {} faulted cells on {} worker threads...", sweep.len(), sweep.threads());
    let report = sweep.run();

    // Fault-free reference cycles per (kernel, config) for the overhead
    // column — the rate-0 row of each group.
    let clean_cycles = |kernel: &str, config: MachineConfig| {
        specs
            .iter()
            .zip(&report.cells)
            .find(|((k, c, r), _)| *k == kernel && *c == config && *r == 0)
            .and_then(|(_, cell)| cell.outcome.stats())
            .map(dlp_common::SimStats::cycles)
    };

    let mut rows = Vec::new();
    let (mut recovered, mut failed) = (0usize, 0usize);
    for ((kernel, config, rate), cell) in specs.iter().zip(&report.cells) {
        let row = match &cell.outcome {
            CellOutcome::Ran { stats, mismatch } => {
                let status = match mismatch {
                    None => {
                        recovered += 1;
                        "recovered".to_string()
                    }
                    Some(at) => format!("mismatch@{at}"),
                };
                // The fault model's core promise: every run that
                // completes computed exactly the fault-free outputs.
                if mismatch.is_some() {
                    return Err(format!(
                        "{kernel} on {config} at {rate}ppm computed wrong outputs — \
                         recovery must be bit-exact"
                    )
                    .into());
                }
                let overhead = clean_cycles(kernel, *config)
                    .filter(|&c| c > 0)
                    .map(|c| stats.cycles() as f64 / c as f64 - 1.0);
                FaultRow {
                    kernel: (*kernel).to_string(),
                    config: config.to_string(),
                    rate_ppm: *rate,
                    status,
                    cycles: Some(stats.cycles()),
                    overhead,
                    faults_injected: stats.faults_injected,
                    fault_retries: stats.fault_retries,
                    fault_stall_ticks: stats.fault_stall_ticks,
                    attempts: 1,
                }
            }
            CellOutcome::Failed { error, kind, attempts, .. } => {
                failed += 1;
                eprintln!("  {kernel} on {config} at {rate}ppm failed ({kind}): {error}");
                FaultRow {
                    kernel: (*kernel).to_string(),
                    config: config.to_string(),
                    rate_ppm: *rate,
                    status: kind.clone(),
                    cycles: None,
                    overhead: None,
                    faults_injected: 0,
                    fault_retries: 0,
                    fault_stall_ticks: 0,
                    attempts: *attempts,
                }
            }
            CellOutcome::Skipped { reason, .. } => {
                failed += 1;
                eprintln!("  {kernel} on {config} at {rate}ppm skipped: {reason}");
                FaultRow {
                    kernel: (*kernel).to_string(),
                    config: config.to_string(),
                    rate_ppm: *rate,
                    status: "skipped".to_string(),
                    cycles: None,
                    overhead: None,
                    faults_injected: 0,
                    fault_retries: 0,
                    fault_stall_ticks: 0,
                    attempts: 0,
                }
            }
        };
        rows.push(row);
    }

    println!("fault sweep: {recovered} cells recovered bit-exactly, {failed} degraded cleanly");
    if let Some(d) = &dlq {
        if d.appended() > 0 {
            println!(
                "  {} unrecoverable cells dead-lettered to {} \
                 (diagnose with `sweep --replay-dlq`)",
                d.appended(),
                d.path().display()
            );
        }
    }
    for row in &rows {
        println!(
            "  {:<10} {:<8} {:>6}ppm  {:<20} injected {:>6}  retries {:>6}  overhead {}",
            row.kernel,
            row.config,
            row.rate_ppm,
            row.status,
            row.faults_injected,
            row.fault_retries,
            row.overhead.map_or_else(|| "-".to_string(), |o| format!("{:+.2}%", o * 100.0)),
        );
    }

    let artifact = FaultReport {
        policy: sweep.policy(),
        threads: report.threads,
        recovered,
        failed,
        extra_attempts: report.extra_attempts,
        wall_ms: report.wall_ms,
        rows,
    };
    std::fs::write(&out_path, dlp_common::json::to_string(&artifact))?;
    eprintln!("wrote {out_path}");
    Ok(())
}
