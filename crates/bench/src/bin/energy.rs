//! Energy comparison across configurations (the §7 future-work metric):
//! each mechanism's benefit shows up in the subsystem it relieves —
//! operand revitalization in the register file, the L0 store in the
//! caches, instruction revitalization in fetch.
//!
//! Pass `--quick` for smoke-scale workloads.

use dlp_bench::{quick_flag, records_for};
use dlp_core::{run_kernel, EnergyModel, ExperimentParams, MachineConfig};
use dlp_kernels::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_flag();
    let params = ExperimentParams::default();
    let model = EnergyModel::default();
    let kernels = suite();

    println!(
        "energy per record (nJ) by subsystem{}\n",
        if quick { " [--quick]" } else { "" }
    );
    println!(
        "{:<12} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "kernel", "config", "alu", "network", "regfile", "l1", "smc", "l0", "fetch", "total"
    );
    for name in ["convert", "blowfish", "vertex-skinning"] {
        let kernel = kernels.iter().find(|k| k.name() == name).expect("kernel");
        let records = records_for(name, quick);
        for config in [
            MachineConfig::Baseline,
            MachineConfig::S,
            MachineConfig::SO,
            MachineConfig::SOD,
            MachineConfig::MD,
        ] {
            let out = run_kernel(kernel.as_ref(), config, records, &params)?;
            assert!(out.verified());
            // Approximate mapped-block size for fetch energy: each
            // iteration executes the block once, so ops/iteration is the
            // block's instruction count.
            let block_insts = (out.stats.total_ops() / out.stats.iterations.max(1)) as usize;
            let b = model.breakdown(&out.stats, block_insts);
            let per = records as f64;
            println!(
                "{:<12} {:>7} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>9.2}",
                name,
                config.to_string(),
                b.alu_nj / per,
                b.network_nj / per,
                b.regfile_nj / per,
                b.l1_nj / per,
                b.smc_nj / per,
                b.l0_nj / per,
                b.fetch_nj / per,
                b.total_nj() / per,
            );
        }
        println!();
    }
    println!(
        "watch: S-O cuts the register-file column (operand revitalization);\n\
         S-O-D/M-D move lookup traffic from l1 to the cheap l0 column;\n\
         revitalization/local PCs cut fetch relative to the baseline."
    );
    Ok(())
}
