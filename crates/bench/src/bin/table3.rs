//! Regenerates Table 3: the attribute → mechanism map, applied to the
//! suite by the recommender.

use dlp_core::recommend;
use dlp_kernels::suite;

fn main() {
    println!("Table 3: universal mechanisms recommended per benchmark\n");
    println!(
        "{:<22} {:>4} {:>4} {:>8} {:>6} {:>9} {:>8}   config",
        "benchmark", "SMC", "L1$", "op-revit", "L0-dat", "inst-rev", "localPC"
    );
    let yn = |b: bool| if b { "Y" } else { "-" };
    for k in suite() {
        let rec = recommend(&k.ir().attributes());
        println!(
            "{:<22} {:>4} {:>4} {:>8} {:>6} {:>9} {:>8}   {}",
            k.name(),
            yn(rec.smc),
            yn(rec.cached_l1),
            yn(rec.operand_revitalization),
            yn(rec.l0_data_store),
            yn(rec.inst_revitalization),
            yn(rec.local_pc),
            rec.config
        );
    }
    println!(
        "\nPaper Table 3 rows: regular memory -> SMC (all); irregular -> cached L1;\n\
         scalar constants -> operand revitalization; indexed constants -> L0 data\n\
         store; tight loops -> instruction revitalization; data-dependent\n\
         branching -> local program counters."
    );
}
