//! Regenerates Table 2: kernel attributes computed from the IR.

use dlp_kernel_ir::KernelAttributes;
use dlp_kernels::suite;

fn main() {
    println!("Table 2: benchmark attributes (computed from the kernel IR)\n");
    println!("{}", KernelAttributes::header());
    for k in suite() {
        println!("{}", k.ir().attributes());
    }
    println!(
        "\nNotes: instruction counts are for fully unrolled kernel instances\n\
         (internal loops expanded, data-dependent loops expanded to their\n\
         maximum trip count with select merges), as in the paper."
    );
}
