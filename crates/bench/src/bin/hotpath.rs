//! Engine hot-path throughput → `BENCH_hotpath.json`.
//!
//! Times the cycle-level engines' inner loops (dataflow event loop,
//! MIMD fetch loop, mesh router) with scheduling excluded: each case in
//! [`dlp_bench::hotpath::HOTPATH_CASES`] is lowered once and only the
//! simulation is timed. Comparing `cells_per_sec` between two commits'
//! artifacts is the perf-regression check; `sim_cycles` doubles as a
//! determinism cross-check (it must only move when machine behavior
//! does).
//!
//! Flags:
//!
//! * `--fast` — CI smoke scale (few records, few iterations); also
//!   honors `--quick` for symmetry with the other binaries.
//! * `--out PATH` — JSON destination (default `BENCH_hotpath.json`).

use dlp_bench::hotpath::{measure, HotpathReport, HOTPATH_CASES};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast" || a == "--quick");
    let flag = |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1));
    let out_path = flag("--out").cloned().unwrap_or_else(|| "BENCH_hotpath.json".to_string());

    // Full scale keeps each case around a hundred milliseconds of timed
    // work; fast scale is a sub-second smoke proof that the harness runs.
    let (records, iters) = if fast { (24, 3) } else { (256, 20) };

    let mut cases = Vec::with_capacity(HOTPATH_CASES.len());
    for case in HOTPATH_CASES {
        let m = measure(case, records, iters);
        println!(
            "{:>9} {:<9} [{}] {:>10.1} cells/s  {:>12.0} records/s  ({} sim cycles)",
            m.kernel, m.config, m.engine, m.cells_per_sec, m.records_per_sec, m.sim_cycles
        );
        cases.push(m);
    }

    let report = HotpathReport { fast, cases };
    std::fs::write(&out_path, dlp_common::json::to_string(&report))?;
    eprintln!("wrote {out_path}");
    Ok(())
}
