//! Engine hot-path throughput → `BENCH_hotpath.json`.
//!
//! Times the cycle-level engines' inner loops (dataflow event loop,
//! MIMD fetch loop, mesh router) with scheduling excluded: each case in
//! [`dlp_bench::hotpath::HOTPATH_CASES`] is lowered once and only the
//! simulation is timed. Comparing `cells_per_sec` between two commits'
//! artifacts is the perf-regression check; `sim_cycles` doubles as a
//! determinism cross-check (it must only move when machine behavior
//! does). A queue microbenchmark row times the calendar-queue event
//! scheduler against the `BinaryHeap` it replaced, with an order
//! checksum asserting equivalence.
//!
//! Every case is also timed through the lane-batched entry point
//! (identical lanes per dispatch, DESIGN.md §10); the artifact records
//! the batched-vs-scalar speedup and a `batched_sim_cycles` column that
//! must equal `sim_cycles` (CI asserts it across `--lanes` settings).
//!
//! Flags:
//!
//! * `--fast` — CI smoke scale (few records, few iterations); also
//!   honors `--quick` for symmetry with the other binaries.
//! * `--lanes N` — lanes per batched dispatch (default 8; `1..=64`).
//! * `--out PATH` — JSON destination (default `BENCH_hotpath.json`).

use dlp_bench::hotpath::{measure, measure_queue, HotpathReport, HOTPATH_CASES, HOTPATH_SCHEMA};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast" || a == "--quick");
    let flag = |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1));
    let out_path = flag("--out").cloned().unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let lanes: usize = flag("--lanes").map_or(Ok(8), |s| s.parse())?;
    assert!(
        (1..=trips_sim::batch::MAX_CLASSES).contains(&lanes),
        "--lanes must be in 1..={}",
        trips_sim::batch::MAX_CLASSES
    );

    // Full scale keeps each case around a hundred milliseconds of timed
    // work; fast scale is a sub-second smoke proof that the harness runs.
    let (records, iters) = if fast { (24, 3) } else { (256, 20) };
    let (queue_live, queue_ops) = if fast { (256, 100_000) } else { (1024, 2_000_000) };

    let mut cases = Vec::with_capacity(HOTPATH_CASES.len());
    for case in HOTPATH_CASES {
        let m = measure(case, records, iters, lanes);
        println!(
            "{:>9} {:<9} [{}] {:>10.1} cells/s  {:>12.0} records/s  ({} sim cycles, {} cache hits, lowering {})",
            m.kernel,
            m.config,
            m.engine,
            m.cells_per_sec,
            m.records_per_sec,
            m.sim_cycles,
            m.workload_cache_hits,
            &m.lowering_fp[..8],
        );
        println!(
            "{:>9} {:<9} [batch:{} ] {:>10.1} cells/s  {:>9.2}x vs scalar  ({} sim cycles per lane)",
            "", "", m.lanes, m.batched_cells_per_sec, m.batch_speedup, m.batched_sim_cycles,
        );
        println!(
            "{:>9} {:<9} [lockstep:{}] {:>8.1} cells/s  {:>9.2}x vs scalar  (occupancy {:.2}, fold {:#018x})",
            "",
            "",
            m.lanes,
            m.lockstep_cells_per_sec,
            m.lockstep_speedup,
            m.lockstep_occupancy,
            m.lockstep_sim_cycles,
        );
        cases.push(m);
    }

    let queue = measure_queue(queue_live, queue_ops);
    println!(
        "{:>9} {:<9} [equeue ] {:>10.2}M ops/s  vs heap {:>6.2}M ops/s  (checksum {:#018x})",
        "calendar",
        format!("live={}", queue.live),
        queue.ops_per_sec / 1e6,
        queue.heap_ops_per_sec / 1e6,
        queue.checksum
    );

    let report = HotpathReport { schema: HOTPATH_SCHEMA, fast, cases, queue };
    std::fs::write(&out_path, dlp_common::json::to_string(&report))?;
    eprintln!("wrote {out_path}");
    Ok(())
}
