//! The full configuration space: the paper notes the mechanisms "can be
//! combined in different ways … to produce as many as 20 different
//! run-time machine configurations" (§5.3) but evaluates five. This sweep
//! runs a representative kernel from each Figure 5 preference group on
//! *every* coherent mechanism combination, confirming that the named
//! Table 5 configurations dominate the space for their kernels.
//!
//! The whole kernel × mechanism-set grid runs as one parallel [`Sweep`]
//! batch; unsupported combinations surface as per-cell failures rather
//! than aborting the sweep.
//!
//! Pass `--quick` for smoke-scale workloads.

use dlp_bench::{quick_flag, records_for};
use dlp_core::{CellOutcome, CellSpec, ExperimentParams, Sweep};
use trips_sim::MechanismSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_flag();
    let params = ExperimentParams::default();
    let space = MechanismSet::all_coherent();
    let names = ["fft", "convert", "blowfish", "vertex-skinning"];

    let mut sweep = Sweep::new();
    for name in names {
        let id = sweep.add_kernel_by_name(name).expect("kernel");
        for mech in &space {
            sweep.push_cell(CellSpec {
                kernel: id,
                config: None,
                mech: *mech,
                records: records_for(name, quick),
                params,
                label: name.to_string(),
            });
        }
    }
    let report = sweep.run();

    for name in names {
        let cells: Vec<_> = report.cells.iter().filter(|c| c.kernel == name).collect();
        let records = cells.first().map_or(0, |c| c.records);
        println!("{name} ({records} records): cycles per configuration");
        let mut rows = Vec::new();
        for cell in cells {
            match &cell.outcome {
                CellOutcome::Ran { stats, mismatch: None } =>
                    rows.push((cell.config.clone(), stats.cycles())),
                CellOutcome::Ran { mismatch: Some(at), .. } => {
                    println!("  {:<40} WRONG OUTPUT at word {at}", cell.config);
                }
                CellOutcome::Failed { error, .. } => {
                    println!("  {:<40} unsupported: {error}", cell.config);
                }
                CellOutcome::Skipped { reason, .. } => {
                    println!("  {:<40} skipped: {reason}", cell.config);
                }
            }
        }
        rows.sort_by_key(|(_, c)| *c);
        for (i, (mech, cycles)) in rows.iter().enumerate() {
            let marker = if i == 0 { "  <= best" } else { "" };
            println!("  {mech:<40} {cycles:>10}{marker}");
        }
        println!();
    }
    println!(
        "the named Table 5 configurations (smc+inst-revit[+op-revit][+l0-data],\n\
         smc+local-pc[+l0-data]) should appear at or near the top of each list."
    );
    println!(
        "({} cells on {} workers, {} schedules prepared, {:.0} ms)",
        report.cells.len(),
        report.threads,
        report.plans_prepared,
        report.wall_ms
    );
    Ok(())
}
