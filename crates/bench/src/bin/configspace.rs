//! The full configuration space: the paper notes the mechanisms "can be
//! combined in different ways … to produce as many as 20 different
//! run-time machine configurations" (§5.3) but evaluates five. This sweep
//! runs a representative kernel from each Figure 5 preference group on
//! *every* coherent mechanism combination, confirming that the named
//! Table 5 configurations dominate the space for their kernels.
//!
//! Pass `--quick` for smoke-scale workloads.

use dlp_bench::{quick_flag, records_for};
use dlp_core::{run_kernel_mech, ExperimentParams};
use dlp_kernels::suite;
use trips_sim::MechanismSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_flag();
    let params = ExperimentParams::default();
    let kernels = suite();
    let space = MechanismSet::all_coherent();

    for name in ["fft", "convert", "blowfish", "vertex-skinning"] {
        let kernel = kernels.iter().find(|k| k.name() == name).expect("kernel");
        let records = records_for(name, quick);
        println!("{name} ({records} records): cycles per configuration");
        let mut rows = Vec::new();
        for mech in &space {
            match run_kernel_mech(kernel.as_ref(), *mech, records, &params) {
                Ok((stats, None)) => rows.push((mech.to_string(), stats.cycles())),
                Ok((_, Some(at))) => {
                    println!("  {mech:<40} WRONG OUTPUT at word {at}");
                }
                Err(e) => println!("  {mech:<40} unsupported: {e}"),
            }
        }
        rows.sort_by_key(|(_, c)| *c);
        for (i, (mech, cycles)) in rows.iter().enumerate() {
            let marker = if i == 0 { "  <= best" } else { "" };
            println!("  {mech:<40} {cycles:>10}{marker}");
        }
        println!();
    }
    println!(
        "the named Table 5 configurations (smc+inst-revit[+op-revit][+l0-data],\n\
         smc+local-pc[+l0-data]) should appear at or near the top of each list."
    );
    Ok(())
}
