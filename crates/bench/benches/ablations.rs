//! Harness throughput under the mechanism-ablation knobs (DESIGN.md
//! A1–A3): Criterion measures how fast the *simulator* runs each swept
//! configuration. The architecture-level results (simulated cycles per
//! knob) come from the `ablation` binary; these benches catch host-side
//! performance regressions in the hot event loops.
//!
//! * A1 — revitalize-broadcast delay: how sensitive the S machine is to
//!   the per-iteration revitalization cost (§4.3 amortizes it by
//!   unrolling).
//! * A2 — L0 data-store latency: the value of 1-cycle table access for
//!   blowfish (§4.4).
//! * A3 — LMW width: how much wide fetch matters for streaming kernels
//!   (§4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlp_core::{run_kernel, ExperimentParams, MachineConfig};
use dlp_kernels::suite;

const RECORDS: usize = 32;

fn ablation_revitalize_delay(c: &mut Criterion) {
    let kernels = suite();
    let kernel = kernels.iter().find(|k| k.name() == "convert").expect("kernel");
    let mut group = c.benchmark_group("A1_revitalize_delay");
    group.sample_size(10);
    for delay_cycles in [1u64, 5, 20, 80] {
        let mut params = ExperimentParams::default();
        params.timing.fetch.revitalize_delay = delay_cycles * 2;
        group.bench_with_input(
            BenchmarkId::from_parameter(delay_cycles),
            &params,
            |b, params| {
                b.iter(|| {
                    let out = run_kernel(kernel.as_ref(), MachineConfig::S, RECORDS, params)
                        .expect("run succeeds");
                    assert!(out.verified());
                    out.stats.cycles()
                });
            },
        );
    }
    group.finish();
}

fn ablation_l0_latency(c: &mut Criterion) {
    let kernels = suite();
    let kernel = kernels.iter().find(|k| k.name() == "blowfish").expect("kernel");
    let mut group = c.benchmark_group("A2_l0_latency");
    group.sample_size(10);
    for lat_cycles in [1u64, 3, 8] {
        let mut params = ExperimentParams::default();
        params.timing.mem.l0_latency = lat_cycles * 2;
        group.bench_with_input(
            BenchmarkId::from_parameter(lat_cycles),
            &params,
            |b, params| {
                b.iter(|| {
                    let out = run_kernel(kernel.as_ref(), MachineConfig::SOD, RECORDS, params)
                        .expect("run succeeds");
                    assert!(out.verified());
                    out.stats.cycles()
                });
            },
        );
    }
    group.finish();
}

fn ablation_lmw_width(c: &mut Criterion) {
    let kernels = suite();
    let kernel = kernels.iter().find(|k| k.name() == "highpassfilter").expect("kernel");
    let mut group = c.benchmark_group("A3_lmw_width");
    group.sample_size(10);
    for width in [1u32, 2, 4, 8] {
        let mut params = ExperimentParams::default();
        params.timing.mem.lmw_max_words = width;
        group.bench_with_input(BenchmarkId::from_parameter(width), &params, |b, params| {
            b.iter(|| {
                let out = run_kernel(kernel.as_ref(), MachineConfig::SO, RECORDS, params)
                    .expect("run succeeds");
                assert!(out.verified());
                out.stats.cycles()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_revitalize_delay,
    ablation_l0_latency,
    ablation_lmw_width
);
criterion_main!(benches);
