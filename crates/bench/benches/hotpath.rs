//! Criterion view of the engine hot paths: the same cases as the
//! `hotpath` binary (one dataflow-heavy kernel, one MIMD-heavy kernel,
//! across their engine's configurations), prepared once so only
//! simulation — the dataflow event loop, the MIMD fetch loop, and the
//! mesh router — is inside the timed region, plus the event-scheduler
//! microbenchmark (calendar queue vs the `BinaryHeap` it replaced).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlp_bench::hotpath::{heap_churn, prepare_case, queue_churn, HOTPATH_CASES};

/// Matches the `hotpath` binary's full-scale record count so the two
/// views stay comparable.
const RECORDS: usize = 256;

/// Pop-then-push rounds per queue-churn sample.
const CHURN_OPS: u64 = 10_000;

fn bench_hotpaths(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");
    group.sample_size(10);
    for case in HOTPATH_CASES {
        let mut prepared = prepare_case(case, RECORDS);
        group.bench_function(BenchmarkId::new(case.kernel, case.config), |b| {
            b.iter(|| prepared.run_once());
        });
    }
    group.finish();
}

fn bench_equeue(c: &mut Criterion) {
    let mut group = c.benchmark_group("equeue");
    for live in [64usize, 1024] {
        group.bench_function(BenchmarkId::new("calendar", live), |b| {
            b.iter(|| queue_churn(live, CHURN_OPS));
        });
        group.bench_function(BenchmarkId::new("binary-heap", live), |b| {
            b.iter(|| heap_churn(live, CHURN_OPS));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hotpaths, bench_equeue);
criterion_main!(benches);
