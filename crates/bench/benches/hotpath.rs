//! Criterion view of the engine hot paths: the same cases as the
//! `hotpath` binary (one dataflow-heavy kernel, one MIMD-heavy kernel,
//! across their engine's configurations), prepared once so only
//! simulation — the dataflow event loop, the MIMD fetch loop, and the
//! mesh router — is inside the timed region.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlp_bench::hotpath::{prepare_case, HOTPATH_CASES};

/// Matches the `hotpath` binary's full-scale record count so the two
/// views stay comparable.
const RECORDS: usize = 256;

fn bench_hotpaths(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");
    group.sample_size(10);
    for case in HOTPATH_CASES {
        let prepared = prepare_case(case, RECORDS);
        group.bench_function(BenchmarkId::new(case.kernel, case.config), |b| {
            b.iter(|| prepared.run_once());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hotpaths);
criterion_main!(benches);
