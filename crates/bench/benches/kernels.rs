//! Criterion benches: simulator throughput per kernel × configuration.
//!
//! These measure the *harness* (how fast the simulation of each
//! table/figure experiment runs), complementing the table binaries that
//! report the *simulated* performance numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlp_core::{run_kernel, ExperimentParams, MachineConfig};
use dlp_kernels::suite;

/// Small fixed record counts keep bench iterations meaningful but quick.
const RECORDS: usize = 32;

fn bench_configs(c: &mut Criterion) {
    let params = ExperimentParams::default();
    let kernels = suite();
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    // One representative kernel per domain (Figure 5's grouping).
    for name in ["convert", "fft", "blowfish", "vertex-skinning"] {
        let kernel = kernels.iter().find(|k| k.name() == name).expect("kernel");
        for config in [
            MachineConfig::Baseline,
            MachineConfig::S,
            MachineConfig::SO,
            MachineConfig::SOD,
            MachineConfig::MD,
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, config),
                &config,
                |b, &config| {
                    b.iter(|| {
                        let out = run_kernel(kernel.as_ref(), config, RECORDS, &params)
                            .expect("run succeeds");
                        assert!(out.verified());
                        out.stats.cycles()
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    use dlp_kernels::memmap;
    use trips_sched::{schedule_dataflow, LayoutPlan, ScheduleOptions};

    let params = ExperimentParams::default();
    let layout = LayoutPlan {
        base_in: memmap::BASE_IN,
        base_out: memmap::BASE_OUT,
        table_base: memmap::TABLE_BASE,
    };
    let kernels = suite();
    let mut group = c.benchmark_group("schedule");
    group.sample_size(10);
    for name in ["convert", "dct", "rijndael"] {
        let ir = kernels.iter().find(|k| k.name() == name).expect("kernel").ir();
        group.bench_function(name, |b| {
            b.iter(|| {
                schedule_dataflow(
                    &ir,
                    params.grid,
                    &params.timing,
                    MachineConfig::SO.target(),
                    layout,
                    ScheduleOptions::default(),
                )
                .expect("schedules")
                .block
                .len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_configs, bench_scheduling);
criterion_main!(benches);
