//! Lowering: kernel IR → placed dataflow block, per machine configuration.

use std::collections::HashMap;

use dlp_common::{DlpError, GridShape, TimingParams, Value};
use dlp_kernel_ir::{IrOp, KernelIr};
use trips_isa::{
    DataflowBlock, MemSpace, OpRole, Opcode, PlacedInst, Port, RegRead, Slot, Target,
};

use crate::Placer;

/// Which mechanism-relevant choices the lowering should make.
///
/// This is the scheduler-facing projection of the simulator's mechanism
/// set, kept separate so the scheduler does not depend on the simulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TargetConfig {
    /// Regular streams go through the SMC with wide LMW loads; otherwise
    /// per-word L1 loads (the baseline path).
    pub smc: bool,
    /// Indexed constants become `Lut` reads of the L0 data store; otherwise
    /// L1 loads from the table's memory image.
    pub l0_data_store: bool,
    /// Register-read constants are persistent (delivered once per kernel).
    pub operand_revitalization: bool,
    /// Instruction revitalization is available, so unrolling may fill the
    /// whole reservation-station budget; otherwise only the baseline
    /// hyperblock budget.
    pub dlp_unroll: bool,
}

/// Where the kernel's streams and table images live in (word-addressed)
/// memory. The experiment driver owns this plan and stages the data.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LayoutPlan {
    /// First word of the input stream (record `r` starts at
    /// `base_in + r * record_in_words`).
    pub base_in: u64,
    /// First word of the output stream.
    pub base_out: u64,
    /// First word of the lookup-table memory image (used when the L0 data
    /// store is not configured).
    pub table_base: u64,
}

/// Scheduling knobs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScheduleOptions {
    /// Force a specific unroll factor instead of filling the budget.
    pub unroll: Option<usize>,
    /// Cap the chosen unroll factor (e.g. at the workload's record count,
    /// so short streams are not padded past their length).
    pub max_unroll: Option<usize>,
}

/// The scheduler's output: a placed block plus the setup obligations the
/// driver must satisfy before running it.
///
/// Scheduling is a pure function of the IR, grid, timing model, target
/// configuration and options — it never looks at workload data — so a
/// `ScheduledKernel` is freely cloneable and cacheable: the sweep
/// engine (`dlp_core::sweep`) prepares each distinct lowering once and
/// shares it across every experiment cell that needs it.
#[derive(Clone, Debug)]
pub struct ScheduledKernel {
    /// The placed dataflow block.
    pub block: DataflowBlock,
    /// Kernel instances per block iteration (records consumed per
    /// iteration). Run `ceil(records / unroll)` iterations and pad the
    /// record count to a multiple of `unroll`.
    pub unroll: usize,
    /// `(register, value)` pairs the driver must write before running
    /// (named scalar constants).
    pub const_regs: Vec<(u16, Value)>,
    /// Concatenated lookup-table contents. With the L0 store configured,
    /// load via `Machine::load_l0_table`; otherwise write at
    /// `layout.table_base` in main memory.
    pub table_image: Vec<Value>,
    /// Whether `table_image` goes to the L0 store (`true`) or memory.
    pub tables_in_l0: bool,
}

/// First register used for kernel constants (leaving low registers for
/// driver scratch).
const CONST_REG_BASE: u16 = 8;

/// Producer record for an IR node during lowering.
#[derive(Clone, Copy, Debug)]
enum Prod {
    /// Value produced by block instruction `i`.
    Inst(usize),
    /// Value is a register-read constant.
    Reg(u16),
    /// Value is a foldable immediate (single use on a right port).
    ImmFold(Value),
}

/// Schedule a kernel onto the array for the given configuration.
///
/// The produced block is passed through the full static verifier
/// ([`dlp_verify::verify_dataflow`]) before it is returned, so every
/// artifact that leaves the scheduler is deadlock-free and within the
/// machine's capacity budgets.
///
/// # Errors
///
/// * [`DlpError::CapacityExceeded`] — the kernel does not fit the array
///   even at unroll 1.
/// * [`DlpError::Verify`] — the produced block fails static verification
///   (indicates a scheduler bug; surfaced rather than hidden).
pub fn schedule_dataflow(
    ir: &KernelIr,
    grid: GridShape,
    params: &TimingParams,
    cfg: TargetConfig,
    layout: LayoutPlan,
    opts: ScheduleOptions,
) -> Result<ScheduledKernel, DlpError> {
    let unroll = planned_unroll(ir, grid, params, cfg, layout, opts)?;

    let mut lowering = Lowering::new(ir, grid, params, cfg, layout, unroll);
    for u in 0..unroll {
        lowering.lower_instance(u)?;
    }
    let kernel = lowering.finish()?;
    // Surface scheduler bugs immediately: full static verification of the
    // artifact (shape checks, dependence acyclicity, capacity legality).
    let vparams = dlp_verify::DataflowVerifyParams {
        grid,
        slots_per_node: params.core.rs_slots_per_node,
        num_regs: dlp_verify::DEFAULT_NUM_REGS,
        lmw_max_words: params.mem.lmw_max_words.max(1) as usize,
        l0_data_entries: params.mem.l0_data_bytes,
        unroll: kernel.unroll,
        unroll_cap: 512,
        operand_revitalization: cfg.operand_revitalization,
        tables_in_l0: kernel.tables_in_l0,
        table_len: kernel.table_image.len(),
    };
    dlp_verify::verify_dataflow(&kernel.block, &vparams)?;
    Ok(kernel)
}

/// The unroll factor [`schedule_dataflow`] would pick for these inputs,
/// computed from a one-instance dry run without lowering the full block.
///
/// This is the *only* way [`ScheduleOptions::max_unroll`] (and hence a
/// workload's record count) influences a schedule, so two option sets
/// that map to the same planned unroll produce identical
/// [`ScheduledKernel`]s — the property the sweep engine's schedule
/// cache exploits to share lowerings across record counts.
///
/// # Errors
///
/// [`DlpError::MalformedProgram`] — the IR fails validation.
pub fn planned_unroll(
    ir: &KernelIr,
    grid: GridShape,
    params: &TimingParams,
    cfg: TargetConfig,
    layout: LayoutPlan,
    opts: ScheduleOptions,
) -> Result<usize, DlpError> {
    ir.validate()?;
    // Dry-run one instance to learn its lowered size.
    let probe = Lowering::new(ir, grid, params, cfg, layout, 1);
    let per_instance = probe.count_one_instance();

    let budget_insts = if cfg.dlp_unroll {
        params.core.rs_slots_per_node * grid.nodes()
    } else {
        params.core.baseline_slots_per_node * grid.nodes()
    };
    let natural = (budget_insts / per_instance.max(1)).max(1);
    // Keep one instance per row when possible so LMW channels spread, and
    // bound the block so event counts stay sane.
    let capped = natural.min(opts.max_unroll.unwrap_or(usize::MAX));
    Ok(opts.unroll.unwrap_or(capped).clamp(1, 512))
}

struct Lowering<'a> {
    ir: &'a KernelIr,
    grid: GridShape,
    cfg: TargetConfig,
    layout: LayoutPlan,
    unroll: usize,
    lmw_max: u32,
    placer: Placer,
    insts: Vec<PlacedInst>,
    /// Pending operand wires: (producer inst, consumer inst, port).
    wires: Vec<(usize, usize, Port)>,
    /// Register reads: reg -> targets.
    reg_targets: HashMap<u16, Vec<(usize, Port)>>,
    /// Per-table word offset within the concatenated image.
    table_offsets: Vec<u64>,
}

impl<'a> Lowering<'a> {
    fn new(
        ir: &'a KernelIr,
        grid: GridShape,
        params: &TimingParams,
        cfg: TargetConfig,
        layout: LayoutPlan,
        unroll: usize,
    ) -> Self {
        let mut table_offsets = Vec::with_capacity(ir.tables().len());
        let mut off = 0u64;
        for t in ir.tables() {
            table_offsets.push(off);
            off += t.entries.len() as u64;
        }
        Lowering {
            ir,
            grid,
            cfg,
            layout,
            unroll,
            lmw_max: params.mem.lmw_max_words.max(1),
            placer: Placer::new(grid, params.core.rs_slots_per_node),
            insts: Vec::new(),
            wires: Vec::new(),
            reg_targets: HashMap::new(),
            table_offsets,
        }
    }

    /// How many block instructions one lowered instance occupies.
    fn count_one_instance(mut self) -> usize {
        self.lower_instance(0).map(|()| self.insts.len()).unwrap_or(usize::MAX)
    }

    /// Number of uses of each IR node.
    fn use_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.ir.nodes().len()];
        let mut bump = |r: dlp_kernel_ir::IrRef| counts[r.index()] += 1;
        for n in self.ir.nodes() {
            match n.op {
                IrOp::TableRead { index, .. } => bump(index),
                IrOp::IrregularLoad { addr } => bump(addr),
                IrOp::Un { a, .. } => bump(a),
                IrOp::Bin { a, b, .. } => {
                    bump(a);
                    bump(b);
                }
                IrOp::Sel { p, a, b } => {
                    bump(p);
                    bump(a);
                    bump(b);
                }
                _ => {}
            }
        }
        for &(_, r) in self.ir.outputs() {
            counts[r.index()] += 1;
        }
        counts
    }

    fn emit(&mut self, slot: Slot, op: Opcode, imm: Option<Value>, role: OpRole) -> usize {
        let mut inst = PlacedInst::new(slot, op);
        inst.imm = imm;
        inst.role = role;
        self.insts.push(inst);
        self.insts.len() - 1
    }

    fn coord_of(&self, inst: usize) -> dlp_common::Coord {
        self.insts[inst].slot.node
    }

    /// Lower one kernel instance `u`. Instances spread across *all* rows
    /// (stride mapping when there are fewer instances than rows) so every
    /// memory bank and streaming channel carries traffic.
    #[allow(clippy::too_many_lines)]
    fn lower_instance(&mut self, u: usize) -> Result<(), DlpError> {
        let ir = self.ir;
        let rows = self.grid.rows();
        let home = if self.unroll >= rows as usize {
            (u % rows as usize) as u8
        } else {
            ((u * rows as usize) / self.unroll) as u8
        };
        let in_words = u64::from(ir.record_in_words());
        let out_words = u64::from(ir.record_out_words());
        let uses = self.use_counts();

        // Dead-code elision: a node not (transitively) reaching an output
        // would lower to an instruction whose result is dropped, which the
        // block validator rightly rejects — skip such nodes. Liveness
        // propagates backward from the outputs in reverse topological
        // order (the IR is constructed topologically).
        let mut live = vec![false; ir.nodes().len()];
        for &(_, r) in ir.outputs() {
            live[r.index()] = true;
        }
        for i in (0..ir.nodes().len()).rev() {
            if !live[i] {
                continue;
            }
            let mut mark = |r: dlp_kernel_ir::IrRef| live[r.index()] = true;
            match ir.nodes()[i].op {
                IrOp::TableRead { index, .. } => mark(index),
                IrOp::IrregularLoad { addr } => mark(addr),
                IrOp::Un { a, .. } => mark(a),
                IrOp::Bin { a, b, .. } => {
                    mark(a);
                    mark(b);
                }
                IrOp::Sel { p, a, b } => {
                    mark(p);
                    mark(a);
                    mark(b);
                }
                IrOp::RecordIn(_) | IrOp::Const(_) | IrOp::Imm(_) => {}
            }
        }

        // --- per-instance address chain ---------------------------------
        // rec_in_addr  = base_in  + (iter*U + u)*in_words
        //              = Iter * (U*in_words) + (base_in + u*in_words)
        let needs_in = in_words > 0
            && ir
                .nodes()
                .iter()
                .enumerate()
                .any(|(i, n)| live[i] && matches!(n.op, IrOp::RecordIn(_)));
        let needs_out = out_words > 0 && !ir.outputs().is_empty();
        let mut iter_idx = None;
        let mut get_iter = |this: &mut Self| -> Result<usize, DlpError> {
            if let Some(i) = iter_idx {
                return Ok(i);
            }
            let slot = this.placer.place_mem(home)?;
            let i = this.emit(slot, Opcode::Iter, None, OpRole::Overhead);
            iter_idx = Some(i);
            Ok(i)
        };

        let mut addr_chain = |this: &mut Self,
                              stride: u64,
                              base: u64|
         -> Result<usize, DlpError> {
            let it = get_iter(this)?;
            let near = [this.coord_of(it)];
            let s1 = this.placer.place_near(&near, home)?;
            let mul = this.emit(s1, Opcode::Mul, Some(Value::from_u64(stride)), OpRole::Overhead);
            this.wires.push((it, mul, Port::Left));
            let s2 = this.placer.place_near(&[this.coord_of(mul)], home)?;
            let add = this.emit(s2, Opcode::Add, Some(Value::from_u64(base)), OpRole::Overhead);
            this.wires.push((mul, add, Port::Left));
            Ok(add)
        };

        let in_addr = if needs_in {
            Some(addr_chain(
                self,
                self.unroll as u64 * in_words,
                self.layout.base_in + u as u64 * in_words,
            )?)
        } else {
            None
        };
        let out_addr = if needs_out {
            Some(addr_chain(
                self,
                self.unroll as u64 * out_words,
                self.layout.base_out + u as u64 * out_words,
            )?)
        } else {
            None
        };

        // --- input record delivery --------------------------------------
        // Producer instruction for each input word that is used.
        let mut word_prod: HashMap<u16, usize> = HashMap::new();
        let mut word_uses = vec![0u32; in_words as usize];
        for (i, n) in ir.nodes().iter().enumerate() {
            if let IrOp::RecordIn(w) = n.op {
                if live[i] {
                    word_uses[w as usize] += uses[i];
                }
            }
        }
        if let Some(in_addr) = in_addr {
            if self.cfg.smc {
                // Contiguous used spans, up to lmw_max words per LMW. Each
                // word lands on a Mov that fans out to its consumers.
                let mut w = 0u64;
                while w < in_words {
                    if word_uses[w as usize] == 0 {
                        w += 1;
                        continue;
                    }
                    let mut span = 0u64;
                    while w + span < in_words
                        && span < u64::from(self.lmw_max)
                        && word_uses[(w + span) as usize] > 0
                    {
                        span += 1;
                    }
                    // Address for this chunk.
                    let chunk_addr = if w == 0 {
                        in_addr
                    } else {
                        let s = self
                            .placer
                            .place_near(&[self.coord_of(in_addr)], home)?;
                        let a = self.emit(s, Opcode::Add, Some(Value::from_u64(w)), OpRole::Overhead);
                        self.wires.push((in_addr, a, Port::Left));
                        a
                    };
                    let lmw_slot = self.placer.place_mem(home)?;
                    let lmw = self.emit(
                        lmw_slot,
                        Opcode::Lmw,
                        Some(Value::from_u64(span)),
                        OpRole::Overhead,
                    );
                    self.wires.push((chunk_addr, lmw, Port::Left));
                    for k in 0..span {
                        let s = self.placer.place_near(&[self.coord_of(lmw)], home)?;
                        let mv = self.emit(s, Opcode::Mov, None, OpRole::Overhead);
                        // LMW word k -> Mov left port, in target order.
                        let tgt = Target::port(self.insts[mv].slot, Port::Left);
                        self.insts[lmw].targets.push(tgt);
                        word_prod.insert((w + k) as u16, mv);
                    }
                    w += span;
                }
            } else {
                // Baseline: one L1 load per used word.
                for w in 0..in_words {
                    if word_uses[w as usize] == 0 {
                        continue;
                    }
                    let s = self.placer.place_mem(home)?;
                    let ld = self.emit(
                        s,
                        Opcode::Load(MemSpace::L1),
                        Some(Value::from_u64(w)),
                        OpRole::Overhead,
                    );
                    self.wires.push((in_addr, ld, Port::Left));
                    word_prod.insert(w as u16, ld);
                }
            }
        }

        // --- body (dead nodes skipped per the liveness pass above) -------
        let mut prods: Vec<Option<Prod>> = vec![None; ir.nodes().len()];
        let get = |prods: &Vec<Option<Prod>>, r: dlp_kernel_ir::IrRef| -> Prod {
            prods[r.index()].expect("topological order: producer lowered first")
        };

        for (i, node) in ir.nodes().iter().enumerate() {
            if !live[i] {
                continue;
            }
            let role = node.role;
            let prod = match node.op {
                IrOp::RecordIn(w) => Prod::Inst(*word_prod.get(&w).ok_or_else(|| {
                    DlpError::MalformedProgram {
                        detail: format!("kernel {}: input word {w} unused yet referenced", ir.name()),
                    }
                })?),
                IrOp::Const(c) => Prod::Reg(CONST_REG_BASE + c),
                IrOp::Imm(v) => {
                    if uses[i] == 1 {
                        Prod::ImmFold(v)
                    } else {
                        let s = self.placer.place_near(&[], home)?;
                        Prod::Inst(self.emit(s, Opcode::MovI, Some(v), OpRole::Overhead))
                    }
                }
                IrOp::TableRead { table, index } => {
                    let idx = get(&prods, index);
                    let off = self.table_offsets[table as usize];
                    if self.cfg.l0_data_store {
                        let near = self.prod_coords(&[idx]);
                        let s = self.placer.place_near(&near, home)?;
                        let lut = self.emit(s, Opcode::Lut, Some(Value::from_u64(off)), role);
                        self.wire(idx, lut, Port::Left, home)?;
                        Prod::Inst(lut)
                    } else {
                        let s = self.placer.place_mem(home)?;
                        let ld = self.emit(
                            s,
                            Opcode::Load(MemSpace::L1),
                            Some(Value::from_u64(self.layout.table_base + off)),
                            role,
                        );
                        self.wire(idx, ld, Port::Left, home)?;
                        Prod::Inst(ld)
                    }
                }
                IrOp::IrregularLoad { addr } => {
                    let a = get(&prods, addr);
                    let s = self.placer.place_mem(home)?;
                    let ld = self.emit(s, Opcode::Load(MemSpace::L1), None, role);
                    self.wire(a, ld, Port::Left, home)?;
                    Prod::Inst(ld)
                }
                IrOp::Un { op, a } => {
                    let pa = get(&prods, a);
                    let near = self.prod_coords(&[pa]);
                    let s = self.placer.place_near(&near, home)?;
                    let inst = self.emit(s, op, None, role);
                    self.wire(pa, inst, Port::Left, home)?;
                    Prod::Inst(inst)
                }
                IrOp::Bin { op, a, b } => {
                    let pa = get(&prods, a);
                    let pb = get(&prods, b);
                    let near = self.prod_coords(&[pa, pb]);
                    let s = self.placer.place_near(&near, home)?;
                    let imm = match pb {
                        Prod::ImmFold(v) => Some(v),
                        _ => None,
                    };
                    let inst = self.emit(s, op, imm, role);
                    self.wire(pa, inst, Port::Left, home)?;
                    if imm.is_none() {
                        self.wire(pb, inst, Port::Right, home)?;
                    }
                    Prod::Inst(inst)
                }
                IrOp::Sel { p, a, b } => {
                    let pp = get(&prods, p);
                    let pa = get(&prods, a);
                    let pb = get(&prods, b);
                    let near = self.prod_coords(&[pa, pb, pp]);
                    let s = self.placer.place_near(&near, home)?;
                    let imm = match pb {
                        Prod::ImmFold(v) => Some(v),
                        _ => None,
                    };
                    let inst = self.emit(s, Opcode::Sel, imm, role);
                    self.wire(pp, inst, Port::Pred, home)?;
                    self.wire(pa, inst, Port::Left, home)?;
                    if imm.is_none() {
                        self.wire(pb, inst, Port::Right, home)?;
                    }
                    Prod::Inst(inst)
                }
            };
            prods[i] = Some(prod);
        }

        // --- outputs -----------------------------------------------------
        let space = if self.cfg.smc { MemSpace::Smc } else { MemSpace::L1 };
        if let Some(out_addr) = out_addr {
            for &(w, r) in ir.outputs() {
                let val = get(&prods, r);
                let s = self.placer.place_mem(home)?;
                let st = self.emit(
                    s,
                    Opcode::Store(space),
                    Some(Value::from_u64(u64::from(w))),
                    OpRole::Overhead,
                );
                self.wires.push((out_addr, st, Port::Left));
                self.wire(val, st, Port::Right, home)?;
            }
        }
        Ok(())
    }

    fn prod_coords(&self, prods: &[Prod]) -> Vec<dlp_common::Coord> {
        prods
            .iter()
            .filter_map(|p| match p {
                Prod::Inst(i) => Some(self.coord_of(*i)),
                _ => None,
            })
            .collect()
    }

    /// Connect a producer to a consumer port.
    fn wire(&mut self, prod: Prod, consumer: usize, port: Port, home: u8) -> Result<(), DlpError> {
        match prod {
            Prod::Inst(i) => {
                self.wires.push((i, consumer, port));
                Ok(())
            }
            Prod::Reg(r) => {
                self.reg_targets.entry(r).or_default().push((consumer, port));
                if self.cfg.operand_revitalization {
                    let set = self.insts[consumer].persistent;
                    self.insts[consumer].persistent = set.with(port);
                }
                Ok(())
            }
            Prod::ImmFold(v) => {
                // Fold failed (used on a non-right port): materialize.
                let s = self.placer.place_near(&[self.coord_of(consumer)], home)?;
                let mi = self.emit(s, Opcode::MovI, Some(v), OpRole::Overhead);
                self.wires.push((mi, consumer, port));
                Ok(())
            }
        }
    }

    fn finish(mut self) -> Result<ScheduledKernel, DlpError> {
        // Resolve wires into target lists.
        let wires = std::mem::take(&mut self.wires);
        for (prod, cons, port) in wires {
            let tgt = Target::port(self.insts[cons].slot, port);
            self.insts[prod].targets.push(tgt);
        }
        let mut reg_reads = Vec::new();
        let mut regs: Vec<u16> = self.reg_targets.keys().copied().collect();
        regs.sort_unstable();
        for reg in regs {
            let targets = self.reg_targets[&reg]
                .iter()
                .map(|&(c, p)| Target::port(self.insts[c].slot, p))
                .collect();
            reg_reads.push(RegRead { reg, targets, persistent: self.cfg.operand_revitalization });
        }

        let const_regs = self
            .ir
            .constants()
            .iter()
            .enumerate()
            .map(|(i, (_, v))| (CONST_REG_BASE + i as u16, *v))
            .collect();
        let table_image: Vec<Value> =
            self.ir.tables().iter().flat_map(|t| t.entries.iter().copied()).collect();

        Ok(ScheduledKernel {
            block: DataflowBlock::new(self.ir.name(), self.insts, reg_reads),
            unroll: self.unroll,
            const_regs,
            table_image,
            tables_in_l0: self.cfg.l0_data_store,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_kernel_ir::{ControlClass, Domain, IrBuilder};
    use trips_sim::{Machine, MechanismSet};

    /// out[0] = in[0]*c + in[1]
    fn toy_ir() -> KernelIr {
        let mut b = IrBuilder::new("toy", Domain::Multimedia, 2, 1);
        let c = b.constant("gain", Value::from_u64(3));
        let x = b.input(0);
        let y = b.input(1);
        let m = b.bin(Opcode::Mul, x, c);
        let s = b.bin(Opcode::Add, m, y);
        b.output(0, s);
        b.finish(ControlClass::Straight).unwrap()
    }

    fn layout() -> LayoutPlan {
        LayoutPlan { base_in: 0, base_out: 10_000, table_base: 20_000 }
    }

    fn grid() -> GridShape {
        GridShape::new(8, 8)
    }

    fn cfg_for(mech: MechanismSet) -> TargetConfig {
        TargetConfig {
            smc: mech.smc,
            l0_data_store: mech.l0_data_store,
            operand_revitalization: mech.operand_revitalization,
            dlp_unroll: mech.inst_revitalization,
        }
    }

    /// End-to-end: schedule the toy kernel and run it on the simulator,
    /// then compare against the IR evaluator.
    fn run_toy(mech: MechanismSet, records: u64) -> (Vec<u64>, dlp_common::SimStats) {
        let ir = toy_ir();
        let params = TimingParams::default();
        let sched = schedule_dataflow(&ir, grid(), &params, cfg_for(mech), layout(), ScheduleOptions::default())
            .unwrap();
        let mut m = Machine::new(grid(), params, mech);
        // Stage inputs: record r = (r, 2r).
        for r in 0..records {
            m.memory_mut().write(2 * r, Value::from_u64(r));
            m.memory_mut().write(2 * r + 1, Value::from_u64(2 * r));
        }
        for (reg, v) in &sched.const_regs {
            m.set_reg(*reg, *v);
        }
        if mech.smc {
            m.stage_smc(0..2 * records).unwrap();
        }
        let iters = records.div_ceil(sched.unroll as u64);
        let stats = m.run_dataflow(&sched.block, iters).unwrap();
        let out = (0..records).map(|r| m.memory().read(10_000 + r).as_u64()).collect();
        (out, stats)
    }

    #[test]
    fn toy_kernel_correct_on_all_dataflow_configs() {
        for mech in [
            MechanismSet::baseline(),
            MechanismSet::simd(),
            MechanismSet::simd_operand(),
            MechanismSet::simd_operand_l0(),
        ] {
            let (out, _) = run_toy(mech, 64);
            for r in 0..64u64 {
                assert_eq!(out[r as usize], 3 * r + 2 * r, "record {r} on {mech}");
            }
        }
    }

    #[test]
    fn simd_config_reuses_its_mapping() {
        // The structural claim at this layer: the revitalizing machine maps
        // the block once and unrolls wide, while the baseline re-fetches
        // per instance. (End-to-end speedup comparisons live in the
        // dlp-core integration tests on the real benchmark kernels — a
        // two-op toy kernel is exactly the shape the baseline's frame
        // pipelining handles well.)
        let (_, base) = run_toy(MechanismSet::baseline(), 2048);
        let (_, simd) = run_toy(MechanismSet::simd(), 2048);
        assert!(base.blocks_fetched > 10, "baseline refetches ({})", base.blocks_fetched);
        assert_eq!(simd.blocks_fetched, 1, "revitalization maps once");
        assert!(simd.revitalizations > 0);
        // Both execute the two useful ops for every (possibly padded)
        // record; padding differs with the unroll factor.
        assert!(simd.useful_ops >= 2 * 2048);
        assert!(base.useful_ops >= 2 * 2048);
    }

    #[test]
    fn unroll_respects_budget() {
        let ir = toy_ir();
        let params = TimingParams::default();
        let s_base = schedule_dataflow(
            &ir,
            grid(),
            &params,
            cfg_for(MechanismSet::baseline()),
            layout(),
            ScheduleOptions::default(),
        )
        .unwrap();
        let s_simd = schedule_dataflow(
            &ir,
            grid(),
            &params,
            cfg_for(MechanismSet::simd()),
            layout(),
            ScheduleOptions::default(),
        )
        .unwrap();
        assert!(s_simd.unroll > s_base.unroll, "DLP unroll should exceed baseline");
        assert!(s_base.block.len() <= 8 * 8 * 64);
    }

    #[test]
    fn unroll_override_is_honored() {
        let ir = toy_ir();
        let params = TimingParams::default();
        let s = schedule_dataflow(
            &ir,
            grid(),
            &params,
            cfg_for(MechanismSet::simd()),
            layout(),
            ScheduleOptions { unroll: Some(4), ..ScheduleOptions::default() },
        )
        .unwrap();
        assert_eq!(s.unroll, 4);
    }

    #[test]
    fn table_kernel_lowered_to_lut_or_l1() {
        let mut b = IrBuilder::new("tk", Domain::Network, 1, 1);
        let t = b.table("sq", (0..64).map(|i| Value::from_u64(i * i)).collect());
        let x = b.input(0);
        let v = b.table_read(t, x);
        b.output(0, v);
        let ir = b.finish(ControlClass::Straight).unwrap();
        let params = TimingParams::default();

        let with_l0 = schedule_dataflow(
            &ir,
            grid(),
            &params,
            cfg_for(MechanismSet::simd_operand_l0()),
            layout(),
            ScheduleOptions::default(),
        )
        .unwrap();
        assert!(with_l0.tables_in_l0);
        assert!(with_l0.block.insts().iter().any(|i| matches!(i.op, Opcode::Lut)));

        let without = schedule_dataflow(
            &ir,
            grid(),
            &params,
            cfg_for(MechanismSet::simd_operand()),
            layout(),
            ScheduleOptions::default(),
        )
        .unwrap();
        assert!(!without.tables_in_l0);
        assert!(!without.block.insts().iter().any(|i| matches!(i.op, Opcode::Lut)));
    }

    #[test]
    fn table_kernel_executes_correctly_both_ways() {
        let mut b = IrBuilder::new("tk", Domain::Network, 1, 1);
        let t = b.table("sq", (0..64).map(|i| Value::from_u64(i * i)).collect());
        let x = b.input(0);
        let v = b.table_read(t, x);
        b.output(0, v);
        let ir = b.finish(ControlClass::Straight).unwrap();
        let params = TimingParams::default();

        for mech in [MechanismSet::simd_operand(), MechanismSet::simd_operand_l0()] {
            let sched = schedule_dataflow(
                &ir,
                grid(),
                &params,
                cfg_for(mech),
                layout(),
                ScheduleOptions::default(),
            )
            .unwrap();
            let mut m = Machine::new(grid(), params, mech);
            let records = 32u64;
            for r in 0..records {
                m.memory_mut().write(r, Value::from_u64(r % 64));
            }
            if sched.tables_in_l0 {
                m.load_l0_table(&sched.table_image).unwrap();
            } else {
                m.memory_mut().write_words(layout().table_base, &sched.table_image);
            }
            m.stage_smc(0..records).unwrap();
            let iters = records.div_ceil(sched.unroll as u64);
            m.run_dataflow(&sched.block, iters).unwrap();
            for r in 0..records {
                let idx = r % 64;
                assert_eq!(
                    m.memory().read(10_000 + r).as_u64(),
                    idx * idx,
                    "record {r} on {mech}"
                );
            }
        }
    }
}
