//! Greedy producer-affine placement onto the ALU array.

use dlp_common::{Coord, DlpError, GridShape};
use trips_isa::Slot;

/// Tracks reservation-station occupancy and assigns slots.
///
/// Placement policy: an instruction goes to the free node nearest its
/// producers (ties broken by lower occupancy, then row-major order); memory
/// instructions prefer the columns next to the memory interface (column 0)
/// of their instance's home row. This mirrors the paper's hand-scheduling
/// goals — short producer-consumer hops, loads at the array edge.
#[derive(Debug)]
pub struct Placer {
    grid: GridShape,
    slots_per_node: usize,
    used: Vec<usize>,
}

impl Placer {
    /// Create a placer for `grid` with `slots_per_node` stations per node.
    #[must_use]
    pub fn new(grid: GridShape, slots_per_node: usize) -> Self {
        Placer { grid, slots_per_node, used: vec![0; grid.nodes()] }
    }

    /// Total placed instructions.
    #[must_use]
    pub fn placed(&self) -> usize {
        self.used.iter().sum()
    }

    /// Remaining slot capacity.
    #[must_use]
    pub fn free(&self) -> usize {
        self.slots_per_node * self.grid.nodes() - self.placed()
    }

    fn take(&mut self, node: Coord) -> Slot {
        let i = self.grid.index(node);
        let slot = Slot::new(node, self.used[i] as u16);
        self.used[i] += 1;
        slot
    }

    fn has_room(&self, node: Coord) -> bool {
        self.used[self.grid.index(node)] < self.slots_per_node
    }

    /// Place near the given producer coordinates, falling back to
    /// `home_row` and then anywhere.
    ///
    /// # Errors
    ///
    /// Returns [`DlpError::CapacityExceeded`] when the array is full.
    pub fn place_near(&mut self, producers: &[Coord], home_row: u8) -> Result<Slot, DlpError> {
        // Ring search around each producer, radius 0..=2, scoring
        // distance *and* occupancy: every resident instruction competes for
        // the node's single issue port each cycle, so packing a dependence
        // chain onto one node serializes the baseline's in-flight frames.
        // One hop costs half a cycle; one extra resident instruction costs
        // up to a cycle of issue pressure — hence the 2× occupancy weight.
        fn consider(placer: &Placer, best: &mut Option<(u32, Coord)>, c: Coord, dist: u32) {
            if !placer.has_room(c) {
                return;
            }
            let occ = placer.used[placer.grid.index(c)] as u32;
            let key = (dist + 2 * occ, c);
            match best {
                Some(b) if *b <= key => {}
                _ => *best = Some(key),
            }
        }
        let mut best: Option<(u32, Coord)> = None;
        if producers.is_empty() {
            for col in 0..self.grid.cols() {
                consider(self, &mut best, Coord::new(home_row, col), 0);
            }
        } else {
            for &p in producers {
                for radius in 0..=2u8 {
                    for c in self.ring(p, radius) {
                        let d: u32 = producers.iter().map(|&q| q.manhattan(c)).sum();
                        consider(self, &mut best, c, d);
                    }
                }
            }
        }
        if best.is_none() {
            // Global fallback: least-occupied node anywhere.
            for c in self.grid.iter() {
                consider(self, &mut best, c, 8);
            }
        }
        match best {
            Some((_, c)) => Ok(self.take(c)),
            None => Err(DlpError::CapacityExceeded {
                resource: "reservation-station slots (placement)",
                needed: self.placed() + 1,
                available: self.slots_per_node * self.grid.nodes(),
            }),
        }
    }

    /// Place a memory instruction next to the memory interface of
    /// `home_row` (columns 0..3, spilling to neighbouring rows), balancing
    /// occupancy across the interface nodes.
    ///
    /// # Errors
    ///
    /// Returns [`DlpError::CapacityExceeded`] when the array is full.
    pub fn place_mem(&mut self, home_row: u8) -> Result<Slot, DlpError> {
        let rows = self.grid.rows();
        let mut best: Option<(u32, Coord)> = None;
        for dr in 0..rows {
            for sign in [0i16, 1, -1] {
                let r = i16::from(home_row) + sign * i16::from(dr);
                if r < 0 || r >= i16::from(rows) || (dr == 0 && sign != 0) {
                    continue;
                }
                for col in 0..self.grid.cols().min(4) {
                    let c = Coord::new(r as u8, col);
                    if !self.has_room(c) {
                        continue;
                    }
                    let occ = self.used[self.grid.index(c)] as u32;
                    // Column distance to the memory port + row distance +
                    // issue-pressure weight.
                    let key = (u32::from(col) + 2 * u32::from(dr) + 2 * occ, c);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
            if dr >= 1 && best.is_some() {
                break; // home row and direct neighbours examined
            }
        }
        match best {
            Some((_, c)) => Ok(self.take(c)),
            None => self.place_near(&[], home_row),
        }
    }

    fn ring(&self, center: Coord, radius: u8) -> Vec<Coord> {
        let mut out = Vec::new();
        let rows = i16::from(self.grid.rows());
        let cols = i16::from(self.grid.cols());
        let (cr, cc) = (i16::from(center.row), i16::from(center.col));
        let rad = i16::from(radius);
        for dr in -rad..=rad {
            for dc in -rad..=rad {
                if dr.abs() + dc.abs() != rad {
                    continue;
                }
                let (r, c) = (cr + dr, cc + dc);
                if r >= 0 && r < rows && c >= 0 && c < cols {
                    out.push(Coord::new(r as u8, c as u8));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridShape {
        GridShape::new(4, 4)
    }

    #[test]
    fn first_placement_lands_on_producer() {
        let mut p = Placer::new(grid(), 4);
        let s = p.place_near(&[Coord::new(1, 1)], 0).unwrap();
        assert_eq!(s.node, Coord::new(1, 1));
        assert_eq!(s.index, 0);
    }

    #[test]
    fn repeated_placement_spreads_when_full() {
        let mut p = Placer::new(grid(), 1);
        let a = p.place_near(&[Coord::new(0, 0)], 0).unwrap();
        let b = p.place_near(&[Coord::new(0, 0)], 0).unwrap();
        assert_eq!(a.node, Coord::new(0, 0));
        assert_ne!(b.node, a.node);
        assert_eq!(a.node.manhattan(b.node), 1, "next placement is adjacent");
    }

    #[test]
    fn mem_placement_prefers_interface_columns() {
        let mut p = Placer::new(grid(), 4);
        let s = p.place_mem(2).unwrap();
        assert_eq!(s.node, Coord::new(2, 0));
    }

    #[test]
    fn capacity_is_finite() {
        let mut p = Placer::new(grid(), 1);
        for _ in 0..16 {
            p.place_near(&[], 0).unwrap();
        }
        assert!(p.place_near(&[], 0).is_err());
        assert_eq!(p.free(), 0);
    }

    #[test]
    fn no_producers_fills_home_row_first() {
        let mut p = Placer::new(grid(), 2);
        let s = p.place_near(&[], 3).unwrap();
        assert_eq!(s.node.row, 3);
    }
}
