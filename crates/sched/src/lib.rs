//! # trips-sched
//!
//! The software scheduler — the reproduction's stand-in for the paper's
//! "IMPACT compiler + our software schedulers" toolchain. It lowers a
//! machine-independent [`dlp_kernel_ir::KernelIr`] into a placed
//! [`trips_isa::DataflowBlock`] for a particular machine configuration:
//!
//! * **Lowering** picks the memory path per access class exactly as §4's
//!   mechanisms prescribe: record streams become wide `LMW` fetches from
//!   the SMC (or per-word L1 loads on the baseline), indexed constants
//!   become `Lut` reads of the L0 data store (or L1 loads when the store is
//!   absent), scalar constants become register reads (persistent under
//!   operand revitalization), and outputs become stores through the
//!   coalescing buffers.
//! * **Unrolling** replicates the kernel instance to fill the
//!   reservation-station budget — all of it under instruction
//!   revitalization, only the baseline hyperblock budget without it
//!   (§5.2's "loops cannot be sufficiently unrolled" effect).
//! * **Placement** walks the DAG in topological order and places each
//!   instruction near its producers (greedy ring search), pinning memory
//!   instructions next to the row's memory interface so an `LMW` "behaves
//!   like a vector fetch unit" (§5.3).
//!
//! The crate also carries the small MIMD-side helpers ([`replicate_mimd`])
//! used by the M / M-D configurations, where each node runs the rolled
//! kernel program from its L0 instruction store.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lower;
mod place;

pub use lower::{
    planned_unroll, schedule_dataflow, LayoutPlan, ScheduleOptions, ScheduledKernel, TargetConfig,
};
pub use place::Placer;

/// The static program verifier, re-exported so scheduler clients reach
/// it without a separate dependency edge (`trips_sched::verify`).
pub use dlp_verify as verify;

use dlp_common::GridShape;
use trips_isa::{DataflowBlock, MimdProgram, Opcode};

/// Replicate one MIMD node program across `n` nodes (SPMD launch): every
/// node runs the same rolled kernel, striding records by the register
/// conventions (`r30`/`r31`/`r29`).
#[must_use]
pub fn replicate_mimd(prog: &MimdProgram, n: usize) -> Vec<MimdProgram> {
    vec![prog.clone(); n]
}

/// Render an ASCII occupancy map of a placed block: one cell per node
/// showing how many instructions the placer assigned there, with
/// memory-interface operations (loads, stores, `lmw`, `lut`, and the
/// interface-pinned `iter` sources) counted separately (`total/mem`). A
/// quick way to see whether a schedule spread work across the array and
/// pinned loads at the memory interface (column 0) — the §5.3 "vector
/// fetch unit" placement.
///
/// # Example
///
/// ```
/// use trips_sched::{schedule_dataflow, placement_map, LayoutPlan,
///                   ScheduleOptions, TargetConfig};
/// use dlp_kernel_ir::{IrBuilder, ControlClass, Domain};
/// use dlp_common::{GridShape, TimingParams};
/// use trips_isa::Opcode;
///
/// let mut b = IrBuilder::new("t", Domain::Scientific, 2, 1);
/// let x = b.input(0);
/// let y = b.input(1);
/// let s = b.bin(Opcode::FAdd, x, y);
/// b.output(0, s);
/// let ir = b.finish(ControlClass::Straight)?;
/// let grid = GridShape::new(4, 4);
/// let sched = schedule_dataflow(
///     &ir, grid, &TimingParams::default(),
///     TargetConfig { smc: true, dlp_unroll: true, ..TargetConfig::default() },
///     LayoutPlan::default(), ScheduleOptions::default(),
/// )?;
/// let map = placement_map(&sched.block, grid);
/// assert!(map.lines().count() >= 4);
/// # Ok::<(), dlp_common::DlpError>(())
/// ```
#[must_use]
pub fn placement_map(block: &DataflowBlock, grid: GridShape) -> String {
    use std::fmt::Write as _;
    let mut total = vec![0u32; grid.nodes()];
    let mut mem = vec![0u32; grid.nodes()];
    for inst in block.insts() {
        let i = grid.index(inst.slot.node);
        total[i] += 1;
        if inst.op.is_mem() || matches!(inst.op, Opcode::Iter) {
            mem[i] += 1;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "block {} ({} insts) on {grid}:", block.name(), block.len());
    for r in 0..grid.rows() {
        for c in 0..grid.cols() {
            let i = grid.index(dlp_common::Coord::new(r, c));
            let _ = write!(out, " {:>3}/{:<3}", total[i], mem[i]);
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_isa::MimdAsm;

    #[test]
    fn replicate_clones_program() {
        let mut asm = MimdAsm::new();
        asm.halt();
        let p = asm.assemble().unwrap();
        let v = replicate_mimd(&p, 64);
        assert_eq!(v.len(), 64);
        assert!(v.iter().all(|q| q == &p));
    }

    #[test]
    fn placement_map_accounts_for_every_instruction() {
        use crate::{schedule_dataflow, LayoutPlan, ScheduleOptions, TargetConfig};
        use dlp_common::{GridShape, TimingParams};
        use dlp_kernel_ir::{ControlClass, Domain, IrBuilder};
        use trips_isa::Opcode;

        let mut b = IrBuilder::new("pm", Domain::Scientific, 2, 1);
        let x = b.input(0);
        let y = b.input(1);
        let s = b.bin(Opcode::FMul, x, y);
        b.output(0, s);
        let ir = b.finish(ControlClass::Straight).unwrap();
        let grid = GridShape::new(8, 8);
        let sched = schedule_dataflow(
            &ir,
            grid,
            &TimingParams::default(),
            TargetConfig { smc: true, dlp_unroll: true, ..TargetConfig::default() },
            LayoutPlan::default(),
            ScheduleOptions { unroll: Some(8), ..ScheduleOptions::default() },
        )
        .unwrap();
        let map = crate::placement_map(&sched.block, grid);
        // The per-node totals in the map sum to the block's length.
        let sum: u32 = map
            .lines()
            .skip(1)
            .flat_map(|l| l.split_whitespace())
            .filter_map(|cell| cell.split('/').next())
            .filter_map(|n| n.parse::<u32>().ok())
            .sum();
        assert_eq!(sum as usize, sched.block.len(), "map:\n{map}");
    }
}
