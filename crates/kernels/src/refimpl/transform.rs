//! DSP/scientific reference math: color conversion, DCT, convolution,
//! FFT butterfly, LU elimination update.

/// The RGB→YIQ conversion matrix (NTSC).
pub const YIQ: [[f32; 3]; 3] = [
    [0.299, 0.587, 0.114],
    [0.595_716, -0.274_453, -0.321_263],
    [0.211_456, -0.522_591, 0.311_135],
];

/// RGB → YIQ (matrix–vector product, row-major accumulation order).
#[must_use]
pub fn rgb_to_yiq(rgb: [f32; 3]) -> [f32; 3] {
    let mut out = [0.0f32; 3];
    for (row, o) in YIQ.iter().zip(out.iter_mut()) {
        // Left-to-right accumulation, matching the kernel DAG.
        *o = row[0] * rgb[0] + row[1] * rgb[1] + row[2] * rgb[2];
    }
    out
}

/// DCT-II coefficient `c(k, n) = s(k) · cos((2n+1)kπ/16)` for the 8-point
/// transform, with the orthonormal scale `s(0)=√(1/8)`, `s(k)=√(2/8)`.
#[must_use]
pub fn dct8_coeff(k: usize, n: usize) -> f32 {
    let s = if k == 0 { (1.0f64 / 8.0).sqrt() } else { (2.0f64 / 8.0).sqrt() };
    (s * ((2 * n + 1) as f64 * k as f64 * std::f64::consts::PI / 16.0).cos()) as f32
}

/// 1-D 8-point DCT-II with left-to-right accumulation (matches the DAG).
#[must_use]
pub fn dct8(x: &[f32; 8]) -> [f32; 8] {
    let mut out = [0.0f32; 8];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = x[0] * dct8_coeff(k, 0);
        for n in 1..8 {
            acc += x[n] * dct8_coeff(k, n);
        }
        *o = acc;
    }
    out
}

/// 2-D 8×8 DCT: rows first, then columns (separable, same order as the
/// kernel DAG). Input and output are row-major.
#[must_use]
pub fn dct8x8(block: &[f32; 64]) -> [f32; 64] {
    let mut tmp = [0.0f32; 64];
    for r in 0..8 {
        let row: [f32; 8] = core::array::from_fn(|c| block[r * 8 + c]);
        let t = dct8(&row);
        tmp[r * 8..r * 8 + 8].copy_from_slice(&t);
    }
    let mut out = [0.0f32; 64];
    for c in 0..8 {
        let col: [f32; 8] = core::array::from_fn(|r| tmp[r * 8 + c]);
        let t = dct8(&col);
        for r in 0..8 {
            out[r * 8 + c] = t[r];
        }
    }
    out
}

/// The 3×3 high-pass convolution coefficients (Laplacian sharpen).
pub const HIGHPASS: [f32; 9] = [-1.0, -1.0, -1.0, -1.0, 9.0, -1.0, -1.0, -1.0, -1.0];

/// Apply the 3×3 high-pass filter to one neighborhood (row-major,
/// tree-reduced in the same order as the kernel DAG — which is what gives
/// the kernel its Table 2 ILP of 3.4 rather than a serial chain).
#[must_use]
pub fn highpass(nbhd: &[f32; 9]) -> f32 {
    let t: [f32; 9] = core::array::from_fn(|i| nbhd[i] * HIGHPASS[i]);
    let s01 = t[0] + t[1];
    let s23 = t[2] + t[3];
    let s45 = t[4] + t[5];
    let s67 = t[6] + t[7];
    let a = s01 + s23;
    let b = s45 + s67;
    (a + b) + t[8]
}

/// One radix-2 decimation-in-time FFT butterfly:
/// `a' = a + w·b`, `b' = a − w·b` over complex f32.
#[must_use]
pub fn fft_butterfly(ar: f32, ai: f32, br: f32, bi: f32, wr: f32, wi: f32) -> [f32; 4] {
    let tr = wr * br - wi * bi;
    let ti = wr * bi + wi * br;
    [ar + tr, ai + ti, ar - tr, ai - ti]
}

/// LU elimination update `x' = x − l·u` (the inner kernel of dense LU
/// decomposition's rank-1 update).
#[must_use]
pub fn lu_update(x: f32, l: f32, u: f32) -> f32 {
    x - l * u
}

/// Run a full complex FFT (radix-2 DIT, naturally ordered output) using
/// only [`fft_butterfly`] — used by the `fft_pipeline` example and the
/// stage-generation workload code.
///
/// `re`/`im` are modified in place; length must be a power of two.
///
/// # Panics
///
/// Panics if the lengths differ or are not a power of two.
pub fn fft_inplace(re: &mut [f32], im: &mut [f32]) {
    let n = re.len();
    assert_eq!(n, im.len(), "mismatched component lengths");
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let angle = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
                let (wr, wi) = (angle.cos() as f32, angle.sin() as f32);
                let i = start + k;
                let j = i + half;
                let out = fft_butterfly(re[i], im[i], re[j], im[j], wr, wi);
                re[i] = out[0];
                im[i] = out[1];
                re[j] = out[2];
                im[j] = out[3];
            }
        }
        len *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yiq_of_white_is_luma_only() {
        let out = rgb_to_yiq([1.0, 1.0, 1.0]);
        assert!((out[0] - 1.0).abs() < 1e-5);
        assert!(out[1].abs() < 1e-5);
        assert!(out[2].abs() < 1e-5);
    }

    #[test]
    fn dct_of_constant_block_is_dc_only() {
        let block = [4.0f32; 64];
        let out = dct8x8(&block);
        assert!((out[0] - 32.0).abs() < 1e-3, "DC = 8·avg = {}", out[0]);
        for (i, &v) in out.iter().enumerate().skip(1) {
            assert!(v.abs() < 1e-3, "AC coefficient {i} = {v}");
        }
    }

    #[test]
    fn dct_is_orthonormal_ish() {
        // Parseval: energy preserved.
        let block: [f32; 64] = core::array::from_fn(|i| ((i * 7 % 13) as f32) - 6.0);
        let out = dct8x8(&block);
        let e_in: f32 = block.iter().map(|v| v * v).sum();
        let e_out: f32 = out.iter().map(|v| v * v).sum();
        assert!((e_in - e_out).abs() / e_in < 1e-4);
    }

    #[test]
    fn highpass_flat_region_keeps_center_value() {
        // Sum of coefficients is 1, so a flat region passes through.
        assert!((highpass(&[5.0; 9]) - 5.0).abs() < 1e-5);
    }

    #[test]
    fn butterfly_identity_twiddle() {
        let out = fft_butterfly(1.0, 2.0, 3.0, 4.0, 1.0, 0.0);
        assert_eq!(out, [4.0, 6.0, -2.0, -2.0]);
    }

    #[test]
    fn full_fft_of_impulse_is_flat() {
        let mut re = vec![0.0f32; 16];
        let mut im = vec![0.0f32; 16];
        re[0] = 1.0;
        fft_inplace(&mut re, &mut im);
        for k in 0..16 {
            assert!((re[k] - 1.0).abs() < 1e-5);
            assert!(im[k].abs() < 1e-5);
        }
    }

    #[test]
    fn full_fft_of_dc_is_impulse() {
        let mut re = vec![1.0f32; 8];
        let mut im = vec![0.0f32; 8];
        fft_inplace(&mut re, &mut im);
        assert!((re[0] - 8.0).abs() < 1e-4);
        for k in 1..8 {
            assert!(re[k].abs() < 1e-4 && im[k].abs() < 1e-4);
        }
    }

    #[test]
    fn lu_update_basics() {
        assert_eq!(lu_update(10.0, 2.0, 3.0), 4.0);
    }
}
