//! Independent reference implementations used as simulation oracles.
//!
//! Everything here is written from scratch against the published
//! specifications (RFC 1321 for MD5, Schneier's paper for Blowfish, FIPS-197
//! for AES) — no external crypto crates — so that agreement between a
//! simulated kernel and its reference is meaningful evidence of simulator
//! correctness rather than a shared-code tautology.

pub mod aes;
pub mod blowfish;
pub mod md5;
pub mod pi;
pub mod shade;
pub mod transform;
