//! MD5 (RFC 1321) reference implementation, from scratch.

/// Per-round left-rotation amounts.
pub const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// The sine-derived additive constants `K[i] = floor(2^32 · |sin(i+1)|)`.
#[must_use]
pub fn k_table() -> [u32; 64] {
    let mut k = [0u32; 64];
    for (i, slot) in k.iter_mut().enumerate() {
        *slot = (f64::from(i as u32 + 1).sin().abs() * 4_294_967_296.0) as u32;
    }
    k
}

/// Message-word index used at step `i`.
#[must_use]
pub fn g_index(i: usize) -> usize {
    match i / 16 {
        0 => i,
        1 => (5 * i + 1) % 16,
        2 => (3 * i + 5) % 16,
        _ => (7 * i) % 16,
    }
}

/// The standard initial state (A, B, C, D).
pub const INIT: [u32; 4] = [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476];

/// One MD5 compression: absorb a 16-word message block into `state`.
#[must_use]
pub fn transform(state: [u32; 4], m: &[u32; 16]) -> [u32; 4] {
    let k = k_table();
    let (mut a, mut b, mut c, mut d) = (state[0], state[1], state[2], state[3]);
    for i in 0..64 {
        let f = match i / 16 {
            0 => (b & c) | (!b & d),
            1 => (d & b) | (!d & c),
            2 => b ^ c ^ d,
            _ => c ^ (b | !d),
        };
        let tmp = d;
        d = c;
        c = b;
        let sum = a
            .wrapping_add(f)
            .wrapping_add(k[i])
            .wrapping_add(m[g_index(i)]);
        b = b.wrapping_add(sum.rotate_left(S[i]));
        a = tmp;
    }
    [
        state[0].wrapping_add(a),
        state[1].wrapping_add(b),
        state[2].wrapping_add(c),
        state[3].wrapping_add(d),
    ]
}

/// Full MD5 digest of a byte message (padding per RFC 1321), little-endian
/// digest bytes.
#[must_use]
pub fn digest(msg: &[u8]) -> [u8; 16] {
    let mut padded = msg.to_vec();
    let bit_len = (msg.len() as u64).wrapping_mul(8);
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&bit_len.to_le_bytes());

    let mut state = INIT;
    for chunk in padded.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (i, w) in chunk.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
        }
        state = transform(state, &m);
    }
    let mut out = [0u8; 16];
    for (i, s) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&s.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: [u8; 16]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc1321_test_vectors() {
        assert_eq!(hex(digest(b"")), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(hex(digest(b"a")), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(hex(digest(b"abc")), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(hex(digest(b"message digest")), "f96b697d7cb7938d525a2f31aaf161d0");
        assert_eq!(
            hex(digest(b"abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
    }

    #[test]
    fn k_table_matches_known_values() {
        let k = k_table();
        assert_eq!(k[0], 0xD76A_A478);
        assert_eq!(k[1], 0xE8C7_B756);
        assert_eq!(k[63], 0xEB86_D391);
    }

    #[test]
    fn g_index_covers_all_words_each_round() {
        for round in 0..4 {
            let mut seen = [false; 16];
            for i in round * 16..(round + 1) * 16 {
                seen[g_index(i)] = true;
            }
            assert!(seen.iter().all(|&s| s), "round {round} misses words");
        }
    }
}
