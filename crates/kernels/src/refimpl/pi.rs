//! Hexadecimal digits of π via the Bailey–Borwein–Plouffe formula.
//!
//! Blowfish initializes its P-array and S-boxes from the fractional hex
//! digits of π. Rather than embedding a 4 KB constant blob, we generate the
//! digits with the BBP digit-extraction formula:
//!
//! ```text
//! π = Σ_{k≥0} 16^(-k) ( 4/(8k+1) − 2/(8k+4) − 1/(8k+5) − 1/(8k+6) )
//! ```
//!
//! which yields hex digit *n+1* from a handful of modular exponentiations —
//! exact integer arithmetic, no floating-point drift for the digit counts we
//! need.
//!
//! [`pi_hex_digit`] is the reference single-digit extractor. Table
//! construction goes through [`pi_words`], which streams all digits in one
//! pass: re-running the digit extractor per digit is O(d² log d) over the
//! 8336 digits Blowfish needs and dominated the whole experiment sweep's
//! schedule-preparation phase, so the streaming path carries the per-term
//! residues between positions and amortizes one exact series evaluation
//! over `BATCH` digits.

/// Modular exponentiation `16^p mod m` (binary method).
fn pow16_mod(mut p: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut result = 1u64 % m;
    let mut base = 16u64 % m;
    while p > 0 {
        if p & 1 == 1 {
            result = result * base % m;
        }
        base = base * base % m;
        p >>= 1;
    }
    result
}

/// The fractional part of `Σ_k 16^(n-k)/(8k+j)` for the BBP series term.
fn series(j: u64, n: u64) -> f64 {
    let mut sum = 0.0f64;
    // Left sum: exact modular arithmetic.
    for k in 0..=n {
        let denom = 8 * k + j;
        sum += pow16_mod(n - k, denom) as f64 / denom as f64;
        sum -= sum.floor();
    }
    // Right tail: converges fast.
    let mut k = n + 1;
    loop {
        let term = 16f64.powi(-((k - n) as i32)) / (8 * k + j) as f64;
        if term < 1e-17 {
            break;
        }
        sum += term;
        sum -= sum.floor();
        k += 1;
    }
    sum
}

/// Hex digit `n` (0-based) of π's fractional part.
#[must_use]
pub fn pi_hex_digit(n: u64) -> u8 {
    let x = 4.0 * series(1, n) - 2.0 * series(4, n) - series(5, n) - series(6, n);
    let frac = x - x.floor();
    (frac * 16.0) as u8
}

/// Digits extracted per exact series evaluation by the streaming path.
///
/// The f64 series accumulation carries ~1e-12 absolute error over the digit
/// counts we use, so reading `BATCH` hex digits (16^-BATCH = 2^-16 spacing)
/// from one evaluation leaves nine decimal orders of headroom before a
/// digit could flip; [`tests::streamed_digits_match_reference`] checks the
/// stream against the exact extractor digit by digit.
const BATCH: u64 = 4;

/// One BBP series `Σ_k 16^(n-k)/(8k+j)` evaluated at a stream of positions
/// `n = 0, BATCH, 2·BATCH, …`.
///
/// The residues `16^(n-k) mod (8k+j)` are carried between positions — one
/// modular multiply by the cached `16^BATCH mod (8k+j)` each — instead of
/// recomputed by modular exponentiation, and the f64 accumulation loop is
/// kept identical to [`series`] so every position both paths evaluate
/// agrees bit for bit.
struct SeriesStream {
    j: u64,
    /// `(denom, residue, step)` per term `k`, where `denom = 8k+j`,
    /// `residue = 16^(n-k) mod denom` for the last evaluated position `n`,
    /// and `step = 16^BATCH mod denom`.
    terms: Vec<(u64, u64, u64)>,
    pos: Option<u64>,
}

impl SeriesStream {
    fn new(j: u64) -> Self {
        Self { j, terms: Vec::new(), pos: None }
    }

    /// Fractional part of the series at position `n`, which must advance by
    /// exactly `BATCH` between calls (starting at 0).
    fn eval(&mut self, n: u64) -> f64 {
        match self.pos {
            None => debug_assert_eq!(n, 0, "stream must start at position 0"),
            Some(p) => {
                debug_assert_eq!(n, p + BATCH, "stream must advance by BATCH");
                for (denom, residue, step) in &mut self.terms {
                    // residue, step < denom < 2^17, so the product fits u64.
                    *residue = *residue * *step % *denom;
                }
            }
        }
        for k in self.terms.len() as u64..=n {
            let denom = 8 * k + self.j;
            self.terms.push((denom, pow16_mod(n - k, denom), pow16_mod(BATCH, denom)));
        }
        self.pos = Some(n);
        let mut sum = 0.0f64;
        for &(denom, residue, _) in &self.terms {
            sum += residue as f64 / denom as f64;
            sum -= sum.floor();
        }
        // Right tail, exactly as in `series`.
        let mut k = n + 1;
        loop {
            let term = 16f64.powi(-((k - n) as i32)) / (8 * k + self.j) as f64;
            if term < 1e-17 {
                break;
            }
            sum += term;
            sum -= sum.floor();
            k += 1;
        }
        sum
    }
}

/// The first `n_digits` fractional hex digits of π, streamed.
///
/// Every `BATCH`-th digit position gets an exact series evaluation
/// (bit-identical to [`pi_hex_digit`]); the digits in between are read from
/// the next fraction bits of the same evaluation.
fn pi_hex_digits(n_digits: usize) -> Vec<u8> {
    let mut streams =
        [SeriesStream::new(1), SeriesStream::new(4), SeriesStream::new(5), SeriesStream::new(6)];
    let mut out = Vec::with_capacity(n_digits);
    let mut n = 0u64;
    while out.len() < n_digits {
        let [s1, s4, s5, s6] = &mut streams;
        let x = 4.0 * s1.eval(n) - 2.0 * s4.eval(n) - s5.eval(n) - s6.eval(n);
        let mut frac = x - x.floor();
        for _ in 0..BATCH.min((n_digits - out.len()) as u64) {
            frac *= 16.0;
            let digit = frac.floor();
            out.push(digit as u8);
            frac -= digit;
        }
        n += BATCH;
    }
    out
}

/// The first `n` fractional hex digits of π packed into 32-bit words (8
/// digits per word, most significant first) — the layout Blowfish's
/// initialization tables use.
#[must_use]
pub fn pi_words(n_words: usize) -> Vec<u32> {
    pi_hex_digits(n_words * 8)
        .chunks(8)
        .map(|c| c.iter().fold(0u32, |w, &d| (w << 4) | u32::from(d)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_digits_are_243f6a88() {
        // π = 3.243F6A8885A308D3... in hex.
        let digits: Vec<u8> = (0..16).map(pi_hex_digit).collect();
        assert_eq!(digits, vec![2, 4, 3, 0xF, 6, 0xA, 8, 8, 8, 5, 0xA, 3, 0, 8, 0xD, 3]);
    }

    #[test]
    fn first_word_matches_blowfish_p0() {
        // Blowfish's P[0] is the first 32 fractional bits of π.
        assert_eq!(pi_words(2), vec![0x243F_6A88, 0x85A3_08D3]);
    }

    #[test]
    fn digit_1000_is_stable() {
        // Self-consistency: computing a late digit twice gives one value in
        // range.
        let d = pi_hex_digit(1000);
        assert_eq!(d, pi_hex_digit(1000));
        assert!(d < 16);
    }

    #[test]
    fn streamed_digits_match_reference() {
        // The streaming path must agree with the exact per-digit extractor
        // across the whole range Blowfish consumes (8336 digits): check the
        // head, the error-dominated tail, and a stride through the middle.
        let total = (18 + 4 * 256) * 8;
        let digits = pi_hex_digits(total);
        assert_eq!(digits.len(), total);
        let check = |n: usize| {
            assert_eq!(
                digits[n],
                pi_hex_digit(n as u64),
                "streamed digit {n} diverged from the reference extractor"
            );
        };
        (0..64).for_each(check);
        (total - 48..total).for_each(check);
        (0..total).step_by(257).for_each(check);
    }

    #[test]
    #[ignore = "exhaustive reference comparison is O(d^2 log d); run manually"]
    fn streamed_digits_match_reference_exhaustively() {
        let total = (18 + 4 * 256) * 8;
        let digits = pi_hex_digits(total);
        for (n, &d) in digits.iter().enumerate() {
            assert_eq!(d, pi_hex_digit(n as u64), "streamed digit {n} diverged");
        }
    }
}
