//! Hexadecimal digits of π via the Bailey–Borwein–Plouffe formula.
//!
//! Blowfish initializes its P-array and S-boxes from the fractional hex
//! digits of π. Rather than embedding a 4 KB constant blob, we generate the
//! digits with the BBP digit-extraction formula:
//!
//! ```text
//! π = Σ_{k≥0} 16^(-k) ( 4/(8k+1) − 2/(8k+4) − 1/(8k+5) − 1/(8k+6) )
//! ```
//!
//! which yields hex digit *n+1* from a handful of modular exponentiations —
//! exact integer arithmetic, no floating-point drift for the digit counts we
//! need.

/// Modular exponentiation `16^p mod m` (binary method).
fn pow16_mod(mut p: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut result = 1u64 % m;
    let mut base = 16u64 % m;
    while p > 0 {
        if p & 1 == 1 {
            result = result * base % m;
        }
        base = base * base % m;
        p >>= 1;
    }
    result
}

/// The fractional part of `Σ_k 16^(n-k)/(8k+j)` for the BBP series term.
fn series(j: u64, n: u64) -> f64 {
    let mut sum = 0.0f64;
    // Left sum: exact modular arithmetic.
    for k in 0..=n {
        let denom = 8 * k + j;
        sum += pow16_mod(n - k, denom) as f64 / denom as f64;
        sum -= sum.floor();
    }
    // Right tail: converges fast.
    let mut k = n + 1;
    loop {
        let term = 16f64.powi(-((k - n) as i32)) / (8 * k + j) as f64;
        if term < 1e-17 {
            break;
        }
        sum += term;
        sum -= sum.floor();
        k += 1;
    }
    sum
}

/// Hex digit `n` (0-based) of π's fractional part.
#[must_use]
pub fn pi_hex_digit(n: u64) -> u8 {
    let x = 4.0 * series(1, n) - 2.0 * series(4, n) - series(5, n) - series(6, n);
    let frac = x - x.floor();
    (frac * 16.0) as u8
}

/// The first `n` fractional hex digits of π packed into 32-bit words (8
/// digits per word, most significant first) — the layout Blowfish's
/// initialization tables use.
#[must_use]
pub fn pi_words(n_words: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(n_words);
    for w in 0..n_words {
        let mut word = 0u32;
        for d in 0..8 {
            word = (word << 4) | u32::from(pi_hex_digit((w * 8 + d) as u64));
        }
        out.push(word);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_digits_are_243f6a88() {
        // π = 3.243F6A8885A308D3... in hex.
        let digits: Vec<u8> = (0..16).map(pi_hex_digit).collect();
        assert_eq!(digits, vec![2, 4, 3, 0xF, 6, 0xA, 8, 8, 8, 5, 0xA, 3, 0, 8, 0xD, 3]);
    }

    #[test]
    fn first_word_matches_blowfish_p0() {
        // Blowfish's P[0] is the first 32 fractional bits of π.
        assert_eq!(pi_words(2), vec![0x243F_6A88, 0x85A3_08D3]);
    }

    #[test]
    fn digit_1000_is_stable() {
        // Self-consistency: computing a late digit twice gives one value in
        // range.
        let d = pi_hex_digit(1000);
        assert_eq!(d, pi_hex_digit(1000));
        assert!(d < 16);
    }
}
