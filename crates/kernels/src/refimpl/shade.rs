//! Graphics reference math: the lighting, reflection, skinning and
//! texture-filtering computations behind the five shader kernels.
//!
//! All arithmetic is `f32` with explicitly ordered accumulation so the
//! reference matches the kernel DAGs closely (outputs are still compared
//! with tolerance, since MIMD forms may reassociate).

/// A 3-vector of f32.
pub type V3 = [f32; 3];

/// Dot product, left-to-right accumulation.
#[must_use]
pub fn dot(a: V3, b: V3) -> f32 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// Component-wise ops.
#[must_use]
pub fn add(a: V3, b: V3) -> V3 {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
}

/// `a - b`.
#[must_use]
pub fn sub(a: V3, b: V3) -> V3 {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

/// `a * s`.
#[must_use]
pub fn scale(a: V3, s: f32) -> V3 {
    [a[0] * s, a[1] * s, a[2] * s]
}

/// Component-wise product.
#[must_use]
pub fn mul(a: V3, b: V3) -> V3 {
    [a[0] * b[0], a[1] * b[1], a[2] * b[2]]
}

/// `max(x, 0)`.
#[must_use]
pub fn clamp0(x: f32) -> f32 {
    x.max(0.0)
}

/// Row-major 3×3 matrix × vector (each row dot).
#[must_use]
pub fn mat3_mul(m: &[f32; 9], v: V3) -> V3 {
    [
        m[0] * v[0] + m[1] * v[1] + m[2] * v[2],
        m[3] * v[0] + m[4] * v[1] + m[5] * v[2],
        m[6] * v[0] + m[7] * v[1] + m[8] * v[2],
    ]
}

/// Row-major 3×4 matrix × (vector, 1): affine transform.
#[must_use]
pub fn mat34_mul(m: &[f32; 12], v: V3) -> V3 {
    [
        m[0] * v[0] + m[1] * v[1] + m[2] * v[2] + m[3],
        m[4] * v[0] + m[5] * v[1] + m[6] * v[2] + m[7],
        m[8] * v[0] + m[9] * v[1] + m[10] * v[2] + m[11],
    ]
}

/// x⁸ via three squarings (the specular exponent used by the shaders).
#[must_use]
pub fn pow8(x: f32) -> f32 {
    let x2 = x * x;
    let x4 = x2 * x2;
    x4 * x4
}

/// Reflect `i` about unit normal `n`: `i − 2(n·i)n`.
#[must_use]
pub fn reflect(i: V3, n: V3) -> V3 {
    let d = dot(n, i);
    sub(i, scale(n, 2.0 * d))
}

/// Phong-style lighting: ambient + diffuse·max(N·L,0) + specular·(N·H)⁸,
/// plus emissive. All vectors assumed pre-normalized by the host.
#[must_use]
pub fn phong(
    n: V3,
    l: V3,
    h: V3,
    ambient: V3,
    diffuse: V3,
    specular: V3,
    emissive: V3,
) -> V3 {
    let ndl = clamp0(dot(n, l));
    let ndh = clamp0(dot(n, h));
    let spec = pow8(ndh);
    let mut c = add(ambient, emissive);
    c = add(c, scale(diffuse, ndl));
    add(c, scale(specular, spec))
}

/// The texel word offset of `(u, v)` in a `size × size` texture wrapping
/// out-of-range coordinates (power-of-two `size`).
#[must_use]
pub fn texel_offset(u: i32, v: i32, size: u32) -> u64 {
    let mask = size - 1;
    let ui = (u as u32) & mask;
    let vi = (v as u32) & mask;
    u64::from(vi * size + ui)
}

/// Bilinear filter of a texture stored one f32 texel per word.
///
/// `fetch` returns the texel value at a word offset (the kernels route this
/// through irregular loads). Coordinates are in texel units.
#[must_use]
pub fn bilinear(u: f32, v: f32, size: u32, fetch: &dyn Fn(u64) -> f32) -> f32 {
    let u0 = u.floor();
    let v0 = v.floor();
    let fu = u - u0;
    let fv = v - v0;
    let (iu, iv) = (u0 as i32, v0 as i32);
    let t00 = fetch(texel_offset(iu, iv, size));
    let t10 = fetch(texel_offset(iu + 1, iv, size));
    let t01 = fetch(texel_offset(iu, iv + 1, size));
    let t11 = fetch(texel_offset(iu + 1, iv + 1, size));
    let top = t00 + (t10 - t00) * fu;
    let bot = t01 + (t11 - t01) * fu;
    top + (bot - top) * fv
}

/// Face selection for a cube-map direction: returns `(face, u, v)` with
/// `u, v` in `[0, 1]`-ish texture space (major-axis projection).
#[must_use]
pub fn cubemap_face(d: V3) -> (u32, f32, f32) {
    let ax = d[0].abs();
    let ay = d[1].abs();
    let az = d[2].abs();
    if ax >= ay && ax >= az {
        let face = if d[0] >= 0.0 { 0 } else { 1 };
        (face, 0.5 + 0.5 * d[2] / ax.max(1e-6), 0.5 + 0.5 * d[1] / ax.max(1e-6))
    } else if ay >= az {
        let face = if d[1] >= 0.0 { 2 } else { 3 };
        (face, 0.5 + 0.5 * d[0] / ay.max(1e-6), 0.5 + 0.5 * d[2] / ay.max(1e-6))
    } else {
        let face = if d[2] >= 0.0 { 4 } else { 5 };
        (face, 0.5 + 0.5 * d[0] / az.max(1e-6), 0.5 + 0.5 * d[1] / az.max(1e-6))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_friends() {
        assert_eq!(dot([1.0, 2.0, 3.0], [4.0, 5.0, 6.0]), 32.0);
        assert_eq!(add([1.0, 1.0, 1.0], [2.0, 3.0, 4.0]), [3.0, 4.0, 5.0]);
        assert_eq!(scale([1.0, 2.0, 3.0], 2.0), [2.0, 4.0, 6.0]);
    }

    #[test]
    fn pow8_matches_powi() {
        for x in [0.0f32, 0.5, 0.9, 1.0] {
            assert!((pow8(x) - x.powi(8)).abs() < 1e-6);
        }
    }

    #[test]
    fn reflect_mirrors_about_normal() {
        // Incoming straight down onto an up-facing normal bounces up.
        let r = reflect([0.0, -1.0, 0.0], [0.0, 1.0, 0.0]);
        assert_eq!(r, [0.0, 1.0, 0.0]);
        // Grazing along the surface is unchanged.
        let r = reflect([1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        assert_eq!(r, [1.0, 0.0, 0.0]);
    }

    #[test]
    fn phong_dark_when_light_behind() {
        let c = phong(
            [0.0, 1.0, 0.0],
            [0.0, -1.0, 0.0],
            [0.0, -1.0, 0.0],
            [0.1, 0.1, 0.1],
            [1.0, 0.0, 0.0],
            [1.0, 1.0, 1.0],
            [0.0, 0.0, 0.0],
        );
        assert_eq!(c, [0.1, 0.1, 0.1], "only ambient survives");
    }

    #[test]
    fn texel_offset_wraps() {
        assert_eq!(texel_offset(-1, 0, 8), 7);
        assert_eq!(texel_offset(8, 8, 8), 0);
        assert_eq!(texel_offset(3, 2, 8), 19);
    }

    #[test]
    fn bilinear_interpolates_midpoint() {
        // 2x2-ish pattern in an 8x8 texture: value = x coordinate.
        let fetch = |off: u64| (off % 8) as f32;
        let v = bilinear(2.5, 3.0, 8, &fetch);
        assert!((v - 2.5).abs() < 1e-5);
    }

    #[test]
    fn cubemap_picks_major_axis() {
        assert_eq!(cubemap_face([1.0, 0.1, 0.1]).0, 0);
        assert_eq!(cubemap_face([-1.0, 0.1, 0.1]).0, 1);
        assert_eq!(cubemap_face([0.0, 2.0, 0.1]).0, 2);
        assert_eq!(cubemap_face([0.0, 0.0, -3.0]).0, 5);
    }
}
