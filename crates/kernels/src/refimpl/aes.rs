//! AES-128 (FIPS-197 "Rijndael") reference implementation, from scratch.
//!
//! The S-box is *computed* (multiplicative inverse in GF(2⁸) followed by
//! the affine transform) rather than embedded, and the encryption path is
//! the classic 32-bit T-table formulation — the same table structure the
//! paper's `rijndael` kernel indexes (4 × 256 entries = the 1024 indexed
//! constants of Table 2).

/// GF(2⁸) multiplication modulo the AES polynomial x⁸+x⁴+x³+x+1.
#[must_use]
pub fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut out = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            out ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    out
}

/// Multiplicative inverse in GF(2⁸) (0 maps to 0), by exhaustive search —
/// run once at table-construction time.
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    for b in 1..=255u8 {
        if gf_mul(a, b) == 1 {
            return b;
        }
    }
    unreachable!("every nonzero GF(2^8) element has an inverse")
}

/// The AES S-box, computed from first principles (memoized — construction
/// involves an exhaustive GF(2⁸) inverse search per entry).
#[must_use]
pub fn sbox() -> [u8; 256] {
    static SBOX: std::sync::OnceLock<[u8; 256]> = std::sync::OnceLock::new();
    *SBOX.get_or_init(|| {
        let mut s = [0u8; 256];
        for (x, slot) in s.iter_mut().enumerate() {
            let inv = gf_inv(x as u8);
            let mut y = inv;
            let mut result = inv;
            for _ in 0..4 {
                y = y.rotate_left(1);
                result ^= y;
            }
            *slot = result ^ 0x63;
        }
        s
    })
}

/// The four encryption T-tables. `t[0][x] = (2·s, s, s, 3·s)` packed as a
/// big-endian u32 `(2s)<<24 | s<<16 | s<<8 | 3s`; `t[i]` is `t[0]` rotated
/// right by `8·i` bits.
#[must_use]
pub fn t_tables() -> [[u32; 256]; 4] {
    static TT: std::sync::OnceLock<[[u32; 256]; 4]> = std::sync::OnceLock::new();
    *TT.get_or_init(|| {
        let s = sbox();
        let mut t = [[0u32; 256]; 4];
        for x in 0..256 {
            let sv = s[x];
            let t0 = (u32::from(gf_mul(sv, 2)) << 24)
                | (u32::from(sv) << 16)
                | (u32::from(sv) << 8)
                | u32::from(gf_mul(sv, 3));
            t[0][x] = t0;
            t[1][x] = t0.rotate_right(8);
            t[2][x] = t0.rotate_right(16);
            t[3][x] = t0.rotate_right(24);
        }
        t
    })
}

/// AES-128 round keys: 11 round keys of four big-endian words each.
#[must_use]
pub fn key_schedule(key: &[u8; 16]) -> [[u32; 4]; 11] {
    let s = sbox();
    let mut w = [0u32; 44];
    for i in 0..4 {
        w[i] = u32::from_be_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    let mut rcon = 1u8;
    for i in 4..44 {
        let mut temp = w[i - 1];
        if i % 4 == 0 {
            temp = temp.rotate_left(8);
            temp = (u32::from(s[(temp >> 24) as usize]) << 24)
                | (u32::from(s[((temp >> 16) & 0xFF) as usize]) << 16)
                | (u32::from(s[((temp >> 8) & 0xFF) as usize]) << 8)
                | u32::from(s[(temp & 0xFF) as usize]);
            temp ^= u32::from(rcon) << 24;
            rcon = gf_mul(rcon, 2);
        }
        w[i] = w[i - 4] ^ temp;
    }
    let mut rk = [[0u32; 4]; 11];
    for r in 0..11 {
        rk[r].copy_from_slice(&w[4 * r..4 * r + 4]);
    }
    rk
}

/// Encrypt one 16-byte block (T-table formulation).
#[must_use]
pub fn encrypt_block(rk: &[[u32; 4]; 11], block: &[u8; 16]) -> [u8; 16] {
    let t = t_tables();
    let s = sbox();
    let mut st = [0u32; 4];
    for i in 0..4 {
        st[i] = u32::from_be_bytes([
            block[4 * i],
            block[4 * i + 1],
            block[4 * i + 2],
            block[4 * i + 3],
        ]) ^ rk[0][i];
    }
    for round in 1..10 {
        let mut next = [0u32; 4];
        for (i, slot) in next.iter_mut().enumerate() {
            *slot = t[0][(st[i] >> 24) as usize]
                ^ t[1][((st[(i + 1) % 4] >> 16) & 0xFF) as usize]
                ^ t[2][((st[(i + 2) % 4] >> 8) & 0xFF) as usize]
                ^ t[3][(st[(i + 3) % 4] & 0xFF) as usize]
                ^ rk[round][i];
        }
        st = next;
    }
    // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
    let mut out = [0u8; 16];
    for i in 0..4 {
        let word = (u32::from(s[(st[i] >> 24) as usize]) << 24)
            | (u32::from(s[((st[(i + 1) % 4] >> 16) & 0xFF) as usize]) << 16)
            | (u32::from(s[((st[(i + 2) % 4] >> 8) & 0xFF) as usize]) << 8)
            | u32::from(s[(st[(i + 3) % 4] & 0xFF) as usize]);
        let word = word ^ rk[10][i];
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_known_entries() {
        let s = sbox();
        assert_eq!(s[0x00], 0x63);
        assert_eq!(s[0x01], 0x7C);
        assert_eq!(s[0x53], 0xED);
        assert_eq!(s[0xFF], 0x16);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B: key 2b7e1516..., plaintext 3243f6a8...
        let key = [
            0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF,
            0x4F, 0x3C,
        ];
        let pt = [
            0x32, 0x43, 0xF6, 0xA8, 0x88, 0x5A, 0x30, 0x8D, 0x31, 0x31, 0x98, 0xA2, 0xE0, 0x37,
            0x07, 0x34,
        ];
        let expect = [
            0x39, 0x25, 0x84, 0x1D, 0x02, 0xDC, 0x09, 0xFB, 0xDC, 0x11, 0x85, 0x97, 0x19, 0x6A,
            0x0B, 0x32,
        ];
        let rk = key_schedule(&key);
        assert_eq!(encrypt_block(&rk, &pt), expect);
    }

    #[test]
    fn fips197_appendix_c_vector() {
        // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...ff.
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let expect = [
            0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4,
            0xC5, 0x5A,
        ];
        let rk = key_schedule(&key);
        assert_eq!(encrypt_block(&rk, &pt), expect);
    }

    #[test]
    fn gf_mul_is_commutative_and_distributive() {
        for a in [1u8, 3, 0x53, 0xCA] {
            for b in [2u8, 7, 0x11, 0xFE] {
                assert_eq!(gf_mul(a, b), gf_mul(b, a));
                for c in [5u8, 0x80] {
                    assert_eq!(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c));
                }
            }
        }
    }

    #[test]
    fn t_tables_are_rotations() {
        let t = t_tables();
        for x in [0usize, 1, 0x7F, 0xFF] {
            assert_eq!(t[1][x], t[0][x].rotate_right(8));
            assert_eq!(t[3][x], t[0][x].rotate_right(24));
        }
    }
}
