//! `fragment-reflection` — fragment shader rendering a reflective surface
//! using cube maps (Table 1, real-time graphics).
//!
//! Record: reflection direction + Fresnel blend + pad = 5 words in; RGB =
//! 3 words out (Table 2: 5/3, 7 constants, 4 irregular accesses). The
//! cube-map face selection runs as a select cascade on the dataflow
//! configurations — the masking cost the paper attributes to synchronized
//! machines — and the four taps are irregular L1 accesses.

use dlp_common::{DlpError, SplitMix64, Value};
use dlp_kernel_ir::{ControlClass, Domain, IrBuilder, IrRef, KernelIr};
use trips_isa::{MemSpace, MimdProgram, Opcode};

use crate::memmap;
use crate::refimpl::shade::{bilinear, cubemap_face, V3};
use crate::util::{MimdStream, MimdTarget, R_IN_ADDR, R_OUT_ADDR};
use crate::{DlpKernel, OutputKind, Workload};

/// Cube-map face edge length (texels).
pub const FACE_SIZE: u32 = 32;
/// Words per face.
pub const FACE_WORDS: u64 = (FACE_SIZE as u64) * (FACE_SIZE as u64);

/// Scene constants (7 scalars).
pub struct Scene {
    /// Cube-map base word address.
    pub cube_base: u64,
    /// Base (surface) color.
    pub base: V3,
    /// Sky contribution floor added to the sampled value.
    pub sky_floor: f32,
    /// Texel scale: maps `[0,1]` face coordinates to the sampled texel
    /// range (leaves a 1-texel border so the four taps stay on the face).
    pub texel_scale: f32,
    /// Epsilon guarding the major-axis division.
    pub eps: f32,
}

/// The fixed benchmark scene.
#[must_use]
pub fn scene() -> Scene {
    Scene {
        cube_base: memmap::TEX_BASE,
        base: [0.25, 0.3, 0.35],
        sky_floor: 0.05,
        texel_scale: (FACE_SIZE - 2) as f32,
        eps: 1e-6,
    }
}

/// Reference shading: cube-map sample along `d`, blended by `fr`.
#[must_use]
pub fn shade_reflection(s: &Scene, d: V3, fr: f32, cube: &[f32]) -> [f32; 3] {
    let (face, u01, v01) = cubemap_face(d);
    let u = u01 * s.texel_scale;
    let v = v01 * s.texel_scale;
    let base_off = u64::from(face) * FACE_WORDS;
    let fetch = |off: u64| cube.get((base_off + off) as usize).copied().unwrap_or(0.0);
    let t = bilinear(u, v, FACE_SIZE, &fetch) + s.sky_floor;
    core::array::from_fn(|c| s.base[c] + (t - s.base[c]) * fr)
}

/// The fragment-reflection kernel.
pub struct FragmentReflection;

impl DlpKernel for FragmentReflection {
    fn name(&self) -> &'static str {
        "fragment-reflection"
    }

    fn description(&self) -> &'static str {
        "fragment shader rendering a reflective surface using cube maps"
    }

    #[allow(clippy::too_many_lines)]
    fn ir(&self) -> KernelIr {
        let s = scene();
        let mut b = IrBuilder::new("fragment-reflection", Domain::Graphics, 5, 3);
        let cbase = b.constant("cube_base", Value::from_u64(s.cube_base));
        let basec: [IrRef; 3] = core::array::from_fn(|i| {
            b.constant(format!("base{i}"), Value::from_f32(s.base[i]))
        });
        let skyf = b.constant("sky_floor", Value::from_f32(s.sky_floor));
        let tscale = b.constant("texel_scale", Value::from_f32(s.texel_scale));
        let eps = b.constant("eps", Value::from_f32(s.eps));

        let d: [IrRef; 3] = core::array::from_fn(|i| b.input(i as u16));
        let fr = b.input(3);
        let _pad = b.input(4); // pad kept live through a zero-multiply below

        let ax = b.un(Opcode::FAbs, d[0]);
        let ay = b.un(Opcode::FAbs, d[1]);
        let az = b.un(Opcode::FAbs, d[2]);
        // Case x: u = .5 + .5*dz/max(ax,eps), v = .5 + .5*dy/max(ax,eps).
        let half = b.imm(Value::from_f32(0.5));
        let zero_f = b.imm(Value::from_f32(0.0));
        let case = |b: &mut IrBuilder, a: IrRef, nu: IrRef, nv: IrRef, dax: IrRef, fpos: u32| {
            let den = b.bin(Opcode::FMax, a, eps);
            let qu = b.bin(Opcode::FDiv, nu, den);
            let qv = b.bin(Opcode::FDiv, nv, den);
            let hu = b.bin(Opcode::FMul, half, qu);
            let u = b.bin(Opcode::FAdd, half, hu);
            let hv = b.bin(Opcode::FMul, half, qv);
            let v = b.bin(Opcode::FAdd, half, hv);
            let pos = b.bin(Opcode::FTle, zero_f, dax);
            let fp = b.imm(Value::from_u64(u64::from(fpos)));
            let fneg = b.imm(Value::from_u64(u64::from(fpos) + 1));
            let face = b.sel(pos, fp, fneg);
            (u, v, face)
        };
        let (ux, vx, fx) = case(&mut b, ax, d[2], d[1], d[0], 0);
        let (uy, vy, fy) = case(&mut b, ay, d[0], d[2], d[1], 2);
        let (uz, vz, fz) = case(&mut b, az, d[0], d[1], d[2], 4);
        // Axis choice: x when ax>=ay && ax>=az, else y when ay>=az, else z.
        let t0 = b.bin(Opcode::FTle, ay, ax);
        let t1 = b.bin(Opcode::FTle, az, ax);
        let cx = b.bin(Opcode::And, t0, t1);
        let cy = b.bin(Opcode::FTle, az, ay);
        let su = {
            let yz = b.sel(cy, uy, uz);
            b.sel(cx, ux, yz)
        };
        let sv = {
            let yz = b.sel(cy, vy, vz);
            b.sel(cx, vx, yz)
        };
        let face = {
            let yz = b.sel(cy, fy, fz);
            b.sel(cx, fx, yz)
        };
        // Texel coordinates and bilinear taps on the selected face.
        let uu = b.bin(Opcode::FMul, su, tscale);
        let vv = b.bin(Opcode::FMul, sv, tscale);
        let u0 = b.un(Opcode::FFloor, uu);
        let v0 = b.un(Opcode::FFloor, vv);
        let fu = b.bin(Opcode::FSub, uu, u0);
        let fv = b.bin(Opcode::FSub, vv, v0);
        let ui = b.un_overhead(Opcode::F2I, u0);
        let vi = b.un_overhead(Opcode::F2I, v0);
        let fsz = b.imm(Value::from_u64(u64::from(FACE_SIZE)));
        let row = b.bin_overhead(Opcode::Mul, vi, fsz);
        let off = b.bin_overhead(Opcode::Add, row, ui);
        let fw = b.imm(Value::from_u64(FACE_WORDS));
        let foff = b.bin_overhead(Opcode::Mul, face, fw);
        let a0 = b.bin_overhead(Opcode::Add, off, foff);
        let a00 = b.bin_overhead(Opcode::Add, a0, cbase);
        let one = b.imm(Value::from_u64(1));
        let a10 = b.bin_overhead(Opcode::Add, a00, one);
        let szi = b.imm(Value::from_u64(u64::from(FACE_SIZE)));
        let a01 = b.bin_overhead(Opcode::Add, a00, szi);
        let szp = b.imm(Value::from_u64(u64::from(FACE_SIZE) + 1));
        let a11 = b.bin_overhead(Opcode::Add, a00, szp);
        let t00 = b.irregular_load(a00);
        let t10 = b.irregular_load(a10);
        let t01 = b.irregular_load(a01);
        let t11 = b.irregular_load(a11);
        let dd = b.bin(Opcode::FSub, t10, t00);
        let m = b.bin(Opcode::FMul, dd, fu);
        let top = b.bin(Opcode::FAdd, t00, m);
        let dd = b.bin(Opcode::FSub, t11, t01);
        let m = b.bin(Opcode::FMul, dd, fu);
        let bot = b.bin(Opcode::FAdd, t01, m);
        let dd = b.bin(Opcode::FSub, bot, top);
        let m = b.bin(Opcode::FMul, dd, fv);
        let t_raw = b.bin(Opcode::FAdd, top, m);
        let t = b.bin(Opcode::FAdd, t_raw, skyf);
        // Keep the pad word live without affecting results.
        let padz = b.bin(Opcode::FMul, _pad, zero_f);
        let t = b.bin(Opcode::FAdd, t, padz);
        // color = base + (t - base)*fr
        for c in 0..3 {
            let dd = b.bin(Opcode::FSub, t, basec[c]);
            let m = b.bin(Opcode::FMul, dd, fr);
            let out = b.bin(Opcode::FAdd, basec[c], m);
            b.output(c as u16, out);
        }
        b.finish(ControlClass::Straight).expect("fragment-reflection IR is well-formed")
    }

    #[allow(clippy::too_many_lines)]
    fn mimd_program(&self, _target: MimdTarget) -> Result<MimdProgram, DlpError> {
        let s = scene();
        // MIMD uses *real branches* for the face selection — the fine-grain
        // data-dependent control the local-PC mechanism exists for.
        MimdStream::build(
            5,
            3,
            |_| {},
            |asm| {
                // r1..r3 = d, r4 = fr.
                for i in 0..4u8 {
                    asm.ld(MemSpace::Smc, 1 + i, R_IN_ADDR, i64::from(i));
                }
                asm.alu(Opcode::FAbs, 5, 1, 0); // ax
                asm.alu(Opcode::FAbs, 6, 2, 0); // ay
                asm.alu(Opcode::FAbs, 7, 3, 0); // az
                // Pick the axis with branches; set r8=den-axis, r9=nu,
                // r10=nv, r11=face-base, r12=sign source.
                asm.alu(Opcode::FTle, 12, 6, 5);
                asm.bez(12, "not_x");
                asm.alu(Opcode::FTle, 12, 7, 5);
                asm.bez(12, "not_x");
                asm.alu(Opcode::Mov, 8, 5, 0);
                asm.alu(Opcode::Mov, 9, 3, 0);
                asm.alu(Opcode::Mov, 10, 2, 0);
                asm.li(11, 0);
                asm.alu(Opcode::Mov, 12, 1, 0);
                asm.jmp("axis_done");
                asm.label("not_x");
                asm.alu(Opcode::FTle, 12, 7, 6);
                asm.bez(12, "use_z");
                asm.alu(Opcode::Mov, 8, 6, 0);
                asm.alu(Opcode::Mov, 9, 1, 0);
                asm.alu(Opcode::Mov, 10, 3, 0);
                asm.li(11, 2);
                asm.alu(Opcode::Mov, 12, 2, 0);
                asm.jmp("axis_done");
                asm.label("use_z");
                asm.alu(Opcode::Mov, 8, 7, 0);
                asm.alu(Opcode::Mov, 9, 1, 0);
                asm.alu(Opcode::Mov, 10, 2, 0);
                asm.li(11, 4);
                asm.alu(Opcode::Mov, 12, 3, 0);
                asm.label("axis_done");
                // face += (d_axis < 0)
                asm.lif(13, 0.0);
                asm.alu(Opcode::FTlt, 12, 12, 13);
                asm.alu(Opcode::Add, 11, 11, 12);
                // u = .5 + .5*nu/max(den,eps); v likewise.
                asm.lif(13, s.eps);
                asm.alu(Opcode::FMax, 8, 8, 13);
                asm.alu(Opcode::FDiv, 9, 9, 8);
                asm.alu(Opcode::FDiv, 10, 10, 8);
                asm.lif(13, 0.5);
                asm.alu(Opcode::FMul, 9, 9, 13);
                asm.alu(Opcode::FAdd, 9, 9, 13);
                asm.alu(Opcode::FMul, 10, 10, 13);
                asm.alu(Opcode::FAdd, 10, 10, 13);
                // Texel coords, bilinear taps through L1.
                asm.lif(13, s.texel_scale);
                asm.alu(Opcode::FMul, 9, 9, 13);
                asm.alu(Opcode::FMul, 10, 10, 13);
                asm.alu(Opcode::FFloor, 5, 9, 0);
                asm.alu(Opcode::FSub, 6, 9, 5); // fu
                asm.alu(Opcode::F2I, 5, 5, 0); // ui
                asm.alu(Opcode::FFloor, 7, 10, 0);
                asm.alu(Opcode::FSub, 13, 10, 7); // fv (r13)
                asm.alu(Opcode::F2I, 7, 7, 0); // vi
                asm.alui(Opcode::Mul, 7, 7, i64::from(FACE_SIZE));
                asm.alu(Opcode::Add, 7, 7, 5);
                asm.alui(Opcode::Mul, 11, 11, FACE_WORDS as i64);
                asm.alu(Opcode::Add, 7, 7, 11);
                asm.alui(Opcode::Add, 7, 7, s.cube_base as i64);
                asm.ld(MemSpace::L1, 1, 7, 0); // t00 (d dead now)
                asm.ld(MemSpace::L1, 2, 7, 1); // t10
                asm.ld(MemSpace::L1, 3, 7, i64::from(FACE_SIZE)); // t01
                asm.ld(MemSpace::L1, 5, 7, i64::from(FACE_SIZE) + 1); // t11
                asm.alu(Opcode::FSub, 2, 2, 1);
                asm.alu(Opcode::FMul, 2, 2, 6);
                asm.alu(Opcode::FAdd, 1, 1, 2); // top
                asm.alu(Opcode::FSub, 5, 5, 3);
                asm.alu(Opcode::FMul, 5, 5, 6);
                asm.alu(Opcode::FAdd, 3, 3, 5); // bot
                asm.alu(Opcode::FSub, 3, 3, 1);
                asm.alu(Opcode::FMul, 3, 3, 13);
                asm.alu(Opcode::FAdd, 1, 1, 3); // t
                asm.lif(2, s.sky_floor);
                asm.alu(Opcode::FAdd, 1, 1, 2);
                for c in 0..3usize {
                    asm.lif(2, s.base[c]);
                    asm.alu(Opcode::FSub, 3, 1, 2);
                    asm.alu(Opcode::FMul, 3, 3, 4);
                    asm.alu(Opcode::FAdd, 3, 2, 3);
                    asm.st(MemSpace::Smc, R_OUT_ADDR, c as i64, 3);
                }
            },
        )
    }

    fn workload(&self, records: usize, seed: u64) -> Workload {
        let s = scene();
        let mut rng = SplitMix64::new(seed ^ 0xF4EF);
        let cube: Vec<f32> =
            (0..(6 * FACE_WORDS) as usize).map(|_| rng.f32_in(0.0, 1.0)).collect();
        let mut input_words = Vec::with_capacity(records * 5);
        let mut expected = Vec::with_capacity(records * 3);
        for _ in 0..records {
            let mut d: V3 = core::array::from_fn(|_| rng.f32_in(-1.0, 1.0));
            // Avoid degenerate all-tiny directions.
            if d.iter().all(|c| c.abs() < 0.05) {
                d[0] = 0.5;
            }
            let fr = rng.f32_in(0.0, 1.0);
            for x in d {
                input_words.push(Value::from_f32(x));
            }
            input_words.push(Value::from_f32(fr));
            input_words.push(Value::from_f32(0.0)); // pad
            for x in shade_reflection(&s, d, fr, &cube) {
                expected.push(Value::from_f32(x));
            }
        }
        let tex_words = cube.iter().map(|&t| Value::from_f32(t)).collect();
        Workload { records, input_words, tex_words, expected }
    }

    fn output_kind(&self) -> OutputKind {
        OutputKind::F32Approx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_are_close_to_paper_row() {
        let a = FragmentReflection.ir().attributes();
        // Paper: 98 insts, ILP 6.2, record 5/3, 7 constants, 4 irregular.
        assert!(a.insts >= 70 && a.insts <= 110, "got {}", a.insts);
        assert_eq!(a.record_read, 5);
        assert_eq!(a.record_write, 3);
        assert_eq!(a.constants, 7);
        assert_eq!(a.irregular, 4);
    }

    #[test]
    fn ir_matches_reference() {
        let k = FragmentReflection;
        let ir = k.ir();
        let w = k.workload(24, 19);
        let tex = w.tex_words.clone();
        let fetch = move |addr: u64| {
            let off = addr.wrapping_sub(memmap::TEX_BASE) as usize;
            tex.get(off).copied().unwrap_or(Value::ZERO)
        };
        for r in 0..24 {
            let rec = &w.input_words[r * 5..r * 5 + 5];
            let got = ir.eval_record(rec, &fetch);
            for c in 0..3 {
                let g = got[c].as_f32();
                let e = w.expected[r * 3 + c].as_f32();
                assert!((g - e).abs() <= 1e-3 * e.abs().max(1.0), "rec {r} out {c}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn mimd_program_fits_l0_store() {
        let p = FragmentReflection.mimd_program(MimdTarget::with_l0()).unwrap();
        assert!(p.len() <= 256, "program has {} insts", p.len());
    }
}
