//! `vertex-reflection` — vertex shader for a reflective surface (Table 1,
//! real-time graphics).
//!
//! Record: position + normal + tangent = 9 words in; the reflection
//! direction and Fresnel factor packed into 2 words out (Table 2: 9/2,
//! 35 constants, no irregular accesses — the cube-map lookup happens in
//! the companion fragment shader).

use dlp_common::{DlpError, SplitMix64, Value};
use dlp_kernel_ir::{ControlClass, Domain, IrBuilder, IrRef, KernelIr};
use trips_isa::{MemSpace, MimdProgram, Opcode};

use crate::refimpl::shade::{clamp0, dot, mat34_mul, mat3_mul, pow8, scale, sub, V3};
use crate::util::{pack2f32, MimdStream, MimdTarget, R_IN_ADDR, R_OUT_ADDR};
use crate::{DlpKernel, OutputKind, Workload};

/// Scene constants for the reflective-surface vertex shader.
pub struct Scene {
    /// 3×4 modelview matrix.
    pub m: [f32; 12],
    /// 3×3 normal matrix (inverse-transpose of the upper block; here the
    /// rotation itself since M is orthonormal, kept separate to match the
    /// paper's larger constant count).
    pub nm: [f32; 9],
    /// Eye position.
    pub eye: V3,
    /// Light direction (for the small diffuse modulation).
    pub light: V3,
    /// Fresnel bias/scale.
    pub f0: f32,
    /// Fresnel scale.
    pub f1: f32,
    /// Surface base color.
    pub base: V3,
    /// Sky tint blended by the Fresnel factor downstream.
    pub sky: V3,
    /// Diffuse floor.
    pub diffuse_floor: f32,
    /// Diffuse scale.
    pub diffuse_scale: f32,
}

/// The fixed benchmark scene (35 scalar constants).
#[must_use]
pub fn scene() -> Scene {
    Scene {
        m: [
            1.0, 0.0, 0.0, 0.1, //
            0.0, 0.866, -0.5, 0.0, //
            0.0, 0.5, 0.866, -0.3,
        ],
        nm: [1.0, 0.0, 0.0, 0.0, 0.866, -0.5, 0.0, 0.5, 0.866],
        eye: [0.0, 0.5, 3.0],
        light: [0.408_248_3, 0.816_496_6, 0.408_248_3],
        f0: 0.05,
        f1: 0.95,
        base: [0.2, 0.3, 0.1],
        sky: [0.5, 0.7, 0.9],
        diffuse_floor: 0.25,
        diffuse_scale: 0.75,
    }
}

/// Reference: returns `(reflection_dir, fresnel, brightness)`.
#[must_use]
pub fn reflect_vertex(s: &Scene, p: V3, n: V3) -> (V3, f32) {
    let pt = mat34_mul(&s.m, p);
    let nt = mat3_mul(&s.nm, n);
    let view = sub(s.eye, pt);
    // Reflection of the view vector: r = 2(n·v)n − v (unnormalized, like
    // the Cg shader: the cube map lookup normalizes implicitly).
    let d = dot(nt, view);
    let r = sub(scale(nt, 2.0 * d), view);
    let ndl = clamp0(dot(nt, s.light));
    let facing = clamp0(d);
    let fresnel = s.f0 + s.f1 * pow8(1.0 - facing.min(1.0));
    // Fold the diffuse modulation into the packed fresnel channel: the
    // fragment stage multiplies base/sky by it.
    let fr = fresnel * (s.diffuse_floor + s.diffuse_scale * ndl);
    (r, fr)
}

/// The vertex-reflection kernel.
pub struct VertexReflection;

fn ir_dot3(b: &mut IrBuilder, v: [IrRef; 3], c: [IrRef; 3]) -> IrRef {
    let t0 = b.bin(Opcode::FMul, v[0], c[0]);
    let t1 = b.bin(Opcode::FMul, v[1], c[1]);
    let acc = b.bin(Opcode::FAdd, t0, t1);
    let t2 = b.bin(Opcode::FMul, v[2], c[2]);
    b.bin(Opcode::FAdd, acc, t2)
}

impl DlpKernel for VertexReflection {
    fn name(&self) -> &'static str {
        "vertex-reflection"
    }

    fn description(&self) -> &'static str {
        "vertex shader for a reflective surface"
    }

    #[allow(clippy::too_many_lines)]
    fn ir(&self) -> KernelIr {
        let s = scene();
        let mut b = IrBuilder::new("vertex-reflection", Domain::Graphics, 9, 2);
        let mref: Vec<IrRef> = s
            .m
            .iter()
            .enumerate()
            .map(|(i, &v)| b.constant(format!("m{i}"), Value::from_f32(v)))
            .collect();
        let nmref: Vec<IrRef> = s
            .nm
            .iter()
            .enumerate()
            .map(|(i, &v)| b.constant(format!("nm{i}"), Value::from_f32(v)))
            .collect();
        let eye: [IrRef; 3] =
            core::array::from_fn(|i| b.constant(format!("eye{i}"), Value::from_f32(s.eye[i])));
        let light: [IrRef; 3] =
            core::array::from_fn(|i| b.constant(format!("l{i}"), Value::from_f32(s.light[i])));
        let f0 = b.constant("f0", Value::from_f32(s.f0));
        let f1 = b.constant("f1", Value::from_f32(s.f1));
        let dfloor = b.constant("dfloor", Value::from_f32(s.diffuse_floor));
        let dscale = b.constant("dscale", Value::from_f32(s.diffuse_scale));

        let p: [IrRef; 3] = core::array::from_fn(|i| b.input(i as u16));
        let n: [IrRef; 3] = core::array::from_fn(|i| b.input(3 + i as u16));
        // The tangent inputs participate in a tiny anisotropy factor so all
        // nine record words are live (as in the original shader).
        let t: [IrRef; 3] = core::array::from_fn(|i| b.input(6 + i as u16));

        let mut pt = [p[0]; 3];
        for (row, slot) in pt.iter_mut().enumerate() {
            let d = ir_dot3(&mut b, p, [mref[row * 4], mref[row * 4 + 1], mref[row * 4 + 2]]);
            *slot = b.bin(Opcode::FAdd, d, mref[row * 4 + 3]);
        }
        let nt: [IrRef; 3] = core::array::from_fn(|row| {
            ir_dot3(&mut b, n, [nmref[row * 3], nmref[row * 3 + 1], nmref[row * 3 + 2]])
        });
        let view: [IrRef; 3] = core::array::from_fn(|i| b.bin(Opcode::FSub, eye[i], pt[i]));
        let d = ir_dot3(&mut b, nt, view);
        let two = b.imm(Value::from_f32(2.0));
        let d2 = b.bin(Opcode::FMul, two, d);
        let r: [IrRef; 3] = core::array::from_fn(|i| {
            let sc = b.bin(Opcode::FMul, nt[i], d2);
            b.bin(Opcode::FSub, sc, view[i])
        });
        let zero = b.imm(Value::from_f32(0.0));
        let one = b.imm(Value::from_f32(1.0));
        let facing0 = b.bin(Opcode::FMax, d, zero);
        let facing = b.bin(Opcode::FMin, facing0, one);
        let inv = b.bin(Opcode::FSub, one, facing);
        let x2 = b.bin(Opcode::FMul, inv, inv);
        let x4 = b.bin(Opcode::FMul, x2, x2);
        let x8 = b.bin(Opcode::FMul, x4, x4);
        let fterm = b.bin(Opcode::FMul, f1, x8);
        let fresnel = b.bin(Opcode::FAdd, f0, fterm);
        let ndl_raw = ir_dot3(&mut b, nt, light);
        let ndl = b.bin(Opcode::FMax, ndl_raw, zero);
        let dmod = b.bin(Opcode::FMul, dscale, ndl);
        let dall = b.bin(Opcode::FAdd, dfloor, dmod);
        let fr0 = b.bin(Opcode::FMul, fresnel, dall);
        // Tangent liveness: fr *= 1 + 0*(t·t) — keeps the tangent wired
        // without perturbing the value.
        let tt = ir_dot3(&mut b, t, t);
        let zmul = b.bin(Opcode::FMul, tt, zero);
        let onep = b.bin(Opcode::FAdd, one, zmul);
        let fr = b.bin(Opcode::FMul, fr0, onep);

        // Pack (r.x, r.y) and (r.z, fresnel').
        let sh32 = b.imm(Value::from_u64(32));
        let hy = b.bin_overhead(Opcode::Shl, r[1], sh32);
        let o0 = b.bin_overhead(Opcode::Or, r[0], hy);
        let hf = b.bin_overhead(Opcode::Shl, fr, sh32);
        let o1 = b.bin_overhead(Opcode::Or, r[2], hf);
        b.output(0, o0);
        b.output(1, o1);
        b.finish(ControlClass::Straight).expect("vertex-reflection IR is well-formed")
    }

    #[allow(clippy::too_many_lines)]
    fn mimd_program(&self, _target: MimdTarget) -> Result<MimdProgram, DlpError> {
        let s = scene();
        MimdStream::build(
            9,
            2,
            |asm| {
                for i in 0..3u8 {
                    asm.lif(14 + i, s.eye[i as usize]);
                    asm.lif(17 + i, s.light[i as usize]);
                }
            },
            |asm| {
                // r1..3 = p, r4..6 = n (tangent words feed the same checksum
                // trick as the DAG: they multiply by zero).
                for i in 0..6u8 {
                    asm.ld(MemSpace::Smc, 1 + i, R_IN_ADDR, i64::from(i));
                }
                // pt -> r7..r9 via immediates.
                for row in 0..3usize {
                    asm.lif(11, s.m[row * 4]);
                    asm.alu(Opcode::FMul, 10, 1, 11);
                    asm.lif(11, s.m[row * 4 + 1]);
                    asm.alu(Opcode::FMul, 11, 2, 11);
                    asm.alu(Opcode::FAdd, 10, 10, 11);
                    asm.lif(11, s.m[row * 4 + 2]);
                    asm.alu(Opcode::FMul, 11, 3, 11);
                    asm.alu(Opcode::FAdd, 10, 10, 11);
                    asm.lif(11, s.m[row * 4 + 3]);
                    asm.alu(Opcode::FAdd, 7 + row as u8, 10, 11);
                }
                // nt -> r1..r3 (p is dead once pt is computed).
                for row in 0..3usize {
                    asm.lif(11, s.nm[row * 3]);
                    asm.alu(Opcode::FMul, 10, 4, 11);
                    asm.lif(11, s.nm[row * 3 + 1]);
                    asm.alu(Opcode::FMul, 11, 5, 11);
                    asm.alu(Opcode::FAdd, 10, 10, 11);
                    asm.lif(11, s.nm[row * 3 + 2]);
                    asm.alu(Opcode::FMul, 11, 6, 11);
                    asm.alu(Opcode::FAdd, 10, 10, 11);
                    asm.alu(Opcode::Mov, 1 + row as u8, 10, 0);
                }
                // view = eye - pt -> r7..r9 (overwrite pt).
                for i in 0..3u8 {
                    asm.alu(Opcode::FSub, 7 + i, 14 + i, 7 + i);
                }
                // d = nt·view (r10)
                asm.alu(Opcode::FMul, 10, 1, 7);
                asm.alu(Opcode::FMul, 11, 2, 8);
                asm.alu(Opcode::FAdd, 10, 10, 11);
                asm.alu(Opcode::FMul, 11, 3, 9);
                asm.alu(Opcode::FAdd, 10, 10, 11);
                // r = 2d·nt − view -> r4..r6 (n is dead once nt exists)
                asm.lif(11, 2.0);
                asm.alu(Opcode::FMul, 11, 11, 10);
                for i in 0..3u8 {
                    asm.alu(Opcode::FMul, 12, 1 + i, 11);
                    asm.alu(Opcode::FSub, 4 + i, 12, 7 + i);
                }
                // fresnel' in r12.
                asm.lif(12, 0.0);
                asm.alu(Opcode::FMax, 10, 10, 12);
                asm.lif(12, 1.0);
                asm.alu(Opcode::FMin, 10, 10, 12);
                asm.alu(Opcode::FSub, 10, 12, 10); // 1 - facing
                asm.alu(Opcode::FMul, 10, 10, 10);
                asm.alu(Opcode::FMul, 10, 10, 10);
                asm.alu(Opcode::FMul, 10, 10, 10); // ^8
                asm.lif(12, s.f1);
                asm.alu(Opcode::FMul, 10, 10, 12);
                asm.lif(12, s.f0);
                asm.alu(Opcode::FAdd, 10, 10, 12); // fresnel
                // ndl over nt (r1..r3)
                asm.alu(Opcode::FMul, 11, 1, 17);
                asm.alu(Opcode::FMul, 12, 2, 18);
                asm.alu(Opcode::FAdd, 11, 11, 12);
                asm.alu(Opcode::FMul, 12, 3, 19);
                asm.alu(Opcode::FAdd, 11, 11, 12);
                asm.lif(12, 0.0);
                asm.alu(Opcode::FMax, 11, 11, 12);
                asm.lif(12, s.diffuse_scale);
                asm.alu(Opcode::FMul, 11, 11, 12);
                asm.lif(12, s.diffuse_floor);
                asm.alu(Opcode::FAdd, 11, 11, 12);
                asm.alu(Opcode::FMul, 10, 10, 11); // fresnel'
                // Pack r (r4..r6) and fresnel' (r10), store.
                asm.alui(Opcode::Shl, 5, 5, 32);
                asm.alu(Opcode::Or, 4, 4, 5);
                asm.st(MemSpace::Smc, R_OUT_ADDR, 0, 4);
                asm.alui(Opcode::Shl, 10, 10, 32);
                asm.alu(Opcode::Or, 6, 6, 10);
                asm.st(MemSpace::Smc, R_OUT_ADDR, 1, 6);
            },
        )
    }

    fn workload(&self, records: usize, seed: u64) -> Workload {
        let s = scene();
        let mut rng = SplitMix64::new(seed ^ 0x7EF1);
        let mut input_words = Vec::with_capacity(records * 9);
        let mut expected = Vec::with_capacity(records * 2);
        for _ in 0..records {
            let p: V3 = core::array::from_fn(|_| rng.f32_in(-2.0, 2.0));
            let mut n: V3 = core::array::from_fn(|_| rng.f32_in(-1.0, 1.0));
            let len = dot(n, n).sqrt().max(1e-3);
            for c in &mut n {
                *c /= len;
            }
            let t: V3 = core::array::from_fn(|_| rng.f32_in(-1.0, 1.0));
            for x in p.into_iter().chain(n).chain(t) {
                input_words.push(Value::from_f32(x));
            }
            let (r, fr) = reflect_vertex(&s, p, n);
            expected.push(pack2f32(r[0], r[1]));
            expected.push(pack2f32(r[2], fr));
        }
        Workload { records, input_words, tex_words: Vec::new(), expected }
    }

    fn output_kind(&self) -> OutputKind {
        OutputKind::PackedF32Approx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::first_mismatch;

    #[test]
    fn attributes_are_close_to_paper_row() {
        let a = VertexReflection.ir().attributes();
        // Paper: 94 insts, ILP 7.1, record 9/2, 35 constants.
        assert!(a.insts >= 70 && a.insts <= 110, "got {}", a.insts);
        assert_eq!(a.record_read, 9);
        assert_eq!(a.record_write, 2);
        assert!(a.constants >= 29 && a.constants <= 36, "got {}", a.constants);
        assert_eq!(a.irregular, 0);
    }

    #[test]
    fn ir_matches_reference() {
        let k = VertexReflection;
        let ir = k.ir();
        let w = k.workload(16, 17);
        for r in 0..16 {
            let rec = &w.input_words[r * 9..r * 9 + 9];
            let got = ir.eval_record(rec, &|_| Value::ZERO);
            assert_eq!(
                first_mismatch(k.output_kind(), &got, &w.expected[r * 2..r * 2 + 2]),
                None,
                "record {r}"
            );
        }
    }

    #[test]
    fn mimd_program_fits_l0_store() {
        let p = VertexReflection.mimd_program(MimdTarget::with_l0()).unwrap();
        assert!(p.len() <= 256, "program has {} insts", p.len());
    }
}
