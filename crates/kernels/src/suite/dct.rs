//! `dct` — 2-D DCT of an 8×8 image block (Table 1, multimedia).
//!
//! Record: the 64-pixel block in, 64 coefficients out. The dataflow form is
//! the fully unrolled separable transform (rows then columns) built from
//! nine distinct coefficient magnitudes with signs folded into add/subtract
//! — close to Table 2's row (1728 instructions, 10 constants, internal loop
//! bound 16; our naive unrolling gives 1920 instructions, see
//! EXPERIMENTS.md). The MIMD form keeps the 16 inner 8-point loops rolled
//! and indexes a 64-entry coefficient table — which is why `dct`'s rolled
//! form *gains* an indexed-constant table that the unrolled form does not
//! have.

use std::collections::HashMap;

use dlp_common::{DlpError, SplitMix64, Value};
use dlp_kernel_ir::{ControlClass, Domain, IrBuilder, IrRef, KernelIr};
use trips_isa::{MemSpace, MimdProgram, Opcode};

use crate::memmap;
use crate::refimpl::transform::{dct8_coeff, dct8x8};
use crate::util::{MimdStream, MimdTarget, R_IN_ADDR, R_OUT_ADDR, R_REC};
use crate::{DlpKernel, OutputKind, Workload};

/// The 8×8 2-D DCT kernel.
pub struct Dct;

/// Emit one unrolled 8-point DCT: `out[k] = Σₙ x[n]·c(k,n)` with signs as
/// add/sub and magnitudes as shared constants.
fn dct8_unrolled(
    b: &mut IrBuilder,
    consts: &mut HashMap<u32, u16>,
    xs: &[IrRef; 8],
) -> [IrRef; 8] {
    core::array::from_fn(|k| {
        let mut acc: Option<IrRef> = None;
        for (n, &x) in xs.iter().enumerate() {
            let c = dct8_coeff(k, n);
            let mag = c.abs();
            let cref = match consts.get(&mag.to_bits()) {
                Some(&idx) => b.const_ref(idx),
                None => {
                    let idx = consts.len() as u16;
                    let r = b.constant(format!("c{:x}", mag.to_bits()), Value::from_f32(mag));
                    consts.insert(mag.to_bits(), idx);
                    r
                }
            };
            let term = b.bin(Opcode::FMul, x, cref);
            acc = Some(match acc {
                None if c >= 0.0 => term,
                None => b.un(Opcode::FNeg, term),
                Some(a) if c >= 0.0 => b.bin(Opcode::FAdd, a, term),
                Some(a) => b.bin(Opcode::FSub, a, term),
            });
        }
        acc.expect("eight terms accumulated")
    })
}

impl DlpKernel for Dct {
    fn name(&self) -> &'static str {
        "dct"
    }

    fn description(&self) -> &'static str {
        "a 2D DCT of an 8x8 image block"
    }

    fn ir(&self) -> KernelIr {
        let mut b = IrBuilder::new("dct", Domain::Multimedia, 64, 64);
        let mut consts: HashMap<u32, u16> = HashMap::new();
        let inputs: Vec<IrRef> = (0..64).map(|i| b.input(i)).collect();
        // Row pass.
        let mut tmp: Vec<IrRef> = Vec::with_capacity(64);
        for r in 0..8 {
            let row: [IrRef; 8] = core::array::from_fn(|c| inputs[r * 8 + c]);
            tmp.extend(dct8_unrolled(&mut b, &mut consts, &row));
        }
        // Column pass.
        for c in 0..8 {
            let col: [IrRef; 8] = core::array::from_fn(|r| tmp[r * 8 + c]);
            let out = dct8_unrolled(&mut b, &mut consts, &col);
            for (r, &o) in out.iter().enumerate() {
                b.output((r * 8 + c) as u16, o);
            }
        }
        b.finish(ControlClass::FixedLoop { iters: 16 }).expect("dct IR is well-formed")
    }

    fn mimd_program(&self, target: MimdTarget) -> Result<MimdProgram, DlpError> {
        // Rolled separable DCT: two passes of 8 outer × 8 k. Each outer
        // iteration caches its eight source values in registers (the
        // operand-storage buffers the local-PC mechanism repurposes), then
        // the inner product is unrolled over them — one load per source
        // value instead of one per term. The row pass writes a per-record
        // scratch block; the column pass reads it back through the L1
        // (node-private scratch).
        //
        // Registers: r2=outer, r3=k, r5=addr/idx, r7=coeff, r8=acc,
        // r9=temp, r12=scratch base, x cached in r14..r21.
        MimdStream::build(
            64,
            64,
            |_| {},
            |asm| {
                // scratch = SCRATCH_BASE + rec*64
                asm.alui(Opcode::Mul, 12, R_REC, 64);
                asm.alui(Opcode::Add, 12, 12, memmap::SCRATCH_BASE as i64);
                for pass in 0..2 {
                    let (src, dst, src_o_stride, src_n_stride, dst_o_stride, dst_k_stride) =
                        if pass == 0 {
                            (R_IN_ADDR, 12u8, 8i64, 1i64, 8i64, 1i64)
                        } else {
                            (12u8, R_OUT_ADDR, 1, 8, 1, 8)
                        };
                    let outer_l = format!("p{pass}_outer");
                    let k_l = format!("p{pass}_k");
                    let k_done = format!("p{pass}_kd");
                    let o_done = format!("p{pass}_od");
                    asm.li(2, 0);
                    asm.label(outer_l.clone());
                    // Cache x[n] = src[outer*A + n*B] into r14..r21.
                    asm.alui(Opcode::Mul, 5, 2, src_o_stride);
                    asm.alu(Opcode::Add, 5, 5, src);
                    for n in 0..8u8 {
                        if pass == 0 {
                            asm.ld(MemSpace::Smc, 14 + n, 5, i64::from(n) * src_n_stride);
                        } else {
                            asm.ld(MemSpace::L1, 14 + n, 5, i64::from(n) * src_n_stride);
                        }
                    }
                    asm.li(3, 0);
                    asm.label(k_l.clone());
                    // acc = sum_n x[n] * C[k*8+n], inner product unrolled.
                    asm.lif(8, 0.0);
                    asm.alui(Opcode::Mul, 5, 3, 8);
                    for n in 0..8u8 {
                        target.table_read(asm, 7, 5, i64::from(n));
                        asm.alu(Opcode::FMul, 9, 14 + n, 7);
                        asm.alu(Opcode::FAdd, 8, 8, 9);
                    }
                    // dst[outer*C + k*D] = acc
                    asm.alui(Opcode::Mul, 5, 2, dst_o_stride);
                    asm.alui(Opcode::Mul, 9, 3, dst_k_stride);
                    asm.alu(Opcode::Add, 5, 5, 9);
                    asm.alu(Opcode::Add, 5, 5, dst);
                    if pass == 0 {
                        asm.st(MemSpace::L1, 5, 0, 8);
                    } else {
                        asm.st(MemSpace::Smc, 5, 0, 8);
                    }
                    asm.alui(Opcode::Add, 3, 3, 1);
                    asm.alui(Opcode::Tlt, 9, 3, 8);
                    asm.bez(9, k_done.clone());
                    asm.jmp(k_l.clone());
                    asm.label(k_done.clone());
                    asm.alui(Opcode::Add, 2, 2, 1);
                    asm.alui(Opcode::Tlt, 9, 2, 8);
                    asm.bez(9, o_done.clone());
                    asm.jmp(outer_l.clone());
                    asm.label(o_done.clone());
                }
            },
        )
    }

    fn mimd_table_image(&self) -> Vec<Value> {
        // Signed coefficients, row-major by (k, n).
        (0..8)
            .flat_map(|k| (0..8).map(move |n| Value::from_f32(dct8_coeff(k, n))))
            .collect()
    }

    fn workload(&self, records: usize, seed: u64) -> Workload {
        let mut rng = SplitMix64::new(seed ^ 0xDC7);
        let mut input_words = Vec::with_capacity(records * 64);
        let mut expected = Vec::with_capacity(records * 64);
        for _ in 0..records {
            let mut block = [0.0f32; 64];
            for v in &mut block {
                *v = rng.f32_in(-128.0, 128.0);
            }
            input_words.extend(block.iter().map(|&v| Value::from_f32(v)));
            expected.extend(dct8x8(&block).iter().map(|&v| Value::from_f32(v)));
        }
        Workload { records, input_words, tex_words: Vec::new(), expected }
    }

    fn output_kind(&self) -> OutputKind {
        OutputKind::F32Approx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_are_close_to_paper_row() {
        let a = Dct.ir().attributes();
        // Paper: 1728 insts (fast DCT); naive unrolling gives 1920.
        assert_eq!(a.insts, 1920);
        assert_eq!(a.record_read, 64);
        assert_eq!(a.record_write, 64);
        // Paper reports 10 constants; the orthonormal formulation has 7
        // distinct magnitudes (½·cos(jπ/16) for j=0..7, with the k=0 scale
        // √⅛ coinciding with the j=4 value).
        assert!(a.constants >= 7 && a.constants <= 10, "got {}", a.constants);
        assert_eq!(a.control, ControlClass::FixedLoop { iters: 16 });
        assert!(a.ilp > 4.0, "paper reports ILP 6, got {}", a.ilp);
    }

    #[test]
    fn ir_matches_reference() {
        let k = Dct;
        let ir = k.ir();
        let w = k.workload(2, 11);
        for r in 0..2 {
            let rec = &w.input_words[r * 64..(r + 1) * 64];
            let got = ir.eval_record(rec, &|_| Value::ZERO);
            for c in 0..64 {
                let g = got[c].as_f32();
                let e = w.expected[r * 64 + c].as_f32();
                assert!(
                    (g - e).abs() <= 1e-3 * e.abs().max(1.0),
                    "record {r} coeff {c}: {g} vs {e}"
                );
            }
        }
    }

    #[test]
    fn mimd_table_is_signed_coefficients() {
        let t = Dct.mimd_table_image();
        assert_eq!(t.len(), 64);
        assert!((t[0].as_f32() - dct8_coeff(0, 0)).abs() < 1e-7);
        // k=1 row contains negative entries.
        assert!(t[8..16].iter().any(|v| v.as_f32() < 0.0));
    }

    #[test]
    fn mimd_program_fits_l0_store() {
        let p = Dct.mimd_program(MimdTarget::with_l0()).unwrap();
        assert!(p.len() <= 256, "program has {} insts", p.len());
    }
}
