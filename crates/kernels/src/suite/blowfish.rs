//! `blowfish` — Blowfish packet encryption (Table 1, network/security).
//!
//! Record: one 64-bit cipher block per word (halves packed low/high), one
//! word in / one out — Table 2's `blowfish` row (1/1, 16-round internal
//! loop). The P-array enters as named scalar constants; the four S-boxes
//! are the indexed-constant tables whose placement (L0 store vs L1) drives
//! the S-O-D/M-D results in §5.3.

use dlp_common::{DlpError, SplitMix64, Value};
use dlp_kernel_ir::{ControlClass, Domain, IrBuilder, IrRef, KernelIr};
use trips_isa::{MemSpace, MimdProgram, Opcode};

use crate::refimpl::blowfish::Blowfish as BlowfishRef;
use crate::util::{MimdStream, MimdTarget, R_IN_ADDR, R_OUT_ADDR};
use crate::{DlpKernel, OutputKind, Workload};

/// The fixed benchmark key (the paper encrypts synthetic packet streams;
/// any key exercises the same data path).
pub const KEY: &[u8] = b"TRIPSDLP";

/// The Blowfish encryption kernel.
pub struct Blowfish;

fn cipher() -> &'static BlowfishRef {
    static CIPHER: std::sync::OnceLock<BlowfishRef> = std::sync::OnceLock::new();
    CIPHER.get_or_init(|| BlowfishRef::new(KEY))
}

fn pack(l: u32, r: u32) -> Value {
    Value::from_u64(u64::from(l) | (u64::from(r) << 32))
}

impl DlpKernel for Blowfish {
    fn name(&self) -> &'static str {
        "blowfish"
    }

    fn description(&self) -> &'static str {
        "Blowfish packet encryption (1500-byte packets)"
    }

    fn ir(&self) -> KernelIr {
        let bf = cipher();
        let mut b = IrBuilder::new("blowfish", Domain::Network, 1, 1);
        let pref: Vec<IrRef> = bf
            .p
            .iter()
            .enumerate()
            .map(|(i, &v)| b.constant(format!("p{i}"), Value::from_u32(v)))
            .collect();
        let sbox: Vec<u16> = (0..4)
            .map(|i| {
                b.table(format!("s{i}"), bf.s[i].iter().map(|&v| Value::from_u32(v)).collect())
            })
            .collect();
        let mask32 = b.imm(Value::from_u64(0xFFFF_FFFF));
        let sh32 = b.imm(Value::from_u64(32));
        let w = b.input(0);
        let mut l = b.bin_overhead(Opcode::And, w, mask32);
        let mut r = b.bin_overhead(Opcode::Shr, w, sh32);

        let byte_mask = b.imm(Value::from_u64(0xFF));
        for round in 0..16 {
            l = b.bin(Opcode::Xor, l, pref[round]);
            // F(l)
            let sh24 = b.imm(Value::from_u64(24));
            let a = b.bin(Opcode::Shr, l, sh24);
            let sh16 = b.imm(Value::from_u64(16));
            let t = b.bin(Opcode::Shr, l, sh16);
            let bb = b.bin(Opcode::And, t, byte_mask);
            let sh8 = b.imm(Value::from_u64(8));
            let t = b.bin(Opcode::Shr, l, sh8);
            let cc = b.bin(Opcode::And, t, byte_mask);
            let dd = b.bin(Opcode::And, l, byte_mask);
            let s0 = b.table_read(sbox[0], a);
            let s1 = b.table_read(sbox[1], bb);
            let s2 = b.table_read(sbox[2], cc);
            let s3 = b.table_read(sbox[3], dd);
            let t = b.bin(Opcode::Add32, s0, s1);
            let t = b.bin(Opcode::Xor, t, s2);
            let f = b.bin(Opcode::Add32, t, s3);
            r = b.bin(Opcode::Xor, r, f);
            std::mem::swap(&mut l, &mut r);
        }
        std::mem::swap(&mut l, &mut r);
        r = b.bin(Opcode::Xor, r, pref[16]);
        l = b.bin(Opcode::Xor, l, pref[17]);
        let hi = b.bin_overhead(Opcode::Shl, r, sh32);
        let out = b.bin_overhead(Opcode::Or, l, hi);
        b.output(0, out);
        b.finish(ControlClass::FixedLoop { iters: 16 }).expect("blowfish IR is well-formed")
    }

    fn mimd_program(&self, target: MimdTarget) -> Result<MimdProgram, DlpError> {
        // Table layout: S0..S3 at 0..1024, P at 1024..1042.
        // Registers: l=r1, r=r2, i=r3, idx=r4, sval=r5, acc=r6, tmp=r7.
        MimdStream::build(
            1,
            1,
            |_| {},
            |asm| {
                asm.ld(MemSpace::Smc, 7, R_IN_ADDR, 0);
                asm.alui(Opcode::And, 1, 7, 0xFFFF_FFFF);
                asm.alui(Opcode::Shr, 2, 7, 32);
                asm.li(3, 0);
                asm.label("round");
                target.table_read(asm, 7, 3, 1024); // P[i]
                asm.alu(Opcode::Xor, 1, 1, 7);
                // F(l)
                asm.alui(Opcode::Shr, 4, 1, 24);
                target.table_read(asm, 6, 4, 0); // S0[a]
                asm.alui(Opcode::Shr, 4, 1, 16);
                asm.alui(Opcode::And, 4, 4, 0xFF);
                target.table_read(asm, 5, 4, 256); // S1[b]
                asm.alu(Opcode::Add32, 6, 6, 5);
                asm.alui(Opcode::Shr, 4, 1, 8);
                asm.alui(Opcode::And, 4, 4, 0xFF);
                target.table_read(asm, 5, 4, 512); // S2[c]
                asm.alu(Opcode::Xor, 6, 6, 5);
                asm.alui(Opcode::And, 4, 1, 0xFF);
                target.table_read(asm, 5, 4, 768); // S3[d]
                asm.alu(Opcode::Add32, 6, 6, 5);
                asm.alu(Opcode::Xor, 2, 2, 6); // r ^= F
                // swap
                asm.alu(Opcode::Mov, 7, 1, 0);
                asm.alu(Opcode::Mov, 1, 2, 0);
                asm.alu(Opcode::Mov, 2, 7, 0);
                asm.alui(Opcode::Add, 3, 3, 1);
                asm.alui(Opcode::Tlt, 7, 3, 16);
                asm.bnz(7, "round");
                // undo last swap, final whitening
                asm.alu(Opcode::Mov, 7, 1, 0);
                asm.alu(Opcode::Mov, 1, 2, 0);
                asm.alu(Opcode::Mov, 2, 7, 0);
                asm.li(4, 16);
                target.table_read(asm, 7, 4, 1024);
                asm.alu(Opcode::Xor, 2, 2, 7); // r ^= P[16]
                asm.li(4, 17);
                target.table_read(asm, 7, 4, 1024);
                asm.alu(Opcode::Xor, 1, 1, 7); // l ^= P[17]
                asm.alui(Opcode::Shl, 2, 2, 32);
                asm.alu(Opcode::Or, 1, 1, 2);
                asm.st(MemSpace::Smc, R_OUT_ADDR, 0, 1);
            },
        )
    }

    fn mimd_table_image(&self) -> Vec<Value> {
        let bf = cipher();
        let mut t: Vec<Value> = bf
            .s
            .iter()
            .flat_map(|sbox| sbox.iter().map(|&v| Value::from_u32(v)))
            .collect();
        t.extend(bf.p.iter().map(|&v| Value::from_u32(v)));
        t
    }

    fn workload(&self, records: usize, seed: u64) -> Workload {
        let bf = cipher();
        let mut rng = SplitMix64::new(seed ^ 0xB70F);
        let mut input_words = Vec::with_capacity(records);
        let mut expected = Vec::with_capacity(records);
        for _ in 0..records {
            let l = rng.next_u32();
            let r = rng.next_u32();
            input_words.push(pack(l, r));
            let (el, er) = bf.encrypt_words(l, r);
            expected.push(pack(el, er));
        }
        Workload { records, input_words, tex_words: Vec::new(), expected }
    }

    fn output_kind(&self) -> OutputKind {
        OutputKind::ExactBits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_are_close_to_paper_row() {
        let a = Blowfish.ir().attributes();
        // Paper: 364 insts, record 1/1, 256 indexed constants (one S-box
        // counted), loop 16. Full Blowfish has 4 S-boxes and an 18-entry
        // P-array; see EXPERIMENTS.md.
        assert!(a.insts >= 230 && a.insts <= 400, "got {}", a.insts);
        assert_eq!(a.record_read, 1);
        assert_eq!(a.record_write, 1);
        assert_eq!(a.constants, 18);
        assert_eq!(a.indexed_constants, 1024);
        assert_eq!(a.control, ControlClass::FixedLoop { iters: 16 });
        assert!(a.ilp < 3.0, "paper reports ILP 1.98, got {}", a.ilp);
    }

    #[test]
    fn ir_is_bit_exact_against_reference() {
        let k = Blowfish;
        let ir = k.ir();
        let w = k.workload(8, 2);
        for r in 0..8 {
            let got = ir.eval_record(&w.input_words[r..=r], &|_| Value::ZERO);
            assert_eq!(got[0].bits(), w.expected[r].bits(), "record {r}");
        }
    }

    #[test]
    fn mimd_table_concatenates_sboxes_then_p() {
        let bf = cipher();
        let t = Blowfish.mimd_table_image();
        assert_eq!(t.len(), 1042);
        assert_eq!(t[0].as_u32(), bf.s[0][0]);
        assert_eq!(t[1024].as_u32(), bf.p[0]);
    }

    #[test]
    fn mimd_program_fits_l0_store() {
        let p = Blowfish.mimd_program(MimdTarget::with_l0()).unwrap();
        assert!(p.len() <= 256, "program has {} insts", p.len());
    }
}
