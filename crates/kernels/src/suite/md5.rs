//! `md5` — the MD5 compression function over packet data (Table 1,
//! network/security).
//!
//! Record: one 64-byte message block (sixteen 32-bit words packed two per
//! 64-bit word) plus the 128-bit chaining state (packed into 2 words) = 10
//! words in; the updated state = 2 words out — Table 2's `md5` row (10/2).
//! The unrolled form reads the 64 sine constants as *named scalar
//! constants* (paper: 65 constants, no indexed table); the rolled MIMD form
//! turns K, the rotation amounts and the message schedule into 192 indexed
//! entries — which is exactly why the paper finds `md5` runs best on the
//! MIMD machine *with* lookup-table support (M-D).

use dlp_common::{DlpError, SplitMix64, Value};
use dlp_kernel_ir::{ControlClass, Domain, IrBuilder, IrRef, KernelIr};
use trips_isa::{MemSpace, MimdProgram, Opcode};

use crate::refimpl::md5::{g_index, k_table, transform, INIT, S};
use crate::util::{MimdStream, MimdTarget, R_IN_ADDR, R_OUT_ADDR};
use crate::{DlpKernel, OutputKind, Workload};

/// The MD5 block-transform kernel.
pub struct Md5;

fn pack32(lo: u32, hi: u32) -> Value {
    Value::from_u64(u64::from(lo) | (u64::from(hi) << 32))
}

impl DlpKernel for Md5 {
    fn name(&self) -> &'static str {
        "md5"
    }

    fn description(&self) -> &'static str {
        "MD5 checksum (block transform, 1500-byte packets)"
    }

    #[allow(clippy::too_many_lines)]
    fn ir(&self) -> KernelIr {
        let mut b = IrBuilder::new("md5", Domain::Network, 10, 2);
        let k = k_table();
        let kref: Vec<IrRef> =
            k.iter().enumerate().map(|(i, &v)| b.constant(format!("k{i}"), Value::from_u32(v))).collect();
        let mask = b.imm(Value::from_u64(0xFFFF_FFFF));
        let sh32 = b.imm(Value::from_u64(32));

        // Unpack the sixteen message words.
        let mut m = Vec::with_capacity(16);
        for j in 0..8 {
            let w = b.input(j);
            m.push(b.bin_overhead(Opcode::And, w, mask));
            m.push(b.bin_overhead(Opcode::Shr, w, sh32));
        }
        // Unpack state (a, b) from word 8, (c, d) from word 9.
        let w8 = b.input(8);
        let w9 = b.input(9);
        let a0 = b.bin_overhead(Opcode::And, w8, mask);
        let b0 = b.bin_overhead(Opcode::Shr, w8, sh32);
        let c0 = b.bin_overhead(Opcode::And, w9, mask);
        let d0 = b.bin_overhead(Opcode::Shr, w9, sh32);

        let (mut a, mut bb, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let f = match i / 16 {
                0 => {
                    let nb = b.un(Opcode::Not, bb);
                    let t0 = b.bin(Opcode::And, bb, c);
                    let t1 = b.bin(Opcode::And, nb, d);
                    b.bin(Opcode::Or, t0, t1)
                }
                1 => {
                    let nd = b.un(Opcode::Not, d);
                    let t0 = b.bin(Opcode::And, d, bb);
                    let t1 = b.bin(Opcode::And, nd, c);
                    b.bin(Opcode::Or, t0, t1)
                }
                2 => {
                    let t0 = b.bin(Opcode::Xor, bb, c);
                    b.bin(Opcode::Xor, t0, d)
                }
                _ => {
                    let nd = b.un(Opcode::Not, d);
                    let t0 = b.bin(Opcode::Or, bb, nd);
                    b.bin(Opcode::Xor, c, t0)
                }
            };
            // Note: `Not` on 64 bits flips high garbage too, but every
            // consumer is a 32-bit op (`Add32`) or masked by And with
            // operands whose high bits are zero... `Or` of Not output keeps
            // high bits; Add32 discards them, so results stay exact.
            let s1 = b.bin(Opcode::Add32, a, f);
            let s2 = b.bin(Opcode::Add32, s1, kref[i]);
            let s3 = b.bin(Opcode::Add32, s2, m[g_index(i)]);
            let rot_amt = b.imm(Value::from_u32(S[i]));
            let rot = b.bin(Opcode::RotL32, s3, rot_amt);
            let nb = b.bin(Opcode::Add32, bb, rot);
            a = d;
            d = c;
            c = bb;
            bb = nb;
        }
        // state' = state + (a, b, c, d)
        let fa = b.bin(Opcode::Add32, a0, a);
        let fb = b.bin(Opcode::Add32, b0, bb);
        let fc = b.bin(Opcode::Add32, c0, c);
        let fd = b.bin(Opcode::Add32, d0, d);
        let hb = b.bin_overhead(Opcode::Shl, fb, sh32);
        let o0 = b.bin_overhead(Opcode::Or, fa, hb);
        let hd = b.bin_overhead(Opcode::Shl, fd, sh32);
        let o1 = b.bin_overhead(Opcode::Or, fc, hd);
        b.output(0, o0);
        b.output(1, o1);
        b.finish(ControlClass::Straight).expect("md5 IR is well-formed")
    }

    #[allow(clippy::too_many_lines)]
    fn mimd_program(&self, target: MimdTarget) -> Result<MimdProgram, DlpError> {
        // Table layout: K at 0..64, S at 64..128, G at 128..192.
        // Registers: a,b,c,d = r1..r4; saved state r12..r15; i = r5;
        // f = r10; scratch r6..r9, r11.
        MimdStream::build(
            10,
            2,
            |_| {},
            |asm| {
                asm.ld(MemSpace::Smc, 6, R_IN_ADDR, 8);
                asm.alui(Opcode::And, 1, 6, 0xFFFF_FFFF); // a
                asm.alui(Opcode::Shr, 2, 6, 32); // b
                asm.ld(MemSpace::Smc, 6, R_IN_ADDR, 9);
                asm.alui(Opcode::And, 3, 6, 0xFFFF_FFFF); // c
                asm.alui(Opcode::Shr, 4, 6, 32); // d
                for r in 0..4u8 {
                    asm.alu(Opcode::Mov, 12 + r, 1 + r, 0);
                }
                asm.li(5, 0);
                asm.label("step");
                // round = i >> 4, dispatch to the right f.
                asm.alui(Opcode::Shr, 6, 5, 4);
                asm.alui(Opcode::Teq, 7, 6, 0);
                asm.bnz(7, "f0");
                asm.alui(Opcode::Teq, 7, 6, 1);
                asm.bnz(7, "f1");
                asm.alui(Opcode::Teq, 7, 6, 2);
                asm.bnz(7, "f2");
                // f3 = c ^ (b | !d)
                asm.alu(Opcode::Not, 10, 4, 0);
                asm.alu(Opcode::Or, 10, 2, 10);
                asm.alu(Opcode::Xor, 10, 3, 10);
                asm.jmp("fdone");
                asm.label("f0"); // (b&c) | (!b&d)
                asm.alu(Opcode::And, 10, 2, 3);
                asm.alu(Opcode::Not, 7, 2, 0);
                asm.alu(Opcode::And, 7, 7, 4);
                asm.alu(Opcode::Or, 10, 10, 7);
                asm.jmp("fdone");
                asm.label("f1"); // (d&b) | (!d&c)
                asm.alu(Opcode::And, 10, 4, 2);
                asm.alu(Opcode::Not, 7, 4, 0);
                asm.alu(Opcode::And, 7, 7, 3);
                asm.alu(Opcode::Or, 10, 10, 7);
                asm.jmp("fdone");
                asm.label("f2"); // b ^ c ^ d
                asm.alu(Opcode::Xor, 10, 2, 3);
                asm.alu(Opcode::Xor, 10, 10, 4);
                asm.label("fdone");
                // m[g]: g = G[i]; word = g>>1; half-shift = (g&1)*32.
                target.table_read(asm, 6, 5, 128);
                asm.alui(Opcode::Shr, 7, 6, 1);
                asm.alu(Opcode::Add, 7, 7, R_IN_ADDR);
                asm.ld(MemSpace::Smc, 8, 7, 0);
                asm.alui(Opcode::And, 9, 6, 1);
                asm.alui(Opcode::Shl, 9, 9, 5);
                asm.alu(Opcode::Shr, 8, 8, 9);
                asm.alui(Opcode::And, 8, 8, 0xFFFF_FFFF);
                // sum = a + f + K[i] + m
                target.table_read(asm, 6, 5, 0);
                asm.alu(Opcode::Add32, 9, 1, 10);
                asm.alu(Opcode::Add32, 9, 9, 6);
                asm.alu(Opcode::Add32, 9, 9, 8);
                // rot by S[i], b' = b + rot
                target.table_read(asm, 11, 5, 64);
                asm.alu(Opcode::RotL32, 9, 9, 11);
                asm.alu(Opcode::Add32, 9, 2, 9);
                // (a, b, c, d) = (d, b', b, c)
                asm.alu(Opcode::Mov, 1, 4, 0); // a = d
                asm.alu(Opcode::Mov, 4, 3, 0); // d = c
                asm.alu(Opcode::Mov, 3, 2, 0); // c = b
                asm.alu(Opcode::Mov, 2, 9, 0); // b = b'
                asm.alui(Opcode::Add, 5, 5, 1);
                asm.alui(Opcode::Tlt, 7, 5, 64);
                asm.bnz(7, "step");
                // state' = saved + current, packed out.
                asm.alu(Opcode::Add32, 1, 12, 1);
                asm.alu(Opcode::Add32, 2, 13, 2);
                asm.alu(Opcode::Add32, 3, 14, 3);
                asm.alu(Opcode::Add32, 4, 15, 4);
                asm.alui(Opcode::Shl, 2, 2, 32);
                asm.alu(Opcode::Or, 1, 1, 2);
                asm.st(MemSpace::Smc, R_OUT_ADDR, 0, 1);
                asm.alui(Opcode::Shl, 4, 4, 32);
                asm.alu(Opcode::Or, 3, 3, 4);
                asm.st(MemSpace::Smc, R_OUT_ADDR, 1, 3);
            },
        )
    }

    fn mimd_table_image(&self) -> Vec<Value> {
        let mut t: Vec<Value> = k_table().iter().map(|&k| Value::from_u32(k)).collect();
        t.extend(S.iter().map(|&s| Value::from_u32(s)));
        t.extend((0..64).map(|i| Value::from_u64(g_index(i) as u64)));
        t
    }

    fn workload(&self, records: usize, seed: u64) -> Workload {
        let mut rng = SplitMix64::new(seed ^ 0x3D5);
        let mut input_words = Vec::with_capacity(records * 10);
        let mut expected = Vec::with_capacity(records * 2);
        for _ in 0..records {
            let m: [u32; 16] = core::array::from_fn(|_| rng.next_u32());
            for j in 0..8 {
                input_words.push(pack32(m[2 * j], m[2 * j + 1]));
            }
            input_words.push(pack32(INIT[0], INIT[1]));
            input_words.push(pack32(INIT[2], INIT[3]));
            let out = transform(INIT, &m);
            expected.push(pack32(out[0], out[1]));
            expected.push(pack32(out[2], out[3]));
        }
        Workload { records, input_words, tex_words: Vec::new(), expected }
    }

    fn output_kind(&self) -> OutputKind {
        OutputKind::ExactBits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_match_paper_row() {
        let a = Md5.ir().attributes();
        // Paper: 680 instructions, ILP 1.63, record 10/2, 65 constants.
        assert!(a.insts >= 550 && a.insts <= 700, "got {}", a.insts);
        assert_eq!(a.record_read, 10);
        assert_eq!(a.record_write, 2);
        assert_eq!(a.constants, 64);
        assert_eq!(a.indexed_constants, 0);
        assert!(a.ilp < 2.5, "md5 is a dependence chain; got ILP {}", a.ilp);
    }

    #[test]
    fn ir_is_bit_exact_against_reference() {
        let k = Md5;
        let ir = k.ir();
        let w = k.workload(4, 21);
        for r in 0..4 {
            let rec = &w.input_words[r * 10..r * 10 + 10];
            let got = ir.eval_record(rec, &|_| Value::ZERO);
            assert_eq!(got[0].bits(), w.expected[r * 2].bits(), "record {r} word 0");
            assert_eq!(got[1].bits(), w.expected[r * 2 + 1].bits(), "record {r} word 1");
        }
    }

    #[test]
    fn mimd_table_has_k_s_g_sections() {
        let t = Md5.mimd_table_image();
        assert_eq!(t.len(), 192);
        assert_eq!(t[0].as_u32(), 0xD76A_A478); // K[0]
        assert_eq!(t[64].as_u32(), 7); // S[0]
        assert_eq!(t[128].as_u64(), 0); // g(0)
        assert_eq!(t[128 + 17].as_u64(), g_index(17) as u64);
    }

    #[test]
    fn mimd_program_fits_l0_store() {
        let p = Md5.mimd_program(MimdTarget::with_l0()).unwrap();
        assert!(p.len() <= 256, "program has {} insts", p.len());
    }
}
