//! The benchmark kernels (Table 1), one module per benchmark.

pub mod anisotropic;
pub mod blowfish;
pub mod convert;
pub mod dct;
pub mod fft;
pub mod fragment_reflection;
pub mod fragment_simple;
pub mod highpassfilter;
pub mod lu;
pub mod md5;
pub mod rijndael;
pub mod vertex_reflection;
pub mod vertex_simple;
pub mod vertex_skinning;
