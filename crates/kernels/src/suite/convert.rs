//! `convert` — RGB to YIQ color conversion (Table 1, multimedia).
//!
//! The paper's smallest kernel: a 3×3 matrix–vector product per pixel.
//! 15 instructions (9 multiplies + 6 adds), 9 scalar constants, record
//! 3 words in / 3 out — matching Table 2's `convert` row exactly.

use dlp_common::{DlpError, SplitMix64, Value};
use dlp_kernel_ir::{ControlClass, Domain, IrBuilder, KernelIr};
use trips_isa::{MemSpace, MimdProgram, Opcode};

use crate::refimpl::transform::{rgb_to_yiq, YIQ};
use crate::util::{MimdStream, MimdTarget, R_IN_ADDR, R_OUT_ADDR};
use crate::{DlpKernel, OutputKind, Workload};

/// The RGB→YIQ kernel.
pub struct Convert;

impl DlpKernel for Convert {
    fn name(&self) -> &'static str {
        "convert"
    }

    fn description(&self) -> &'static str {
        "RGB to YIQ conversion"
    }

    fn ir(&self) -> KernelIr {
        let mut b = IrBuilder::new("convert", Domain::Multimedia, 3, 3);
        // Register the 9 matrix coefficients as named constants.
        let consts: Vec<_> = YIQ
            .iter()
            .enumerate()
            .flat_map(|(r, row)| {
                row.iter()
                    .enumerate()
                    .map(move |(c, &v)| (format!("m{r}{c}"), v))
                    .collect::<Vec<_>>()
            })
            .collect();
        let cref: Vec<_> =
            consts.iter().map(|(n, v)| b.constant(n.clone(), Value::from_f32(*v))).collect();
        let rgb = [b.input(0), b.input(1), b.input(2)];
        for row in 0..3 {
            // acc = m0*r + m1*g + m2*b, left-to-right.
            let t0 = b.bin(Opcode::FMul, rgb[0], cref[row * 3]);
            let t1 = b.bin(Opcode::FMul, rgb[1], cref[row * 3 + 1]);
            let mut acc = b.bin(Opcode::FAdd, t0, t1);
            let t2 = b.bin(Opcode::FMul, rgb[2], cref[row * 3 + 2]);
            acc = b.bin(Opcode::FAdd, acc, t2);
            b.output(row as u16, acc);
        }
        b.finish(ControlClass::Straight).expect("convert IR is well-formed")
    }

    fn mimd_program(&self, _target: MimdTarget) -> Result<MimdProgram, DlpError> {
        // r20..r28 hold the matrix... 9 coefficients need r17..r25; keep the
        // three inputs and two temporaries in r1..r5.
        MimdStream::build(
            3,
            3,
            |asm| {
                for (i, row) in YIQ.iter().enumerate() {
                    for (j, &v) in row.iter().enumerate() {
                        asm.lif((17 + i * 3 + j) as u8, v);
                    }
                }
            },
            |asm| {
                asm.ld(MemSpace::Smc, 1, R_IN_ADDR, 0);
                asm.ld(MemSpace::Smc, 2, R_IN_ADDR, 1);
                asm.ld(MemSpace::Smc, 3, R_IN_ADDR, 2);
                for row in 0..3u8 {
                    asm.alu(Opcode::FMul, 4, 1, 17 + row * 3);
                    asm.alu(Opcode::FMul, 5, 2, 18 + row * 3);
                    asm.alu(Opcode::FAdd, 4, 4, 5);
                    asm.alu(Opcode::FMul, 5, 3, 19 + row * 3);
                    asm.alu(Opcode::FAdd, 4, 4, 5);
                    asm.st(MemSpace::Smc, R_OUT_ADDR, i64::from(row), 4);
                }
            },
        )
    }

    fn workload(&self, records: usize, seed: u64) -> Workload {
        let mut rng = SplitMix64::new(seed ^ 0xC04);
        let mut input_words = Vec::with_capacity(records * 3);
        let mut expected = Vec::with_capacity(records * 3);
        for _ in 0..records {
            let rgb = [rng.next_f32(), rng.next_f32(), rng.next_f32()];
            for c in rgb {
                input_words.push(Value::from_f32(c));
            }
            for y in rgb_to_yiq(rgb) {
                expected.push(Value::from_f32(y));
            }
        }
        Workload { records, input_words, tex_words: Vec::new(), expected }
    }

    fn output_kind(&self) -> OutputKind {
        OutputKind::F32Approx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_match_paper_row() {
        let a = Convert.ir().attributes();
        assert_eq!(a.insts, 15);
        assert_eq!(a.record_read, 3);
        assert_eq!(a.record_write, 3);
        assert_eq!(a.constants, 9);
        assert_eq!(a.irregular, 0);
        assert_eq!(a.indexed_constants, 0);
        assert_eq!(a.control, ControlClass::Straight);
        assert!(a.ilp > 4.0, "paper reports ILP 5, got {}", a.ilp);
    }

    #[test]
    fn ir_matches_reference_exactly() {
        let k = Convert;
        let ir = k.ir();
        let w = k.workload(32, 1);
        for r in 0..32 {
            let rec = &w.input_words[r * 3..r * 3 + 3];
            let got = ir.eval_record(rec, &|_| Value::ZERO);
            for c in 0..3 {
                assert_eq!(
                    got[c].bits(),
                    w.expected[r * 3 + c].bits(),
                    "record {r} channel {c}: same op order must be bit-exact"
                );
            }
        }
    }

    #[test]
    fn mimd_program_fits_l0_store() {
        let p = Convert.mimd_program(MimdTarget::with_l0()).unwrap();
        assert!(p.len() <= 256, "program has {} insts", p.len());
    }
}
