//! `fft` — the complex radix-2 butterfly of a 1024-point FFT (Table 1,
//! scientific).
//!
//! The kernel is one butterfly: record in = (aᵣ, aᵢ, bᵣ, bᵢ, wᵣ, wᵢ),
//! record out = (a′ᵣ, a′ᵢ, b′ᵣ, b′ᵢ) with `a′ = a + w·b`, `b′ = a − w·b`.
//! 10 instructions, no constants (the twiddle arrives in the record) —
//! Table 2's `fft` row. A full FFT is a sequence of such butterfly streams
//! (see the `fft_pipeline` example).

use dlp_common::{DlpError, SplitMix64, Value};
use dlp_kernel_ir::{ControlClass, Domain, IrBuilder, KernelIr};
use trips_isa::{MemSpace, MimdProgram, Opcode};

use crate::refimpl::transform::fft_butterfly;
use crate::util::{MimdStream, MimdTarget, R_IN_ADDR, R_OUT_ADDR};
use crate::{DlpKernel, OutputKind, Workload};

/// The FFT butterfly kernel.
pub struct Fft;

impl DlpKernel for Fft {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn description(&self) -> &'static str {
        "1024-point complex FFT (butterfly stream)"
    }

    fn ir(&self) -> KernelIr {
        let mut b = IrBuilder::new("fft", Domain::Scientific, 6, 4);
        let ar = b.input(0);
        let ai = b.input(1);
        let br = b.input(2);
        let bi = b.input(3);
        let wr = b.input(4);
        let wi = b.input(5);
        // t = w * b (complex): tr = wr*br - wi*bi ; ti = wr*bi + wi*br.
        let p0 = b.bin(Opcode::FMul, wr, br);
        let p1 = b.bin(Opcode::FMul, wi, bi);
        let tr = b.bin(Opcode::FSub, p0, p1);
        let p2 = b.bin(Opcode::FMul, wr, bi);
        let p3 = b.bin(Opcode::FMul, wi, br);
        let ti = b.bin(Opcode::FAdd, p2, p3);
        let oar = b.bin(Opcode::FAdd, ar, tr);
        let oai = b.bin(Opcode::FAdd, ai, ti);
        let obr = b.bin(Opcode::FSub, ar, tr);
        let obi = b.bin(Opcode::FSub, ai, ti);
        b.output(0, oar);
        b.output(1, oai);
        b.output(2, obr);
        b.output(3, obi);
        b.finish(ControlClass::Straight).expect("fft IR is well-formed")
    }

    fn mimd_program(&self, _target: MimdTarget) -> Result<MimdProgram, DlpError> {
        MimdStream::build(
            6,
            4,
            |_| {},
            |asm| {
                for i in 0..6u8 {
                    asm.ld(MemSpace::Smc, 1 + i, R_IN_ADDR, i64::from(i));
                }
                // r1..r6 = ar ai br bi wr wi
                asm.alu(Opcode::FMul, 7, 5, 3); // wr*br
                asm.alu(Opcode::FMul, 8, 6, 4); // wi*bi
                asm.alu(Opcode::FSub, 7, 7, 8); // tr
                asm.alu(Opcode::FMul, 8, 5, 4); // wr*bi
                asm.alu(Opcode::FMul, 9, 6, 3); // wi*br
                asm.alu(Opcode::FAdd, 8, 8, 9); // ti
                asm.alu(Opcode::FAdd, 10, 1, 7);
                asm.st(MemSpace::Smc, R_OUT_ADDR, 0, 10);
                asm.alu(Opcode::FAdd, 10, 2, 8);
                asm.st(MemSpace::Smc, R_OUT_ADDR, 1, 10);
                asm.alu(Opcode::FSub, 10, 1, 7);
                asm.st(MemSpace::Smc, R_OUT_ADDR, 2, 10);
                asm.alu(Opcode::FSub, 10, 2, 8);
                asm.st(MemSpace::Smc, R_OUT_ADDR, 3, 10);
            },
        )
    }

    fn workload(&self, records: usize, seed: u64) -> Workload {
        let mut rng = SplitMix64::new(seed ^ 0xFF7);
        let mut input_words = Vec::with_capacity(records * 6);
        let mut expected = Vec::with_capacity(records * 4);
        for _ in 0..records {
            let vals: [f32; 4] = core::array::from_fn(|_| rng.f32_in(-1.0, 1.0));
            // Twiddle on the unit circle, like a real FFT stage.
            let angle = rng.f32_in(0.0, std::f32::consts::TAU);
            let (wi, wr) = angle.sin_cos();
            for v in vals {
                input_words.push(Value::from_f32(v));
            }
            input_words.push(Value::from_f32(wr));
            input_words.push(Value::from_f32(wi));
            for o in fft_butterfly(vals[0], vals[1], vals[2], vals[3], wr, wi) {
                expected.push(Value::from_f32(o));
            }
        }
        Workload { records, input_words, tex_words: Vec::new(), expected }
    }

    fn output_kind(&self) -> OutputKind {
        OutputKind::F32Approx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_match_paper_row() {
        let a = Fft.ir().attributes();
        assert_eq!(a.insts, 10);
        assert_eq!(a.record_read, 6);
        assert_eq!(a.record_write, 4);
        assert_eq!(a.constants, 0);
        assert!(a.ilp > 2.5, "paper reports ILP 3.3, got {}", a.ilp);
    }

    #[test]
    fn ir_is_bit_exact_against_reference() {
        let k = Fft;
        let ir = k.ir();
        let w = k.workload(16, 5);
        for r in 0..16 {
            let rec = &w.input_words[r * 6..r * 6 + 6];
            let got = ir.eval_record(rec, &|_| Value::ZERO);
            for c in 0..4 {
                assert_eq!(got[c].bits(), w.expected[r * 4 + c].bits(), "record {r} out {c}");
            }
        }
    }
}
