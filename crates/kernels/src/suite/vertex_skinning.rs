//! `vertex-skinning` — animation vertex shader with multiple transformation
//! matrices (Table 1, real-time graphics).
//!
//! A dynamically varying number of bone matrices (1–4) blend each vertex:
//! the paper's flagship *data-dependent branching* kernel (Table 2:
//! 16/9 record, 32 constants, 288 indexed constants — the 24-bone ×
//! 12-element matrix palette — and variable loop bounds). On the
//! vector/SIMD-style configurations the loop is unrolled to its maximum
//! trip count with weight-masking selects; the MIMD form iterates exactly
//! `count` times per vertex — the comparison at the heart of §5.3's M-D
//! result.

use dlp_common::{DlpError, SplitMix64, Value};
use dlp_kernel_ir::{ControlClass, Domain, IrBuilder, IrRef, KernelIr};
use trips_isa::{MemSpace, MimdProgram, Opcode};

use crate::refimpl::shade::{clamp0, dot, V3};
use crate::util::{MimdStream, MimdTarget, R_IN_ADDR, R_OUT_ADDR};
use crate::{DlpKernel, OutputKind, Workload};

/// Bones in the matrix palette.
pub const NUM_BONES: usize = 24;
/// Maximum bones blended per vertex.
pub const MAX_BONES: usize = 4;

/// Scene constants (the lighting environment; the palette is indexed).
pub struct Scene {
    /// Global 3×4 view matrix applied after blending.
    pub m: [f32; 12],
    /// Light and half vectors.
    pub light: V3,
    /// Half vector.
    pub half: V3,
    /// Material colors.
    pub ambient: V3,
    /// Diffuse reflectance.
    pub diffuse: V3,
    /// Specular reflectance.
    pub specular: V3,
    /// Color tint applied at the end.
    pub tint: V3,
    /// Diffuse floor term.
    pub floor: f32,
    /// Spare scale (keeps the constant count at 32).
    pub gain: f32,
}

/// The fixed benchmark scene.
#[must_use]
pub fn scene() -> Scene {
    Scene {
        m: [
            1.0, 0.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, 0.2, //
            0.0, 0.0, 1.0, -0.4,
        ],
        light: [0.267_261_24, 0.534_522_5, 0.801_783_7],
        half: [0.0, 0.6, 0.8],
        ambient: [0.1, 0.08, 0.08],
        diffuse: [0.6, 0.55, 0.5],
        specular: [0.3, 0.3, 0.3],
        tint: [1.0, 0.97, 0.9],
        floor: 0.05,
        gain: 1.1,
    }
}

/// The bone-matrix palette: `NUM_BONES` 3×4 matrices, deterministic.
#[must_use]
pub fn palette() -> Vec<f32> {
    let mut rng = SplitMix64::new(0xB0BE);
    let mut out = Vec::with_capacity(NUM_BONES * 12);
    for _ in 0..NUM_BONES {
        // Small rotations + translations around identity keep values tame.
        let a = rng.f32_in(-0.3, 0.3);
        let (s, c) = a.sin_cos();
        let t: [f32; 3] = core::array::from_fn(|_| rng.f32_in(-0.5, 0.5));
        out.extend_from_slice(&[c, -s, 0.0, t[0], s, c, 0.0, t[1], 0.0, 0.0, 1.0, t[2]]);
    }
    out
}

/// One vertex record, decoded.
#[derive(Clone, Copy, Debug)]
pub struct VertexIn {
    /// Rest position.
    pub p: V3,
    /// Rest normal.
    pub n: V3,
    /// Bone palette indices.
    pub idx: [u32; MAX_BONES],
    /// Blend weights.
    pub w: [f32; MAX_BONES],
    /// Live bone count (1..=MAX_BONES).
    pub count: u32,
}

/// Reference skinning + lighting. Blends exactly like the masked unrolled
/// form: bones `count..MAX_BONES` contribute with weight 0.
#[must_use]
pub fn skin_vertex(s: &Scene, pal: &[f32], v: &VertexIn) -> [f32; 9] {
    let mut pos = [0.0f32; 3];
    let mut nrm = [0.0f32; 3];
    for b in 0..MAX_BONES {
        let w = if (b as u32) < v.count { v.w[b] } else { 0.0 };
        let m = &pal[v.idx[b] as usize * 12..v.idx[b] as usize * 12 + 12];
        for row in 0..3 {
            let pb = m[row * 4] * v.p[0]
                + m[row * 4 + 1] * v.p[1]
                + m[row * 4 + 2] * v.p[2]
                + m[row * 4 + 3];
            pos[row] += w * pb;
            let nb = m[row * 4] * v.n[0] + m[row * 4 + 1] * v.n[1] + m[row * 4 + 2] * v.n[2];
            nrm[row] += w * nb;
        }
    }
    let pt: [f32; 3] = core::array::from_fn(|row| {
        s.m[row * 4] * pos[0] + s.m[row * 4 + 1] * pos[1] + s.m[row * 4 + 2] * pos[2]
            + s.m[row * 4 + 3]
    });
    let ndl = clamp0(dot(nrm, s.light));
    let ndh = clamp0(dot(nrm, s.half));
    let x2 = ndh * ndh;
    let x4 = x2 * x2;
    let spec = x4 * x4;
    let color: [f32; 3] = core::array::from_fn(|c| {
        
        (s.ambient[c] + (s.floor + s.diffuse[c]) * ndl + s.specular[c] * spec)
            * s.gain
            * s.tint[c]
    });
    [pt[0], pt[1], pt[2], nrm[0], nrm[1], nrm[2], color[0], color[1], color[2]]
}

/// The vertex-skinning kernel.
pub struct VertexSkinning;

fn ir_dot3(b: &mut IrBuilder, v: [IrRef; 3], c: [IrRef; 3]) -> IrRef {
    let t0 = b.bin(Opcode::FMul, v[0], c[0]);
    let t1 = b.bin(Opcode::FMul, v[1], c[1]);
    let acc = b.bin(Opcode::FAdd, t0, t1);
    let t2 = b.bin(Opcode::FMul, v[2], c[2]);
    b.bin(Opcode::FAdd, acc, t2)
}

impl DlpKernel for VertexSkinning {
    fn name(&self) -> &'static str {
        "vertex-skinning"
    }

    fn description(&self) -> &'static str {
        "a vertex shader used for animation with multiple transformation matrices"
    }

    #[allow(clippy::too_many_lines)]
    fn ir(&self) -> KernelIr {
        let s = scene();
        let pal = palette();
        let mut b = IrBuilder::new("vertex-skinning", Domain::Graphics, 16, 9);
        let tbl = b.table("bones", pal.iter().map(|&v| Value::from_f32(v)).collect());
        let mref: Vec<IrRef> = s
            .m
            .iter()
            .enumerate()
            .map(|(i, &v)| b.constant(format!("m{i}"), Value::from_f32(v)))
            .collect();
        let cvec = |b: &mut IrBuilder, name: &str, v: V3| -> [IrRef; 3] {
            core::array::from_fn(|i| b.constant(format!("{name}{i}"), Value::from_f32(v[i])))
        };
        let lref = cvec(&mut b, "l", s.light);
        let href = cvec(&mut b, "h", s.half);
        let aref = cvec(&mut b, "amb", s.ambient);
        let dref = cvec(&mut b, "dif", s.diffuse);
        let sref = cvec(&mut b, "spc", s.specular);
        let tref = cvec(&mut b, "tint", s.tint);
        let floor = b.constant("floor", Value::from_f32(s.floor));
        let gain = b.constant("gain", Value::from_f32(s.gain));

        let p: [IrRef; 3] = core::array::from_fn(|i| b.input(i as u16));
        let n: [IrRef; 3] = core::array::from_fn(|i| b.input(3 + i as u16));
        let idx: [IrRef; 4] = core::array::from_fn(|i| b.input(6 + i as u16));
        let w: [IrRef; 4] = core::array::from_fn(|i| b.input(10 + i as u16));
        let count = b.input(14);
        let pad = b.input(15);

        let zero_f = b.imm(Value::from_f32(0.0));
        let twelve = b.imm(Value::from_u64(12));
        let mut pos: Option<[IrRef; 3]> = None;
        let mut nrm: Option<[IrRef; 3]> = None;
        // Unrolled to MAX_BONES with weight masking — the vector/SIMD
        // predication cost the paper describes for this kernel.
        for bone in 0..MAX_BONES {
            let bimm = b.imm(Value::from_u64(bone as u64));
            let active = b.bin_overhead(Opcode::Tltu, bimm, count);
            let wm = b.sel(active, w[bone], zero_f);
            let base = b.bin_overhead(Opcode::Mul, idx[bone], twelve);
            let elem: Vec<IrRef> = (0..12)
                .map(|e| {
                    let i = if e == 0 {
                        base
                    } else {
                        let ei = b.imm(Value::from_u64(e));
                        b.bin_overhead(Opcode::Add, base, ei)
                    };
                    b.table_read(tbl, i)
                })
                .collect();
            let mut newpos = [p[0]; 3];
            let mut newnrm = [p[0]; 3];
            for row in 0..3 {
                let d = ir_dot3(&mut b, p, [elem[row * 4], elem[row * 4 + 1], elem[row * 4 + 2]]);
                let pb = b.bin(Opcode::FAdd, d, elem[row * 4 + 3]);
                let contrib = b.bin(Opcode::FMul, wm, pb);
                newpos[row] = match pos {
                    None => contrib,
                    Some(prev) => b.bin(Opcode::FAdd, prev[row], contrib),
                };
                let nb = ir_dot3(&mut b, n, [elem[row * 4], elem[row * 4 + 1], elem[row * 4 + 2]]);
                let ncontrib = b.bin(Opcode::FMul, wm, nb);
                newnrm[row] = match nrm {
                    None => ncontrib,
                    Some(prev) => b.bin(Opcode::FAdd, prev[row], ncontrib),
                };
            }
            pos = Some(newpos);
            nrm = Some(newnrm);
        }
        let pos = pos.expect("at least one bone");
        let nrm = nrm.expect("at least one bone");

        // Global transform + lighting.
        for row in 0..3 {
            let d = ir_dot3(&mut b, pos, [mref[row * 4], mref[row * 4 + 1], mref[row * 4 + 2]]);
            let pt = b.bin(Opcode::FAdd, d, mref[row * 4 + 3]);
            b.output(row as u16, pt);
        }
        for row in 0..3 {
            b.output(3 + row as u16, nrm[row]);
        }
        let ndl_raw = ir_dot3(&mut b, nrm, lref);
        let ndl = b.bin(Opcode::FMax, ndl_raw, zero_f);
        let ndh_raw = ir_dot3(&mut b, nrm, href);
        let ndh = b.bin(Opcode::FMax, ndh_raw, zero_f);
        let x2 = b.bin(Opcode::FMul, ndh, ndh);
        let x4 = b.bin(Opcode::FMul, x2, x2);
        let spec = b.bin(Opcode::FMul, x4, x4);
        // Keep the pad word live without affecting values.
        let z = b.imm(Value::from_u64(0));
        let padz = b.bin_overhead(Opcode::Mul, pad, z);
        for c in 0..3 {
            let dplus = b.bin(Opcode::FAdd, floor, dref[c]);
            let dterm = b.bin(Opcode::FMul, dplus, ndl);
            let acc = b.bin(Opcode::FAdd, aref[c], dterm);
            let sterm = b.bin(Opcode::FMul, sref[c], spec);
            let lit = b.bin(Opcode::FAdd, acc, sterm);
            let g = b.bin(Opcode::FMul, lit, gain);
            let tinted = b.bin(Opcode::FMul, g, tref[c]);
            // + pad*0 (integer zero: adds nothing to the f32 bits).
            let out = b.bin_overhead(Opcode::Or, tinted, padz);
            b.output(6 + c as u16, out);
        }
        b.finish(ControlClass::VariableLoop { max_iters: MAX_BONES as u32 })
            .expect("vertex-skinning IR is well-formed")
    }

    #[allow(clippy::too_many_lines)]
    fn mimd_program(&self, target: MimdTarget) -> Result<MimdProgram, DlpError> {
        let s = scene();
        // The rolled form: loop over the *actual* bone count. Position and
        // normal stay in registers across the loop (the operand-storage
        // buffers the local-PC mechanism repurposes as registers), so each
        // bone costs 12 table reads + 2 stream loads — the storage economy
        // the paper credits for M-D's win on this kernel.
        // Registers: pos r1..r3, nrm r4..r6, bone counter r7, count r8,
        // weight r9, matrix base r10, temps r11..r13, p in r20..r22,
        // n in r23..r25 (the prologue only holds light/half).
        MimdStream::build(
            16,
            9,
            |asm| {
                for i in 0..3u8 {
                    asm.lif(14 + i, s.light[i as usize]);
                }
            },
            |asm| {
                for i in 0..6u8 {
                    asm.lif(1 + i, 0.0);
                }
                for i in 0..3u8 {
                    asm.ld(MemSpace::Smc, 20 + i, R_IN_ADDR, i64::from(i)); // p
                    asm.ld(MemSpace::Smc, 23 + i, R_IN_ADDR, i64::from(3 + i)); // n
                }
                asm.li(7, 0);
                asm.ld(MemSpace::Smc, 8, R_IN_ADDR, 14); // count
                asm.label("bone");
                asm.alu(Opcode::Tgeu, 11, 7, 8);
                asm.bnz(11, "blend_done");
                // weight and matrix base
                asm.alu(Opcode::Add, 11, 7, R_IN_ADDR);
                asm.ld(MemSpace::Smc, 9, 11, 10); // w[b]
                asm.ld(MemSpace::Smc, 10, 11, 6); // idx[b]
                asm.alui(Opcode::Mul, 10, 10, 12);
                for row in 0..3u8 {
                    // pb = m0*p0 + m1*p1 + m2*p2 + m3 ; nb over the same row
                    asm.lif(11, 0.0);
                    asm.lif(13, 0.0);
                    for c in 0..3u8 {
                        asm.alui(Opcode::Add, 12, 10, i64::from(row * 4 + c));
                        target.table_read(asm, 12, 12, 0);
                        asm.alu(Opcode::FMul, 19, 12, 20 + c);
                        asm.alu(Opcode::FAdd, 11, 11, 19);
                        asm.alu(Opcode::FMul, 19, 12, 23 + c);
                        asm.alu(Opcode::FAdd, 13, 13, 19);
                    }
                    asm.alui(Opcode::Add, 12, 10, i64::from(row * 4 + 3));
                    target.table_read(asm, 12, 12, 0);
                    asm.alu(Opcode::FAdd, 11, 11, 12);
                    asm.alu(Opcode::FMul, 11, 11, 9);
                    asm.alu(Opcode::FAdd, 1 + row, 1 + row, 11);
                    asm.alu(Opcode::FMul, 13, 13, 9);
                    asm.alu(Opcode::FAdd, 4 + row, 4 + row, 13);
                }
                asm.alui(Opcode::Add, 7, 7, 1);
                asm.jmp("bone");
                asm.label("blend_done");
                // Global transform rows -> out 0..3.
                for row in 0..3usize {
                    asm.lif(11, s.m[row * 4]);
                    asm.alu(Opcode::FMul, 9, 1, 11);
                    asm.lif(11, s.m[row * 4 + 1]);
                    asm.alu(Opcode::FMul, 11, 2, 11);
                    asm.alu(Opcode::FAdd, 9, 9, 11);
                    asm.lif(11, s.m[row * 4 + 2]);
                    asm.alu(Opcode::FMul, 11, 3, 11);
                    asm.alu(Opcode::FAdd, 9, 9, 11);
                    asm.lif(11, s.m[row * 4 + 3]);
                    asm.alu(Opcode::FAdd, 9, 9, 11);
                    asm.st(MemSpace::Smc, R_OUT_ADDR, row as i64, 9);
                }
                for row in 0..3u8 {
                    asm.st(MemSpace::Smc, R_OUT_ADDR, 3 + i64::from(row), 4 + row);
                }
                // Lighting on the blended normal.
                asm.lif(13, 0.0);
                asm.alu(Opcode::FMul, 9, 4, 14);
                asm.alu(Opcode::FMul, 11, 5, 15);
                asm.alu(Opcode::FAdd, 9, 9, 11);
                asm.alu(Opcode::FMul, 11, 6, 16);
                asm.alu(Opcode::FAdd, 9, 9, 11);
                asm.alu(Opcode::FMax, 9, 9, 13); // ndl
                asm.lif(12, s.half[0]);
                asm.alu(Opcode::FMul, 10, 4, 12);
                asm.lif(12, s.half[1]);
                asm.alu(Opcode::FMul, 11, 5, 12);
                asm.alu(Opcode::FAdd, 10, 10, 11);
                asm.lif(12, s.half[2]);
                asm.alu(Opcode::FMul, 11, 6, 12);
                asm.alu(Opcode::FAdd, 10, 10, 11);
                asm.alu(Opcode::FMax, 10, 10, 13);
                asm.alu(Opcode::FMul, 10, 10, 10);
                asm.alu(Opcode::FMul, 10, 10, 10);
                asm.alu(Opcode::FMul, 10, 10, 10); // spec
                for c in 0..3usize {
                    asm.lif(11, s.floor + s.diffuse[c]);
                    asm.alu(Opcode::FMul, 11, 11, 9);
                    asm.lif(12, s.ambient[c]);
                    asm.alu(Opcode::FAdd, 11, 12, 11);
                    asm.lif(12, s.specular[c]);
                    asm.alu(Opcode::FMul, 12, 12, 10);
                    asm.alu(Opcode::FAdd, 11, 11, 12);
                    asm.lif(12, s.gain * s.tint[c]);
                    asm.alu(Opcode::FMul, 11, 11, 12);
                    asm.st(MemSpace::Smc, R_OUT_ADDR, 6 + c as i64, 11);
                }
            },
        )
    }

    fn workload(&self, records: usize, seed: u64) -> Workload {
        let s = scene();
        let pal = palette();
        let mut rng = SplitMix64::new(seed ^ 0x5C1);
        let mut input_words = Vec::with_capacity(records * 16);
        let mut expected = Vec::with_capacity(records * 9);
        for _ in 0..records {
            let count = 1 + (rng.below(MAX_BONES as u64)) as u32;
            let mut v = VertexIn {
                p: core::array::from_fn(|_| rng.f32_in(-1.0, 1.0)),
                n: core::array::from_fn(|_| rng.f32_in(-1.0, 1.0)),
                idx: core::array::from_fn(|_| rng.below(NUM_BONES as u64) as u32),
                w: [0.0; MAX_BONES],
                count,
            };
            // Positive weights summing to ~1 over the live bones.
            let mut total = 0.0f32;
            for b in 0..count as usize {
                v.w[b] = rng.f32_in(0.1, 1.0);
                total += v.w[b];
            }
            for b in 0..count as usize {
                v.w[b] /= total;
            }
            for x in v.p.into_iter().chain(v.n) {
                input_words.push(Value::from_f32(x));
            }
            for i in v.idx {
                input_words.push(Value::from_u64(u64::from(i)));
            }
            for x in v.w {
                input_words.push(Value::from_f32(x));
            }
            input_words.push(Value::from_u64(u64::from(v.count)));
            input_words.push(Value::ZERO); // pad
            for x in skin_vertex(&s, &pal, &v) {
                expected.push(Value::from_f32(x));
            }
        }
        Workload { records, input_words, tex_words: Vec::new(), expected }
    }

    fn output_kind(&self) -> OutputKind {
        OutputKind::F32Approx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_match_paper_shape() {
        let a = VertexSkinning.ir().attributes();
        // Paper: 112 insts (their counting), record 16/9, 32 constants,
        // 288 indexed constants, variable loop bounds. Our full unroll is
        // larger; the structural attributes must match.
        assert_eq!(a.record_read, 16);
        assert_eq!(a.record_write, 9);
        assert_eq!(a.constants, 32);
        assert_eq!(a.indexed_constants, 288);
        assert!(a.control.is_data_dependent());
    }

    #[test]
    fn ir_matches_reference() {
        let k = VertexSkinning;
        let ir = k.ir();
        let w = k.workload(16, 23);
        for r in 0..16 {
            let rec = &w.input_words[r * 16..r * 16 + 16];
            let got = ir.eval_record(rec, &|_| Value::ZERO);
            for c in 0..9 {
                let g = got[c].as_f32();
                let e = w.expected[r * 9 + c].as_f32();
                assert!((g - e).abs() <= 1e-3 * e.abs().max(1.0), "rec {r} out {c}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn masked_bones_contribute_nothing() {
        // Two workloads identical except dead bone slots differ -> same
        // output.
        let k = VertexSkinning;
        let ir = k.ir();
        let w = k.workload(4, 77);
        for r in 0..4 {
            let mut rec: Vec<Value> = w.input_words[r * 16..r * 16 + 16].to_vec();
            let count = rec[14].as_u64() as usize;
            if count < MAX_BONES {
                let baseline = ir.eval_record(&rec, &|_| Value::ZERO);
                rec[6 + count] = Value::from_u64(3); // different dead index
                let tweaked = ir.eval_record(&rec, &|_| Value::ZERO);
                assert_eq!(
                    baseline.iter().map(|v| v.bits()).collect::<Vec<_>>(),
                    tweaked.iter().map(|v| v.bits()).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn mimd_program_fits_l0_store() {
        let p = VertexSkinning.mimd_program(MimdTarget::with_l0()).unwrap();
        assert!(p.len() <= 256, "program has {} insts", p.len());
    }
}
