//! `highpassfilter` — 2-D 3×3 high-pass filter (Table 1, multimedia).
//!
//! Record: the 3×3 neighborhood (9 words in), one filtered value out.
//! 17 instructions (9 multiplies + 8 adds) and 9 coefficients — matching
//! Table 2's `highpassfilter` row.

use dlp_common::{DlpError, SplitMix64, Value};
use dlp_kernel_ir::{ControlClass, Domain, IrBuilder, KernelIr};
use trips_isa::{MemSpace, MimdProgram, Opcode};

use crate::refimpl::transform::{highpass, HIGHPASS};
use crate::util::{MimdStream, MimdTarget, R_IN_ADDR, R_OUT_ADDR};
use crate::{DlpKernel, OutputKind, Workload};

/// The 3×3 high-pass filter kernel.
pub struct HighPassFilter;

impl DlpKernel for HighPassFilter {
    fn name(&self) -> &'static str {
        "highpassfilter"
    }

    fn description(&self) -> &'static str {
        "a 2D high pass filter"
    }

    fn ir(&self) -> KernelIr {
        let mut b = IrBuilder::new("highpassfilter", Domain::Multimedia, 9, 1);
        let cref: Vec<_> = HIGHPASS
            .iter()
            .enumerate()
            .map(|(i, &v)| b.constant(format!("h{i}"), Value::from_f32(v)))
            .collect();
        // Tree reduction (matches the reference and yields the paper's
        // ILP of 3.4 = 17 insts / height 5).
        let terms: Vec<_> = (0..9)
            .map(|i| {
                let xi = b.input(i as u16);
                b.bin(Opcode::FMul, xi, cref[i as usize])
            })
            .collect();
        let s01 = b.bin(Opcode::FAdd, terms[0], terms[1]);
        let s23 = b.bin(Opcode::FAdd, terms[2], terms[3]);
        let s45 = b.bin(Opcode::FAdd, terms[4], terms[5]);
        let s67 = b.bin(Opcode::FAdd, terms[6], terms[7]);
        let a = b.bin(Opcode::FAdd, s01, s23);
        let bb = b.bin(Opcode::FAdd, s45, s67);
        let ab = b.bin(Opcode::FAdd, a, bb);
        let acc = b.bin(Opcode::FAdd, ab, terms[8]);
        b.output(0, acc);
        b.finish(ControlClass::Straight).expect("highpass IR is well-formed")
    }

    fn mimd_program(&self, _target: MimdTarget) -> Result<MimdProgram, DlpError> {
        MimdStream::build(
            9,
            1,
            |asm| {
                for (i, &v) in HIGHPASS.iter().enumerate() {
                    asm.lif((17 + i) as u8, v);
                }
            },
            |asm| {
                asm.ld(MemSpace::Smc, 1, R_IN_ADDR, 0);
                asm.alu(Opcode::FMul, 2, 1, 17);
                for i in 1..9u8 {
                    asm.ld(MemSpace::Smc, 1, R_IN_ADDR, i64::from(i));
                    asm.alu(Opcode::FMul, 3, 1, 17 + i);
                    asm.alu(Opcode::FAdd, 2, 2, 3);
                }
                asm.st(MemSpace::Smc, R_OUT_ADDR, 0, 2);
            },
        )
    }

    fn workload(&self, records: usize, seed: u64) -> Workload {
        let mut rng = SplitMix64::new(seed ^ 0x49F);
        let mut input_words = Vec::with_capacity(records * 9);
        let mut expected = Vec::with_capacity(records);
        for _ in 0..records {
            let mut nbhd = [0.0f32; 9];
            for v in &mut nbhd {
                *v = rng.f32_in(0.0, 255.0);
            }
            input_words.extend(nbhd.iter().map(|&v| Value::from_f32(v)));
            expected.push(Value::from_f32(highpass(&nbhd)));
        }
        Workload { records, input_words, tex_words: Vec::new(), expected }
    }

    fn output_kind(&self) -> OutputKind {
        OutputKind::F32Approx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_match_paper_row() {
        let a = HighPassFilter.ir().attributes();
        assert_eq!(a.insts, 17);
        assert_eq!(a.record_read, 9);
        assert_eq!(a.record_write, 1);
        assert_eq!(a.constants, 9);
        assert!(a.ilp > 2.0, "paper reports ILP 3.4, got {}", a.ilp);
    }

    #[test]
    fn ir_is_bit_exact_against_reference() {
        let k = HighPassFilter;
        let ir = k.ir();
        let w = k.workload(16, 3);
        for r in 0..16 {
            let rec = &w.input_words[r * 9..r * 9 + 9];
            let got = ir.eval_record(rec, &|_| Value::ZERO);
            assert_eq!(got[0].bits(), w.expected[r].bits(), "record {r}");
        }
    }
}
