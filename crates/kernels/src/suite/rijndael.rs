//! `rijndael` — AES-128 packet encryption (Table 1, network/security).
//!
//! Record: one 16-byte cipher block packed into 2 words in / 2 out, with a
//! 10-round internal loop — Table 2's `rijndael` row. The four 256-entry
//! T-tables are the 1024 indexed constants that give `rijndael` the largest
//! L0-data-store benefit in the paper (+80% over S-O); the round keys enter
//! as named scalar constants.

use dlp_common::{DlpError, SplitMix64, Value};
use dlp_kernel_ir::{ControlClass, Domain, IrBuilder, IrRef, KernelIr};
use trips_isa::{MemSpace, MimdProgram, Opcode};

use crate::refimpl::aes::{encrypt_block, key_schedule, t_tables};
use crate::util::{MimdStream, MimdTarget, R_IN_ADDR, R_OUT_ADDR};
use crate::{DlpKernel, OutputKind, Workload};

/// The fixed benchmark key (FIPS-197 Appendix B).
pub const KEY: [u8; 16] = [
    0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F,
    0x3C,
];

/// The AES-128 encryption kernel.
pub struct Rijndael;

fn pack(lo: u32, hi: u32) -> Value {
    Value::from_u64(u64::from(lo) | (u64::from(hi) << 32))
}

impl DlpKernel for Rijndael {
    fn name(&self) -> &'static str {
        "rijndael"
    }

    fn description(&self) -> &'static str {
        "Rijndael (AES) packet encryption (1500-byte packets)"
    }

    #[allow(clippy::too_many_lines)]
    fn ir(&self) -> KernelIr {
        let rk = key_schedule(&KEY);
        let tt = t_tables();
        let mut b = IrBuilder::new("rijndael", Domain::Network, 2, 2);
        let rkref: Vec<IrRef> = rk
            .iter()
            .enumerate()
            .flat_map(|(r, words)| {
                words
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| (format!("rk{r}_{i}"), w))
                    .collect::<Vec<_>>()
            })
            .map(|(n, w)| b.constant(n, Value::from_u32(w)))
            .collect();
        let ttab: Vec<u16> = (0..4)
            .map(|i| b.table(format!("t{i}"), tt[i].iter().map(|&v| Value::from_u32(v)).collect()))
            .collect();

        let mask32 = b.imm(Value::from_u64(0xFFFF_FFFF));
        let sh32 = b.imm(Value::from_u64(32));
        let byte = b.imm(Value::from_u64(0xFF));
        let sh24 = b.imm(Value::from_u64(24));
        let sh16 = b.imm(Value::from_u64(16));
        let sh8 = b.imm(Value::from_u64(8));

        let w0 = b.input(0);
        let w1 = b.input(1);
        let mut st = [
            b.bin_overhead(Opcode::And, w0, mask32),
            b.bin_overhead(Opcode::Shr, w0, sh32),
            b.bin_overhead(Opcode::And, w1, mask32),
            b.bin_overhead(Opcode::Shr, w1, sh32),
        ];
        // Round 0: AddRoundKey.
        for i in 0..4 {
            st[i] = b.bin(Opcode::Xor, st[i], rkref[i]);
        }
        // Rounds 1..9: T-table rounds.
        for round in 1..10 {
            let mut next = [st[0]; 4];
            for (i, slot) in next.iter_mut().enumerate() {
                let x0 = b.bin(Opcode::Shr, st[i], sh24);
                let t0 = b.table_read(ttab[0], x0);
                let s = b.bin(Opcode::Shr, st[(i + 1) % 4], sh16);
                let x1 = b.bin(Opcode::And, s, byte);
                let t1 = b.table_read(ttab[1], x1);
                let s = b.bin(Opcode::Shr, st[(i + 2) % 4], sh8);
                let x2 = b.bin(Opcode::And, s, byte);
                let t2 = b.table_read(ttab[2], x2);
                let x3 = b.bin(Opcode::And, st[(i + 3) % 4], byte);
                let t3 = b.table_read(ttab[3], x3);
                let acc = b.bin(Opcode::Xor, t0, t1);
                let acc = b.bin(Opcode::Xor, acc, t2);
                let acc = b.bin(Opcode::Xor, acc, t3);
                *slot = b.bin(Opcode::Xor, acc, rkref[round * 4 + i]);
            }
            st = next;
        }
        // Final round: SubBytes (via T0's middle byte) + ShiftRows + ARK.
        let sub = |b: &mut IrBuilder, x: IrRef| {
            let t = b.table_read(ttab[0], x);
            let s = b.bin(Opcode::Shr, t, sh8);
            b.bin(Opcode::And, s, byte)
        };
        let mut out = [st[0]; 4];
        for (i, slot) in out.iter_mut().enumerate() {
            let x0 = b.bin(Opcode::Shr, st[i], sh24);
            let s0 = sub(&mut b, x0);
            let s = b.bin(Opcode::Shr, st[(i + 1) % 4], sh16);
            let x1 = b.bin(Opcode::And, s, byte);
            let s1 = sub(&mut b, x1);
            let s = b.bin(Opcode::Shr, st[(i + 2) % 4], sh8);
            let x2 = b.bin(Opcode::And, s, byte);
            let s2 = sub(&mut b, x2);
            let x3 = b.bin(Opcode::And, st[(i + 3) % 4], byte);
            let s3 = sub(&mut b, x3);
            let h0 = b.bin(Opcode::Shl, s0, sh24);
            let h1 = b.bin(Opcode::Shl, s1, sh16);
            let h2 = b.bin(Opcode::Shl, s2, sh8);
            let w = b.bin(Opcode::Or, h0, h1);
            let w = b.bin(Opcode::Or, w, h2);
            let w = b.bin(Opcode::Or, w, s3);
            *slot = b.bin(Opcode::Xor, w, rkref[40 + i]);
        }
        let h = b.bin_overhead(Opcode::Shl, out[1], sh32);
        let o0 = b.bin_overhead(Opcode::Or, out[0], h);
        let h = b.bin_overhead(Opcode::Shl, out[3], sh32);
        let o1 = b.bin_overhead(Opcode::Or, out[2], h);
        b.output(0, o0);
        b.output(1, o1);
        b.finish(ControlClass::FixedLoop { iters: 10 }).expect("rijndael IR is well-formed")
    }

    #[allow(clippy::too_many_lines)]
    fn mimd_program(&self, target: MimdTarget) -> Result<MimdProgram, DlpError> {
        // Table layout: T0..T3 at 0..1024, round keys at 1024..1068.
        // Registers: s0..s3 = r1..r4, n0..n3 = r5..r8, round = r9,
        // rk index = r10, idx = r11, tval = r12, acc = r13.
        MimdStream::build(
            2,
            2,
            |_| {},
            |asm| {
                asm.ld(MemSpace::Smc, 12, R_IN_ADDR, 0);
                asm.alui(Opcode::And, 1, 12, 0xFFFF_FFFF);
                asm.alui(Opcode::Shr, 2, 12, 32);
                asm.ld(MemSpace::Smc, 12, R_IN_ADDR, 1);
                asm.alui(Opcode::And, 3, 12, 0xFFFF_FFFF);
                asm.alui(Opcode::Shr, 4, 12, 32);
                // Round 0: ARK.
                for i in 0..4u8 {
                    asm.li(11, i64::from(i));
                    target.table_read(asm, 12, 11, 1024);
                    asm.alu(Opcode::Xor, 1 + i, 1 + i, 12);
                }
                asm.li(9, 1);
                asm.label("round");
                // rk base index for this round = round*4.
                asm.alui(Opcode::Mul, 10, 9, 4);
                for i in 0..4u8 {
                    let s = |k: u8| 1 + ((i + k) % 4); // st[(i+k)%4]
                    asm.alui(Opcode::Shr, 11, s(0), 24);
                    target.table_read(asm, 13, 11, 0);
                    asm.alui(Opcode::Shr, 11, s(1), 16);
                    asm.alui(Opcode::And, 11, 11, 0xFF);
                    target.table_read(asm, 12, 11, 256);
                    asm.alu(Opcode::Xor, 13, 13, 12);
                    asm.alui(Opcode::Shr, 11, s(2), 8);
                    asm.alui(Opcode::And, 11, 11, 0xFF);
                    target.table_read(asm, 12, 11, 512);
                    asm.alu(Opcode::Xor, 13, 13, 12);
                    asm.alui(Opcode::And, 11, s(3), 0xFF);
                    target.table_read(asm, 12, 11, 768);
                    asm.alu(Opcode::Xor, 13, 13, 12);
                    asm.alui(Opcode::Add, 11, 10, i64::from(i));
                    target.table_read(asm, 12, 11, 1024);
                    asm.alu(Opcode::Xor, 5 + i, 13, 12);
                }
                for i in 0..4u8 {
                    asm.alu(Opcode::Mov, 1 + i, 5 + i, 0);
                }
                asm.alui(Opcode::Add, 9, 9, 1);
                asm.alui(Opcode::Tlt, 12, 9, 10);
                asm.bnz(12, "round");
                // Final round.
                for i in 0..4u8 {
                    let s = |k: u8| 1 + ((i + k) % 4);
                    // byte 0 (<<24)
                    asm.alui(Opcode::Shr, 11, s(0), 24);
                    target.table_read(asm, 12, 11, 0);
                    asm.alui(Opcode::Shr, 12, 12, 8);
                    asm.alui(Opcode::And, 12, 12, 0xFF);
                    asm.alui(Opcode::Shl, 13, 12, 24);
                    // byte 1 (<<16)
                    asm.alui(Opcode::Shr, 11, s(1), 16);
                    asm.alui(Opcode::And, 11, 11, 0xFF);
                    target.table_read(asm, 12, 11, 0);
                    asm.alui(Opcode::Shr, 12, 12, 8);
                    asm.alui(Opcode::And, 12, 12, 0xFF);
                    asm.alui(Opcode::Shl, 12, 12, 16);
                    asm.alu(Opcode::Or, 13, 13, 12);
                    // byte 2 (<<8)
                    asm.alui(Opcode::Shr, 11, s(2), 8);
                    asm.alui(Opcode::And, 11, 11, 0xFF);
                    target.table_read(asm, 12, 11, 0);
                    asm.alui(Opcode::Shr, 12, 12, 8);
                    asm.alui(Opcode::And, 12, 12, 0xFF);
                    asm.alui(Opcode::Shl, 12, 12, 8);
                    asm.alu(Opcode::Or, 13, 13, 12);
                    // byte 3
                    asm.alui(Opcode::And, 11, s(3), 0xFF);
                    target.table_read(asm, 12, 11, 0);
                    asm.alui(Opcode::Shr, 12, 12, 8);
                    asm.alui(Opcode::And, 12, 12, 0xFF);
                    asm.alu(Opcode::Or, 13, 13, 12);
                    // ARK with rk[40+i]
                    asm.li(11, 40 + i64::from(i));
                    target.table_read(asm, 12, 11, 1024);
                    asm.alu(Opcode::Xor, 5 + i, 13, 12);
                }
                asm.alui(Opcode::Shl, 6, 6, 32);
                asm.alu(Opcode::Or, 5, 5, 6);
                asm.st(MemSpace::Smc, R_OUT_ADDR, 0, 5);
                asm.alui(Opcode::Shl, 8, 8, 32);
                asm.alu(Opcode::Or, 7, 7, 8);
                asm.st(MemSpace::Smc, R_OUT_ADDR, 1, 7);
            },
        )
    }

    fn mimd_table_image(&self) -> Vec<Value> {
        let tt = t_tables();
        let rk = key_schedule(&KEY);
        let mut t: Vec<Value> =
            tt.iter().flat_map(|tab| tab.iter().map(|&v| Value::from_u32(v))).collect();
        t.extend(rk.iter().flatten().map(|&w| Value::from_u32(w)));
        t
    }

    fn workload(&self, records: usize, seed: u64) -> Workload {
        let rk = key_schedule(&KEY);
        let mut rng = SplitMix64::new(seed ^ 0xAE5);
        let mut input_words = Vec::with_capacity(records * 2);
        let mut expected = Vec::with_capacity(records * 2);
        for _ in 0..records {
            let block: [u8; 16] = core::array::from_fn(|_| rng.next_u32() as u8);
            let ct = encrypt_block(&rk, &block);
            let words = |bytes: &[u8; 16]| -> [u32; 4] {
                core::array::from_fn(|i| {
                    u32::from_be_bytes([
                        bytes[4 * i],
                        bytes[4 * i + 1],
                        bytes[4 * i + 2],
                        bytes[4 * i + 3],
                    ])
                })
            };
            let pw = words(&block);
            let cw = words(&ct);
            input_words.push(pack(pw[0], pw[1]));
            input_words.push(pack(pw[2], pw[3]));
            expected.push(pack(cw[0], cw[1]));
            expected.push(pack(cw[2], cw[3]));
        }
        Workload { records, input_words, tex_words: Vec::new(), expected }
    }

    fn output_kind(&self) -> OutputKind {
        OutputKind::ExactBits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_are_close_to_paper_row() {
        let a = Rijndael.ir().attributes();
        // Paper: 650 insts, ILP 11.8, record 2/2, 1024 indexed constants,
        // 10-round loop. We carry 44 round-key constants vs the paper's 18.
        assert!(a.insts >= 500 && a.insts <= 700, "got {}", a.insts);
        assert_eq!(a.record_read, 2);
        assert_eq!(a.record_write, 2);
        assert_eq!(a.indexed_constants, 1024);
        assert_eq!(a.constants, 44);
        assert_eq!(a.control, ControlClass::FixedLoop { iters: 10 });
        assert!(a.ilp > 6.0, "paper reports ILP 11.8, got {}", a.ilp);
    }

    #[test]
    fn ir_is_bit_exact_against_reference() {
        let k = Rijndael;
        let ir = k.ir();
        let w = k.workload(6, 4);
        for r in 0..6 {
            let rec = &w.input_words[r * 2..r * 2 + 2];
            let got = ir.eval_record(rec, &|_| Value::ZERO);
            assert_eq!(got[0].bits(), w.expected[r * 2].bits(), "record {r} word 0");
            assert_eq!(got[1].bits(), w.expected[r * 2 + 1].bits(), "record {r} word 1");
        }
    }

    #[test]
    fn mimd_program_fits_l0_store() {
        let p = Rijndael.mimd_program(MimdTarget::with_l0()).unwrap();
        assert!(p.len() <= 256, "program has {} insts", p.len());
    }

    #[test]
    fn mimd_table_layout() {
        let t = Rijndael.mimd_table_image();
        assert_eq!(t.len(), 1068);
        let rk = key_schedule(&KEY);
        assert_eq!(t[1024].as_u32(), rk[0][0]);
    }
}
