//! `lu` — the rank-1 elimination update of dense LU decomposition
//! (Table 1, scientific).
//!
//! The inner kernel of Gaussian elimination: `a′ = a − l·u`. To match the
//! paper's 2-words-in/1-word-out record (Table 2), the multiplier pair
//! `(l, u)` is packed as two f32 halves of word 1. Two useful instructions
//! (multiply + subtract) plus unpack overhead.
//!
//! At the paper's 1024×1024 scale the active stream exceeds the SMC and
//! falls back to DRAM (their §5.1 note); our scaled workloads fit — see
//! EXPERIMENTS.md.

use dlp_common::{DlpError, SplitMix64, Value};
use dlp_kernel_ir::{ControlClass, Domain, IrBuilder, KernelIr};
use trips_isa::{MemSpace, MimdProgram, Opcode};

use crate::refimpl::transform::lu_update;
use crate::util::{pack2f32, MimdStream, MimdTarget, R_IN_ADDR, R_OUT_ADDR};
use crate::{DlpKernel, OutputKind, Workload};

/// The LU elimination-update kernel.
pub struct Lu;

impl DlpKernel for Lu {
    fn name(&self) -> &'static str {
        "lu"
    }

    fn description(&self) -> &'static str {
        "LU decomposition of a dense matrix (elimination update stream)"
    }

    fn ir(&self) -> KernelIr {
        let mut b = IrBuilder::new("lu", Domain::Scientific, 2, 1);
        let x = b.input(0);
        let packed = b.input(1);
        // Unpack: l = low 32 bits, u = high 32 bits (f32 views read the low
        // half, so shift u down).
        let mask = b.imm(Value::from_u64(0xFFFF_FFFF));
        let l = b.bin_overhead(Opcode::And, packed, mask);
        let thirty_two = b.imm(Value::from_u64(32));
        let u = b.bin_overhead(Opcode::Shr, packed, thirty_two);
        let prod = b.bin(Opcode::FMul, l, u);
        let out = b.bin(Opcode::FSub, x, prod);
        b.output(0, out);
        b.finish(ControlClass::Straight).expect("lu IR is well-formed")
    }

    fn mimd_program(&self, _target: MimdTarget) -> Result<MimdProgram, DlpError> {
        MimdStream::build(
            2,
            1,
            |_| {},
            |asm| {
                asm.ld(MemSpace::Smc, 1, R_IN_ADDR, 0); // x
                asm.ld(MemSpace::Smc, 2, R_IN_ADDR, 1); // packed (l, u)
                asm.alui(Opcode::And, 3, 2, 0xFFFF_FFFF); // l
                asm.alui(Opcode::Shr, 4, 2, 32); // u
                asm.alu(Opcode::FMul, 3, 3, 4);
                asm.alu(Opcode::FSub, 1, 1, 3);
                asm.st(MemSpace::Smc, R_OUT_ADDR, 0, 1);
            },
        )
    }

    fn workload(&self, records: usize, seed: u64) -> Workload {
        let mut rng = SplitMix64::new(seed ^ 0x1u64);
        let mut input_words = Vec::with_capacity(records * 2);
        let mut expected = Vec::with_capacity(records);
        for _ in 0..records {
            let x = rng.f32_in(-10.0, 10.0);
            let l = rng.f32_in(-2.0, 2.0);
            let u = rng.f32_in(-2.0, 2.0);
            input_words.push(Value::from_f32(x));
            input_words.push(pack2f32(l, u));
            expected.push(Value::from_f32(lu_update(x, l, u)));
        }
        Workload { records, input_words, tex_words: Vec::new(), expected }
    }

    fn output_kind(&self) -> OutputKind {
        OutputKind::F32Approx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_match_paper_row() {
        let a = Lu.ir().attributes();
        // The paper counts the two useful ops; our analysis also counts the
        // two unpack shifts as instructions (they are overhead for
        // ops/cycle purposes).
        assert_eq!(a.record_read, 2);
        assert_eq!(a.record_write, 1);
        assert_eq!(a.constants, 0);
        assert!(a.insts <= 4);
    }

    #[test]
    fn ir_is_bit_exact_against_reference() {
        let k = Lu;
        let ir = k.ir();
        let w = k.workload(32, 9);
        for r in 0..32 {
            let rec = &w.input_words[r * 2..r * 2 + 2];
            let got = ir.eval_record(rec, &|_| Value::ZERO);
            assert_eq!(got[0].bits(), w.expected[r].bits(), "record {r}");
        }
    }

    #[test]
    fn useful_op_count_is_two() {
        use trips_isa::OpRole;
        let ir = Lu.ir();
        let useful = ir
            .nodes()
            .iter()
            .filter(|n| n.role == OpRole::Useful)
            .count();
        assert_eq!(useful, 2, "paper reports 2 instructions for lu");
    }
}
