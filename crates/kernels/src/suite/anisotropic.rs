//! `anisotropic-filter` — anisotropic texture filtering fragment shader
//! (Table 1, real-time graphics; after Pharr & Humphreys).
//!
//! Characterization-only: the paper's footnote 1 excludes this kernel from
//! all performance tables ("we did not have sufficient infrastructure and
//! datasets for a realistic simulation"), and so do we — but its Table 2
//! row (9/1 record, ≤50 irregular accesses, 6 constants, 128 indexed
//! constants, variable loop bounds) is regenerated from the IR, and the
//! kernel is fully implemented and tested like the others.
//!
//! The filter walks up to 16 sample positions along the anisotropy axis,
//! takes 3 taps per sample (48 ≤ the paper's ≤50), and weights each sample
//! by a 128-entry filter table.

use dlp_common::{DlpError, SplitMix64, Value};
use dlp_kernel_ir::{ControlClass, Domain, IrBuilder, KernelIr};
use trips_isa::{MemSpace, MimdProgram, Opcode};

use crate::memmap;
use crate::util::{MimdStream, MimdTarget, R_IN_ADDR, R_OUT_ADDR};
use crate::{DlpKernel, OutputKind, Workload};

/// Texture edge length (texels).
pub const TEX_SIZE: u32 = 64;
/// Maximum samples along the anisotropy axis.
pub const MAX_SAMPLES: usize = 16;
/// Filter-weight table entries.
pub const WEIGHT_ENTRIES: usize = 128;

/// The deterministic filter-weight table (a broad Gaussian-ish falloff
/// sampled at 128 points).
#[must_use]
pub fn weight_table() -> Vec<f32> {
    (0..WEIGHT_ENTRIES)
        .map(|i| {
            let x = i as f32 / WEIGHT_ENTRIES as f32;
            (-3.0 * x * x).exp()
        })
        .collect()
}

/// Scene constants (6 scalars).
pub struct Scene {
    /// Texture base word address.
    pub tex_base: u64,
    /// Texture row stride in words.
    pub stride: u64,
    /// Tap offsets relative to the sample texel.
    pub tap1_off: u64,
    /// Second tap offset.
    pub tap2_off: u64,
    /// Per-tap mixing weights (center gets the remainder).
    pub side_w: f32,
    /// Output gain.
    pub gain: f32,
}

/// The fixed benchmark scene.
#[must_use]
pub fn scene() -> Scene {
    Scene {
        tex_base: memmap::TEX_BASE,
        stride: u64::from(TEX_SIZE),
        tap1_off: 1,
        tap2_off: u64::from(TEX_SIZE),
        side_w: 0.25,
        gain: 1.0,
    }
}

/// One record, decoded.
#[derive(Clone, Copy, Debug)]
pub struct FilterIn {
    /// Base texel coordinates.
    pub u: f32,
    /// Base v.
    pub v: f32,
    /// Per-sample step along the anisotropy axis.
    pub step_u: f32,
    /// v-step.
    pub step_v: f32,
    /// Live sample count (1..=MAX_SAMPLES).
    pub n: u32,
    /// Base index into the weight table.
    pub wsel: u32,
}

/// Reference anisotropic filtering. Matches the masked unrolled form:
/// samples `n..MAX_SAMPLES` contribute with weight 0.
#[must_use]
pub fn filter(s: &Scene, f: &FilterIn, tex: &[f32], weights: &[f32]) -> f32 {
    let fetch = |off: u64| tex.get(off as usize).copied().unwrap_or(0.0);
    let mut acc = 0.0f32;
    for k in 0..MAX_SAMPLES {
        let live = (k as u32) < f.n;
        let su = f.u + k as f32 * f.step_u;
        let sv = f.v + k as f32 * f.step_v;
        let ui = su as i32 as u64;
        let vi = sv as i32 as u64;
        let off = vi * s.stride + ui;
        let center = fetch(off);
        let t1 = fetch(off + s.tap1_off);
        let t2 = fetch(off + s.tap2_off);
        let mixed = center * (1.0 - 2.0 * s.side_w) + t1 * s.side_w + t2 * s.side_w;
        let w = weights[(f.wsel as usize + k) % WEIGHT_ENTRIES];
        let contrib = if live { mixed * w } else { 0.0 };
        acc += contrib;
    }
    acc * s.gain
}

/// The anisotropic-filter kernel.
pub struct Anisotropic;

impl DlpKernel for Anisotropic {
    fn name(&self) -> &'static str {
        "anisotropic-filter"
    }

    fn description(&self) -> &'static str {
        "a fragment shader implementing anisotropic texture filtering"
    }

    fn in_perf_suite(&self) -> bool {
        false // the paper's footnote 1
    }

    #[allow(clippy::too_many_lines)]
    fn ir(&self) -> KernelIr {
        let s = scene();
        let mut b = IrBuilder::new("anisotropic-filter", Domain::Graphics, 9, 1);
        let wt = b.table("weights", weight_table().iter().map(|&w| Value::from_f32(w)).collect());
        let tbase = b.constant("tex_base", Value::from_u64(s.tex_base));
        let stride = b.constant("stride", Value::from_u64(s.stride));
        let tap1 = b.constant("tap1", Value::from_u64(s.tap1_off));
        let tap2 = b.constant("tap2", Value::from_u64(s.tap2_off));
        let sidew = b.constant("side_w", Value::from_f32(s.side_w));
        let gain = b.constant("gain", Value::from_f32(s.gain));

        let u = b.input(0);
        let v = b.input(1);
        let du = b.input(2);
        let dv = b.input(3);
        let n = b.input(4);
        let wsel = b.input(5);
        // Pads 6..9 kept live via a zero-multiply checksum.
        let pads: Vec<_> = (6..9).map(|i| b.input(i)).collect();

        let zero_f = b.imm(Value::from_f32(0.0));
        let one = b.imm(Value::from_f32(1.0));
        let two = b.imm(Value::from_f32(2.0));
        let two_side = b.bin(Opcode::FMul, two, sidew);
        let center_w = b.bin(Opcode::FSub, one, two_side);

        let mut acc = None;
        for k in 0..MAX_SAMPLES {
            let kimm = b.imm(Value::from_u64(k as u64));
            let live = b.bin_overhead(Opcode::Tltu, kimm, n);
            let kf = b.imm(Value::from_f32(k as f32));
            let ou = b.bin(Opcode::FMul, kf, du);
            let su = b.bin(Opcode::FAdd, u, ou);
            let ov = b.bin(Opcode::FMul, kf, dv);
            let sv = b.bin(Opcode::FAdd, v, ov);
            let ui = b.un_overhead(Opcode::F2I, su);
            let vi = b.un_overhead(Opcode::F2I, sv);
            let row = b.bin_overhead(Opcode::Mul, vi, stride);
            let off = b.bin_overhead(Opcode::Add, row, ui);
            let a0 = b.bin_overhead(Opcode::Add, off, tbase);
            let a1 = b.bin_overhead(Opcode::Add, a0, tap1);
            let a2 = b.bin_overhead(Opcode::Add, a0, tap2);
            let c = b.irregular_load(a0);
            let t1 = b.irregular_load(a1);
            let t2 = b.irregular_load(a2);
            let mc = b.bin(Opcode::FMul, c, center_w);
            let m1 = b.bin(Opcode::FMul, t1, sidew);
            let s1 = b.bin(Opcode::FAdd, mc, m1);
            let m2 = b.bin(Opcode::FMul, t2, sidew);
            let mixed = b.bin(Opcode::FAdd, s1, m2);
            // weight index = (wsel + k) % 128 — power-of-two mask.
            let widx0 = b.bin_overhead(Opcode::Add, wsel, kimm);
            let wmask = b.imm(Value::from_u64(WEIGHT_ENTRIES as u64 - 1));
            let widx = b.bin_overhead(Opcode::And, widx0, wmask);
            let w = b.table_read(wt, widx);
            let weighted = b.bin(Opcode::FMul, mixed, w);
            let contrib = b.sel(live, weighted, zero_f);
            acc = Some(match acc {
                None => contrib,
                Some(prev) => b.bin(Opcode::FAdd, prev, contrib),
            });
        }
        let total = acc.expect("at least one sample");
        let scaled = b.bin(Opcode::FMul, total, gain);
        // Pad liveness.
        let mut padsum = pads[0];
        for &p in &pads[1..] {
            padsum = b.bin_overhead(Opcode::Or, padsum, p);
        }
        let z = b.imm(Value::from_u64(0));
        let padz = b.bin_overhead(Opcode::And, padsum, z);
        let out = b.bin_overhead(Opcode::Or, scaled, padz);
        b.output(0, out);
        b.finish(ControlClass::VariableLoop { max_iters: MAX_SAMPLES as u32 })
            .expect("anisotropic IR is well-formed")
    }

    fn mimd_program(&self, target: MimdTarget) -> Result<MimdProgram, DlpError> {
        let s = scene();
        // Rolled loop over the actual sample count with a real branch.
        // r1=u, r2=v, r3=du, r4=dv, r5=n, r6=wsel, r7=k, r8=acc,
        // r9..r13 temps.
        MimdStream::build(
            9,
            1,
            |_| {},
            |asm| {
                for i in 0..6u8 {
                    asm.ld(MemSpace::Smc, 1 + i, R_IN_ADDR, i64::from(i));
                }
                asm.lif(8, 0.0);
                asm.li(7, 0);
                asm.label("sample");
                asm.alu(Opcode::Tgeu, 9, 7, 5);
                asm.bnz(9, "done");
                // su/sv
                asm.alu(Opcode::I2F, 9, 7, 0);
                asm.alu(Opcode::FMul, 10, 9, 3);
                asm.alu(Opcode::FAdd, 10, 1, 10);
                asm.alu(Opcode::FMul, 11, 9, 4);
                asm.alu(Opcode::FAdd, 11, 2, 11);
                asm.alu(Opcode::F2I, 10, 10, 0);
                asm.alu(Opcode::F2I, 11, 11, 0);
                asm.alui(Opcode::Mul, 11, 11, s.stride as i64);
                asm.alu(Opcode::Add, 10, 10, 11);
                asm.alui(Opcode::Add, 10, 10, s.tex_base as i64);
                asm.ld(MemSpace::L1, 11, 10, 0); // center
                asm.ld(MemSpace::L1, 12, 10, s.tap1_off as i64);
                asm.ld(MemSpace::L1, 13, 10, s.tap2_off as i64);
                asm.lif(9, 1.0 - 2.0 * s.side_w);
                asm.alu(Opcode::FMul, 11, 11, 9);
                asm.lif(9, s.side_w);
                asm.alu(Opcode::FMul, 12, 12, 9);
                asm.alu(Opcode::FAdd, 11, 11, 12);
                asm.alu(Opcode::FMul, 13, 13, 9);
                asm.alu(Opcode::FAdd, 11, 11, 13); // mixed
                // weight
                asm.alu(Opcode::Add, 9, 6, 7);
                asm.alui(Opcode::And, 9, 9, WEIGHT_ENTRIES as i64 - 1);
                target.table_read(asm, 9, 9, 0);
                asm.alu(Opcode::FMul, 11, 11, 9);
                asm.alu(Opcode::FAdd, 8, 8, 11);
                asm.alui(Opcode::Add, 7, 7, 1);
                asm.jmp("sample");
                asm.label("done");
                asm.lif(9, s.gain);
                asm.alu(Opcode::FMul, 8, 8, 9);
                asm.st(MemSpace::Smc, R_OUT_ADDR, 0, 8);
            },
        )
    }

    fn workload(&self, records: usize, seed: u64) -> Workload {
        let s = scene();
        let weights = weight_table();
        let mut rng = SplitMix64::new(seed ^ 0xA150);
        let tex: Vec<f32> =
            (0..(TEX_SIZE * TEX_SIZE) as usize).map(|_| rng.f32_in(0.0, 1.0)).collect();
        let mut input_words = Vec::with_capacity(records * 9);
        let mut expected = Vec::with_capacity(records);
        for _ in 0..records {
            // Keep the sample walk inside the texture (taps reach +1 col,
            // +1 row).
            let f = FilterIn {
                u: rng.f32_in(1.0, 24.0),
                v: rng.f32_in(1.0, 24.0),
                step_u: rng.f32_in(0.0, 2.0),
                step_v: rng.f32_in(0.0, 2.0),
                n: 1 + rng.below(MAX_SAMPLES as u64) as u32,
                wsel: rng.below(WEIGHT_ENTRIES as u64) as u32,
            };
            input_words.push(Value::from_f32(f.u));
            input_words.push(Value::from_f32(f.v));
            input_words.push(Value::from_f32(f.step_u));
            input_words.push(Value::from_f32(f.step_v));
            input_words.push(Value::from_u64(u64::from(f.n)));
            input_words.push(Value::from_u64(u64::from(f.wsel)));
            for _ in 0..3 {
                input_words.push(Value::ZERO);
            }
            expected.push(Value::from_f32(filter(&s, &f, &tex, &weights)));
        }
        let tex_words = tex.iter().map(|&t| Value::from_f32(t)).collect();
        Workload { records, input_words, tex_words, expected }
    }

    fn output_kind(&self) -> OutputKind {
        OutputKind::F32Approx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_match_paper_row() {
        let a = Anisotropic.ir().attributes();
        // Paper: 80 insts (rolled counting), ≤50 irregular, 6 constants,
        // 128 indexed, variable loop.
        assert_eq!(a.record_read, 9);
        assert_eq!(a.record_write, 1);
        assert_eq!(a.constants, 6);
        assert_eq!(a.indexed_constants, 128);
        assert!(a.irregular <= 50, "paper bound: ≤50, got {}", a.irregular);
        assert_eq!(a.irregular, 48);
        assert!(a.control.is_data_dependent());
    }

    #[test]
    fn excluded_from_perf_suite() {
        assert!(!Anisotropic.in_perf_suite());
    }

    #[test]
    fn ir_matches_reference() {
        let k = Anisotropic;
        let ir = k.ir();
        let w = k.workload(16, 3);
        let tex = w.tex_words.clone();
        let fetch = move |addr: u64| {
            let off = addr.wrapping_sub(memmap::TEX_BASE) as usize;
            tex.get(off).copied().unwrap_or(Value::ZERO)
        };
        for r in 0..16 {
            let rec = &w.input_words[r * 9..r * 9 + 9];
            let got = ir.eval_record(rec, &fetch);
            let g = got[0].as_f32();
            let e = w.expected[r].as_f32();
            assert!((g - e).abs() <= 1e-3 * e.abs().max(1.0), "rec {r}: {g} vs {e}");
        }
    }

    #[test]
    fn sample_count_changes_output() {
        let s = scene();
        let weights = weight_table();
        let tex: Vec<f32> = (0..(TEX_SIZE * TEX_SIZE) as usize).map(|i| i as f32 * 0.001).collect();
        let base = FilterIn { u: 4.0, v: 4.0, step_u: 1.0, step_v: 0.5, n: 2, wsel: 0 };
        let more = FilterIn { n: 8, ..base };
        assert_ne!(filter(&s, &base, &tex, &weights), filter(&s, &more, &tex, &weights));
    }

    #[test]
    fn mimd_program_fits_l0_store() {
        let p = Anisotropic.mimd_program(MimdTarget::with_l0()).unwrap();
        assert!(p.len() <= 256, "program has {} insts", p.len());
    }
}
