//! `fragment-simple` — basic fragment lighting with a bilinear texture
//! sample (Table 1, real-time graphics).
//!
//! Record: interpolated normal + light vector + texel-space coordinates =
//! 8 words in; RGBA = 4 words out. The four texture taps are the paper's
//! 4 irregular memory accesses (Table 2), served by the hardware-managed
//! L1 — the mechanism the cached-memory subsystem exists for.

use dlp_common::{DlpError, SplitMix64, Value};
use dlp_kernel_ir::{ControlClass, Domain, IrBuilder, IrRef, KernelIr};
use trips_isa::{MemSpace, MimdProgram, Opcode};

use crate::memmap;
use crate::refimpl::shade::{bilinear, clamp0, dot, pow8, V3};
use crate::util::{MimdStream, MimdTarget, R_IN_ADDR, R_OUT_ADDR};
use crate::{DlpKernel, OutputKind, Workload};

/// Texture edge length (texels); the region holds `SIZE*SIZE` f32 words.
pub const TEX_SIZE: u32 = 64;

/// Fragment-scene constants.
pub struct Scene {
    /// Half vector for specular.
    pub half: V3,
    /// Material colors.
    pub ambient: V3,
    /// Diffuse reflectance.
    pub diffuse: V3,
    /// Specular reflectance.
    pub specular: V3,
    /// Emissive color.
    pub emissive: V3,
    /// Texture base (word address).
    pub tex_base: u64,
}

/// The fixed benchmark scene.
#[must_use]
pub fn scene() -> Scene {
    Scene {
        half: [0.0, 0.6, 0.8],
        ambient: [0.08, 0.08, 0.1],
        diffuse: [0.8, 0.7, 0.6],
        specular: [0.4, 0.4, 0.4],
        emissive: [0.01, 0.0, 0.0],
        tex_base: memmap::TEX_BASE,
    }
}

/// Reference shading for one fragment.
#[must_use]
pub fn shade_fragment(s: &Scene, n: V3, l: V3, u: f32, v: f32, tex: &[f32]) -> [f32; 4] {
    let fetch = |off: u64| tex.get(off as usize).copied().unwrap_or(0.0);
    let t = bilinear(u, v, TEX_SIZE, &fetch);
    let ndl = clamp0(dot(n, l));
    let ndh = clamp0(dot(n, s.half));
    let spec = pow8(ndh);
    let col: [f32; 3] = core::array::from_fn(|c| {
        ((s.ambient[c] + s.emissive[c]) + s.diffuse[c] * ndl + s.specular[c] * spec) * t
    });
    [col[0], col[1], col[2], t]
}

/// The fragment-simple kernel.
pub struct FragmentSimple;

fn ir_dot3(b: &mut IrBuilder, v: [IrRef; 3], c: [IrRef; 3]) -> IrRef {
    let t0 = b.bin(Opcode::FMul, v[0], c[0]);
    let t1 = b.bin(Opcode::FMul, v[1], c[1]);
    let acc = b.bin(Opcode::FAdd, t0, t1);
    let t2 = b.bin(Opcode::FMul, v[2], c[2]);
    b.bin(Opcode::FAdd, acc, t2)
}

impl DlpKernel for FragmentSimple {
    fn name(&self) -> &'static str {
        "fragment-simple"
    }

    fn description(&self) -> &'static str {
        "basic fragment lighting with ambient, diffuse, specular and emissive lighting"
    }

    #[allow(clippy::too_many_lines)]
    fn ir(&self) -> KernelIr {
        let s = scene();
        let mut b = IrBuilder::new("fragment-simple", Domain::Graphics, 8, 4);
        let cvec = |b: &mut IrBuilder, name: &str, v: V3| -> [IrRef; 3] {
            core::array::from_fn(|i| b.constant(format!("{name}{i}"), Value::from_f32(v[i])))
        };
        let href = cvec(&mut b, "h", s.half);
        let aref = cvec(&mut b, "amb", s.ambient);
        let eref = cvec(&mut b, "emi", s.emissive);
        let dref = cvec(&mut b, "dif", s.diffuse);
        let sref = cvec(&mut b, "spc", s.specular);
        let tbase = b.constant("tex_base", Value::from_u64(s.tex_base));

        let n: [IrRef; 3] = core::array::from_fn(|i| b.input(i as u16));
        let l: [IrRef; 3] = core::array::from_fn(|i| b.input(3 + i as u16));
        let u = b.input(6);
        let v = b.input(7);

        // Bilinear sample.
        let u0 = b.un(Opcode::FFloor, u);
        let v0 = b.un(Opcode::FFloor, v);
        let fu = b.bin(Opcode::FSub, u, u0);
        let fv = b.bin(Opcode::FSub, v, v0);
        let ui = b.un_overhead(Opcode::F2I, u0);
        let vi = b.un_overhead(Opcode::F2I, v0);
        let size = b.imm(Value::from_u64(u64::from(TEX_SIZE)));
        let row = b.bin_overhead(Opcode::Mul, vi, size);
        let off00 = b.bin_overhead(Opcode::Add, row, ui);
        let a00 = b.bin_overhead(Opcode::Add, off00, tbase);
        let one = b.imm(Value::from_u64(1));
        let a10 = b.bin_overhead(Opcode::Add, a00, one);
        let sz = b.imm(Value::from_u64(u64::from(TEX_SIZE)));
        let a01 = b.bin_overhead(Opcode::Add, a00, sz);
        let szp1 = b.imm(Value::from_u64(u64::from(TEX_SIZE) + 1));
        let a11 = b.bin_overhead(Opcode::Add, a00, szp1);
        let t00 = b.irregular_load(a00);
        let t10 = b.irregular_load(a10);
        let t01 = b.irregular_load(a01);
        let t11 = b.irregular_load(a11);
        // top = t00 + (t10-t00)*fu ; bot likewise ; t = top + (bot-top)*fv
        let d = b.bin(Opcode::FSub, t10, t00);
        let m = b.bin(Opcode::FMul, d, fu);
        let top = b.bin(Opcode::FAdd, t00, m);
        let d = b.bin(Opcode::FSub, t11, t01);
        let m = b.bin(Opcode::FMul, d, fu);
        let bot = b.bin(Opcode::FAdd, t01, m);
        let d = b.bin(Opcode::FSub, bot, top);
        let m = b.bin(Opcode::FMul, d, fv);
        let t = b.bin(Opcode::FAdd, top, m);

        let zero = b.imm(Value::from_f32(0.0));
        let ndl_raw = ir_dot3(&mut b, n, l);
        let ndl = b.bin(Opcode::FMax, ndl_raw, zero);
        let ndh_raw = ir_dot3(&mut b, n, href);
        let ndh = b.bin(Opcode::FMax, ndh_raw, zero);
        let x2 = b.bin(Opcode::FMul, ndh, ndh);
        let x4 = b.bin(Opcode::FMul, x2, x2);
        let spec = b.bin(Opcode::FMul, x4, x4);

        for c in 0..3 {
            let ae = b.bin(Opcode::FAdd, aref[c], eref[c]);
            let dterm = b.bin(Opcode::FMul, dref[c], ndl);
            let acc = b.bin(Opcode::FAdd, ae, dterm);
            let sterm = b.bin(Opcode::FMul, sref[c], spec);
            let lit = b.bin(Opcode::FAdd, acc, sterm);
            let out = b.bin(Opcode::FMul, lit, t);
            b.output(c as u16, out);
        }
        b.output(3, t);
        b.finish(ControlClass::Straight).expect("fragment-simple IR is well-formed")
    }

    fn mimd_program(&self, _target: MimdTarget) -> Result<MimdProgram, DlpError> {
        let s = scene();
        MimdStream::build(
            8,
            4,
            |asm| {
                for i in 0..3u8 {
                    asm.lif(14 + i, s.half[i as usize]);
                    asm.lif(17 + i, s.ambient[i as usize] + s.emissive[i as usize]);
                }
            },
            |asm| {
                // r1..r3 = n, r4..r6 = l, r7 = u, r8 = v.
                for i in 0..8u8 {
                    asm.ld(MemSpace::Smc, 1 + i, R_IN_ADDR, i64::from(i));
                }
                // Bilinear sample into r9; fu in r10, fv r11.
                asm.alu(Opcode::FFloor, 9, 7, 0);
                asm.alu(Opcode::FSub, 10, 7, 9);
                asm.alu(Opcode::F2I, 12, 9, 0); // ui
                asm.alu(Opcode::FFloor, 9, 8, 0);
                asm.alu(Opcode::FSub, 11, 8, 9);
                asm.alu(Opcode::F2I, 13, 9, 0); // vi
                asm.alui(Opcode::Mul, 13, 13, i64::from(TEX_SIZE));
                asm.alu(Opcode::Add, 13, 13, 12); // off00
                asm.alui(Opcode::Add, 13, 13, s.tex_base as i64);
                asm.ld(MemSpace::L1, 7, 13, 0); // t00
                asm.ld(MemSpace::L1, 8, 13, 1); // t10
                asm.ld(MemSpace::L1, 12, 13, i64::from(TEX_SIZE)); // t01
                asm.ld(MemSpace::L1, 13, 13, i64::from(TEX_SIZE) + 1); // t11
                asm.alu(Opcode::FSub, 9, 8, 7);
                asm.alu(Opcode::FMul, 9, 9, 10);
                asm.alu(Opcode::FAdd, 7, 7, 9); // top
                asm.alu(Opcode::FSub, 9, 13, 12);
                asm.alu(Opcode::FMul, 9, 9, 10);
                asm.alu(Opcode::FAdd, 12, 12, 9); // bot
                asm.alu(Opcode::FSub, 9, 12, 7);
                asm.alu(Opcode::FMul, 9, 9, 11);
                asm.alu(Opcode::FAdd, 9, 7, 9); // t
                // ndl -> r7, ndh -> r8 (clamped).
                asm.lif(13, 0.0);
                asm.alu(Opcode::FMul, 7, 1, 4);
                asm.alu(Opcode::FMul, 8, 2, 5);
                asm.alu(Opcode::FAdd, 7, 7, 8);
                asm.alu(Opcode::FMul, 8, 3, 6);
                asm.alu(Opcode::FAdd, 7, 7, 8);
                asm.alu(Opcode::FMax, 7, 7, 13);
                asm.alu(Opcode::FMul, 8, 1, 14);
                asm.alu(Opcode::FMul, 10, 2, 15);
                asm.alu(Opcode::FAdd, 8, 8, 10);
                asm.alu(Opcode::FMul, 10, 3, 16);
                asm.alu(Opcode::FAdd, 8, 8, 10);
                asm.alu(Opcode::FMax, 8, 8, 13);
                asm.alu(Opcode::FMul, 8, 8, 8);
                asm.alu(Opcode::FMul, 8, 8, 8);
                asm.alu(Opcode::FMul, 8, 8, 8); // spec
                for c in 0..3usize {
                    asm.lif(10, s.diffuse[c]);
                    asm.alu(Opcode::FMul, 10, 10, 7);
                    asm.alu(Opcode::FAdd, 10, 17 + c as u8, 10);
                    asm.lif(11, s.specular[c]);
                    asm.alu(Opcode::FMul, 11, 11, 8);
                    asm.alu(Opcode::FAdd, 10, 10, 11);
                    asm.alu(Opcode::FMul, 10, 10, 9);
                    asm.st(MemSpace::Smc, R_OUT_ADDR, c as i64, 10);
                }
                asm.st(MemSpace::Smc, R_OUT_ADDR, 3, 9);
            },
        )
    }

    fn workload(&self, records: usize, seed: u64) -> Workload {
        let s = scene();
        let mut rng = SplitMix64::new(seed ^ 0xF5);
        let tex: Vec<f32> =
            (0..(TEX_SIZE * TEX_SIZE) as usize).map(|_| rng.f32_in(0.0, 1.0)).collect();
        let mut input_words = Vec::with_capacity(records * 8);
        let mut expected = Vec::with_capacity(records * 4);
        for _ in 0..records {
            let mut n: V3 = core::array::from_fn(|_| rng.f32_in(-1.0, 1.0));
            let len = dot(n, n).sqrt().max(1e-3);
            for c in &mut n {
                *c /= len;
            }
            let l: V3 = [0.3, 0.6, 0.74];
            let u = rng.f32_in(0.0, (TEX_SIZE - 2) as f32);
            let v = rng.f32_in(0.0, (TEX_SIZE - 2) as f32);
            for x in n.into_iter().chain(l) {
                input_words.push(Value::from_f32(x));
            }
            input_words.push(Value::from_f32(u));
            input_words.push(Value::from_f32(v));
            for x in shade_fragment(&s, n, l, u, v, &tex) {
                expected.push(Value::from_f32(x));
            }
        }
        let tex_words = tex.iter().map(|&t| Value::from_f32(t)).collect();
        Workload { records, input_words, tex_words, expected }
    }

    fn output_kind(&self) -> OutputKind {
        OutputKind::F32Approx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_are_close_to_paper_row() {
        let a = FragmentSimple.ir().attributes();
        // Paper: 64 insts, ILP 2.96, record 8/4, 4 irregular, 16 constants.
        assert!(a.insts >= 45 && a.insts <= 75, "got {}", a.insts);
        assert_eq!(a.record_read, 8);
        assert_eq!(a.record_write, 4);
        assert_eq!(a.irregular, 4);
        assert_eq!(a.constants, 16);
    }

    #[test]
    fn ir_matches_reference() {
        let k = FragmentSimple;
        let ir = k.ir();
        let w = k.workload(16, 31);
        let tex = w.tex_words.clone();
        let fetch = move |addr: u64| {
            let off = addr.wrapping_sub(memmap::TEX_BASE) as usize;
            tex.get(off).copied().unwrap_or(Value::ZERO)
        };
        for r in 0..16 {
            let rec = &w.input_words[r * 8..r * 8 + 8];
            let got = ir.eval_record(rec, &fetch);
            for c in 0..4 {
                let g = got[c].as_f32();
                let e = w.expected[r * 4 + c].as_f32();
                assert!((g - e).abs() <= 1e-4 * e.abs().max(1.0), "rec {r} out {c}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn mimd_program_fits_l0_store() {
        let p = FragmentSimple.mimd_program(MimdTarget::with_l0()).unwrap();
        assert!(p.len() <= 256, "program has {} insts", p.len());
    }
}
