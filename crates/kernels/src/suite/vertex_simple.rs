//! `vertex-simple` — basic vertex lighting with ambient, diffuse, specular
//! and emissive terms (Table 1, real-time graphics; cf. the Cg tutorial
//! shaders the paper cites).
//!
//! Record: position + normal + per-vertex intensity = 7 words in;
//! transformed position + lit color = 6 words out. ~32 scene constants
//! (modelview matrix, light/half vectors, material colors) — Table 2's
//! `vertex-simple` row.

use dlp_common::{DlpError, SplitMix64, Value};
use dlp_kernel_ir::{ControlClass, Domain, IrBuilder, IrRef, KernelIr};
use trips_isa::{MemSpace, MimdProgram, Opcode};

use crate::refimpl::shade::{clamp0, dot, mat34_mul, mat3_mul, pow8, V3};
use crate::util::{MimdStream, MimdTarget, R_IN_ADDR, R_OUT_ADDR};
use crate::{DlpKernel, OutputKind, Workload};

/// The scene constants shared by the IR, the MIMD program and the
/// reference.
pub struct Scene {
    /// 3×4 modelview (affine) matrix, row-major.
    pub m: [f32; 12],
    /// Unit light direction.
    pub light: V3,
    /// Unit half vector.
    pub half: V3,
    /// Material colors.
    pub ambient: V3,
    /// Diffuse reflectance.
    pub diffuse: V3,
    /// Specular reflectance.
    pub specular: V3,
    /// Emissive color.
    pub emissive: V3,
    /// Global intensity scale.
    pub intensity: f32,
    /// Specular floor added before scaling (keeps the constant count at the
    /// paper's 32).
    pub spec_floor: f32,
}

/// The fixed benchmark scene.
#[must_use]
pub fn scene() -> Scene {
    Scene {
        m: [
            0.866, -0.5, 0.0, 0.2, //
            0.5, 0.866, 0.0, -0.1, //
            0.0, 0.0, 1.0, 0.5,
        ],
        light: [0.267_261_24, 0.534_522_5, 0.801_783_7],
        half: [0.0, 0.6, 0.8],
        ambient: [0.1, 0.1, 0.12],
        diffuse: [0.7, 0.2, 0.2],
        specular: [0.5, 0.5, 0.5],
        emissive: [0.0, 0.02, 0.0],
        intensity: 1.25,
        spec_floor: 0.01,
    }
}

/// Reference shading for one vertex.
#[must_use]
pub fn shade_vertex(s: &Scene, p: V3, n: V3, vert_intensity: f32) -> ([f32; 3], [f32; 3]) {
    let pt = mat34_mul(&s.m, p);
    let m3: [f32; 9] = [
        s.m[0], s.m[1], s.m[2], s.m[4], s.m[5], s.m[6], s.m[8], s.m[9], s.m[10],
    ];
    let nt = mat3_mul(&m3, n);
    let ndl = clamp0(dot(nt, s.light));
    let ndh = clamp0(dot(nt, s.half));
    let spec = pow8(ndh) + s.spec_floor;
    let bright = s.intensity * vert_intensity;
    let color: [f32; 3] = core::array::from_fn(|c| {
        let base = s.ambient[c] + s.emissive[c];
        let lit = base + s.diffuse[c] * ndl + s.specular[c] * spec;
        lit * bright
    });
    (pt, color)
}

/// The vertex-simple kernel.
pub struct VertexSimple;

/// Emit `dot(a, b_consts)` with left-to-right accumulation.
fn ir_dot3(b: &mut IrBuilder, v: [IrRef; 3], c: [IrRef; 3]) -> IrRef {
    let t0 = b.bin(Opcode::FMul, v[0], c[0]);
    let t1 = b.bin(Opcode::FMul, v[1], c[1]);
    let acc = b.bin(Opcode::FAdd, t0, t1);
    let t2 = b.bin(Opcode::FMul, v[2], c[2]);
    b.bin(Opcode::FAdd, acc, t2)
}

impl DlpKernel for VertexSimple {
    fn name(&self) -> &'static str {
        "vertex-simple"
    }

    fn description(&self) -> &'static str {
        "basic vertex lighting with ambient, diffuse, specular and emissive lighting"
    }

    #[allow(clippy::too_many_lines)]
    fn ir(&self) -> KernelIr {
        let s = scene();
        let mut b = IrBuilder::new("vertex-simple", Domain::Graphics, 7, 6);
        let mref: Vec<IrRef> = s
            .m
            .iter()
            .enumerate()
            .map(|(i, &v)| b.constant(format!("m{i}"), Value::from_f32(v)))
            .collect();
        let cvec = |b: &mut IrBuilder, name: &str, v: V3| -> [IrRef; 3] {
            core::array::from_fn(|i| b.constant(format!("{name}{i}"), Value::from_f32(v[i])))
        };
        let lref = cvec(&mut b, "l", s.light);
        let href = cvec(&mut b, "h", s.half);
        let aref = cvec(&mut b, "amb", s.ambient);
        let dref = cvec(&mut b, "dif", s.diffuse);
        let sref = cvec(&mut b, "spc", s.specular);
        let eref = cvec(&mut b, "emi", s.emissive);
        let iref = b.constant("intensity", Value::from_f32(s.intensity));
        let fref = b.constant("spec_floor", Value::from_f32(s.spec_floor));

        let p: [IrRef; 3] = core::array::from_fn(|i| b.input(i as u16));
        let n: [IrRef; 3] = core::array::from_fn(|i| b.input(3 + i as u16));
        let vi = b.input(6);

        // pt = M·(p, 1)
        let mut pt = [p[0]; 3];
        for (row, slot) in pt.iter_mut().enumerate() {
            let d = ir_dot3(&mut b, p, [mref[row * 4], mref[row * 4 + 1], mref[row * 4 + 2]]);
            *slot = b.bin(Opcode::FAdd, d, mref[row * 4 + 3]);
        }
        // nt = upper3x3(M)·n
        let nt: [IrRef; 3] = core::array::from_fn(|row| {
            ir_dot3(&mut b, n, [mref[row * 4], mref[row * 4 + 1], mref[row * 4 + 2]])
        });
        let zero = b.imm(Value::from_f32(0.0));
        let ndl_raw = ir_dot3(&mut b, nt, lref);
        let ndl = b.bin(Opcode::FMax, ndl_raw, zero);
        let ndh_raw = ir_dot3(&mut b, nt, href);
        let ndh = b.bin(Opcode::FMax, ndh_raw, zero);
        // spec = ndh^8 + floor
        let x2 = b.bin(Opcode::FMul, ndh, ndh);
        let x4 = b.bin(Opcode::FMul, x2, x2);
        let x8 = b.bin(Opcode::FMul, x4, x4);
        let spec = b.bin(Opcode::FAdd, x8, fref);
        let bright = b.bin(Opcode::FMul, iref, vi);

        for c in 0..3 {
            b.output(c as u16, pt[c]);
        }
        for c in 0..3 {
            let base = b.bin(Opcode::FAdd, aref[c], eref[c]);
            let dterm = b.bin(Opcode::FMul, dref[c], ndl);
            let acc = b.bin(Opcode::FAdd, base, dterm);
            let sterm = b.bin(Opcode::FMul, sref[c], spec);
            let lit = b.bin(Opcode::FAdd, acc, sterm);
            let out = b.bin(Opcode::FMul, lit, bright);
            b.output(3 + c as u16, out);
        }
        b.finish(ControlClass::Straight).expect("vertex-simple IR is well-formed")
    }

    fn mimd_program(&self, _target: MimdTarget) -> Result<MimdProgram, DlpError> {
        let s = scene();
        // Prologue constants: M rows are re-loaded per use from immediates
        // to stay inside the register budget; vector constants live in
        // r14..r25 (light 14-16, half 17-19, amb+em 20-22, diffuse... too
        // many — diffuse/specular are loaded inline per channel).
        MimdStream::build(
            7,
            6,
            |asm| {
                for i in 0..3u8 {
                    asm.lif(14 + i, s.light[i as usize]);
                    asm.lif(17 + i, s.half[i as usize]);
                    asm.lif(20 + i, s.ambient[i as usize] + s.emissive[i as usize]);
                }
            },
            |asm| {
                // r1..r3 = p, r4..r6 = n, r7 = intensity.
                for i in 0..7u8 {
                    asm.ld(MemSpace::Smc, 1 + i, R_IN_ADDR, i64::from(i));
                }
                // Transformed position rows -> stored immediately.
                for row in 0..3usize {
                    asm.lif(9, s.m[row * 4]);
                    asm.alu(Opcode::FMul, 8, 1, 9);
                    asm.lif(9, s.m[row * 4 + 1]);
                    asm.alu(Opcode::FMul, 9, 2, 9);
                    asm.alu(Opcode::FAdd, 8, 8, 9);
                    asm.lif(9, s.m[row * 4 + 2]);
                    asm.alu(Opcode::FMul, 9, 3, 9);
                    asm.alu(Opcode::FAdd, 8, 8, 9);
                    asm.lif(9, s.m[row * 4 + 3]);
                    asm.alu(Opcode::FAdd, 8, 8, 9);
                    asm.st(MemSpace::Smc, R_OUT_ADDR, row as i64, 8);
                }
                // Transformed normal in r10..r12.
                for row in 0..3usize {
                    asm.lif(9, s.m[row * 4]);
                    asm.alu(Opcode::FMul, 8, 4, 9);
                    asm.lif(9, s.m[row * 4 + 1]);
                    asm.alu(Opcode::FMul, 9, 5, 9);
                    asm.alu(Opcode::FAdd, 8, 8, 9);
                    asm.lif(9, s.m[row * 4 + 2]);
                    asm.alu(Opcode::FMul, 9, 6, 9);
                    asm.alu(Opcode::FAdd, 8, 8, 9);
                    asm.alu(Opcode::Mov, 10 + row as u8, 8, 0);
                }
                // ndl (r8), ndh (r9), clamped at zero.
                asm.lif(13, 0.0);
                asm.alu(Opcode::FMul, 8, 10, 14);
                asm.alu(Opcode::FMul, 9, 11, 15);
                asm.alu(Opcode::FAdd, 8, 8, 9);
                asm.alu(Opcode::FMul, 9, 12, 16);
                asm.alu(Opcode::FAdd, 8, 8, 9);
                asm.alu(Opcode::FMax, 8, 8, 13);
                asm.alu(Opcode::FMul, 9, 10, 17);
                asm.alu(Opcode::FMul, 1, 11, 18);
                asm.alu(Opcode::FAdd, 9, 9, 1);
                asm.alu(Opcode::FMul, 1, 12, 19);
                asm.alu(Opcode::FAdd, 9, 9, 1);
                asm.alu(Opcode::FMax, 9, 9, 13);
                // spec = ndh^8 + floor (r9)
                asm.alu(Opcode::FMul, 9, 9, 9);
                asm.alu(Opcode::FMul, 9, 9, 9);
                asm.alu(Opcode::FMul, 9, 9, 9);
                asm.lif(1, s.spec_floor);
                asm.alu(Opcode::FAdd, 9, 9, 1);
                // bright = intensity const * vertex intensity (r7)
                asm.lif(1, s.intensity);
                asm.alu(Opcode::FMul, 7, 1, 7);
                for c in 0..3usize {
                    asm.lif(1, s.diffuse[c]);
                    asm.alu(Opcode::FMul, 1, 1, 8);
                    asm.alu(Opcode::FAdd, 1, 20 + c as u8, 1);
                    asm.lif(2, s.specular[c]);
                    asm.alu(Opcode::FMul, 2, 2, 9);
                    asm.alu(Opcode::FAdd, 1, 1, 2);
                    asm.alu(Opcode::FMul, 1, 1, 7);
                    asm.st(MemSpace::Smc, R_OUT_ADDR, 3 + c as i64, 1);
                }
            },
        )
    }

    fn workload(&self, records: usize, seed: u64) -> Workload {
        let s = scene();
        let mut rng = SplitMix64::new(seed ^ 0x5151);
        let mut input_words = Vec::with_capacity(records * 7);
        let mut expected = Vec::with_capacity(records * 6);
        for _ in 0..records {
            let p: V3 = core::array::from_fn(|_| rng.f32_in(-2.0, 2.0));
            // A roughly unit normal (not exactly; the shader tolerates it).
            let mut n: V3 = core::array::from_fn(|_| rng.f32_in(-1.0, 1.0));
            let len = dot(n, n).sqrt().max(1e-3);
            for v in &mut n {
                *v /= len;
            }
            let vi = rng.f32_in(0.5, 1.0);
            for v in p {
                input_words.push(Value::from_f32(v));
            }
            for v in n {
                input_words.push(Value::from_f32(v));
            }
            input_words.push(Value::from_f32(vi));
            let (pt, col) = shade_vertex(&s, p, n, vi);
            for v in pt.into_iter().chain(col) {
                expected.push(Value::from_f32(v));
            }
        }
        Workload { records, input_words, tex_words: Vec::new(), expected }
    }

    fn output_kind(&self) -> OutputKind {
        OutputKind::F32Approx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_are_close_to_paper_row() {
        let a = VertexSimple.ir().attributes();
        // Paper: 95 insts, ILP 4.3, record 7/6, 32 constants.
        assert!(a.insts >= 60 && a.insts <= 110, "got {}", a.insts);
        assert_eq!(a.record_read, 7);
        assert_eq!(a.record_write, 6);
        assert_eq!(a.constants, 32);
        assert_eq!(a.irregular, 0);
        assert!(a.ilp > 3.0, "paper reports ILP 4.3, got {}", a.ilp);
    }

    #[test]
    fn ir_matches_reference() {
        let k = VertexSimple;
        let ir = k.ir();
        let w = k.workload(16, 13);
        for r in 0..16 {
            let rec = &w.input_words[r * 7..r * 7 + 7];
            let got = ir.eval_record(rec, &|_| Value::ZERO);
            for c in 0..6 {
                let g = got[c].as_f32();
                let e = w.expected[r * 6 + c].as_f32();
                assert!((g - e).abs() <= 1e-4 * e.abs().max(1.0), "rec {r} out {c}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn mimd_program_fits_l0_store() {
        let p = VertexSimple.mimd_program(MimdTarget::with_l0()).unwrap();
        assert!(p.len() <= 256, "program has {} insts", p.len());
    }
}
