//! Shared helpers: f32 packing and the MIMD stream-loop skeleton.

use dlp_common::{DlpError, Value};
use trips_isa::{MemSpace, MimdAsm, MimdProgram, OpRole, Opcode, REG_NODE_ID, REG_RECORDS};

use crate::memmap;

/// Pack two `f32` values into one 64-bit word (`lo` in bits 0..32, `hi` in
/// bits 32..64) — several kernels use this to match the paper's record
/// sizes, which are measured in 64-bit words.
#[must_use]
pub fn pack2f32(lo: f32, hi: f32) -> Value {
    Value::from_u64(u64::from(lo.to_bits()) | (u64::from(hi.to_bits()) << 32))
}

/// Inverse of [`pack2f32`].
#[must_use]
pub fn unpack2f32(v: Value) -> (f32, f32) {
    let bits = v.bits();
    (f32::from_bits(bits as u32), f32::from_bits((bits >> 32) as u32))
}

/// MIMD lowering choices a kernel's program builder must honor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MimdTarget {
    /// Indexed constants live in the L0 data store (`lut`); otherwise they
    /// are read from the table image at [`memmap::TABLE_BASE`] through the
    /// L1 (the plain **M** configuration).
    pub tables_in_l0: bool,
}

impl MimdTarget {
    /// The **M-D** configuration (L0 data store present).
    #[must_use]
    pub fn with_l0() -> Self {
        MimdTarget { tables_in_l0: true }
    }

    /// The plain **M** configuration.
    #[must_use]
    pub fn without_l0() -> Self {
        MimdTarget { tables_in_l0: false }
    }

    /// Emit a table read `rd = table[ra + off]` honoring the target.
    pub fn table_read(&self, asm: &mut MimdAsm, rd: u8, ra: u8, off: i64) {
        if self.tables_in_l0 {
            asm.lut(rd, ra, off);
        } else {
            asm.ld(MemSpace::L1, rd, ra, memmap::TABLE_BASE as i64 + off);
        }
    }
}

/// Register conventions of the MIMD stream skeleton: the kernel body may
/// freely use `r1..=r25`; the skeleton owns `r26..=r28` and the machine
/// conventions own `r29..=r31`.
pub struct MimdStream;

/// Register holding the current record's input base address inside the body.
pub const R_IN_ADDR: u8 = 26;
/// Register holding the current record's output base address inside the body.
pub const R_OUT_ADDR: u8 = 27;
/// Register holding the current record index inside the body.
pub const R_REC: u8 = 28;

impl MimdStream {
    /// Build the standard record-strided SPMD loop:
    ///
    /// ```text
    /// rec = node_rank
    /// while rec < records:
    ///     r26 = BASE_IN  + rec * in_words
    ///     r27 = BASE_OUT + rec * out_words
    ///     <body>
    ///     rec += node_count
    /// halt
    /// ```
    ///
    /// The `prologue` runs once before the loop (hoisted constant loads —
    /// the MIMD analogue of operand revitalization); the body reads inputs
    /// with `ld rd, [r26 + w]`, writes outputs with `st [r27 + w], rs`.
    /// The body may clobber `r1..=r19`; registers the prologue initializes
    /// should live in `r20..=r25` so the loop preserves them.
    ///
    /// # Errors
    ///
    /// Propagates assembly errors from the body (undefined labels, bad
    /// registers).
    pub fn build(
        in_words: u16,
        out_words: u16,
        prologue: impl FnOnce(&mut MimdAsm),
        body: impl FnOnce(&mut MimdAsm),
    ) -> Result<MimdProgram, DlpError> {
        let mut asm = MimdAsm::new();
        asm.set_role(OpRole::Overhead);
        prologue(&mut asm);
        asm.alu(Opcode::Mov, R_REC, REG_NODE_ID, 0);
        asm.label("__rec_loop");
        asm.alu(Opcode::Tgeu, 1, R_REC, REG_RECORDS);
        asm.bnz(1, "__rec_done");
        asm.alui(Opcode::Mul, R_IN_ADDR, R_REC, i64::from(in_words));
        asm.alui(Opcode::Add, R_IN_ADDR, R_IN_ADDR, memmap::BASE_IN as i64);
        asm.alui(Opcode::Mul, R_OUT_ADDR, R_REC, i64::from(out_words));
        asm.alui(Opcode::Add, R_OUT_ADDR, R_OUT_ADDR, memmap::BASE_OUT as i64);
        asm.set_role(OpRole::Useful);
        body(&mut asm);
        asm.set_role(OpRole::Overhead);
        asm.alu(Opcode::Add, R_REC, R_REC, trips_isa::REG_NODE_COUNT);
        asm.jmp("__rec_loop");
        asm.label("__rec_done");
        asm.halt();
        asm.assemble()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let v = pack2f32(1.5, -2.25);
        let (a, b) = unpack2f32(v);
        assert_eq!(a, 1.5);
        assert_eq!(b, -2.25);
    }

    #[test]
    fn skeleton_assembles() {
        let p = MimdStream::build(
            3,
            1,
            |asm| {
                asm.li(20, 7);
            },
            |asm| {
                asm.ld(MemSpace::Smc, 1, R_IN_ADDR, 0);
                asm.st(MemSpace::Smc, R_OUT_ADDR, 0, 1);
            },
        )
        .unwrap();
        assert!(p.len() > 8);
        let d = p.disassemble();
        assert!(d.contains("jmp"));
        assert!(d.contains("halt"));
    }

    #[test]
    fn table_read_lowering_differs_by_target() {
        let mut a = MimdAsm::new();
        MimdTarget::with_l0().table_read(&mut a, 1, 2, 5);
        a.halt();
        let p = a.assemble().unwrap();
        assert!(p.disassemble().contains("lut"));

        let mut b = MimdAsm::new();
        MimdTarget::without_l0().table_read(&mut b, 1, 2, 5);
        b.halt();
        let p = b.assemble().unwrap();
        assert!(p.disassemble().contains("ld.l1"));
    }
}
