//! # dlp-kernels
//!
//! The paper's benchmark suite (Table 1): data-parallel kernels from four
//! domains —
//!
//! * **Multimedia**: [`convert`] (RGB→YIQ), [`dct`] (2-D 8×8 DCT),
//!   [`highpassfilter`] (3×3 high-pass);
//! * **Scientific**: [`fft`] (complex butterfly of a 1024-point FFT),
//!   [`lu`] (dense LU elimination update);
//! * **Network / security** (1500-byte packets): [`md5`],
//!   [`blowfish`], [`rijndael`] (AES-128), all implemented from scratch
//!   (including π-digit generation for the Blowfish key schedule and GF(2⁸)
//!   S-box construction for AES);
//! * **Real-time graphics**: [`vertex_simple`], [`fragment_simple`],
//!   [`vertex_reflection`], [`fragment_reflection`], [`vertex_skinning`],
//!   and [`anisotropic`] (characterized only, excluded from performance
//!   tables exactly as the paper's footnote 1 does).
//!
//! Every kernel provides four artifacts through the [`DlpKernel`] trait:
//!
//! 1. an **independent reference implementation** (pure Rust) used as the
//!    oracle for every simulated configuration,
//! 2. a **dataflow IR** ([`dlp_kernel_ir::KernelIr`]) — the unrolled form
//!    the vector/SIMD-style configurations execute, from which the Table 2
//!    attributes are computed,
//! 3. a **MIMD program builder** — the rolled, branching form the local-PC
//!    configurations execute, parameterized by whether indexed constants
//!    live in the L0 data store (M-D) or behind the L1 (M),
//! 4. a deterministic **workload generator** producing the input stream,
//!    any irregular-memory region (textures), and the expected outputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index-coupled loops over matrix rows / color channels read more clearly
// with explicit indices here; iterator adaptors obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod refimpl;
mod suite;
mod util;

pub use suite::{
    anisotropic, blowfish, convert, dct, fft, fragment_reflection, fragment_simple,
    highpassfilter, lu, md5, rijndael, vertex_reflection, vertex_simple, vertex_skinning,
};
pub use util::{pack2f32, unpack2f32, MimdStream, MimdTarget};

use dlp_common::Value;
use dlp_kernel_ir::KernelIr;
use trips_isa::MimdProgram;

/// The shared word-address memory map every kernel and driver agrees on.
pub mod memmap {
    /// First word of the input record stream.
    pub const BASE_IN: u64 = 0;
    /// First word of the output record stream.
    pub const BASE_OUT: u64 = 1_000_000;
    /// First word of lookup-table images (when not in the L0 store).
    pub const TABLE_BASE: u64 = 2_000_000;
    /// First word of the irregular-access region (texture memory).
    pub const TEX_BASE: u64 = 2_100_000;
    /// First word of per-record scratch space used by MIMD kernels with
    /// multi-pass structure (e.g. the 2-D DCT's row-pass intermediate).
    pub const SCRATCH_BASE: u64 = 3_000_000;
}

/// A deterministic workload for one kernel: inputs, any irregular-memory
/// region, and the reference-computed expected outputs.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Number of records.
    pub records: usize,
    /// The input stream (`records * record_in_words` words, at
    /// [`memmap::BASE_IN`]).
    pub input_words: Vec<Value>,
    /// Contents of the irregular region at [`memmap::TEX_BASE`]
    /// (empty when the kernel makes no irregular accesses).
    pub tex_words: Vec<Value>,
    /// Expected output stream (`records * record_out_words` words).
    pub expected: Vec<Value>,
}

/// How floating-point outputs should be compared against the reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputKind {
    /// Bit-exact integer outputs.
    ExactBits,
    /// `f32` outputs compared with a relative tolerance (operation
    /// reassociation between forms is allowed).
    F32Approx,
    /// Two `f32`s packed per word, compared with tolerance.
    PackedF32Approx,
}

/// One benchmark of the suite.
///
/// Kernels are stateless descriptions (`Send + Sync`), so experiment
/// harnesses can sweep them from worker threads.
pub trait DlpKernel: Send + Sync {
    /// Kernel name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// One-line description (Table 1).
    fn description(&self) -> &'static str;

    /// The unrolled dataflow IR for one record.
    fn ir(&self) -> KernelIr;

    /// The rolled MIMD node program (stream loop + real branches).
    ///
    /// # Errors
    ///
    /// Returns an error if the program fails to assemble — a kernel bug.
    fn mimd_program(&self, target: MimdTarget) -> Result<MimdProgram, dlp_common::DlpError>;

    /// Generate a deterministic workload of `records` records.
    fn workload(&self, records: usize, seed: u64) -> Workload;

    /// The table image the MIMD form indexes (concatenated, entry 0 at
    /// offset 0). Defaults to the IR's tables; kernels whose rolled form
    /// turns unrolled scalar constants back into indexed ones (dct's
    /// coefficient table, md5's K/S/g tables) override this.
    fn mimd_table_image(&self) -> Vec<Value> {
        self.ir().tables().iter().flat_map(|t| t.entries.iter().copied()).collect()
    }

    /// How to compare simulated output words against the expectation.
    fn output_kind(&self) -> OutputKind;

    /// Whether the kernel participates in the performance experiments
    /// (anisotropic-filter is characterized but excluded, per the paper's
    /// footnote 1).
    fn in_perf_suite(&self) -> bool {
        true
    }
}

/// All kernels of Table 1, in the paper's order.
#[must_use]
pub fn suite() -> Vec<Box<dyn DlpKernel>> {
    vec![
        Box::new(convert::Convert),
        Box::new(dct::Dct),
        Box::new(highpassfilter::HighPassFilter),
        Box::new(fft::Fft),
        Box::new(lu::Lu),
        Box::new(md5::Md5),
        Box::new(blowfish::Blowfish),
        Box::new(rijndael::Rijndael),
        Box::new(vertex_simple::VertexSimple),
        Box::new(fragment_simple::FragmentSimple),
        Box::new(vertex_reflection::VertexReflection),
        Box::new(fragment_reflection::FragmentReflection),
        Box::new(vertex_skinning::VertexSkinning),
        Box::new(anisotropic::Anisotropic),
    ]
}

/// Compare a simulated output stream against a workload's expectation.
///
/// Returns the index of the first mismatching word, or `None` when all
/// match under the kernel's [`OutputKind`] rules.
#[must_use]
pub fn first_mismatch(kind: OutputKind, got: &[Value], expected: &[Value]) -> Option<usize> {
    fn f32_close(a: f32, b: f32) -> bool {
        if a == b {
            return true;
        }
        if a.is_nan() || b.is_nan() {
            return a.is_nan() && b.is_nan();
        }
        let scale = a.abs().max(b.abs()).max(1e-3);
        (a - b).abs() <= 2e-4 * scale
    }
    for (i, (g, e)) in got.iter().zip(expected.iter()).enumerate() {
        let ok = match kind {
            OutputKind::ExactBits => g.bits() == e.bits(),
            OutputKind::F32Approx => f32_close(g.as_f32(), e.as_f32()),
            OutputKind::PackedF32Approx => {
                let (g0, g1) = unpack2f32(*g);
                let (e0, e1) = unpack2f32(*e);
                f32_close(g0, e0) && f32_close(g1, e1)
            }
        };
        if !ok {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fourteen_kernels() {
        let s = suite();
        assert_eq!(s.len(), 14);
        // 13 participate in performance experiments; anisotropic does not.
        assert_eq!(s.iter().filter(|k| k.in_perf_suite()).count(), 13);
    }

    #[test]
    fn suite_names_are_unique_and_match_paper() {
        let s = suite();
        let names: Vec<&str> = s.iter().map(|k| k.name()).collect();
        for expect in [
            "convert",
            "dct",
            "highpassfilter",
            "fft",
            "lu",
            "md5",
            "blowfish",
            "rijndael",
            "vertex-simple",
            "fragment-simple",
            "vertex-reflection",
            "fragment-reflection",
            "vertex-skinning",
            "anisotropic-filter",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }

    #[test]
    fn every_ir_validates_and_every_workload_is_consistent() {
        for k in suite() {
            let ir = k.ir();
            ir.validate().unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            let w = k.workload(8, 42);
            assert_eq!(
                w.input_words.len(),
                8 * ir.record_in_words() as usize,
                "{} input stream size",
                k.name()
            );
            assert_eq!(
                w.expected.len(),
                8 * ir.record_out_words() as usize,
                "{} expected stream size",
                k.name()
            );
        }
    }

    #[test]
    fn ir_evaluator_matches_reference_on_every_kernel() {
        for k in suite() {
            let ir = k.ir();
            let w = k.workload(6, 7);
            let in_w = ir.record_in_words() as usize;
            let out_w = ir.record_out_words() as usize;
            let tex = w.tex_words.clone();
            let lookup = move |addr: u64| -> Value {
                let off = addr.wrapping_sub(memmap::TEX_BASE) as usize;
                tex.get(off).copied().unwrap_or(Value::ZERO)
            };
            for r in 0..w.records {
                let rec = &w.input_words[r * in_w..(r + 1) * in_w];
                let got = ir.eval_record(rec, &lookup);
                let exp = &w.expected[r * out_w..(r + 1) * out_w];
                assert_eq!(
                    first_mismatch(k.output_kind(), &got, exp),
                    None,
                    "{} record {r}: IR evaluation diverges from reference",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn mimd_table_images_cover_ir_tables() {
        // The rolled form may *add* indexed state (dct's coefficients,
        // md5's K/S/g) but must never drop the IR's tables: the IR image is
        // always a prefix of the MIMD image, so a table offset valid for
        // the dataflow form stays valid for the rolled one.
        for k in suite() {
            let ir_image: Vec<Value> =
                k.ir().tables().iter().flat_map(|t| t.entries.iter().copied()).collect();
            let mimd_image = k.mimd_table_image();
            assert!(
                mimd_image.len() >= ir_image.len(),
                "{}: MIMD image smaller than the IR's tables",
                k.name()
            );
            for (i, (a, b)) in ir_image.iter().zip(mimd_image.iter()).enumerate() {
                assert_eq!(a.bits(), b.bits(), "{} entry {i}", k.name());
            }
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for k in suite() {
            let a = k.workload(4, 99);
            let b = k.workload(4, 99);
            assert_eq!(a.input_words, b.input_words, "{}", k.name());
            assert_eq!(a.expected, b.expected, "{}", k.name());
        }
    }
}
