#[test]
fn check_pi_tables_head() {
    use dlp_kernels::refimpl::pi::pi_words;
    let w = pi_words(20);
    let expect: [u32; 20] = [
        0x243f6a88, 0x85a308d3, 0x13198a2e, 0x03707344, 0xa4093822, 0x299f31d0,
        0x082efa98, 0xec4e6c89, 0x452821e6, 0x38d01377, 0xbe5466cf, 0x34e90c6c,
        0xc0ac29b7, 0xc97c50dd, 0x3f84d5b5, 0xb5470917, 0x9216d5d9, 0x8979fb1b,
        0xd1310ba6, 0x98dfb5ac,
    ];
    for (i, (&g, &e)) in w.iter().zip(expect.iter()).enumerate() {
        assert_eq!(g, e, "word {i}: got {g:08x} want {e:08x}");
    }
}

#[test]
fn check_pi_tables_tail() {
    use dlp_kernels::refimpl::pi::pi_words;
    // The last Blowfish S-box word (S3[255]) is 0x3ac372e6.
    let w = pi_words(18 + 1024);
    assert_eq!(w[18 + 1023], 0x3ac372e6, "got {:08x}", w[18 + 1023]);
}
