//! The Table 6 comparison against specialized hardware.
//!
//! The specialized columns are **published numbers transcribed from the
//! paper** (we obviously cannot run an MPC7447, Imagine, Tarantula,
//! CryptoManiac or QuadroFX); our column is computed from simulation with
//! the same clock normalization the paper applies. The target is *shape* —
//! who wins and by roughly what factor — not absolute equality; see
//! EXPERIMENTS.md for the unit interpretations.

use dlp_common::DlpError;
use serde::{Deserialize, Serialize};

use crate::sweep::Sweep;
use crate::{default_records, recommend, ExperimentParams};

/// Performance units used in Table 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Units {
    /// Thousands of kernel iterations per second (DSP rows; clock
    /// normalized to the MPC7447's 1.3 GHz).
    KiloItersPerSec,
    /// Useful operations per cycle (dct vs Imagine, fft/lu vs Tarantula).
    OpsPerCycle,
    /// Cycles per block — *smaller is better* (crypto rows vs
    /// CryptoManiac).
    CyclesPerBlock,
    /// Million fragments per second at the QuadroFX's 450 MHz.
    MFragmentsPerSec,
    /// Million triangles (vertices) per second at the P4's 2.4 GHz.
    MTrianglesPerSec,
}

impl Units {
    /// Whether smaller numbers mean better performance.
    #[must_use]
    pub fn smaller_is_better(self) -> bool {
        matches!(self, Units::CyclesPerBlock)
    }

    /// Human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Units::KiloItersPerSec => "k-iterations/sec",
            Units::OpsPerCycle => "ops/cycle",
            Units::CyclesPerBlock => "cycles/block",
            Units::MFragmentsPerSec => "M fragments/sec",
            Units::MTrianglesPerSec => "M triangles/sec",
        }
    }
}

/// One Table 6 row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table6Row {
    /// Benchmark name.
    pub kernel: String,
    /// Our simulated TRIPS value (clock-normalized, best configuration).
    pub trips: f64,
    /// The paper's reported TRIPS value (for reference).
    pub paper_trips: Option<f64>,
    /// The specialized hardware's published value.
    pub specialized: Option<f64>,
    /// The reference hardware.
    pub hardware: &'static str,
    /// Units.
    pub units: Units,
}

/// One published Table 6 reference row: (kernel, paper TRIPS value,
/// specialized value, hardware, units).
pub type ReferenceRow = (&'static str, Option<f64>, Option<f64>, &'static str, Units);

/// Published Table 6 reference data.
#[must_use]
pub fn paper_reference() -> Vec<ReferenceRow> {
    vec![
        ("convert", Some(19016.0), Some(960.0), "MPC 7447, 1.3GHz (DSP)", Units::KiloItersPerSec),
        ("highpassfilter", Some(2820.0), Some(907.0), "MPC 7447, 1.3GHz (DSP)", Units::KiloItersPerSec),
        ("dct", Some(33.9), Some(8.2), "Imagine (multimedia)", Units::OpsPerCycle),
        ("fft", Some(14.4), Some(28.0), "Tarantula (vector core)", Units::OpsPerCycle),
        ("lu", Some(10.6), Some(15.0), "Tarantula (vector core)", Units::OpsPerCycle),
        ("md5", Some(14.6), None, "CryptoManiac", Units::CyclesPerBlock),
        ("blowfish", Some(6.0), Some(80.0), "CryptoManiac", Units::CyclesPerBlock),
        ("rijndael", Some(12.0), Some(100.0), "CryptoManiac", Units::CyclesPerBlock),
        ("fragment-reflection", Some(86.0), None, "Nvidia QuadroFX 450MHz", Units::MFragmentsPerSec),
        ("fragment-simple", Some(193.0), Some(1500.0), "Nvidia QuadroFX 450MHz", Units::MFragmentsPerSec),
        ("vertex-reflection", Some(434.0), None, "2.4GHz Pentium4", Units::MTrianglesPerSec),
        ("vertex-simple", Some(418.0), Some(64.0), "2.4GHz Pentium4", Units::MTrianglesPerSec),
        ("vertex-skinning", Some(207.0), None, "2.4GHz Pentium4", Units::MTrianglesPerSec),
    ]
}

/// Regenerate Table 6: run each benchmark on its best configuration and
/// convert to the row's units.
///
/// All thirteen runs go through one parallel [`Sweep`] batch; the rows
/// come back in `paper_reference()` order.
///
/// # Errors
///
/// Propagates simulation failures and verification mismatches.
pub fn table6(params: &ExperimentParams, record_scale: usize) -> Result<Vec<Table6Row>, DlpError> {
    let reference = paper_reference();
    let mut sweep = Sweep::new();
    for (name, ..) in &reference {
        let id = sweep.add_kernel_by_name(name).ok_or_else(|| DlpError::Internal {
            detail: format!("Table 6 reference row '{name}' is not a suite kernel"),
        })?;
        let config = recommend(&sweep.kernel(id).ir().attributes()).config;
        // record_scale 0 means "smoke test": clamp to a minimal workload.
        let records =
            if record_scale == 0 { 24 } else { default_records(name, record_scale) };
        sweep.push_config(id, config, records, params);
    }
    let report = sweep.run();
    report.ensure_verified()?;

    let mut rows = Vec::new();
    for ((name, paper_trips, specialized, hardware, units), cell) in
        reference.into_iter().zip(&report.cells)
    {
        let stats = cell.outcome.stats().ok_or_else(|| DlpError::Internal {
            detail: format!("{name}: cell has no statistics after ensure_verified"),
        })?;
        let cyc_per_rec = stats.cycles() as f64 / cell.records.max(1) as f64;
        let trips = match units {
            Units::OpsPerCycle => stats.ops_per_cycle().0,
            Units::CyclesPerBlock => cyc_per_rec,
            // DSP rows: one "iteration" = a 64-record tile (a DSP inner
            // loop over an image row segment); clock 1.3 GHz, reported in
            // thousands/sec. See EXPERIMENTS.md for the interpretation.
            Units::KiloItersPerSec => 1.3e9 / (cyc_per_rec * 64.0) / 1e3,
            Units::MFragmentsPerSec => 450.0e6 / cyc_per_rec / 1e6,
            Units::MTrianglesPerSec => 2.4e9 / cyc_per_rec / 1e6,
        };
        rows.push(Table6Row {
            kernel: name.to_string(),
            trips,
            paper_trips,
            specialized,
            hardware,
            units,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_rows_cover_the_perf_suite() {
        let names: Vec<&str> = paper_reference().iter().map(|r| r.0).collect();
        assert_eq!(names.len(), 13);
        assert!(names.contains(&"convert"));
        assert!(names.contains(&"vertex-skinning"));
        assert!(!names.contains(&"anisotropic-filter"));
    }

    #[test]
    fn crypto_rows_are_smaller_is_better() {
        for (name, _, _, _, units) in paper_reference() {
            if matches!(name, "md5" | "blowfish" | "rijndael") {
                assert!(units.smaller_is_better());
            } else {
                assert!(!units.smaller_is_better());
            }
        }
    }

    #[test]
    fn units_have_labels() {
        for u in [
            Units::KiloItersPerSec,
            Units::OpsPerCycle,
            Units::CyclesPerBlock,
            Units::MFragmentsPerSec,
            Units::MTrianglesPerSec,
        ] {
            assert!(!u.label().is_empty());
        }
    }
}
