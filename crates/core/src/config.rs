//! The Table 5 machine configurations.

use std::fmt;

use serde::{Deserialize, Serialize};
use trips_sched::TargetConfig;
use trips_sim::MechanismSet;

/// A run-time machine configuration (paper Table 5).
///
/// The mechanisms compose into as many as 20 meaningful combinations; the
/// paper evaluates these five plus the unmodified baseline, which cover the
/// application set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MachineConfig {
    /// The unmodified ILP-oriented TRIPS core.
    Baseline,
    /// SMC + instruction revitalization: the vector/SIMD-like machine.
    S,
    /// **S** + operand revitalization (persistent scalar constants).
    SO,
    /// **S-O** + the L0 data store (lookup tables at the ALUs).
    SOD,
    /// SMC + local program counters: the fine-grain MIMD machine.
    M,
    /// **M** + the L0 data store.
    MD,
}

impl MachineConfig {
    /// All six configurations in Table 5 order (baseline first).
    pub const ALL: [MachineConfig; 6] = [
        MachineConfig::Baseline,
        MachineConfig::S,
        MachineConfig::SO,
        MachineConfig::SOD,
        MachineConfig::M,
        MachineConfig::MD,
    ];

    /// The five DLP configurations (everything but the baseline).
    pub const DLP: [MachineConfig; 5] = [
        MachineConfig::S,
        MachineConfig::SO,
        MachineConfig::SOD,
        MachineConfig::M,
        MachineConfig::MD,
    ];

    /// The simulator mechanism flags for this configuration.
    #[must_use]
    pub fn mechanisms(self) -> MechanismSet {
        match self {
            MachineConfig::Baseline => MechanismSet::baseline(),
            MachineConfig::S => MechanismSet::simd(),
            MachineConfig::SO => MechanismSet::simd_operand(),
            MachineConfig::SOD => MechanismSet::simd_operand_l0(),
            MachineConfig::M => MechanismSet::mimd(),
            MachineConfig::MD => MechanismSet::mimd_l0(),
        }
    }

    /// The scheduler-facing lowering choices for this configuration.
    #[must_use]
    pub fn target(self) -> TargetConfig {
        let m = self.mechanisms();
        TargetConfig {
            smc: m.smc,
            l0_data_store: m.l0_data_store,
            operand_revitalization: m.operand_revitalization,
            dlp_unroll: m.inst_revitalization,
        }
    }

    /// Whether this configuration executes in MIMD mode (local PCs).
    #[must_use]
    pub fn is_mimd(self) -> bool {
        self.mechanisms().local_pc
    }

    /// The paper's architecture-model description (Table 5, last column).
    #[must_use]
    pub fn architecture_model(self) -> &'static str {
        match self {
            MachineConfig::Baseline => "ILP-oriented TRIPS (hyperblocks)",
            MachineConfig::S => "SIMD",
            MachineConfig::SO => "SIMD + scalar constant access",
            MachineConfig::SOD => "SIMD + scalar constant access + lookup table",
            MachineConfig::M => "MIMD",
            MachineConfig::MD => "MIMD + lookup table",
        }
    }

    /// Render the Table 5 row: (L0 inst store, L0 data store,
    /// inst revitalization, operand revitalization).
    #[must_use]
    pub fn table5_row(self) -> String {
        let m = self.mechanisms();
        let yn = |b: bool| if b { "Y" } else { "N" };
        format!(
            "{:<9} {:^6} {:^6} {:^6} {:^6}  {}",
            self.to_string(),
            yn(m.local_pc),
            yn(m.l0_data_store),
            yn(m.inst_revitalization),
            yn(m.operand_revitalization),
            self.architecture_model()
        )
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineConfig::Baseline => write!(f, "baseline"),
            MachineConfig::S => write!(f, "S"),
            MachineConfig::SO => write!(f, "S-O"),
            MachineConfig::SOD => write!(f, "S-O-D"),
            MachineConfig::M => write!(f, "M"),
            MachineConfig::MD => write!(f, "M-D"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configurations_are_coherent() {
        for c in MachineConfig::ALL {
            assert!(c.mechanisms().is_coherent(), "{c}");
        }
    }

    #[test]
    fn table5_matches_paper() {
        // Table 5: S = inst revit only; S-O adds op revit; S-O-D adds data
        // L0; M = inst L0 (local PC); M-D adds data L0.
        let s = MachineConfig::S.mechanisms();
        assert!(s.inst_revitalization && !s.operand_revitalization && !s.l0_data_store && !s.local_pc);
        let so = MachineConfig::SO.mechanisms();
        assert!(so.operand_revitalization && !so.l0_data_store);
        let sod = MachineConfig::SOD.mechanisms();
        assert!(sod.operand_revitalization && sod.l0_data_store);
        let m = MachineConfig::M.mechanisms();
        assert!(m.local_pc && !m.l0_data_store && !m.inst_revitalization);
        let md = MachineConfig::MD.mechanisms();
        assert!(md.local_pc && md.l0_data_store);
        // All five DLP configs use the SMC (§5.3: "In all five
        // configurations, one memory bank per row is configured as SMC").
        for c in MachineConfig::DLP {
            assert!(c.mechanisms().smc, "{c} must enable the SMC");
        }
        assert!(!MachineConfig::Baseline.mechanisms().smc);
    }

    #[test]
    fn display_names_match_paper() {
        let names: Vec<String> = MachineConfig::ALL.iter().map(ToString::to_string).collect();
        assert_eq!(names, ["baseline", "S", "S-O", "S-O-D", "M", "M-D"]);
    }

    #[test]
    fn table5_rows_render() {
        for c in MachineConfig::ALL {
            let row = c.table5_row();
            assert!(row.contains('Y') || c == MachineConfig::Baseline);
        }
    }
}
