//! The Figure 5 experiment: per-configuration speedups and the flexible
//! architecture's harmonic-mean advantage.

use std::collections::BTreeMap;

use dlp_common::{harmonic_mean, DlpError};
use dlp_kernels::suite;
use serde::{Deserialize, Serialize};

use crate::sweep::Sweep;
use crate::{default_records, recommend, ExperimentParams, MachineConfig};

/// One benchmark's Figure 5 data: speedup of each configuration over the
/// baseline (measured in execution cycles, like the paper).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure5Row {
    /// Kernel name.
    pub kernel: String,
    /// Speedup per configuration.
    pub speedup: BTreeMap<MachineConfig, f64>,
    /// The best configuration measured.
    pub best: MachineConfig,
    /// The configuration the Table 3 recommender picks (the flexible
    /// architecture's choice).
    pub recommended: MachineConfig,
    /// Baseline useful-ops-per-cycle (the Table 4 metric).
    pub baseline_ops_per_cycle: f64,
}

/// The flexible architecture's summary (Figure 5's last bar).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlexibleSummary {
    /// Harmonic-mean speedup of the flexible architecture over baseline.
    pub flexible_hm: f64,
    /// Harmonic-mean speedup of each fixed configuration over baseline.
    pub fixed_hm: BTreeMap<MachineConfig, f64>,
    /// Flexible's advantage over each fixed configuration
    /// (`flexible_hm / fixed_hm − 1`; the paper reports 55% vs S, 20% vs
    /// S-O, 5% vs M-D).
    pub advantage_over: BTreeMap<MachineConfig, f64>,
}

/// The whole Figure 5 dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure5 {
    /// Per-kernel rows.
    pub rows: Vec<Figure5Row>,
    /// The flexible-architecture summary.
    pub summary: FlexibleSummary,
}

/// Run every performance-suite kernel on every configuration and compute
/// Figure 5. `record_scale` scales the workload sizes (1 = the standard
/// experiment; smaller values make smoke tests fast).
///
/// The whole kernel × configuration grid is dispatched through the
/// [`sweep`](crate::sweep) engine, so each kernel is scheduled once per
/// mechanism set and the cells run on all available workers — and the
/// numbers are identical to a serial run by construction.
///
/// Every run is verified against the reference implementation; a
/// mismatch is reported as an error, because a simulator that computes
/// wrong answers has no business reporting speedups.
///
/// # Errors
///
/// Propagates scheduling/simulation failures and verification mismatches.
pub fn flexible(params: &ExperimentParams, record_scale: usize) -> Result<Figure5, DlpError> {
    let mut sweep = Sweep::new();
    // (kernel name, its Table 3 recommendation) in suite order.
    let mut entries: Vec<(String, MachineConfig)> = Vec::new();
    for kernel in suite() {
        if !kernel.in_perf_suite() {
            continue;
        }
        // record_scale 0 means "smoke test": clamp to the minimum workload.
        let records = if record_scale == 0 {
            24
        } else {
            default_records(kernel.name(), record_scale)
        };
        let recommended = recommend(&kernel.ir().attributes()).config;
        let name = kernel.name().to_string();
        let id = sweep.add_kernel(kernel);
        sweep.push_config(id, MachineConfig::Baseline, records, params);
        for config in MachineConfig::DLP {
            sweep.push_config(id, config, records, params);
        }
        entries.push((name, recommended));
    }
    let report = sweep.run();
    report.ensure_verified()?;

    let mut rows = Vec::new();
    for (name, recommended) in entries {
        let missing = |what: &str| DlpError::Internal {
            detail: format!("{name}: {what} missing after ensure_verified"),
        };
        let base = report.stats(&name, "baseline").ok_or_else(|| missing("baseline cell"))?;
        let mut speedup = BTreeMap::new();
        for config in MachineConfig::DLP {
            let out = report
                .stats(&name, &config.to_string())
                .ok_or_else(|| missing("configuration cell"))?;
            speedup.insert(config, out.speedup_over(base));
        }
        // Prefer the simplest configuration on (near-)ties: S-O and S-O-D
        // perform identically on kernels without lookup tables, and the
        // cheaper machine should win the tie.
        let max = speedup.values().fold(0.0f64, |a, &b| a.max(b));
        let best = *speedup
            .iter()
            .find(|(_, &s)| s >= max * 0.999)
            .ok_or_else(|| missing("best configuration"))?
            .0;
        rows.push(Figure5Row {
            kernel: name,
            speedup,
            best,
            recommended,
            baseline_ops_per_cycle: base.ops_per_cycle().0,
        });
    }

    // Flexible = each kernel on its recommended configuration.
    let flex: Vec<f64> = rows
        .iter()
        .map(|r| {
            // The recommender may pick S-O-D where S-O-D wasn't measured?
            // All five are measured, so just look it up.
            r.speedup[&r.recommended]
        })
        .collect();
    let flexible_hm = harmonic_mean(&flex).unwrap_or(0.0);
    let mut fixed_hm = BTreeMap::new();
    let mut advantage_over = BTreeMap::new();
    for config in MachineConfig::DLP {
        let xs: Vec<f64> = rows.iter().map(|r| r.speedup[&config]).collect();
        let hm = harmonic_mean(&xs).unwrap_or(0.0);
        fixed_hm.insert(config, hm);
        if hm > 0.0 {
            advantage_over.insert(config, flexible_hm / hm - 1.0);
        }
    }

    Ok(Figure5 { rows, summary: FlexibleSummary { flexible_hm, fixed_hm, advantage_over } })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature Figure 5 (tiny workloads) — the full experiment runs in
    /// the bench harness; this proves the machinery end to end.
    #[test]
    fn miniature_figure5_runs_and_verifies() {
        let params = ExperimentParams::default();
        // record_scale 0 clamps to minimum workloads.
        let fig = flexible(&params, 0).expect("all kernels verify on all configs");
        assert_eq!(fig.rows.len(), 13);
        for row in &fig.rows {
            assert_eq!(row.speedup.len(), 5, "{}", row.kernel);
            for (c, s) in &row.speedup {
                assert!(*s > 0.0, "{} on {c}: speedup {s}", row.kernel);
            }
        }
        assert!(fig.summary.flexible_hm > 0.0);
    }
}
