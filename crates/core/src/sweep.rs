//! The parallel experiment sweep engine.
//!
//! Every table and figure in the paper is some slice of the same grid:
//! *kernel × machine configuration (× parameter knob)*. This module runs
//! that grid as one batch instead of one nested loop per binary:
//!
//! * **Work stealing** — cells are pushed into a shared
//!   [`crossbeam::deque::Injector`] and drained by scoped worker
//!   threads, so a slow cell (dct on the baseline) never serializes the
//!   rest of the sweep behind it.
//! * **Schedule caching** — lowering a kernel (placement, routing,
//!   unrolling, or MIMD replication) depends only on the kernel, the
//!   mechanism set, the grid/timing model, and the *unroll factor* the
//!   record count caps. The engine coarsens the record count down to
//!   that unroll cap (MIMD lowerings are record-independent outright;
//!   dataflow cells share whenever `natural_unroll.min(records)`
//!   agrees), deduplicates, and prepares each distinct
//!   [`PreparedProgram`] exactly once, sharing it across all cells that
//!   need it ([`SweepReport::plans_prepared`] vs
//!   [`SweepReport::plan_reuses`] reports the savings). Note the
//!   default experiment grid (one record count per kernel, every
//!   kernel × configuration pair distinct) legitimately reports
//!   `plan_reuses: 0` — every cell really is a distinct lowering; the
//!   cache pays off in grids that vary records, seeds, or repeat
//!   configurations (scaling studies, ablations).
//! * **Graceful degradation** — a failing cell (panic, watchdog,
//!   unrecoverable injected fault) is captured as a structured
//!   [`CellOutcome::Failed`] with the [`DlpError::kind`] taxonomy,
//!   attempt count, and soft-timeout flag; it never aborts the batch
//!   or poisons sibling cells. A [`SweepPolicy`] can grant failed
//!   cells bounded retries (each with an independently re-salted fault
//!   schedule) and a per-cell wall-clock soft budget.
//! * **Deterministic seeding** — each cell's workload seed is derived
//!   from [`ExperimentParams::seed`] and the kernel's name alone, so
//!   every configuration of a kernel sees the same records (speedups
//!   stay comparable) and the results are bit-identical no matter how
//!   many workers run the sweep or how the queue interleaves
//!   (`parallel == serial`, enforced by the `sweep_determinism` test).
//! * **Persistence (opt-in)** — a [`crate::store::ResultStore`] serves
//!   previously-computed cells by content address so a warm re-run
//!   executes nothing, a [`crate::store::ManifestWriter`] checkpoints
//!   each completed cell so an interrupted sweep can resume executing
//!   only the missing ones, and a [`crate::store::DeadLetterQueue`]
//!   captures retry-exhausted cells as replayable records. All of it is
//!   observationally pure: the canonical report
//!   ([`SweepReport::canonical`]) of a warm-store run is bit-identical
//!   to a cold one, at any worker count (the `store_sweep` test).
//! * **Circuit breakers (opt-in)** — with
//!   [`SweepPolicy::with_breaker`], a configuration that fails `n`
//!   consecutive cells has its remaining *unknown* cells skipped as
//!   [`CellOutcome::Skipped`] instead of executed. Determinism is
//!   preserved by dispatching each configuration's cells as one
//!   sequential chain in push order, so "consecutive" never depends on
//!   worker interleaving.
//!
//! The output is a serializable [`SweepReport`] — the artifact behind
//! `BENCH_sweep.json` — with per-cell statistics, verification results,
//! wall-clock, and the harmonic-mean aggregation the figure/table
//! binaries share.
//!
//! # Example
//!
//! ```
//! use dlp_core::sweep::Sweep;
//! use dlp_core::{ExperimentParams, MachineConfig};
//!
//! let params = ExperimentParams::default();
//! let mut sweep = Sweep::new();
//! let convert = sweep
//!     .add_kernel_by_name("convert")
//!     .expect("convert is in the suite");
//! for config in [MachineConfig::Baseline, MachineConfig::S] {
//!     sweep.push_config(convert, config, 24, &params);
//! }
//! let report = sweep.run();
//! report.ensure_verified().expect("both cells verify");
//! // Smoke-scale workloads don't preserve performance orderings (setup
//! // DMA dominates at 24 records), so assert plumbing, not shape.
//! let speedup = report.speedup("convert", "S", "baseline").unwrap();
//! assert!(speedup.is_finite() && speedup > 0.0);
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crossbeam::deque::{Injector, Steal};
use dlp_common::{harmonic_mean, DlpError, SimStats};
use dlp_kernels::{suite, DlpKernel};
use serde::{Deserialize, Serialize};
use trips_sim::MechanismSet;

use crate::runner::{
    natural_unroll, prepare_kernel, run_prepared_batch_in, run_prepared_in, BatchLane,
    PreparedProgram, RunScratch, WorkloadCache,
};
use crate::store::{
    self, cacheable, lowering_fingerprint, DeadLetterQueue, Digest, DlqRecord, ManifestEntry,
    ManifestWriter, ResultStore, StoreKey, SweepManifest, DLQ_VERSION,
};
use crate::{ExperimentParams, MachineConfig};

/// Handle to a kernel registered with a [`Sweep`].
pub type KernelId = usize;

/// One cell of the experiment grid: a kernel, a mechanism set, a record
/// count, and the full experiment parameters it runs under.
///
/// Carrying complete [`ExperimentParams`] per cell is what lets one
/// sweep mix heterogeneous experiments — the ablation knobs vary
/// `params.timing`, the scaling study varies `params.grid` — while the
/// schedule cache still keys on exactly the inputs that matter.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Which registered kernel to run.
    pub kernel: KernelId,
    /// The named machine configuration, when the cell corresponds to
    /// one (`None` for raw mechanism-set cells, e.g. the §5.3
    /// configuration-space sweep).
    pub config: Option<MachineConfig>,
    /// The mechanism set to simulate.
    pub mech: MechanismSet,
    /// Records to process (the verified output length).
    pub records: usize,
    /// Grid, timing, and base seed for this cell.
    pub params: ExperimentParams,
    /// Free-form experiment tag carried into the report (e.g.
    /// `"figure5"` or `"A1 delay=20"`).
    pub label: String,
}

impl CellSpec {
    /// The configuration display name this cell reports (and keys)
    /// under: the [`MachineConfig`] name, or the mechanism-set
    /// rendering for raw cells.
    #[must_use]
    pub fn config_name(&self) -> String {
        self.config.map_or_else(|| self.mech.to_string(), |c| c.to_string())
    }
}

/// A batch of experiment cells, run in parallel with schedule caching.
///
/// Build one with [`Sweep::new`], register kernels, push cells, then
/// call [`Sweep::run`].
pub struct Sweep {
    kernels: Vec<Box<dyn DlpKernel>>,
    cells: Vec<CellSpec>,
    threads: usize,
    policy: SweepPolicy,
    workload_cache: bool,
    result_store: Option<Arc<ResultStore>>,
    manifest: Option<Arc<ManifestWriter>>,
    resume: Option<SweepManifest>,
    dlq: Option<Arc<DeadLetterQueue>>,
    lpt_schedule: bool,
}

/// Degradation policy for failing cells: how hard a sweep tries before
/// accepting a [`CellOutcome::Failed`], and how much wall-clock one cell
/// may soak up before the engine stops investing in it.
///
/// The default (`max_attempts: 1`, no soft timeout) is exactly the
/// historical behavior, and keeps sweeps bit-deterministic: wall-clock
/// only enters the picture when a soft timeout is explicitly set.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepPolicy {
    /// Execution attempts granted per cell (clamped to ≥ 1). Each retry
    /// re-salts the cell's [`dlp_common::FaultPlan`], so a cell that
    /// drew an unrecoverable fault schedule gets an independent — still
    /// fully deterministic — draw, while deterministic failures
    /// (malformed programs, genuine deadlocks) fail every attempt and
    /// report the final error with the attempt count.
    pub max_attempts: u32,
    /// Per-cell wall-clock soft budget in milliseconds. A running cell
    /// is never preempted (simulated statistics stay exact); instead a
    /// cell that finishes over budget is denied further retries and
    /// counted in [`SweepReport::soft_timeouts`]. `None` disables the
    /// check.
    pub soft_timeout_ms: Option<f64>,
    /// Per-configuration circuit breaker: after this many *consecutive*
    /// failed cells of one configuration, its remaining unknown cells
    /// are skipped ([`CellOutcome::Skipped`]) instead of executed.
    /// Cells whose outcome is already known (store or resume hits) are
    /// served regardless and feed the failure counter; a success resets
    /// it. `None` (the default) disables the breaker and keeps each
    /// cell an independent work-stealing unit.
    pub breaker_threshold: Option<u32>,
}

impl Default for SweepPolicy {
    fn default() -> Self {
        SweepPolicy { max_attempts: 1, soft_timeout_ms: None, breaker_threshold: None }
    }
}

impl SweepPolicy {
    /// Grants each cell up to `n` execution attempts.
    #[must_use]
    pub fn with_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Sets the per-cell wall-clock soft budget.
    #[must_use]
    pub fn with_soft_timeout_ms(mut self, ms: f64) -> Self {
        self.soft_timeout_ms = Some(ms);
        self
    }

    /// Opens each configuration's circuit breaker after `n` consecutive
    /// failures (clamped to ≥ 1).
    #[must_use]
    pub fn with_breaker(mut self, n: u32) -> Self {
        self.breaker_threshold = Some(n.max(1));
        self
    }
}

impl Default for Sweep {
    fn default() -> Self {
        Self::new()
    }
}

/// The worker count [`Sweep::new`] picks for a host with `cores` CPUs:
/// one worker on a single-core host (spawning a second thread there only
/// adds contention), otherwise `cores` clamped to 2..=8 — at least two so
/// the work-stealing path is always exercised (results are
/// thread-count-independent, so this is free), at most eight because the
/// cells are simulation-bound and oversubscription only adds scheduling
/// noise.
#[must_use]
pub fn default_worker_count(cores: usize) -> usize {
    if cores <= 1 {
        1
    } else {
        cores.clamp(2, 8)
    }
}

impl Sweep {
    /// An empty sweep sized for the host by [`default_worker_count`]
    /// applied to `available_parallelism`.
    #[must_use]
    pub fn new() -> Self {
        let cores =
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self::with_threads(default_worker_count(cores))
    }

    /// An empty sweep with an explicit worker count (clamped to ≥ 1).
    /// One worker degenerates to a serial sweep — by design
    /// bit-identical to any parallel run.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Sweep {
            kernels: Vec::new(),
            cells: Vec::new(),
            threads: threads.max(1),
            policy: SweepPolicy::default(),
            workload_cache: true,
            result_store: None,
            manifest: None,
            resume: None,
            dlq: None,
            lpt_schedule: true,
        }
    }

    /// The worker count [`Sweep::run`] will use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Installs a degradation policy for [`Sweep::run`].
    pub fn set_policy(&mut self, policy: SweepPolicy) {
        self.policy = policy;
    }

    /// The degradation policy [`Sweep::run`] will apply.
    #[must_use]
    pub fn policy(&self) -> SweepPolicy {
        self.policy
    }

    /// Enables or disables the shared [`WorkloadCache`] (on by default).
    /// Caching is observationally pure — statistics are bit-identical
    /// either way — so the switch exists for A/B timing comparisons and
    /// the CI purity cross-check, not correctness.
    pub fn set_workload_cache(&mut self, enabled: bool) {
        self.workload_cache = enabled;
    }

    /// Enable or disable longest-predicted-first dispatch ordering
    /// (on by default). When enabled, phase 2 sorts its work-stealing
    /// groups by descending static cycle bound (DESIGN.md §13) so the
    /// slowest lowerings start first and no worker idles behind one
    /// giant cell stranded at the tail of the queue. Disabling falls
    /// back to push (arrival) order. Either way the report — and every
    /// determinism contract over it — is bit-identical: results are
    /// keyed by cell index, so ordering only moves wall-clock.
    pub fn set_lpt_schedule(&mut self, enabled: bool) {
        self.lpt_schedule = enabled;
    }

    /// Whether [`Sweep::run`] will share workloads through a
    /// [`WorkloadCache`].
    #[must_use]
    pub fn workload_cache_enabled(&self) -> bool {
        self.workload_cache
    }

    /// Attaches a content-addressed result store: [`Sweep::run`] serves
    /// cells whose [`StoreKey`] is already present without executing
    /// them, and persists newly-computed cacheable outcomes.
    /// Observationally pure — [`SweepReport::canonical`] is
    /// bit-identical with a cold store, a warm store, or none.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use std::sync::Arc;
    /// use dlp_core::store::ResultStore;
    /// use dlp_core::sweep::Sweep;
    ///
    /// let mut sweep = Sweep::new();
    /// sweep.set_store(Arc::new(ResultStore::open("dlp-store")?));
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn set_store(&mut self, store: Arc<ResultStore>) {
        self.result_store = Some(store);
    }

    /// The attached result store, if any.
    #[must_use]
    pub fn store(&self) -> Option<&Arc<ResultStore>> {
        self.result_store.as_ref()
    }

    /// Attaches a checkpoint writer: every completed cell (executed or
    /// store-served, but not breaker-skipped — a resumed run should
    /// re-evaluate those) is appended as one flushed JSONL line, so a
    /// killed sweep loses only its in-flight cells.
    pub fn set_manifest(&mut self, writer: ManifestWriter) {
        self.manifest = Some(Arc::new(writer));
    }

    /// Resumes from a loaded checkpoint: cells the manifest records are
    /// served from it without executing. The caller is responsible for
    /// validating [`SweepManifest::grid_digest`] against
    /// [`Sweep::grid_digest`] first (the `sweep` bin refuses a
    /// mismatch); as a last defense a manifest whose cell count differs
    /// from this grid is ignored wholesale.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use std::path::Path;
    /// use dlp_core::store::{ManifestWriter, SweepManifest};
    /// use dlp_core::sweep::Sweep;
    ///
    /// # fn grid() -> Sweep { Sweep::new() }
    /// let mut sweep = grid(); // same grid the interrupted run pushed
    /// let path = Path::new("BENCH_sweep.manifest.jsonl");
    /// let manifest = SweepManifest::load(path)?;
    /// assert_eq!(manifest.grid_digest, sweep.grid_digest(), "same grid");
    /// sweep.set_resume(manifest);
    /// sweep.set_manifest(ManifestWriter::append_to(path)?);
    /// let report = sweep.run(); // executes only the missing cells
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn set_resume(&mut self, manifest: SweepManifest) {
        self.resume = Some(manifest);
    }

    /// Attaches a dead-letter queue: cells that exhaust their retries
    /// with a non-[`cacheable`] failure (watchdog, unrecoverable fault,
    /// internal error, soft timeout) are appended as replayable
    /// [`DlqRecord`]s.
    pub fn set_dlq(&mut self, dlq: Arc<DeadLetterQueue>) {
        self.dlq = Some(dlq);
    }

    /// Every cell's content address, in push order. This is the store's
    /// key schema made visible: bins use it to create manifests
    /// ([`ManifestWriter::create`]) and validate resumes
    /// ([`Sweep::grid_digest`]).
    #[must_use]
    pub fn cell_keys(&self) -> Vec<StoreKey> {
        // The fingerprint needs each cell's *effective* unroll — the
        // one prepare_kernel will actually choose — so probe
        // natural_unroll once per coarse plan group (cheap: IR
        // validation + instruction count, no placement).
        let mut effective: Vec<usize> = self.cells.iter().map(|c| c.records).collect();
        let mut groups: Vec<(PlanKey, Vec<usize>)> = Vec::new();
        for (i, cell) in self.cells.iter().enumerate() {
            let key = PlanKey::of(cell, 0);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(i),
                None => groups.push((key, vec![i])),
            }
        }
        for (key, members) in &groups {
            if key.mech.local_pc {
                // MIMD lowering never reads the record count.
                for &i in members {
                    effective[i] = 0;
                }
                continue;
            }
            let params = ExperimentParams {
                grid: key.grid,
                timing: key.timing,
                ..ExperimentParams::default()
            };
            let natural = catch_cell(|| {
                natural_unroll(self.kernels[key.kernel].as_ref(), key.mech, &params)
            })
            // A failing probe will fail again at prepare time; an
            // unbounded cap keys such cells by raw record count.
            .unwrap_or(usize::MAX);
            for &i in members {
                effective[i] = natural.min(self.cells[i].records);
            }
        }
        self.cells
            .iter()
            .zip(&effective)
            .map(|(cell, &unroll)| {
                let kernel = self.kernels[cell.kernel].as_ref();
                let lowering = lowering_fingerprint(
                    kernel,
                    cell.mech,
                    cell.params.grid,
                    &cell.params.timing,
                    unroll,
                );
                StoreKey::new(
                    kernel.name(),
                    &cell.config_name(),
                    cell.records,
                    derive_seed(cell.params.seed, kernel.name()),
                    &cell.params.fault,
                    cell.params.watchdog,
                    self.policy.max_attempts.max(1),
                    lowering,
                )
            })
            .collect()
    }

    /// The digests of [`Sweep::cell_keys`], in push order — what
    /// [`ManifestWriter::create`] pins a checkpoint to.
    #[must_use]
    pub fn cell_digests(&self) -> Vec<Digest> {
        self.cell_keys().into_iter().map(|k| k.digest).collect()
    }

    /// The grid-identity digest a manifest of this sweep carries.
    #[must_use]
    pub fn grid_digest(&self) -> Digest {
        store::grid_digest(&self.cell_digests())
    }

    /// Registers a kernel and returns its handle.
    pub fn add_kernel(&mut self, kernel: Box<dyn DlpKernel>) -> KernelId {
        self.kernels.push(kernel);
        self.kernels.len() - 1
    }

    /// Registers the named kernel from the benchmark suite.
    pub fn add_kernel_by_name(&mut self, name: &str) -> Option<KernelId> {
        let kernel = suite().into_iter().find(|k| k.name() == name)?;
        Some(self.add_kernel(kernel))
    }

    /// Registers every performance-suite kernel, returning handles in
    /// suite order.
    pub fn add_perf_suite(&mut self) -> Vec<KernelId> {
        suite()
            .into_iter()
            .filter(|k| k.in_perf_suite())
            .map(|k| self.add_kernel(k))
            .collect()
    }

    /// The registered kernel behind a handle.
    #[must_use]
    pub fn kernel(&self, id: KernelId) -> &dyn DlpKernel {
        self.kernels[id].as_ref()
    }

    /// Adds one cell to the grid.
    pub fn push_cell(&mut self, cell: CellSpec) {
        self.cells.push(cell);
    }

    /// Adds a cell for a named machine configuration; the label defaults
    /// to the configuration's display name.
    pub fn push_config(
        &mut self,
        kernel: KernelId,
        config: MachineConfig,
        records: usize,
        params: &ExperimentParams,
    ) {
        self.push_cell(CellSpec {
            kernel,
            config: Some(config),
            mech: config.mechanisms(),
            records,
            params: *params,
            label: config.to_string(),
        });
    }

    /// Number of cells queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Runs every cell and collects a [`SweepReport`].
    ///
    /// Three phases. **Phase 0** computes each cell's [`StoreKey`]
    /// (only when a store is attached) and resolves cells whose outcome
    /// is already known — from the resume manifest first, then the
    /// result store. **Phase 1** deduplicates the remaining cells'
    /// lowerings (kernel × mechanisms × grid × timing × unroll cap) and
    /// prepares each distinct one once; a fully-resolved sweep prepares
    /// nothing, which is what makes a warm re-run O(lookup). **Phase
    /// 2** executes the pending cells against the shared plans,
    /// streaming each completion into the store / manifest /
    /// dead-letter queue as it lands.
    ///
    /// Cell failures (e.g. incoherent mechanism sets in the
    /// configuration-space sweep) are captured per cell as
    /// [`CellOutcome::Failed`], never aborting the batch; use
    /// [`SweepReport::ensure_verified`] when failures should be errors.
    ///
    /// Results are ordered exactly as the cells were pushed, and the
    /// statistics are independent of the worker count.
    #[must_use]
    pub fn run(&self) -> SweepReport {
        let started = Instant::now();
        // Counter baseline, so the report's hit/miss columns cover this
        // run even when one store handle serves several sweeps.
        let (store_hits_before, store_misses_before) =
            self.result_store.as_ref().map_or((0, 0), |s| (s.hits(), s.misses()));

        // ---- Phase 0: plan identity and previously-known outcomes. --
        // Linear-scan dedup: TimingParams is Eq but not Hash, and sweep
        // grids are tens-to-hundreds of cells, far below the n² that
        // would justify hashing around it.
        let unroll_caps = self.unroll_caps();
        let mut plan_keys: Vec<PlanKey> = Vec::new();
        let mut cell_plan: Vec<usize> = Vec::with_capacity(self.cells.len());
        for (cell, &cap) in self.cells.iter().zip(&unroll_caps) {
            let key = PlanKey::of(cell, cap);
            let idx = match plan_keys.iter().position(|k| *k == key) {
                Some(i) => i,
                None => {
                    plan_keys.push(key);
                    plan_keys.len() - 1
                }
            };
            cell_plan.push(idx);
        }

        let keys: Option<Vec<StoreKey>> = self.result_store.as_ref().map(|_| self.cell_keys());

        let mut resolved: Vec<Option<Resolved>> = vec![None; self.cells.len()];
        let mut resumed_cells = 0usize;
        if let Some(manifest) = &self.resume {
            if manifest.cells == self.cells.len() {
                for (slot, entry) in resolved.iter_mut().zip(&manifest.entries) {
                    if let Some(e) = entry {
                        *slot = Some(Resolved {
                            outcome: e.outcome.clone(),
                            wall_ms: e.wall_ms,
                            attempts: e.attempts,
                            origin: Origin::Resumed,
                        });
                        resumed_cells += 1;
                    }
                }
            }
        }
        if let (Some(store), Some(keys)) = (&self.result_store, &keys) {
            for (i, slot) in resolved.iter_mut().enumerate() {
                if slot.is_some() {
                    continue;
                }
                if let Some(outcome) = store.get(&keys[i]) {
                    let attempts = match &outcome {
                        CellOutcome::Failed { attempts, .. } => *attempts,
                        _ => 1,
                    };
                    // Checkpoint store hits too, so a resume never
                    // depends on the store still being warm.
                    if let Some(writer) = &self.manifest {
                        writer.append(
                            i,
                            &ManifestEntry { outcome: outcome.clone(), wall_ms: 0.0, attempts },
                        );
                    }
                    *slot = Some(Resolved { outcome, wall_ms: 0.0, attempts, origin: Origin::Store });
                }
            }
        }

        // ---- Phase 1: prepare only the lowerings pending cells need. -
        let needed: Vec<usize> = (0..plan_keys.len())
            .filter(|&p| {
                cell_plan
                    .iter()
                    .zip(&resolved)
                    .any(|(&cp, r)| cp == p && r.is_none())
            })
            .collect();
        let prepared: Vec<Result<PreparedProgram, DlpError>> =
            self.parallel_map(needed.len(), |j| {
                let key = &plan_keys[needed[j]];
                let params = ExperimentParams {
                    grid: key.grid,
                    timing: key.timing,
                    ..ExperimentParams::default()
                };
                catch_cell(|| {
                    prepare_kernel(
                        self.kernels[key.kernel].as_ref(),
                        key.mech,
                        key.unroll_cap,
                        &params,
                    )
                })
            });
        let mut plans: Vec<Option<Result<PreparedProgram, DlpError>>> =
            (0..plan_keys.len()).map(|_| None).collect();
        for (&p, plan) in needed.iter().zip(prepared) {
            plans[p] = Some(plan);
        }

        // ---- Phase 2: execute pending cells against the shared plans.
        // Each worker carries one RunScratch for its whole drain: the
        // engine arena makes repeat cells allocation-free, and the
        // (optional) workload cache is shared across all workers.
        //
        // The work-stealing unit is a *group* of cells. Three shapes:
        // one sequential chain per configuration when the circuit
        // breaker is armed (so "consecutive failures" is well-defined
        // regardless of worker interleaving); lane-*batched* groups of
        // pending cells sharing one lowering and watchdog — record
        // counts may differ, short lanes ride as mask-padded tails
        // (DESIGN.md §12) — packed greedily into maximal-occupancy
        // batches and dispatched in lockstep through the batched
        // engine (DESIGN.md §10) with bit-identical per-cell results;
        // and singleton chains for everything else. Batching is skipped
        // under a breaker (its failure chains are sequential by
        // definition) and under a soft timeout (a wall-clock budget is
        // per-cell and cannot be attributed inside a shared dispatch).
        let breaker = self.policy.breaker_threshold.filter(|&t| t > 0);
        let groups: Vec<DispatchGroup> = match breaker {
            Some(_) => {
                let mut order: Vec<(String, Vec<usize>)> = Vec::new();
                for (i, cell) in self.cells.iter().enumerate() {
                    let config = cell.config_name();
                    match order.iter_mut().find(|(c, _)| *c == config) {
                        Some((_, members)) => members.push(i),
                        None => order.push((config, vec![i])),
                    }
                }
                order.into_iter().map(|(_, members)| DispatchGroup::Chain(members)).collect()
            }
            None if self.policy.soft_timeout_ms.is_none() => {
                let mut groups: Vec<DispatchGroup> = Vec::new();
                let mut pending: Vec<(BatchKey, Vec<usize>)> = Vec::new();
                for i in 0..self.cells.len() {
                    if resolved[i].is_some() {
                        groups.push(DispatchGroup::Chain(vec![i]));
                        continue;
                    }
                    let key = (cell_plan[i], self.cells[i].params.watchdog);
                    match pending.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, members)) => members.push(i),
                        None => pending.push((key, vec![i])),
                    }
                }
                // Greedy packer: each key's members (push order) fill
                // batches to the lane-word limit before opening the
                // next — the maximal-occupancy packing, since lanes
                // can never cross lowerings. A leftover singleton runs
                // as a scalar chain.
                for (_, members) in pending {
                    for chunk in members.chunks(trips_sim::batch::MAX_CLASSES) {
                        if chunk.len() >= 2 {
                            groups.push(DispatchGroup::Batch(chunk.to_vec()));
                        } else {
                            groups.push(DispatchGroup::Chain(chunk.to_vec()));
                        }
                    }
                }
                groups
            }
            None => (0..self.cells.len()).map(|i| DispatchGroup::Chain(vec![i])).collect(),
        };
        // Static dispatch accounting: a pure function of the grid, the
        // policy, and the resolve phase — never of worker interleaving.
        let cells_batched = groups
            .iter()
            .map(|g| match g {
                DispatchGroup::Batch(members) => members.len(),
                DispatchGroup::Chain(_) => 0,
            })
            .sum();
        let batch_dispatches =
            groups.iter().filter(|g| matches!(g, DispatchGroup::Batch(_))).count();
        let batch_occupancy = if batch_dispatches == 0 {
            0.0
        } else {
            cells_batched as f64
                / (batch_dispatches * trips_sim::batch::MAX_CLASSES) as f64
        };
        // ---- Longest-predicted-first (LPT) dispatch order. Weight
        // each group by the largest static cycle estimate among its
        // pending members (the analyzer's sound bound extrapolated
        // per record — DESIGN.md §13) and hand the heaviest groups to
        // the work-stealing drain first, so a giant cell can't start
        // last and strand one worker past the others' finish line.
        // Already-resolved cells and failed lowerings weigh nothing.
        // The sort is stable (ties keep push order) and per-cell
        // results are keyed by index, so the report and every
        // determinism contract over it are order-invariant; only
        // wall-clock moves.
        let groups: Vec<DispatchGroup> = if self.lpt_schedule {
            let weight = |members: &[usize]| -> u64 {
                members
                    .iter()
                    .map(|&i| match (&resolved[i], &plans[cell_plan[i]]) {
                        (None, Some(Ok(p))) => p.estimate_ticks(self.cells[i].records),
                        _ => 0,
                    })
                    .max()
                    .unwrap_or(0)
            };
            let mut keyed: Vec<(u64, DispatchGroup)> = groups
                .into_iter()
                .map(|g| {
                    let w = match &g {
                        DispatchGroup::Batch(m) | DispatchGroup::Chain(m) => weight(m),
                    };
                    (w, g)
                })
                .collect();
            keyed.sort_by_key(|&(w, _)| std::cmp::Reverse(w));
            keyed.into_iter().map(|(_, g)| g).collect()
        } else {
            groups
        };
        let workload_cache =
            if self.workload_cache { Some(Arc::new(WorkloadCache::new())) } else { None };
        let group_results: Vec<Vec<(usize, Resolved)>> = self.parallel_map_with(
            groups.len(),
            || match &workload_cache {
                Some(cache) => RunScratch::with_workload_cache(Arc::clone(cache)),
                None => RunScratch::new(),
            },
            |scratch, g| match &groups[g] {
                DispatchGroup::Batch(members) => {
                    let results = self.execute_batch(scratch, members, &plans, &cell_plan);
                    members
                        .iter()
                        .zip(results)
                        .map(|(&i, (outcome, wall_ms, attempts))| {
                            self.record_completion(i, &outcome, wall_ms, attempts, &keys);
                            (i, Resolved { outcome, wall_ms, attempts, origin: Origin::Executed })
                        })
                        .collect()
                }
                DispatchGroup::Chain(members) => {
                    let mut out = Vec::with_capacity(members.len());
                    let mut consecutive = 0u32;
                    let mut open = false;
                    for &i in members {
                        let result = if let Some(known) = resolved[i].clone() {
                            // A known outcome is always served — the
                            // breaker only guards *unknown* work.
                            known
                        } else if open {
                            let outcome = CellOutcome::Skipped {
                                reason: format!(
                                    "circuit breaker open for {}: {consecutive} consecutive failures",
                                    self.cells[i].config_name()
                                ),
                                failures: consecutive,
                            };
                            Resolved { outcome, wall_ms: 0.0, attempts: 0, origin: Origin::Skipped }
                        } else {
                            let (outcome, wall_ms, attempts) =
                                self.execute_cell(scratch, i, &plans, &cell_plan);
                            self.record_completion(i, &outcome, wall_ms, attempts, &keys);
                            Resolved { outcome, wall_ms, attempts, origin: Origin::Executed }
                        };
                        if matches!(result.outcome, CellOutcome::Failed { .. }) {
                            consecutive += 1;
                        } else if matches!(result.outcome, CellOutcome::Ran { .. }) {
                            consecutive = 0;
                        }
                        if breaker.is_some_and(|t| consecutive >= t) {
                            open = true;
                        }
                        out.push((i, result));
                    }
                    out
                }
            },
        );
        let mut cell_results: Vec<Option<Resolved>> = vec![None; self.cells.len()];
        for group in group_results {
            for (i, result) in group {
                cell_results[i] = Some(result);
            }
        }
        let cell_results: Vec<Resolved> = cell_results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| Resolved {
                    // Unreachable by construction (every cell is in
                    // exactly one group); degrade, don't panic.
                    outcome: CellOutcome::Failed {
                        error: "internal: cell missing from dispatch groups".into(),
                        kind: "internal".into(),
                        attempts: 0,
                        timed_out: false,
                    },
                    wall_ms: 0.0,
                    attempts: 0,
                    origin: Origin::Executed,
                })
            })
            .collect();

        let (workload_cache_hits, workload_cache_misses) =
            workload_cache.as_ref().map_or((0, 0), |c| (c.hits(), c.misses()));
        let (store_hits, store_misses) = self.result_store.as_ref().map_or((0, 0), |s| {
            (s.hits() - store_hits_before, s.misses() - store_misses_before)
        });

        let soft_timeouts = match self.policy.soft_timeout_ms {
            Some(budget) => cell_results
                .iter()
                .filter(|r| r.origin == Origin::Executed && r.wall_ms > budget)
                .count(),
            None => 0,
        };
        let extra_attempts = cell_results
            .iter()
            .filter(|r| r.origin == Origin::Executed)
            .map(|r| u64::from(r.attempts.saturating_sub(1)))
            .sum();
        let cells_executed =
            cell_results.iter().filter(|r| r.origin == Origin::Executed).count();
        let cells_skipped =
            cell_results.iter().filter(|r| r.origin == Origin::Skipped).count();
        let dlq_appended = self.dlq.as_ref().map_or(0, |d| d.appended());
        // Provenance, like the cache counters: a warm run prepares no
        // plans and so carries no warnings or predictions.
        let analysis_warnings: u64 = plans
            .iter()
            .flatten()
            .filter_map(|p| p.as_ref().ok())
            .map(|p| p.analysis().warnings.len() as u64)
            .sum();

        let cells = self
            .cells
            .iter()
            .enumerate()
            .zip(cell_results)
            .map(|((i, spec), result)| SweepCell {
                kernel: self.kernels[spec.kernel].name().to_string(),
                config: spec.config_name(),
                label: spec.label.clone(),
                records: spec.records,
                outcome: result.outcome,
                wall_ms: result.wall_ms,
                predicted_cycles: match &plans[cell_plan[i]] {
                    Some(Ok(p)) => Some(p.bound_cycles(spec.records)),
                    _ => None,
                },
            })
            .collect();

        SweepReport {
            threads: self.threads,
            plans_prepared: needed.len(),
            plan_reuses: self.cells.len().saturating_sub(plan_keys.len()),
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            soft_timeouts,
            extra_attempts,
            workload_cache_hits,
            workload_cache_misses,
            store_hits,
            store_misses,
            cells_executed,
            cells_skipped,
            resumed_cells,
            dlq_appended,
            cells_batched,
            batch_dispatches,
            batch_occupancy,
            analysis_warnings,
            cells,
        }
    }

    /// Runs one lane-batched group: attempt 1 of every cell in lockstep
    /// through [`run_prepared_batch_in`], then scalar retries (attempts
    /// 2..) for any lane whose first attempt failed. Per-cell outcomes
    /// are bit-identical to [`Sweep::execute_cell`]: batched attempt 1
    /// is bit-identical to scalar attempt 1 (the `batched_identity`
    /// tier-1 contract), and the retry chain re-enters the scalar path
    /// with the same salt sequence.
    fn execute_batch(
        &self,
        scratch: &mut RunScratch,
        members: &[usize],
        plans: &[Option<Result<PreparedProgram, DlpError>>],
        cell_plan: &[usize],
    ) -> Vec<(CellOutcome, f64, u32)> {
        let started = Instant::now();
        let max_attempts = self.policy.max_attempts.max(1);
        let prepared = match &plans[cell_plan[members[0]]] {
            Some(Ok(prepared)) => prepared,
            // Lowering failed (or, unreachably, was never prepared):
            // the scalar path renders the exact per-cell diagnostics.
            _ => {
                return members
                    .iter()
                    .map(|&i| self.execute_cell(scratch, i, plans, cell_plan))
                    .collect();
            }
        };
        // All members share one plan key, hence one kernel.
        let kernel = self.kernels[self.cells[members[0]].kernel].as_ref();
        let lanes: Vec<BatchLane> = members
            .iter()
            .map(|&i| {
                let cell = &self.cells[i];
                BatchLane {
                    records: cell.records,
                    params: ExperimentParams {
                        seed: derive_seed(cell.params.seed, kernel.name()),
                        ..cell.params
                    },
                }
            })
            .collect();
        let Ok(first_attempts) =
            catch_cell(|| Ok(run_prepared_batch_in(kernel, prepared, &lanes, scratch)))
        else {
            // A panic in the batched engine degrades exactly like a
            // scalar panic: each cell retries through the scalar path.
            return members
                .iter()
                .map(|&i| self.execute_cell(scratch, i, plans, cell_plan))
                .collect();
        };
        let batch_ms = started.elapsed().as_secs_f64() * 1e3;

        members
            .iter()
            .zip(first_attempts)
            .map(|(&i, first)| {
                let mut err = match first {
                    Ok((stats, mismatch)) => {
                        return (CellOutcome::Ran { stats, mismatch }, batch_ms, 1);
                    }
                    Err(e) => e,
                };
                // Scalar retries, continuing the salt sequence where
                // the (batched) first attempt left off.
                let cell = &self.cells[i];
                let retries_started = Instant::now();
                let mut attempt = 1u32;
                while attempt < max_attempts {
                    attempt += 1;
                    let fault = cell
                        .params
                        .fault
                        .with_salt(cell.params.fault.salt.wrapping_add(u64::from(attempt - 1)));
                    let params = ExperimentParams {
                        seed: derive_seed(cell.params.seed, kernel.name()),
                        fault,
                        ..cell.params
                    };
                    match catch_cell(|| {
                        run_prepared_in(kernel, prepared, cell.records, &params, scratch)
                    }) {
                        Ok((stats, mismatch)) => {
                            let wall = batch_ms + retries_started.elapsed().as_secs_f64() * 1e3;
                            return (CellOutcome::Ran { stats, mismatch }, wall, attempt);
                        }
                        Err(e) => err = e,
                    }
                }
                let outcome = CellOutcome::Failed {
                    error: err.to_string(),
                    kind: err.kind().to_string(),
                    attempts: attempt,
                    timed_out: false,
                };
                let wall = batch_ms + retries_started.elapsed().as_secs_f64() * 1e3;
                (outcome, wall, attempt)
            })
            .collect()
    }

    /// Streams one completed cell into the attached store, manifest,
    /// and dead-letter queue (shared by the scalar and batched paths).
    fn record_completion(
        &self,
        i: usize,
        outcome: &CellOutcome,
        wall_ms: f64,
        attempts: u32,
        keys: &Option<Vec<StoreKey>>,
    ) {
        if let (Some(store), Some(keys)) = (&self.result_store, keys) {
            // Benign when racing a duplicate cell: identical content;
            // failure is a cache problem, never a sweep problem.
            let _ = store.put(&keys[i], outcome);
        }
        if let Some(writer) = &self.manifest {
            writer.append(i, &ManifestEntry { outcome: outcome.clone(), wall_ms, attempts });
        }
        if let Some(dlq) = &self.dlq {
            if matches!(outcome, CellOutcome::Failed { .. }) && !cacheable(outcome) {
                dlq.append(&self.dlq_record(i, outcome));
            }
        }
    }

    /// Runs one pending cell's attempt loop against its shared plan.
    fn execute_cell(
        &self,
        scratch: &mut RunScratch,
        i: usize,
        plans: &[Option<Result<PreparedProgram, DlpError>>],
        cell_plan: &[usize],
    ) -> (CellOutcome, f64, u32) {
        let cell = &self.cells[i];
        let cell_started = Instant::now();
        let max_attempts = self.policy.max_attempts.max(1);
        let prepared = match &plans[cell_plan[i]] {
            Some(Ok(prepared)) => prepared,
            Some(Err(e)) => {
                // Lowering failed: the cell never executed, so it gets
                // no attempts and no retry — re-lowering the same
                // inputs would fail identically.
                let outcome = CellOutcome::Failed {
                    error: e.to_string(),
                    kind: e.kind().to_string(),
                    attempts: 0,
                    timed_out: false,
                };
                return (outcome, cell_started.elapsed().as_secs_f64() * 1e3, 0);
            }
            None => {
                // Unreachable: phase 1 prepares every plan a pending
                // cell maps to. Degrade, don't panic.
                let outcome = CellOutcome::Failed {
                    error: "internal: plan not prepared for pending cell".into(),
                    kind: "internal".into(),
                    attempts: 0,
                    timed_out: false,
                };
                return (outcome, cell_started.elapsed().as_secs_f64() * 1e3, 0);
            }
        };
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            // Each retry re-salts the fault schedule: same workload,
            // independent deterministic fault draw. Attempt 1 keeps the
            // cell's own salt, so single-attempt sweeps are
            // bit-identical to the policy-free engine.
            let fault = cell
                .params
                .fault
                .with_salt(cell.params.fault.salt.wrapping_add(u64::from(attempt - 1)));
            let params = ExperimentParams {
                seed: derive_seed(cell.params.seed, self.kernels[cell.kernel].name()),
                fault,
                ..cell.params
            };
            let ran = catch_cell(|| {
                run_prepared_in(
                    self.kernels[cell.kernel].as_ref(),
                    prepared,
                    cell.records,
                    &params,
                    scratch,
                )
            });
            let elapsed_ms = cell_started.elapsed().as_secs_f64() * 1e3;
            let timed_out =
                self.policy.soft_timeout_ms.is_some_and(|budget| elapsed_ms > budget);
            match ran {
                Ok((stats, mismatch)) => {
                    break (CellOutcome::Ran { stats, mismatch }, elapsed_ms, attempt);
                }
                Err(e) => {
                    if attempt < max_attempts && !timed_out {
                        continue;
                    }
                    let outcome = CellOutcome::Failed {
                        error: e.to_string(),
                        kind: e.kind().to_string(),
                        attempts: attempt,
                        timed_out,
                    };
                    break (outcome, elapsed_ms, attempt);
                }
            }
        }
    }

    /// Builds the replayable dead-letter record for a failed cell.
    fn dlq_record(&self, i: usize, outcome: &CellOutcome) -> DlqRecord {
        let cell = &self.cells[i];
        let (error, kind, attempts, timed_out) = match outcome {
            CellOutcome::Failed { error, kind, attempts, timed_out } => {
                (error.clone(), kind.clone(), *attempts, *timed_out)
            }
            _ => (String::new(), String::new(), 0, false),
        };
        DlqRecord {
            dlq_version: DLQ_VERSION,
            kernel: self.kernels[cell.kernel].name().to_string(),
            config: cell.config_name(),
            label: cell.label.clone(),
            mech: cell.mech,
            grid: cell.params.grid,
            timing: cell.params.timing,
            fault: cell.params.fault,
            base_seed: cell.params.seed,
            watchdog: cell.params.watchdog,
            records: cell.records,
            error,
            kind,
            attempts,
            timed_out,
        }
    }

    /// Computes each cell's schedule-cache *unroll cap*: the record
    /// count coarsened down to what the lowering can actually observe,
    /// so cells differing only in record count share one
    /// [`PreparedProgram`] whenever the plans are provably identical.
    ///
    /// Per coarse group (kernel × mechanisms × grid × timing):
    ///
    /// * **MIMD** (`local_pc`): the lowering never reads the record
    ///   count — every cell gets cap 0 and shares one plan.
    /// * **Dataflow, one distinct record count**: the cap is that count
    ///   verbatim; no probe runs and the prepared plan is bit-for-bit
    ///   the one the uncoarsened key produced.
    /// * **Dataflow, several record counts**: one cheap
    ///   [`natural_unroll`] probe (IR validation + instruction count,
    ///   no placement) finds the unroll `n` an unbounded record supply
    ///   would pick; each cell's cap is `n.min(records)` — exactly the
    ///   unroll [`prepare_kernel`] chooses for that count, so equal
    ///   caps imply identical schedules. A failing probe falls back to
    ///   the raw record counts and lets phase 1 surface the error per
    ///   distinct count.
    fn unroll_caps(&self) -> Vec<usize> {
        let mut caps: Vec<usize> = self.cells.iter().map(|c| c.records).collect();
        // Group by a PlanKey with the cap zeroed out (linear scan, same
        // rationale as the phase-1 dedup).
        let mut groups: Vec<(PlanKey, Vec<usize>)> = Vec::new();
        for (i, cell) in self.cells.iter().enumerate() {
            let key = PlanKey::of(cell, 0);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(i),
                None => groups.push((key, vec![i])),
            }
        }
        for (key, members) in &groups {
            if key.mech.local_pc {
                for &i in members {
                    caps[i] = 0;
                }
                continue;
            }
            let first = self.cells[members[0]].records;
            if members.iter().all(|&i| self.cells[i].records == first) {
                continue;
            }
            let params = ExperimentParams {
                grid: key.grid,
                timing: key.timing,
                ..ExperimentParams::default()
            };
            let probe = catch_cell(|| {
                natural_unroll(self.kernels[key.kernel].as_ref(), key.mech, &params)
            });
            if let Ok(n) = probe {
                for &i in members {
                    caps[i] = n.min(self.cells[i].records);
                }
            }
        }
        caps
    }

    /// Maps `f` over `0..n` with the work-stealing pool, preserving
    /// index order in the result.
    fn parallel_map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.parallel_map_with(n, || (), |(), i| f(i))
    }

    /// As [`Sweep::parallel_map`], but each worker thread first builds a
    /// private context with `init` and threads it (`&mut`) through every
    /// index it steals — how phase 2 gives each worker a reusable
    /// [`RunScratch`] without any cross-thread sharing of mutable state.
    //
    // The two `expect`s below guard pool invariants, not cell work: cell
    // panics are already converted to `DlpError` by `catch_cell` inside
    // `f`, so a violation here means the harness itself is broken and
    // there is no per-cell result to degrade to.
    #[allow(clippy::expect_used)]
    fn parallel_map_with<C, T, I, F>(&self, n: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> C + Sync,
        F: Fn(&mut C, usize) -> T + Sync,
    {
        let injector: Injector<usize> = Injector::new();
        for i in 0..n {
            injector.push(i);
        }
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(n.max(1));
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| {
                    let mut ctx = init();
                    loop {
                        match injector.steal() {
                            Steal::Success(i) => {
                                let out = f(&mut ctx, i);
                                *slots[i]
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
                            }
                            Steal::Empty => break,
                            Steal::Retry => {}
                        }
                    }
                });
            }
        })
        .expect("sweep workers join");
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("every queued index was processed")
            })
            .collect()
    }
}

/// One phase-2 work-stealing unit.
enum DispatchGroup {
    /// Cells processed sequentially in push order by the scalar path
    /// (per-configuration chains under a breaker, singletons otherwise).
    Chain(Vec<usize>),
    /// Pending cells sharing one lowering and watchdog, dispatched in
    /// lockstep through the lane-batched engine.
    Batch(Vec<usize>),
}

/// Batch-eligibility key: plan index (which already pins kernel,
/// mechanisms, grid, and timing) and watchdog — exactly the uniformity
/// [`crate::runner::batchable`] requires. Seeds, fault plans, *and
/// record counts* vary freely inside a batch (seeds and faults become
/// lane classes; short lanes ride along as mask-padded tails,
/// DESIGN.md §12).
type BatchKey = (usize, Option<dlp_common::Tick>);

/// How one cell's outcome was obtained by [`Sweep::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Origin {
    /// Simulated in this run.
    Executed,
    /// Served from the attached [`ResultStore`].
    Store,
    /// Served from the resume manifest.
    Resumed,
    /// Circuit breaker skipped it.
    Skipped,
}

/// One cell's outcome plus run provenance, as phase 2 produces it.
#[derive(Clone)]
struct Resolved {
    outcome: CellOutcome,
    wall_ms: f64,
    attempts: u32,
    origin: Origin,
}

/// Runs one cell's work, converting a panic into a [`DlpError`] so a
/// single bad cell (e.g. an internally inconsistent mechanism set that
/// trips a simulator assertion) fails that cell instead of tearing down
/// the whole sweep.
fn catch_cell<T>(f: impl FnOnce() -> Result<T, DlpError>) -> Result<T, DlpError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "simulation panicked".to_string());
            Err(DlpError::Internal { detail: format!("panicked: {msg}") })
        }
    }
}

/// Cache key for one lowering: the inputs of [`prepare_kernel`], with
/// the record count coarsened to the unroll cap [`Sweep::unroll_caps`]
/// computes (the workload seed deliberately excluded).
#[derive(Clone, Copy, PartialEq)]
struct PlanKey {
    kernel: KernelId,
    mech: MechanismSet,
    grid: dlp_common::GridShape,
    timing: dlp_common::TimingParams,
    unroll_cap: usize,
}

impl PlanKey {
    fn of(cell: &CellSpec, unroll_cap: usize) -> Self {
        PlanKey {
            kernel: cell.kernel,
            mech: cell.mech,
            grid: cell.params.grid,
            timing: cell.params.timing,
            unroll_cap,
        }
    }
}

/// Derives a kernel's workload seed from the experiment base seed.
///
/// Keyed by kernel *name* only (not configuration), so every
/// configuration of one kernel processes identical records — a
/// precondition for comparing their cycle counts — while distinct
/// kernels get decorrelated workloads. Pure function of its arguments,
/// which is what makes parallel sweeps bit-identical to serial ones.
#[must_use]
pub fn derive_seed(base: u64, kernel_name: &str) -> u64 {
    // FNV-1a over the name, then one SplitMix64 scramble.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in kernel_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    dlp_common::SplitMix64::new(base ^ h).next_u64()
}

/// Result of one cell's simulation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CellOutcome {
    /// The cell simulated to completion (it may still have computed
    /// wrong answers — check `mismatch`).
    Ran {
        /// Simulation statistics.
        stats: SimStats,
        /// First wrong output word, `None` when fully verified.
        mismatch: Option<usize>,
    },
    /// Scheduling or simulation failed (e.g. an incoherent mechanism
    /// set, a watchdog trip, or an unrecoverable injected fault); the
    /// cell has no statistics but carries structured diagnostics.
    Failed {
        /// The rendered [`DlpError`].
        error: String,
        /// The stable [`DlpError::kind`] tag (e.g. `"watchdog"`,
        /// `"fault-unrecoverable"`, `"internal"`), so report consumers
        /// can triage failures without parsing prose.
        kind: String,
        /// Execution attempts spent before giving up (0 when the
        /// lowering itself failed and the cell never executed).
        attempts: u32,
        /// Whether the cell blew the policy's wall-clock soft budget,
        /// which is what stopped further retries.
        timed_out: bool,
    },
    /// The cell never executed: its configuration's circuit breaker
    /// opened ([`SweepPolicy::with_breaker`]) after consecutive
    /// failures. Skips are never cached or dead-lettered — a later run
    /// re-evaluates them.
    Skipped {
        /// Human-readable reason (which configuration, how many
        /// failures).
        reason: String,
        /// Consecutive failures observed when the breaker opened.
        failures: u32,
    },
}

impl CellOutcome {
    /// The statistics, when the cell ran.
    #[must_use]
    pub fn stats(&self) -> Option<&SimStats> {
        match self {
            CellOutcome::Ran { stats, .. } => Some(stats),
            CellOutcome::Failed { .. } | CellOutcome::Skipped { .. } => None,
        }
    }

    /// The failure taxonomy tag, when the cell failed.
    #[must_use]
    pub fn failure_kind(&self) -> Option<&str> {
        match self {
            CellOutcome::Ran { .. } | CellOutcome::Skipped { .. } => None,
            CellOutcome::Failed { kind, .. } => Some(kind),
        }
    }

    /// Whether the cell ran *and* every output word verified.
    #[must_use]
    pub fn verified(&self) -> bool {
        matches!(self, CellOutcome::Ran { mismatch: None, .. })
    }
}

/// One row of the sweep report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepCell {
    /// Kernel name.
    pub kernel: String,
    /// Configuration display name (a [`MachineConfig`] name like
    /// `"S-O"`, or the mechanism-set rendering for raw cells).
    pub config: String,
    /// The experiment tag from [`CellSpec::label`].
    pub label: String,
    /// Records processed.
    pub records: usize,
    /// What happened.
    pub outcome: CellOutcome,
    /// Host wall-clock for this cell, milliseconds (informational; not
    /// part of the deterministic output).
    pub wall_ms: f64,
    /// The analyzer's sound static lower bound on this cell's simulated
    /// cycles (DESIGN.md §13), when its lowering was prepared during
    /// this run. `None` for cells served without preparing a plan
    /// (store or resume hits) and for cells whose lowering failed —
    /// provenance, like `wall_ms`, zeroed by
    /// [`SweepReport::canonical`].
    pub predicted_cycles: Option<u64>,
}

/// The full result of a [`Sweep::run`] — the serializable artifact
/// written to `BENCH_sweep.json`.
///
/// # Examples
///
/// ```
/// use dlp_core::sweep::Sweep;
/// use dlp_core::{ExperimentParams, MachineConfig};
///
/// let params = ExperimentParams::default();
/// let mut sweep = Sweep::with_threads(2);
/// let fft = sweep.add_kernel_by_name("fft").unwrap();
/// sweep.push_config(fft, MachineConfig::Baseline, 24, &params);
/// sweep.push_config(fft, MachineConfig::S, 24, &params);
/// let report = sweep.run();
///
/// assert_eq!(report.cells.len(), 2);
/// assert!(report.stats("fft", "S").is_some());
/// let json = dlp_common::json::to_string(&report);
/// assert!(json.contains("\"kernel\":\"fft\""));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepReport {
    /// Worker threads used.
    pub threads: usize,
    /// Distinct lowerings scheduled (schedule-cache misses).
    pub plans_prepared: usize,
    /// Cells served from an already-prepared lowering (cache hits).
    pub plan_reuses: usize,
    /// Total host wall-clock, milliseconds.
    pub wall_ms: f64,
    /// Cells whose wall-clock exceeded the policy's soft budget
    /// (informational, like `wall_ms`; always 0 without a soft
    /// timeout).
    pub soft_timeouts: usize,
    /// Retry attempts spent beyond each cell's first (0 under the
    /// default single-attempt policy).
    pub extra_attempts: u64,
    /// Workload-cache lookups served from the cache. Deterministic —
    /// the counts depend only on the set of distinct
    /// `(kernel, padded records, seed)` keys the grid requests, never on
    /// worker count or interleaving; 0 when the cache is disabled.
    pub workload_cache_hits: u64,
    /// Workload-cache lookups that generated a workload (the number of
    /// distinct keys); 0 when the cache is disabled.
    pub workload_cache_misses: u64,
    /// Result-store lookups served without executing during this run (0
    /// when no store is attached). Provenance, not science: a warm and
    /// a cold run differ here while their [`SweepReport::canonical`]
    /// forms are identical.
    pub store_hits: u64,
    /// Result-store lookups that found no valid entry (includes
    /// corrupt or version-mismatched entries, by design).
    pub store_misses: u64,
    /// Cells actually simulated in this run (the warm-run headline: 0
    /// against a fully-warm store).
    pub cells_executed: usize,
    /// Cells the circuit breaker skipped.
    pub cells_skipped: usize,
    /// Cells served from the resume manifest.
    pub resumed_cells: usize,
    /// Records appended to the dead-letter queue by this run.
    pub dlq_appended: u64,
    /// Pending cells dispatched through the lane-batched engine
    /// (DESIGN.md §10) rather than one-at-a-time. A pure function of
    /// the grid, the policy, and the resolve phase — never of worker
    /// count — and observationally inert: batched cells report
    /// bit-identical outcomes. 0 under a breaker or soft timeout
    /// (which force the scalar path) and on fully-resolved warm runs.
    pub cells_batched: usize,
    /// Lockstep dispatches those batched cells were grouped into.
    pub batch_dispatches: usize,
    /// Mean lane occupancy of those dispatches: `cells_batched /
    /// (batch_dispatches * MAX_CLASSES)`, in `(0, 1]` — how full the
    /// 64-lane words the greedy packer built were. 0.0 when nothing
    /// batched. Like the dispatch counters it is a pure function of
    /// the grid, the policy, and the resolve phase.
    pub batch_occupancy: f64,
    /// Total analyzer warnings (`W*` codes, DESIGN.md §13) across the
    /// lowerings prepared during this run. Provenance, like the cache
    /// counters: a fully-warm run prepares no plans and reports 0.
    pub analysis_warnings: u64,
    /// Per-cell results, in push order.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// The first cell matching `kernel` and `config`.
    #[must_use]
    pub fn cell(&self, kernel: &str, config: &str) -> Option<&SweepCell> {
        self.cells.iter().find(|c| c.kernel == kernel && c.config == config)
    }

    /// Statistics for the first matching, successfully-run cell.
    #[must_use]
    pub fn stats(&self, kernel: &str, config: &str) -> Option<&SimStats> {
        self.cell(kernel, config).and_then(|c| c.outcome.stats())
    }

    /// Every failed cell, in push order — the structured view a
    /// degraded sweep's consumer triages (pair with
    /// [`CellOutcome::failure_kind`]).
    #[must_use]
    pub fn failures(&self) -> Vec<&SweepCell> {
        self.cells.iter().filter(|c| matches!(c.outcome, CellOutcome::Failed { .. })).collect()
    }

    /// Every breaker-skipped cell, in push order.
    #[must_use]
    pub fn skipped(&self) -> Vec<&SweepCell> {
        self.cells.iter().filter(|c| matches!(c.outcome, CellOutcome::Skipped { .. })).collect()
    }

    /// The report reduced to its *science payload*: per-cell kernel,
    /// configuration, label, record count, and outcome — with every
    /// provenance field zeroed (worker count, wall-clocks, cache and
    /// store counters, attempt accounting).
    ///
    /// This is the form the determinism guarantees quantify over: the
    /// canonical report is bit-identical across worker counts, across
    /// workload-cache settings, and across cold / warm / absent result
    /// stores. Provenance legitimately differs (a warm run has store
    /// hits and zero executions; a cold run the reverse), which is why
    /// raw reports are *not* comparable byte-for-byte.
    #[must_use]
    pub fn canonical(&self) -> SweepReport {
        SweepReport {
            threads: 0,
            plans_prepared: 0,
            plan_reuses: 0,
            wall_ms: 0.0,
            soft_timeouts: 0,
            extra_attempts: 0,
            workload_cache_hits: 0,
            workload_cache_misses: 0,
            store_hits: 0,
            store_misses: 0,
            cells_executed: 0,
            cells_skipped: 0,
            resumed_cells: 0,
            dlq_appended: 0,
            cells_batched: 0,
            batch_dispatches: 0,
            batch_occupancy: 0.0,
            analysis_warnings: 0,
            cells: self
                .cells
                .iter()
                .map(|c| SweepCell { wall_ms: 0.0, predicted_cycles: None, ..c.clone() })
                .collect(),
        }
    }

    /// [`SweepReport::canonical`], serialized — the byte string the
    /// warm-vs-cold CI comparison and the `store_sweep` test diff.
    #[must_use]
    pub fn canonical_json(&self) -> String {
        dlp_common::json::to_string(&self.canonical())
    }

    /// Speedup of `config` over `baseline` on `kernel`, in execution
    /// cycles (the paper's Figure 5 metric).
    #[must_use]
    pub fn speedup(&self, kernel: &str, config: &str, baseline: &str) -> Option<f64> {
        let cfg = self.stats(kernel, config)?;
        let base = self.stats(kernel, baseline)?;
        Some(cfg.speedup_over(base))
    }

    /// Per-configuration harmonic-mean speedup over `baseline`, across
    /// every kernel that has both cells — the aggregation Figure 5's
    /// fixed-configuration bars and the sweep summary share.
    #[must_use]
    pub fn harmonic_mean_speedups(&self, baseline: &str) -> BTreeMap<String, f64> {
        let mut per_config: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for cell in &self.cells {
            if cell.config == baseline {
                continue;
            }
            if let Some(s) = self.speedup(&cell.kernel, &cell.config, baseline) {
                per_config.entry(cell.config.clone()).or_default().push(s);
            }
        }
        per_config
            .into_iter()
            .filter_map(|(config, xs)| harmonic_mean(&xs).map(|hm| (config, hm)))
            .collect()
    }

    /// Turns the first failed or mis-verified cell into a [`DlpError`].
    ///
    /// # Errors
    ///
    /// [`DlpError::MalformedProgram`] describing the offending cell.
    pub fn ensure_verified(&self) -> Result<(), DlpError> {
        for cell in &self.cells {
            match &cell.outcome {
                CellOutcome::Ran { mismatch: None, .. } => {}
                CellOutcome::Ran { mismatch: Some(at), .. } => {
                    return Err(DlpError::MalformedProgram {
                        detail: format!(
                            "{} on {} computed a wrong output at word {at}",
                            cell.kernel, cell.config
                        ),
                    });
                }
                CellOutcome::Failed { error, .. } => {
                    return Err(DlpError::MalformedProgram {
                        detail: format!("{} on {} failed: {error}", cell.kernel, cell.config),
                    });
                }
                CellOutcome::Skipped { reason, .. } => {
                    return Err(DlpError::MalformedProgram {
                        detail: format!(
                            "{} on {} was skipped: {reason}",
                            cell.kernel, cell.config
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep(threads: usize) -> SweepReport {
        let params = ExperimentParams::default();
        let mut sweep = Sweep::with_threads(threads);
        let ids = sweep.add_perf_suite();
        for &id in ids.iter().take(3) {
            for config in [MachineConfig::Baseline, MachineConfig::S, MachineConfig::SO] {
                sweep.push_config(id, config, 24, &params);
            }
        }
        sweep.run()
    }

    #[test]
    fn grid_runs_verified_and_ordered() {
        let report = small_sweep(4);
        assert_eq!(report.cells.len(), 9);
        report.ensure_verified().expect("all cells verify");
        // Push order is preserved.
        assert_eq!(report.cells[0].config, "baseline");
        assert_eq!(report.cells[1].config, "S");
        assert_eq!(report.cells[2].config, "S-O");
    }

    #[test]
    fn schedule_cache_deduplicates_repeated_cells() {
        let params = ExperimentParams::default();
        let mut sweep = Sweep::with_threads(2);
        let id = sweep.add_kernel_by_name("convert").expect("suite kernel");
        for _ in 0..4 {
            sweep.push_config(id, MachineConfig::S, 24, &params);
        }
        let report = sweep.run();
        assert_eq!(report.plans_prepared, 1, "one distinct lowering");
        assert_eq!(report.plan_reuses, 3);
        report.ensure_verified().expect("verifies");
    }

    /// Runs one cell outside the sweep (fresh lowering, no cache) with
    /// the seed the sweep would derive, for bit-identity comparisons.
    fn uncached(kernel_name: &str, config: MachineConfig, records: usize) -> SimStats {
        let base = ExperimentParams::default();
        let params =
            ExperimentParams { seed: derive_seed(base.seed, kernel_name), ..base };
        let k = suite().into_iter().find(|k| k.name() == kernel_name).expect("suite kernel");
        let (stats, mismatch) =
            crate::run_kernel_mech(k.as_ref(), config.mechanisms(), records, &params)
                .expect("uncached run succeeds");
        assert_eq!(mismatch, None, "{kernel_name} on {config} verifies");
        stats
    }

    #[test]
    fn mimd_cells_share_one_plan_across_record_counts() {
        // MIMD lowering never reads the record count, so a scaling
        // study over records reuses a single replicated program.
        let params = ExperimentParams::default();
        let mut sweep = Sweep::with_threads(2);
        let id = sweep.add_kernel_by_name("convert").expect("suite kernel");
        for records in [8, 24, 48] {
            sweep.push_config(id, MachineConfig::M, records, &params);
        }
        let report = sweep.run();
        assert_eq!(report.plans_prepared, 1, "one shared MIMD lowering");
        assert_eq!(report.plan_reuses, 2);
        report.ensure_verified().expect("verifies");
        for (cell, records) in report.cells.iter().zip([8, 24, 48]) {
            let fresh = uncached("convert", MachineConfig::M, records);
            assert_eq!(cell.outcome.stats(), Some(&fresh), "cached == uncached at {records}");
        }
    }

    #[test]
    fn dataflow_record_counts_sharing_an_unroll_share_one_plan() {
        // The unroll clamp tops out at 512, so any record count ≥ 512
        // yields the same effective unroll — one plan serves them all,
        // with statistics bit-identical to fresh uncached lowerings.
        let params = ExperimentParams::default();
        let mut sweep = Sweep::with_threads(2);
        let id = sweep.add_kernel_by_name("convert").expect("suite kernel");
        for records in [512, 768, 1024] {
            sweep.push_config(id, MachineConfig::SO, records, &params);
        }
        let report = sweep.run();
        assert_eq!(report.plans_prepared, 1, "one shared dataflow lowering");
        assert_eq!(report.plan_reuses, 2);
        report.ensure_verified().expect("verifies");
        for (cell, records) in report.cells.iter().zip([512, 768, 1024]) {
            let fresh = uncached("convert", MachineConfig::SO, records);
            assert_eq!(cell.outcome.stats(), Some(&fresh), "cached == uncached at {records}");
        }
    }

    #[test]
    fn record_varying_cells_pack_into_one_lockstep_dispatch() {
        // Cross-record batch packing (DESIGN.md §12): cells differing
        // only in record count share a lowering (the unroll-cap
        // coarsening) and now also a lockstep dispatch — the shorter
        // lanes ride along as mask-padded tails. Before the packer
        // dropped record counts from the batch key these cells never
        // batched at all (`cells_batched` would be 0 here).
        let params = ExperimentParams::default();
        let mut sweep = Sweep::with_threads(2);
        let id = sweep.add_kernel_by_name("convert").expect("suite kernel");
        for records in [512, 768, 1024] {
            sweep.push_config(id, MachineConfig::SO, records, &params);
        }
        let report = sweep.run();
        assert_eq!(report.plans_prepared, 1, "one shared dataflow lowering");
        assert_eq!(report.cells_batched, 3, "all three record counts share one dispatch");
        assert_eq!(report.batch_dispatches, 1);
        let expected = 3.0 / trips_sim::batch::MAX_CLASSES as f64;
        assert!(
            (report.batch_occupancy - expected).abs() < 1e-12,
            "occupancy {} != {expected}",
            report.batch_occupancy
        );
        report.ensure_verified().expect("verifies");
        for (cell, records) in report.cells.iter().zip([512, 768, 1024]) {
            let fresh = uncached("convert", MachineConfig::SO, records);
            assert_eq!(cell.outcome.stats(), Some(&fresh), "batched == scalar at {records}");
        }
    }

    #[test]
    fn dataflow_cache_splits_when_the_effective_unroll_differs() {
        // A tiny record count caps the unroll below the natural factor,
        // which is a genuinely different schedule — it must not share.
        let params = ExperimentParams::default();
        let k = suite().into_iter().find(|k| k.name() == "convert").expect("suite kernel");
        let n = natural_unroll(k.as_ref(), MachineConfig::SO.mechanisms(), &params)
            .expect("probe succeeds");
        assert!(n > 8, "convert's unroll budget exceeds 8 instances (got {n})");

        let mut sweep = Sweep::with_threads(2);
        let id = sweep.add_kernel_by_name("convert").expect("suite kernel");
        sweep.push_config(id, MachineConfig::SO, 8, &params);
        sweep.push_config(id, MachineConfig::SO, 512, &params);
        let report = sweep.run();
        assert_eq!(report.plans_prepared, 2, "unroll 8 vs {n} are distinct lowerings");
        assert_eq!(report.plan_reuses, 0);
        report.ensure_verified().expect("verifies");
    }

    #[test]
    fn speedups_and_harmonic_means_are_available() {
        let report = small_sweep(2);
        let hms = report.harmonic_mean_speedups("baseline");
        assert_eq!(hms.len(), 2, "S and S-O");
        for (config, hm) in &hms {
            assert!(*hm > 0.0, "{config}: {hm}");
        }
    }

    #[test]
    fn default_worker_count_respects_single_core() {
        assert_eq!(default_worker_count(1), 1, "no phantom second worker on 1 core");
        assert_eq!(default_worker_count(2), 2);
        assert_eq!(default_worker_count(3), 3);
        assert_eq!(default_worker_count(8), 8);
        assert_eq!(default_worker_count(64), 8, "cap at 8");
        assert_eq!(default_worker_count(0), 1, "defensive floor");
    }

    #[test]
    fn workload_cache_is_observationally_pure() {
        // The same grid with and without the workload cache must produce
        // identical per-cell outcomes; the cached run must actually hit.
        let params = ExperimentParams::default();
        let build = |cached: bool| {
            let mut sweep = Sweep::with_threads(2);
            sweep.set_workload_cache(cached);
            let id = sweep.add_kernel_by_name("convert").expect("suite kernel");
            for config in [MachineConfig::Baseline, MachineConfig::S, MachineConfig::S] {
                sweep.push_config(id, config, 24, &params);
            }
            sweep.run()
        };
        let cached = build(true);
        let plain = build(false);
        assert!(cached.workload_cache_hits >= 1, "repeated config shares its workload");
        assert_eq!(
            cached.workload_cache_hits + cached.workload_cache_misses,
            2,
            "baseline looked up once; the two identical S cells collapse \
             to one lane class and share a single lookup"
        );
        assert_eq!(cached.cells_batched, 2, "the repeated S cells batch together");
        assert_eq!(cached.batch_dispatches, 1);
        assert_eq!(plain.workload_cache_hits, 0);
        assert_eq!(plain.workload_cache_misses, 0);
        for (a, b) in cached.cells.iter().zip(&plain.cells) {
            assert_eq!(a.outcome, b.outcome, "{} on {}: cached == uncached", a.kernel, a.config);
        }
        cached.ensure_verified().expect("verifies");
    }

    #[test]
    fn canonical_reports_are_thread_count_invariant() {
        let one = small_sweep(1);
        let four = small_sweep(4);
        assert_ne!(one.threads, four.threads, "raw provenance differs");
        assert_eq!(one.canonical_json(), four.canonical_json(), "science payload identical");
        let c = one.canonical();
        assert_eq!(c.threads, 0);
        assert_eq!(c.wall_ms, 0.0);
        assert!(c.cells.iter().all(|cell| cell.wall_ms == 0.0));
        assert_eq!(c.cells.len(), one.cells.len());
    }

    /// A mechanism set that fails deterministically at lowering time
    /// (operand revitalization with nothing to revitalize into).
    fn incoherent_mech() -> MechanismSet {
        MechanismSet {
            smc: false,
            inst_revitalization: false,
            operand_revitalization: true,
            l0_data_store: false,
            local_pc: false,
        }
    }

    #[test]
    fn breaker_skips_a_config_after_consecutive_failures() {
        let params = ExperimentParams::default();
        let mut sweep = Sweep::with_threads(4);
        sweep.set_policy(SweepPolicy::default().with_breaker(2));
        let id = sweep.add_kernel_by_name("convert").expect("suite kernel");
        // Four cells of one (failing) raw config, then a healthy config.
        for n in 0..4 {
            sweep.push_cell(CellSpec {
                kernel: id,
                config: None,
                mech: incoherent_mech(),
                records: 24,
                params,
                label: format!("bad{n}"),
            });
        }
        sweep.push_config(id, MachineConfig::S, 24, &params);
        let report = sweep.run();
        assert!(matches!(report.cells[0].outcome, CellOutcome::Failed { .. }));
        assert!(matches!(report.cells[1].outcome, CellOutcome::Failed { .. }));
        for i in [2, 3] {
            match &report.cells[i].outcome {
                CellOutcome::Skipped { failures, .. } => assert_eq!(*failures, 2),
                other => panic!("cell {i} should be skipped, got {other:?}"),
            }
        }
        assert!(report.cells[4].outcome.verified(), "other configs unaffected");
        assert_eq!(report.cells_skipped, 2);
        assert_eq!(report.skipped().len(), 2);
        assert!(report.ensure_verified().is_err(), "skips are not verified results");

        // Same grid, breaker off: every cell is evaluated.
        let mut plain = Sweep::with_threads(4);
        let id = plain.add_kernel_by_name("convert").expect("suite kernel");
        for n in 0..4 {
            plain.push_cell(CellSpec {
                kernel: id,
                config: None,
                mech: incoherent_mech(),
                records: 24,
                params,
                label: format!("bad{n}"),
            });
        }
        plain.push_config(id, MachineConfig::S, 24, &params);
        let plain = plain.run();
        assert_eq!(plain.cells_skipped, 0);
        assert!(plain.cells[..4]
            .iter()
            .all(|c| matches!(c.outcome, CellOutcome::Failed { .. })));
    }

    #[test]
    fn derived_seeds_differ_by_kernel_but_not_config() {
        let a = derive_seed(7, "convert");
        let b = derive_seed(7, "fft");
        assert_ne!(a, b, "kernels get decorrelated workloads");
        assert_eq!(a, derive_seed(7, "convert"), "pure function");
        assert_ne!(a, derive_seed(8, "convert"), "base seed matters");
    }

    #[test]
    fn failures_are_captured_per_cell() {
        // An incoherent mechanism set: operand revitalization without
        // instruction revitalization has nothing to revitalize into.
        let params = ExperimentParams::default();
        let mut sweep = Sweep::with_threads(2);
        let id = sweep.add_kernel_by_name("convert").expect("suite kernel");
        let mech = MechanismSet {
            smc: false,
            inst_revitalization: false,
            operand_revitalization: true,
            l0_data_store: false,
            local_pc: false,
        };
        sweep.push_cell(CellSpec {
            kernel: id,
            config: None,
            mech,
            records: 24,
            params,
            label: "incoherent".into(),
        });
        sweep.push_config(id, MachineConfig::S, 24, &params);
        let report = sweep.run();
        // Whatever the first cell did, the second must have run — a bad
        // cell never poisons the batch.
        assert!(report.cells[1].outcome.verified());
    }
}
