//! A first-order energy model — the paper's §7 names "more detailed
//! metrics, including cycle time, power, and area" as future work; this
//! module supplies the energy side of that evaluation.
//!
//! Per-event energies are rough 100 nm-era figures (register-file and
//! cache accesses cost an order of magnitude more than ALU ops; network
//! hops sit in between). The interesting outputs are *differences between
//! configurations on the same kernel*: operand revitalization removes
//! register-file traffic, the L0 store removes cache traffic, instruction
//! revitalization removes fetch traffic — each mechanism's benefit is
//! directly visible in the breakdown.

use dlp_common::SimStats;
use serde::{Deserialize, Serialize};

/// Per-event energy weights in picojoules.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One ALU operation (useful or overhead).
    pub alu_pj: f64,
    /// One operand-network hop traversal.
    pub hop_pj: f64,
    /// One register-file read or write.
    pub regfile_pj: f64,
    /// One L1 cache access.
    pub l1_pj: f64,
    /// One SMC bank transaction.
    pub smc_pj: f64,
    /// One L0 data-store access (tiny, local SRAM).
    pub l0_pj: f64,
    /// Fetching and mapping one instruction onto the array.
    pub fetch_pj: f64,
    /// One MIMD L0 instruction-store fetch.
    pub mimd_fetch_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            alu_pj: 1.0,
            hop_pj: 0.4,
            regfile_pj: 6.0,
            l1_pj: 12.0,
            smc_pj: 18.0,
            l0_pj: 0.8,
            fetch_pj: 4.0,
            mimd_fetch_pj: 0.6,
        }
    }
}

/// Energy attributed to each subsystem, in nanojoules.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Execution (ALU operations).
    pub alu_nj: f64,
    /// Operand network (hops).
    pub network_nj: f64,
    /// Register file (reads + writes).
    pub regfile_nj: f64,
    /// L1 cache.
    pub l1_nj: f64,
    /// SMC banks.
    pub smc_nj: f64,
    /// L0 data stores.
    pub l0_nj: f64,
    /// Instruction fetch/map (block fetch + MIMD local fetch).
    pub fetch_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    #[must_use]
    pub fn total_nj(&self) -> f64 {
        self.alu_nj
            + self.network_nj
            + self.regfile_nj
            + self.l1_nj
            + self.smc_nj
            + self.l0_nj
            + self.fetch_nj
    }
}

impl EnergyModel {
    /// Estimate the energy of a run from its statistics.
    ///
    /// Block fetch energy charges `blocks_fetched × (run's mapped
    /// instructions)`; since `SimStats` does not retain the block size, the
    /// caller passes `block_insts` (0 for MIMD runs, whose fetches are
    /// counted per instruction in `mimd_fetches`).
    #[must_use]
    pub fn breakdown(&self, stats: &SimStats, block_insts: usize) -> EnergyBreakdown {
        let pj = |n: u64, w: f64| n as f64 * w / 1000.0;
        EnergyBreakdown {
            alu_nj: pj(stats.total_ops(), self.alu_pj),
            network_nj: pj(stats.net_hops, self.hop_pj),
            regfile_nj: pj(stats.reg_reads + stats.reg_writes, self.regfile_pj),
            l1_nj: pj(stats.l1_accesses, self.l1_pj),
            smc_nj: pj(stats.smc_accesses, self.smc_pj),
            l0_nj: pj(stats.l0_accesses, self.l0_pj),
            fetch_nj: pj(stats.blocks_fetched * block_insts as u64, self.fetch_pj)
                + pj(stats.mimd_fetches, self.mimd_fetch_pj),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SimStats {
        SimStats {
            ticks: 2000,
            useful_ops: 1000,
            overhead_ops: 500,
            reg_reads: 100,
            reg_writes: 10,
            l1_accesses: 50,
            smc_accesses: 40,
            l0_accesses: 200,
            net_hops: 3000,
            blocks_fetched: 10,
            mimd_fetches: 0,
            ..SimStats::default()
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = EnergyModel::default();
        let b = m.breakdown(&stats(), 64);
        let sum = b.alu_nj + b.network_nj + b.regfile_nj + b.l1_nj + b.smc_nj + b.l0_nj + b.fetch_nj;
        assert!((b.total_nj() - sum).abs() < 1e-12);
        assert!(b.total_nj() > 0.0);
    }

    #[test]
    fn l0_accesses_are_cheaper_than_l1() {
        let m = EnergyModel::default();
        let mut via_l1 = SimStats { l1_accesses: 1000, ..SimStats::default() };
        let mut via_l0 = SimStats { l0_accesses: 1000, ..SimStats::default() };
        via_l1.ticks = 10;
        via_l0.ticks = 10;
        assert!(
            m.breakdown(&via_l0, 0).total_nj() < m.breakdown(&via_l1, 0).total_nj() / 10.0,
            "the 2 KB local store must be an order of magnitude cheaper per access"
        );
    }

    #[test]
    fn fetch_energy_scales_with_refetch() {
        let m = EnergyModel::default();
        let base = SimStats { blocks_fetched: 100, ticks: 10, ..SimStats::default() };
        let revit = SimStats { blocks_fetched: 1, ticks: 10, ..SimStats::default() };
        assert!(m.breakdown(&base, 128).fetch_nj > 50.0 * m.breakdown(&revit, 128).fetch_nj);
    }
}
