//! The Table 3 logic: program attributes → mechanisms → configuration.

use dlp_kernel_ir::KernelAttributes;
use serde::{Deserialize, Serialize};

use crate::MachineConfig;

/// The outcome of analyzing a kernel's attributes against Table 3.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Software-managed streamed memory — regular record streams
    /// (benefits *all* kernels per Table 3).
    pub smc: bool,
    /// Hardware-managed cached L1 — irregular accesses present.
    pub cached_l1: bool,
    /// Operand revitalization — scalar named constants present.
    pub operand_revitalization: bool,
    /// L0 data store — indexed named constants present.
    pub l0_data_store: bool,
    /// Instruction revitalization — tight loops (all kernels benefit).
    pub inst_revitalization: bool,
    /// Local program counters — data-dependent branching, or a kernel
    /// whose rolled form unlocks far more parallelism (§5.3's M-D cases).
    pub local_pc: bool,
    /// The Table 5 configuration these mechanisms compose into.
    pub config: MachineConfig,
}

/// Analyze a kernel's Table 2 attributes and recommend mechanisms and a
/// configuration, following Table 3 and the §5.3 discussion.
///
/// The classification reproduces the paper's Figure 5 grouping:
///
/// * data-dependent branching → **M-D** (local PCs; the lookup store also
///   holds the rolled form's indexed state);
/// * indexed constants inside a static internal loop → **M-D**
///   (blowfish/rijndael: local loop control keeps the footprint small and
///   lets the array hold many more kernel instances);
/// * long serial kernels (low ILP, large body) → **M-D** (md5: the rolled
///   form's storage economy is the win);
/// * indexed constants otherwise → **S-O-D**;
/// * scalar constants → **S-O**;
/// * pure streaming → **S**.
#[must_use]
pub fn recommend(attrs: &KernelAttributes) -> Recommendation {
    let data_dependent = attrs.control.is_data_dependent();
    let has_table = attrs.indexed_constants > 0;
    let rolled_loop = matches!(attrs.control, dlp_kernel_ir::ControlClass::FixedLoop { .. });
    let serial_and_large = attrs.ilp < 2.5 && attrs.insts > 300;

    let mimd = data_dependent || (has_table && rolled_loop) || serial_and_large;
    let config = if mimd {
        // The MIMD machine keeps its working set in the L0 stores; all the
        // paper's MIMD-preferring kernels run best on M-D.
        MachineConfig::MD
    } else if has_table {
        MachineConfig::SOD
    } else if attrs.constants > 0 {
        MachineConfig::SO
    } else {
        MachineConfig::S
    };

    Recommendation {
        smc: true,
        cached_l1: attrs.irregular > 0,
        operand_revitalization: !mimd && attrs.constants > 0,
        l0_data_store: config == MachineConfig::SOD || config == MachineConfig::MD,
        inst_revitalization: !mimd,
        local_pc: mimd,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_kernels::suite;

    /// The paper's Flexible assignment (§5.3): fft and lu on S, the seven
    /// constant-bearing stream kernels on S-O, and md5 / blowfish /
    /// rijndael / vertex-skinning on M-D. Our recommender's S-O-D choice
    /// for pure-table kernels folds into the same grouping because every
    /// such kernel also has a rolled loop.
    #[test]
    fn reproduces_paper_grouping() {
        let expect = |name: &str| -> MachineConfig {
            match name {
                "fft" | "lu" => MachineConfig::S,
                "md5" | "blowfish" | "rijndael" | "vertex-skinning" | "anisotropic-filter" => {
                    MachineConfig::MD
                }
                _ => MachineConfig::SO,
            }
        };
        for k in suite() {
            let rec = recommend(&k.ir().attributes());
            assert_eq!(rec.config, expect(k.name()), "{}", k.name());
        }
    }

    #[test]
    fn mechanisms_follow_table3() {
        for k in suite() {
            let attrs = k.ir().attributes();
            let rec = recommend(&attrs);
            // Regular memory: everyone gets the SMC (Table 3 row 1).
            assert!(rec.smc);
            // Irregular memory ⇒ cached L1 (row 2).
            assert_eq!(rec.cached_l1, attrs.irregular > 0, "{}", k.name());
            // Data-dependent branching ⇒ local PCs (row 6).
            if attrs.control.is_data_dependent() {
                assert!(rec.local_pc, "{}", k.name());
            }
            // Exactly one of the two sequencing mechanisms.
            assert_ne!(rec.inst_revitalization, rec.local_pc, "{}", k.name());
        }
    }

    #[test]
    fn table_with_straight_control_prefers_sod() {
        use dlp_kernel_ir::ControlClass;
        let attrs = KernelAttributes {
            name: "synthetic".into(),
            insts: 50,
            ilp: 5.0,
            record_read: 2,
            record_write: 1,
            irregular: 0,
            constants: 3,
            indexed_constants: 256,
            control: ControlClass::Straight,
        };
        assert_eq!(recommend(&attrs).config, MachineConfig::SOD);
    }
}
