//! Deterministic host-I/O fault injection for the persistence layer.
//!
//! The write-side twin of `dlp_common::fault`: where PR 3 injects
//! seeded transient faults into the *simulated* NoC and memory system,
//! this shim injects faults into the *host* filesystem writes the store
//! performs — short writes, `ENOSPC`/`EIO` errors, torn final lines,
//! and single-bit corruption — all drawn from one seeded `SplitMix64`
//! stream so a failing campaign replays exactly.
//!
//! Every write in `dlp_core::store` funnels through
//! [`super::atomic`], which calls the crate-private `filter` hook on
//! the outgoing bytes
//! before they touch a file descriptor. Unarmed (the normal case) the
//! shim is one mutex acquire and a `None` check. Armed — via
//! [`arm`] or the `DLP_STORE_IOFAULT=seed:error:short:torn:flip`
//! environment variable (ppm fields) — each write rolls each fault
//! class independently.
//!
//! The contract the chaos tests pin: **every injected fault degrades to
//! a miss or a recompute, never a wrong result and never a panic.**
//! Corrupted bytes are caught by the sealed-line digests on read;
//! injected errors surface as `io::Error` through write paths that are
//! already best-effort (entry puts, manifest/DLQ appends) or
//! operator-visible (`ResultStore::open`, `rewrite_dlq`).

use std::io;
use std::sync::Mutex;

use dlp_common::SplitMix64;

/// Which durable artifact a write targets. Used for per-class injection
/// accounting ([`injected_by_class`]); all classes share one plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Content-addressed result entries.
    Entry,
    /// The `STORE_INFO.json` stamp.
    Stamp,
    /// Sweep checkpoint manifests.
    Manifest,
    /// Dead-letter queue files.
    Dlq,
}

impl Class {
    fn index(self) -> usize {
        match self {
            Class::Entry => 0,
            Class::Stamp => 1,
            Class::Manifest => 2,
            Class::Dlq => 3,
        }
    }
}

/// Per-write fault probabilities, in parts per million, plus the RNG
/// seed the rolls are drawn from. `1_000_000` makes a class certain —
/// what the tier-1 chaos tests use to exercise each class exhaustively.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoFaultPlan {
    /// Seed for the shared roll stream.
    pub seed: u64,
    /// P(write fails outright) — alternating `ENOSPC` / `EIO`.
    pub error_ppm: u32,
    /// P(only a prefix of the bytes reaches the file) — half the
    /// buffer, as a crashed kernel flush might leave.
    pub short_ppm: u32,
    /// P(the tail of the write is torn off) — 1..=16 bytes cut, the
    /// torn-final-line signature of a mid-write power loss.
    pub torn_ppm: u32,
    /// P(one bit of the buffer is flipped) — silent media corruption.
    pub flip_ppm: u32,
}

impl IoFaultPlan {
    /// The all-zero plan: nothing injected.
    #[must_use]
    pub fn none() -> IoFaultPlan {
        IoFaultPlan { seed: 0, error_ppm: 0, short_ppm: 0, torn_ppm: 0, flip_ppm: 0 }
    }

    /// Parse the `seed:error:short:torn:flip` spec (the
    /// `DLP_STORE_IOFAULT` format; all five fields required, ppm).
    #[must_use]
    pub fn parse(spec: &str) -> Option<IoFaultPlan> {
        let mut parts = spec.split(':');
        let plan = IoFaultPlan {
            seed: parts.next()?.parse().ok()?,
            error_ppm: parts.next()?.parse().ok()?,
            short_ppm: parts.next()?.parse().ok()?,
            torn_ppm: parts.next()?.parse().ok()?,
            flip_ppm: parts.next()?.parse().ok()?,
        };
        parts.next().is_none().then_some(plan)
    }
}

struct State {
    plan: IoFaultPlan,
    rng: SplitMix64,
    /// Injections by fault kind: `[errors, short writes, torn tails, bit flips]`.
    by_fault: [u64; 4],
    /// Injections by target [`Class`] index.
    by_class: [u64; 4],
}

static STATE: Mutex<Option<State>> = Mutex::new(None);
static ENV: std::sync::OnceLock<Option<IoFaultPlan>> = std::sync::OnceLock::new();

fn lock() -> std::sync::MutexGuard<'static, Option<State>> {
    STATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Arm the shim process-wide with `plan`, resetting the roll stream and
/// the injection counters.
pub fn arm(plan: IoFaultPlan) {
    *lock() = Some(State {
        plan,
        rng: SplitMix64::new(plan.seed),
        by_fault: [0; 4],
        by_class: [0; 4],
    });
}

/// Disarm the shim; subsequent writes pass through untouched.
pub fn disarm() {
    *lock() = None;
}

/// Injection counts since the last [`arm`], by fault kind:
/// `[errors, short writes, torn tails, bit flips]`.
#[must_use]
pub fn injected() -> [u64; 4] {
    lock().as_ref().map_or([0; 4], |s| s.by_fault)
}

/// Injection counts since the last [`arm`], by target class in
/// [`Class`] declaration order: `[entry, stamp, manifest, dlq]`.
#[must_use]
pub fn injected_by_class() -> [u64; 4] {
    lock().as_ref().map_or([0; 4], |s| s.by_class)
}

/// Roll the armed plan against one outgoing write. Returns `Ok(None)`
/// to pass the bytes through untouched, `Ok(Some(mutated))` to write
/// corrupted bytes instead, or an injected `io::Error`.
pub(crate) fn filter(class: Class, bytes: &[u8]) -> io::Result<Option<Vec<u8>>> {
    let mut guard = lock();
    if guard.is_none() {
        let env = ENV.get_or_init(|| {
            std::env::var("DLP_STORE_IOFAULT").ok().as_deref().and_then(IoFaultPlan::parse)
        });
        if let Some(plan) = *env {
            *guard = Some(State {
                plan,
                rng: SplitMix64::new(plan.seed),
                by_fault: [0; 4],
                by_class: [0; 4],
            });
        }
    }
    let Some(state) = guard.as_mut() else { return Ok(None) };

    let roll = |rng: &mut SplitMix64, ppm: u32| ppm > 0 && rng.below(1_000_000) < u64::from(ppm);

    if roll(&mut state.rng, state.plan.error_ppm) {
        let which = state.by_fault[0];
        state.by_fault[0] += 1;
        state.by_class[class.index()] += 1;
        return Err(if which.is_multiple_of(2) {
            io::Error::new(io::ErrorKind::StorageFull, "injected ENOSPC")
        } else {
            io::Error::other("injected EIO")
        });
    }
    if bytes.is_empty() {
        return Ok(None);
    }
    if roll(&mut state.rng, state.plan.short_ppm) {
        state.by_fault[1] += 1;
        state.by_class[class.index()] += 1;
        return Ok(Some(bytes[..bytes.len() / 2].to_vec()));
    }
    if roll(&mut state.rng, state.plan.torn_ppm) {
        state.by_fault[2] += 1;
        state.by_class[class.index()] += 1;
        let cut = 1 + state.rng.below(bytes.len().min(16) as u64) as usize;
        return Ok(Some(bytes[..bytes.len() - cut.min(bytes.len())].to_vec()));
    }
    if roll(&mut state.rng, state.plan.flip_ppm) {
        state.by_fault[3] += 1;
        state.by_class[class.index()] += 1;
        let bit = state.rng.below(bytes.len() as u64 * 8);
        let mut out = bytes.to_vec();
        out[(bit / 8) as usize] ^= 1 << (bit % 8);
        return Ok(Some(out));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing() {
        assert_eq!(
            IoFaultPlan::parse("7:10:20:30:40"),
            Some(IoFaultPlan { seed: 7, error_ppm: 10, short_ppm: 20, torn_ppm: 30, flip_ppm: 40 })
        );
        assert_eq!(IoFaultPlan::parse("7:10:20:30"), None, "five fields required");
        assert_eq!(IoFaultPlan::parse("7:10:20:30:40:50"), None, "exactly five");
        assert_eq!(IoFaultPlan::parse("x:0:0:0:0"), None);
        assert_eq!(IoFaultPlan::parse(""), None);
    }

    // The fault behaviors themselves are pinned end-to-end by the
    // tier-1 `chaos_recovery` test (arming mutates global state, so
    // in-crate unit tests would race other store tests).
}
