//! The one write path every durable store artifact goes through.
//!
//! Two primitives live here, and `cargo xtask detlint` forbids the
//! persistence layer from writing files any other way (no bare
//! `std::fs::write` / `File::create` outside this module):
//!
//! * [`atomic_write_file`] — whole-file replacement as tempfile →
//!   write → `fsync` → rename → parent-directory `fsync`. A kill at
//!   any instant leaves either the old content or the new, never a
//!   mixture, and the rename is durable once the parent is synced.
//! * [`AppendWriter`] — a JSONL appender whose every line is *sealed*
//!   ([`seal_line`]: a content digest prefixed to the payload), written
//!   in a single `write_all`, and `fdatasync`ed before the append
//!   returns. Readers [`unseal_line`] and treat a bad seal as a torn
//!   or corrupted line, so bit rot can cost a line, never serve a
//!   wrong one.
//!
//! Both primitives are instrumented for the chaos harness: every write
//! passes through the [`iofault`] shim (seeded short writes, injected
//! `ENOSPC`/`EIO`, torn tails, bit flips) and fires
//! [`dlp_common::crashpoint`] sites on each side of its commit point.

use std::io::{self, Write as _};
use std::path::Path;
use std::sync::Mutex;

use dlp_common::crashpoint::{self, CrashSites};

use super::iofault::{self, Class};
use super::{Digest, Hasher};

/// Prefix `payload` with the 32-hex content digest of its bytes,
/// separated by one space — the sealed-line format every JSONL artifact
/// (and the store entries) are written in as of format version 2.
#[must_use]
pub fn seal_line(payload: &str) -> String {
    let mut h = Hasher::new();
    h.update(payload.as_bytes());
    format!("{} {payload}", h.digest().hex())
}

/// Recover the payload of a sealed line, or `None` if the seal is
/// missing, malformed, or disagrees with the payload bytes (a torn
/// write or bit corruption — the caller degrades it to a miss, a
/// skipped line, or a load error by position).
#[must_use]
pub fn unseal_line(line: &str) -> Option<&str> {
    let (hex, payload) = line.split_once(' ')?;
    let sealed = Digest::from_hex(hex)?;
    let mut h = Hasher::new();
    h.update(payload.as_bytes());
    (h.digest() == sealed).then_some(payload)
}

/// Best-effort directory fsync: makes a just-committed rename durable.
/// Failure is ignored — not every filesystem lets a directory be opened
/// for syncing, and the rename itself has already happened.
fn sync_dir(path: &Path) {
    if let Ok(dir) = std::fs::File::open(path) {
        let _ = dir.sync_all();
    }
}

/// Atomically replace `path` with `bytes`: write a `.tmp-<pid>-<name>`
/// sibling, `fsync` it, rename it over `path`, and `fsync` the parent
/// directory. Fires `sites.tmp` between the sync and the rename and
/// `sites.renamed` after the parent sync, so the chaos harness can kill
/// on either side of the commit point.
///
/// # Errors
///
/// I/O errors from any step, including faults injected by the
/// [`iofault`] shim.
pub fn atomic_write_file(
    path: &Path,
    bytes: &[u8],
    sites: CrashSites,
    class: Class,
) -> io::Result<()> {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("file");
    let tmp = path.with_file_name(format!(".tmp-{}-{name}", std::process::id()));
    let filtered = iofault::filter(class, bytes)?;
    let data = filtered.as_deref().unwrap_or(bytes);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(data)?;
        file.sync_all()?;
    }
    crashpoint::hit(sites.tmp);
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        sync_dir(parent);
    }
    crashpoint::hit(sites.renamed);
    Ok(())
}

/// Crashpoint names for one appender: between the write and its sync,
/// and after the sync.
#[derive(Clone, Copy, Debug)]
pub struct AppendSites {
    /// Fires after the line's bytes reach the file, before `fdatasync`.
    pub appended: &'static str,
    /// Fires after `fdatasync` — the line is durable.
    pub synced: &'static str,
}

/// A durable sealed-JSONL appender: each payload is [`seal_line`]d,
/// written in one `write_all`, and `fdatasync`ed before the call
/// returns, so a kill loses at most the line being written — and a
/// machine crash can tear at most the final line, which readers detect
/// by its broken seal.
pub struct AppendWriter {
    file: Mutex<std::fs::File>,
    sites: AppendSites,
    class: Class,
}

impl AppendWriter {
    /// Create `path` fresh (truncating), creating parent directories.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directories or the file.
    pub fn create(path: &Path, sites: AppendSites, class: Class) -> io::Result<AppendWriter> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::File::create(path)?;
        Ok(AppendWriter { file: Mutex::new(file), sites, class })
    }

    /// Open `path` for appending, creating it (and parent directories)
    /// if missing.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directories or opening the file.
    pub fn append_to(path: &Path, sites: AppendSites, class: Class) -> io::Result<AppendWriter> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(AppendWriter { file: Mutex::new(file), sites, class })
    }

    /// Seal and append one payload line (thread-safe, synced).
    ///
    /// # Errors
    ///
    /// I/O errors from the write or sync, including injected faults.
    pub fn append_line(&self, payload: &str) -> io::Result<()> {
        self.append_line_at(payload, self.sites)
    }

    /// [`AppendWriter::append_line`], but firing `sites` instead of the
    /// writer's defaults — the manifest header write uses this so a
    /// kill there is distinguishable from a kill on a cell line.
    ///
    /// # Errors
    ///
    /// I/O errors from the write or sync, including injected faults.
    pub fn append_line_at(&self, payload: &str, sites: AppendSites) -> io::Result<()> {
        let line = format!("{}\n", seal_line(payload));
        let filtered = iofault::filter(self.class, line.as_bytes())?;
        let bytes = filtered.as_deref().unwrap_or(line.as_bytes());
        let file = self.file.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        (&*file).write_all(bytes)?;
        crashpoint::hit(sites.appended);
        file.sync_data()?;
        crashpoint::hit(sites.synced);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SITES: CrashSites = CrashSites { tmp: "test.tmp", renamed: "test.renamed" };

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dlp-atomic-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    #[test]
    fn seal_round_trips_and_rejects_corruption() {
        let payload = r#"{"cell":3,"outcome":{"reason":"x","failures":1}}"#;
        let sealed = seal_line(payload);
        assert_eq!(unseal_line(&sealed), Some(payload));

        // Any payload flip breaks the seal.
        let flipped = sealed.replace("\"cell\":3", "\"cell\":7");
        assert_eq!(unseal_line(&flipped), None);
        // A flipped seal digit breaks it too.
        let mut chars: Vec<char> = sealed.chars().collect();
        chars[0] = if chars[0] == '0' { '1' } else { '0' };
        assert_eq!(unseal_line(&chars.into_iter().collect::<String>()), None);
        // Truncation (a torn write) breaks it.
        assert_eq!(unseal_line(&sealed[..sealed.len() - 4]), None);
        // Unsealed lines never pass.
        assert_eq!(unseal_line(payload), None);
        assert_eq!(unseal_line(""), None);
        assert_eq!(unseal_line("deadbeef not-32-hex"), None);
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = tmpdir("atomic");
        let path = dir.join("stamp.json");
        atomic_write_file(&path, b"v1\n", SITES, Class::Stamp).expect("write");
        assert_eq!(std::fs::read(&path).expect("read"), b"v1\n");
        atomic_write_file(&path, b"v2\n", SITES, Class::Stamp).expect("rewrite");
        assert_eq!(std::fs::read(&path).expect("read"), b"v2\n");
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .expect("readdir")
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(stray.is_empty(), "no temp files survive a completed write");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_writer_produces_sealed_lines() {
        let dir = tmpdir("append");
        let path = dir.join("log.jsonl");
        let sites = AppendSites { appended: "test.append", synced: "test.synced" };
        let w = AppendWriter::create(&path, sites, Class::Manifest).expect("create");
        w.append_line("{\"a\":1}").expect("append");
        w.append_line("{\"b\":2}").expect("append");
        drop(w);
        let text = std::fs::read_to_string(&path).expect("read");
        let payloads: Vec<&str> = text.lines().map(|l| unseal_line(l).expect("sealed")).collect();
        assert_eq!(payloads, vec!["{\"a\":1}", "{\"b\":2}"]);

        // Reopening for append preserves existing lines.
        let w = AppendWriter::append_to(&path, sites, Class::Manifest).expect("reopen");
        w.append_line("{\"c\":3}").expect("append");
        drop(w);
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text.lines().count(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
