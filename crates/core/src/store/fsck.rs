//! Store fsck: scan a result store, quarantine what cannot be trusted,
//! and garbage-collect what a crash left behind.
//!
//! A damaged store is never *wrong* — every read path degrades to a
//! miss — but it can silently cost recomputation forever (a corrupt
//! entry is re-missed on every sweep until something overwrites it) and
//! a kill inside the atomic writer leaves `.tmp-*` droppings. `fsck`
//! makes the degradation visible and bounded:
//!
//! * every entry file is read back through the same validation the
//!   store's `get` applies (seal, JSON, version, digest-vs-filename);
//!   failures move to `quarantine/` for post-mortem instead of being
//!   deleted;
//! * files that don't belong in the layout (stray names, wrong shard)
//!   are quarantined as *orphaned*;
//! * stale `.tmp-*` files in the root and the shards are removed;
//! * a missing or stale `STORE_INFO.json` stamp is rewritten.
//!
//! Exposed as `sweep --fsck DIR` and `cargo xtask storeck DIR`; the
//! chaos harness runs it after every injected kill. Takes the store
//! lock, so it cannot race a live sweep in another process.

use std::io;
use std::path::{Path, PathBuf};

use dlp_common::json;
use serde::Serialize;

use super::atomic::unseal_line;
use super::lock::StoreLock;
use super::{outcome_from_json, Digest, STORE_VERSION};

/// What one [`fsck`] pass found and did. Serializable for
/// `BENCH_chaos.json` and the `--fsck` CLI output.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct FsckReport {
    /// Entry files scanned.
    pub scanned: usize,
    /// Entries that read back valid.
    pub valid: usize,
    /// Corrupt entries (bad seal/JSON/version/digest) moved to
    /// `quarantine/`.
    pub quarantined: usize,
    /// Files that don't belong in the layout (stray names, wrong
    /// shard), also moved to `quarantine/`.
    pub orphaned: usize,
    /// Stale `.tmp-*` files removed.
    pub gc_tmp: usize,
    /// Whether the `STORE_INFO.json` stamp was missing or stale and got
    /// rewritten.
    pub restamped: bool,
}

/// Does this entry file read back exactly as `get` would trust it?
fn entry_is_valid(path: &Path, digest_hex: &str) -> bool {
    let Ok(text) = std::fs::read_to_string(path) else { return false };
    let Some(payload) = unseal_line(text.trim_end_matches('\n')) else { return false };
    let Ok(v) = json::parse(payload) else { return false };
    if v.get("store_version").and_then(json::JsonValue::as_u64) != Some(u64::from(STORE_VERSION)) {
        return false;
    }
    if v.get("digest").and_then(json::JsonValue::as_str) != Some(digest_hex) {
        return false;
    }
    v.get("outcome").and_then(outcome_from_json).is_some()
}

/// Move a file into `quarantine/`, creating the directory lazily.
fn quarantine(root: &Path, file: &Path) -> io::Result<()> {
    let qdir = root.join("quarantine");
    std::fs::create_dir_all(&qdir)?;
    let name = file.file_name().map_or_else(|| "unnamed".into(), |n| n.to_os_string());
    std::fs::rename(file, qdir.join(name))
}

fn is_tmp(name: &str) -> bool {
    name.starts_with(".tmp-")
}

/// The shard-and-name shape a valid entry file must have: filed under
/// `entries/<d[..2]>/<d>.json` where `d` is 32 hex digits.
fn well_placed(shard: &str, name: &str) -> Option<String> {
    let stem = name.strip_suffix(".json")?;
    Digest::from_hex(stem)?;
    (&stem[..2] == shard).then(|| stem.to_string())
}

/// Scan the store rooted at `root` (creating it if absent, like
/// `ResultStore::open`): quarantine corrupt and orphaned entries,
/// remove stale temp files, and refresh the stamp. Holds the store
/// lock for the duration.
///
/// # Errors
///
/// I/O errors walking the tree or moving files. A *corrupt entry* is
/// never an error — finding those is the job.
pub fn fsck(root: &Path) -> io::Result<FsckReport> {
    let entries_dir = root.join("entries");
    std::fs::create_dir_all(&entries_dir)?;
    let _lock = StoreLock::acquire(root)?;

    let mut report = FsckReport::default();

    // Stale temp files in the root (a killed stamp write).
    for entry in std::fs::read_dir(root)?.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if entry.path().is_file() && is_tmp(&name) {
            std::fs::remove_file(entry.path())?;
            report.gc_tmp += 1;
        }
    }

    let mut shards: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(&entries_dir)?.flatten() {
        let path = entry.path();
        if path.is_dir() {
            shards.push(path);
        } else {
            // Files directly under entries/ never belong to the layout.
            let name = entry.file_name().to_string_lossy().into_owned();
            if is_tmp(&name) {
                std::fs::remove_file(&path)?;
                report.gc_tmp += 1;
            } else {
                quarantine(root, &path)?;
                report.orphaned += 1;
            }
        }
    }
    shards.sort();

    for shard in shards {
        let shard_name = shard.file_name().map_or_else(String::new, |n| {
            n.to_string_lossy().into_owned()
        });
        let mut files: Vec<PathBuf> =
            std::fs::read_dir(&shard)?.flatten().map(|e| e.path()).collect();
        files.sort();
        for file in files {
            let name =
                file.file_name().map_or_else(String::new, |n| n.to_string_lossy().into_owned());
            if is_tmp(&name) {
                std::fs::remove_file(&file)?;
                report.gc_tmp += 1;
                continue;
            }
            let Some(digest_hex) = well_placed(&shard_name, &name) else {
                quarantine(root, &file)?;
                report.orphaned += 1;
                continue;
            };
            report.scanned += 1;
            if entry_is_valid(&file, &digest_hex) {
                report.valid += 1;
            } else {
                quarantine(root, &file)?;
                report.quarantined += 1;
            }
        }
    }

    report.restamped = super::write_stamp(root)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::super::tests_support::{ran_outcome, sample_key, tmpdir};
    use super::super::ResultStore;
    use super::*;

    #[test]
    fn fsck_quarantines_gcs_and_keeps_valid_entries() {
        let dir = tmpdir("fsck");
        let store = ResultStore::open(&dir).expect("open");
        let good = sample_key(1);
        let bad = sample_key(2);
        assert!(store.put(&good, &ran_outcome()).expect("put good"));
        assert!(store.put(&bad, &ran_outcome()).expect("put bad"));
        let bad_path = store.path_of(&bad);
        drop(store);

        // Corrupt one entry, drop a stale tmp file and two orphans.
        std::fs::write(&bad_path, "{torn").expect("corrupt");
        std::fs::write(dir.join("entries").join(".tmp-999-x"), "junk").expect("tmp");
        std::fs::write(dir.join("entries").join("stray.txt"), "junk").expect("orphan");
        let misfiled = dir.join("entries").join("ff");
        std::fs::create_dir_all(&misfiled).expect("mkdir");
        std::fs::write(misfiled.join(format!("{}.json", "0".repeat(32))), "x").expect("misfiled");

        let report = fsck(&dir).expect("fsck");
        assert_eq!(report.scanned, 2, "misfiled entries are orphans, not scans");
        assert_eq!(report.valid, 1);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.orphaned, 2);
        assert_eq!(report.gc_tmp, 1);
        assert!(!report.restamped, "the stamp was already current");

        // The corrupt entry is preserved for post-mortem, not deleted.
        assert!(dir.join("quarantine").join(format!("{}.json", bad.digest.hex())).exists());
        // The good entry still serves.
        let store = ResultStore::open(&dir).expect("reopen");
        assert_eq!(store.get(&good), Some(ran_outcome()));
        assert_eq!(store.get(&bad), None, "quarantined entry is a miss");

        // A second pass over the repaired store is a no-op.
        drop(store);
        let clean = fsck(&dir).expect("fsck again");
        assert_eq!(
            clean,
            FsckReport { scanned: 1, valid: 1, ..FsckReport::default() }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_restamps_and_creates_missing_stores() {
        let dir = tmpdir("fsck-stamp");
        let root = dir.join("fresh");
        let report = fsck(&root).expect("fsck on a nonexistent root");
        assert!(report.restamped, "a fresh root gets a stamp");
        std::fs::write(root.join("STORE_INFO.json"), "garbage").expect("break stamp");
        assert!(fsck(&root).expect("fsck").restamped);
        assert!(!fsck(&root).expect("fsck").restamped);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
